//! A bounded Chase–Lev work-stealing deque over `usize` items, mirroring
//! the `crossbeam_deque::{Worker, Stealer}` split collapsed into one type
//! (this workspace shares it behind `Arc`, so owner/stealer roles are a
//! calling convention, not a type split).
//!
//! The owner pushes and pops at `bottom` (LIFO, cache-hot); stealers race a
//! CAS on `top` (FIFO, oldest first). The implementation is `unsafe`-free:
//! slots are plain `AtomicUsize`s, and the **fullness check** (`bottom −
//! top < capacity` before every write) guarantees a slot is only ever
//! overwritten after `top` has advanced past it — so a stealer holding a
//! stale `top` always loses its CAS and never publishes a torn or recycled
//! value. The cost of that guarantee is a fixed capacity, which the caller
//! sizes to the maximum number of distinct items ever live at once (the
//! pool executor queues each task id at most once, so `n_tasks + 1` slots
//! suffice).
//!
//! `bottom`/`top` are monotone counters indexed modulo the power-of-two
//! slot count; at one push per nanosecond a 64-bit counter wraps after ~584
//! years, so wraparound is ignored. Atomics resolve through
//! [`crate::atomic`]: `std` in normal builds, the deterministic model
//! checker's under the `pkg_model` feature (every ordering below is
//! `SeqCst` — the vendored checker explores sequentially consistent
//! interleavings only, and weaker orderings would claim coverage the model
//! cannot deliver).

use crate::atomic::{AtomicUsize, Ordering};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race (another stealer or the owner took the item); retrying
    /// immediately is allowed but the caller may prefer the next victim.
    Retry,
    /// Took the oldest item.
    Success(usize),
}

/// A fixed-capacity work-stealing deque of `usize` items.
///
/// Contract: exactly one thread at a time acts as the *owner* (calls
/// [`WorkStealingDeque::push`] / [`WorkStealingDeque::pop`]); any number of
/// threads may concurrently call [`WorkStealingDeque::steal`]. The pool
/// executor upholds this by construction — queue *w* is only pushed/popped
/// from worker *w*'s loop.
pub struct WorkStealingDeque {
    /// Owner's end: next free slot. Written by the owner only.
    bottom: AtomicUsize,
    /// Stealers' end: oldest live slot. Advanced by CAS (stealers) and by
    /// the owner when it takes the last item.
    top: AtomicUsize,
    slots: Box<[AtomicUsize]>,
    mask: usize,
}

impl WorkStealingDeque {
    /// A deque holding at most `cap ≥ 1` items (rounded up to a power of
    /// two internally).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "deque capacity must be positive");
        let slots = cap.next_power_of_two();
        Self {
            bottom: AtomicUsize::new(0),
            top: AtomicUsize::new(0),
            slots: (0..slots).map(|_| AtomicUsize::new(0)).collect(),
            mask: slots - 1,
        }
    }

    /// Owner: push `value` at the bottom. Returns `false` when full (the
    /// caller overflows to its fallback queue; with capacity sized to the
    /// live-item bound this never fires).
    pub fn push(&self, value: usize) -> bool {
        // ordering: SeqCst — bottom is owner-written; this load pairs with
        // our own last store (SC-only model, see module doc)
        let b = self.bottom.load(Ordering::SeqCst);
        // ordering: SeqCst — fullness check against stealers' top advances;
        // `b - t < len` is what makes slot reuse safe (SC-only model)
        let t = self.top.load(Ordering::SeqCst);
        if b.wrapping_sub(t) >= self.slots.len() {
            return false;
        }
        // ordering: SeqCst — slot write precedes the bottom publication in
        // the SC total order, so a stealer that sees the new bottom also
        // sees the value (SC-only model)
        self.slots[b & self.mask].store(value, Ordering::SeqCst);
        // ordering: SeqCst — publish the pushed item to stealers (SC-only
        // model)
        self.bottom.store(b.wrapping_add(1), Ordering::SeqCst);
        true
    }

    /// Owner: pop the most recently pushed item.
    pub fn pop(&self) -> Option<usize> {
        // ordering: SeqCst — owner-written index (SC-only model)
        let b = self.bottom.load(Ordering::SeqCst);
        // ordering: SeqCst — emptiness pre-check (SC-only model)
        let t = self.top.load(Ordering::SeqCst);
        if b == t {
            return None;
        }
        let b1 = b.wrapping_sub(1);
        // ordering: SeqCst — reserve the bottom slot *before* re-reading
        // top: stealers racing for it must observe the shrunken deque
        // (SC-only model)
        self.bottom.store(b1, Ordering::SeqCst);
        // ordering: SeqCst — re-read top after the reservation (SC-only
        // model)
        let t = self.top.load(Ordering::SeqCst);
        if t.wrapping_sub(b1) != 0 && t.wrapping_sub(b1) <= self.slots.len() {
            // t advanced past b1: a stealer took the last item first.
            // Restore bottom to the (possibly advanced) top.
            // ordering: SeqCst — un-reserve; deque is empty (SC-only model)
            self.bottom.store(t, Ordering::SeqCst);
            return None;
        }
        // ordering: SeqCst — the fullness check guarantees this slot still
        // holds our value: it cannot be overwritten until top passes b1
        // (SC-only model)
        let value = self.slots[b1 & self.mask].load(Ordering::SeqCst);
        if t == b1 {
            // Last item: race the stealers for it with the same CAS they
            // use.
            let won = self
                .top
                // ordering: SeqCst — winner takes the last item; on loss a
                // stealer already took it (SC-only model)
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
            // ordering: SeqCst — empty either way: bottom rejoins top
            // (SC-only model)
            self.bottom.store(b1.wrapping_add(1), Ordering::SeqCst);
            return won.then_some(value);
        }
        Some(value)
    }

    /// Stealer: take the oldest item.
    pub fn steal(&self) -> Steal {
        // ordering: SeqCst — candidate slot; the CAS below validates it
        // (SC-only model)
        let t = self.top.load(Ordering::SeqCst);
        // ordering: SeqCst — read bottom *after* top: if items appear
        // in-between we merely report Retry/Empty conservatively (SC-only
        // model)
        let b = self.bottom.load(Ordering::SeqCst);
        if b.wrapping_sub(t) == 0 || b.wrapping_sub(t) > self.slots.len() {
            // Empty, or the owner's in-flight pop reservation (b = t − 1).
            return Steal::Empty;
        }
        // ordering: SeqCst — speculative read; only published if the CAS
        // proves the slot was still live (fullness check: it cannot have
        // been overwritten while top ≤ its index) (SC-only model)
        let value = self.slots[t & self.mask].load(Ordering::SeqCst);
        // ordering: SeqCst — claims the slot against other stealers and the
        // owner's last-item pop (SC-only model)
        match self.top.compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => Steal::Success(value),
            Err(_) => Steal::Retry,
        }
    }

    /// Items currently queued (exact from the owner, a racy estimate from
    /// anywhere else).
    pub fn len(&self) -> usize {
        // ordering: SeqCst — paired snapshot reads (SC-only model)
        let b = self.bottom.load(Ordering::SeqCst);
        // ordering: SeqCst — see above (SC-only model)
        let t = self.top.load(Ordering::SeqCst);
        // Saturate: a concurrent owner pop can transiently leave b = t − 1.
        if b.wrapping_sub(t) > self.slots.len() {
            0
        } else {
            b.wrapping_sub(t)
        }
    }

    /// Whether the deque is (observably) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_and_stealers_are_fifo() {
        let d = WorkStealingDeque::new(8);
        assert!(d.is_empty());
        for v in 1..=4 {
            assert!(d.push(v));
        }
        assert_eq!(d.len(), 4);
        assert_eq!(d.pop(), Some(4), "owner pops the newest");
        assert_eq!(d.steal(), Steal::Success(1), "stealers take the oldest");
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), Steal::Success(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn full_deque_rejects_and_drains_across_wraparound() {
        let d = WorkStealingDeque::new(3); // 4 slots internally
        let mut next_in = 0usize;
        let mut seen = Vec::new();
        for _ in 0..50 {
            while d.push(next_in) {
                next_in += 1;
            }
            while let Some(v) = d.pop() {
                seen.push(v);
            }
        }
        assert_eq!(next_in, seen.len());
        seen.sort_unstable();
        assert_eq!(seen, (0..next_in).collect::<Vec<_>>(), "every item exactly once");
    }

    #[test]
    fn concurrent_stealers_take_each_item_exactly_once() {
        use std::sync::atomic::{AtomicBool, Ordering};
        const ITEMS: usize = 10_000;
        let d = std::sync::Arc::new(WorkStealingDeque::new(ITEMS + 1));
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let d = std::sync::Arc::clone(&d);
            let done = std::sync::Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                // ordering: Relaxed — test-only termination flag
                while !done.load(Ordering::Relaxed) || !d.is_empty() {
                    if let Steal::Success(v) = d.steal() {
                        got.push(v);
                    }
                }
                got
            }));
        }
        let mut owner_got = Vec::new();
        for v in 0..ITEMS {
            assert!(d.push(v));
            if v % 3 == 0 {
                if let Some(x) = d.pop() {
                    owner_got.push(x);
                }
            }
        }
        while let Some(x) = d.pop() {
            owner_got.push(x);
        }
        // ordering: Relaxed — test-only termination flag
        done.store(true, Ordering::Relaxed);
        let mut all = owner_got;
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>(), "no loss, no duplication");
    }

    /// Exhaustive interleavings of owner pop vs. one stealer over a
    /// two-item deque: both items surface exactly once, split any way.
    #[cfg(feature = "pkg_model")]
    #[test]
    fn model_owner_pop_races_stealer_without_loss_or_duplication() {
        pkg_model::model(|| {
            let d = std::sync::Arc::new(WorkStealingDeque::new(4));
            assert!(d.push(10));
            assert!(d.push(20));
            let d2 = std::sync::Arc::clone(&d);
            let thief = pkg_model::thread::spawn(move || match d2.steal() {
                Steal::Success(v) => Some(v),
                Steal::Empty | Steal::Retry => None,
            });
            let mut mine = Vec::new();
            while let Some(v) = d.pop() {
                mine.push(v);
            }
            let stolen = thief.join();
            let mut all = mine;
            all.extend(stolen);
            all.sort_unstable();
            assert_eq!(all, vec![10, 20], "both items, exactly once");
        });
    }

    /// Two stealers race for a single item: exactly one succeeds, the other
    /// observes Empty or Retry — never a duplicate.
    #[cfg(feature = "pkg_model")]
    #[test]
    fn model_racing_stealers_never_duplicate_the_last_item() {
        pkg_model::model(|| {
            let d = std::sync::Arc::new(WorkStealingDeque::new(2));
            assert!(d.push(7));
            let a = std::sync::Arc::clone(&d);
            let b = std::sync::Arc::clone(&d);
            let ta = pkg_model::thread::spawn(move || a.steal());
            let tb = pkg_model::thread::spawn(move || b.steal());
            let (ra, rb) = (ta.join(), tb.join());
            let wins = [ra, rb].iter().filter(|s| matches!(s, Steal::Success(7))).count();
            assert_eq!(wins, 1, "exactly one stealer wins: {ra:?} vs {rb:?}");
        });
    }

    /// Owner pushes concurrently with a stealer: the stealer may see the
    /// item or miss it, but a successful steal always returns the pushed
    /// value (no torn/recycled slot reads).
    #[cfg(feature = "pkg_model")]
    #[test]
    fn model_push_concurrent_with_steal_is_linearizable() {
        pkg_model::model(|| {
            let d = std::sync::Arc::new(WorkStealingDeque::new(2));
            let d2 = std::sync::Arc::clone(&d);
            let thief = pkg_model::thread::spawn(move || d2.steal());
            assert!(d.push(42));
            match thief.join() {
                Steal::Success(v) => assert_eq!(v, 42),
                Steal::Empty | Steal::Retry => {
                    assert_eq!(d.pop(), Some(42), "missed steal leaves the item")
                }
            }
        });
    }
}
