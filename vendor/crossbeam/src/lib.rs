//! Offline shim for the subset of the `crossbeam` API this workspace uses:
//! `channel::{bounded, unbounded}`, `thread::scope`, `sync::{Parker,
//! Unparker}`, and a bounded Chase–Lev work-stealing [`deque`]. Channels
//! delegate to `std::sync::mpsc` (multi-producer, single-consumer — every
//! receiver in this workspace is owned by exactly one executor thread, so
//! the missing multi-consumer capability is never exercised).

#![forbid(unsafe_code)]

pub mod deque;

/// Atomics facade for [`deque`], mirroring the [`sync`] Parker facade:
/// normal builds resolve to `std::sync::atomic`; under the `pkg_model`
/// feature the same names resolve to the deterministic model checker's
/// atomics, whose every access is a scheduling point.
pub(crate) mod atomic {
    #[cfg(not(feature = "pkg_model"))]
    pub(crate) use std::sync::atomic::{AtomicUsize, Ordering};

    #[cfg(feature = "pkg_model")]
    pub(crate) use pkg_model::sync::atomic::{AtomicUsize, Ordering};
}

pub mod channel {
    use std::sync::mpsc;
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};
    use std::time::Duration;

    /// Sending half of a channel. Cloneable; unified over the std bounded /
    /// unbounded sender types.
    pub enum Sender<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Self::Bounded(s) => Self::Bounded(s.clone()),
                Self::Unbounded(s) => Self::Unbounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full. Errors only if
        /// the receiver disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Self::Bounded(s) => s.send(value),
                Self::Unbounded(s) => s.send(value),
            }
        }

        /// Non-blocking send: `Err(TrySendError::Full)` instead of blocking
        /// when a bounded channel is at capacity (unbounded channels are
        /// never full). The cooperative executor's spill-instead-of-block
        /// emission discipline is built on this shape of primitive.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match self {
                Self::Bounded(s) => s.try_send(value),
                Self::Unbounded(s) => {
                    s.send(value).map_err(|SendError(v)| TrySendError::Disconnected(v))
                }
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Block with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking poll.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterate until all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Channel with capacity `cap`; sends block while full (backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { inner: rx })
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { inner: rx })
    }
}

pub mod sync {
    //! Thread parking, mirroring `crossbeam::sync::{Parker, Unparker}`:
    //! a token-based park/unpark pair without the lost-wakeup hazard of
    //! bare condvars — an `unpark` delivered before the `park` makes the
    //! `park` return immediately instead of sleeping forever.
    //!
    //! This module is a facade: normal builds export the condvar-backed
    //! `std_impl` types; under the `pkg_model` feature the same names
    //! resolve to `pkg_model::sync::{Parker, Unparker}`, whose park/unpark
    //! are scheduling points of the deterministic model checker (and behave
    //! like `std_impl` outside a model run).

    #[cfg(not(feature = "pkg_model"))]
    pub use std_impl::{Parker, Unparker};

    #[cfg(feature = "pkg_model")]
    pub use pkg_model::sync::{Parker, Unparker};

    // With pkg_model on, only the token tests still reach the std variant.
    #[cfg_attr(feature = "pkg_model", allow(dead_code))]
    pub(crate) mod std_impl {
        use std::sync::{Arc, Condvar, Mutex};
        use std::time::Duration;

        struct Inner {
            token: Mutex<bool>,
            cv: Condvar,
        }

        /// The parking side: owned by one thread, which calls [`Parker::park`].
        pub struct Parker {
            inner: Arc<Inner>,
        }

        /// The waking side: cloneable, shareable across threads.
        #[derive(Clone)]
        pub struct Unparker {
            inner: Arc<Inner>,
        }

        impl Default for Parker {
            fn default() -> Self {
                Self::new()
            }
        }

        impl Parker {
            /// A parker with no token pending.
            pub fn new() -> Self {
                Self { inner: Arc::new(Inner { token: Mutex::new(false), cv: Condvar::new() }) }
            }

            /// The waking handle for this parker.
            pub fn unparker(&self) -> Unparker {
                Unparker { inner: Arc::clone(&self.inner) }
            }

            /// Block until unparked; consumes the token (a pending unpark makes
            /// this return immediately).
            pub fn park(&self) {
                let mut token = self.inner.token.lock().expect("parker lock");
                while !*token {
                    token = self.inner.cv.wait(token).expect("parker lock");
                }
                *token = false;
            }

            /// Like [`Parker::park`] with a timeout; returns whether it was
            /// unparked (vs. timed out).
            pub fn park_timeout(&self, timeout: Duration) -> bool {
                let deadline = std::time::Instant::now() + timeout;
                let mut token = self.inner.token.lock().expect("parker lock");
                while !*token {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    if left.is_zero() {
                        return false;
                    }
                    let (guard, _) = self.inner.cv.wait_timeout(token, left).expect("parker lock");
                    token = guard;
                }
                *token = false;
                true
            }
        }

        impl Unparker {
            /// Wake the parked thread (or pre-arm the token if it is not parked
            /// yet).
            pub fn unpark(&self) {
                let mut token = self.inner.token.lock().expect("parker lock");
                *token = true;
                self.inner.cv.notify_one();
            }
        }
    }
}

pub mod thread {
    /// Handle passed to scoped closures; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope (unused by
        /// this workspace, kept for crossbeam signature compatibility).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowing spawned threads can be
    /// created; joins them all before returning. Returns `Ok` like
    /// crossbeam (std's scope propagates child panics by panicking, so the
    /// `Err` arm is unreachable here).
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bounded_applies_backpressure_and_delivers_in_order() {
        let (tx, rx) = super::channel::bounded::<u32>(2);
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn unbounded_recv_timeout_times_out() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        assert!(matches!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(super::channel::RecvTimeoutError::Timeout)
        ));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(9));
    }

    #[test]
    fn try_send_reports_full_then_succeeds_after_drain() {
        let (tx, rx) = super::channel::bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(super::channel::TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn unbounded_try_send_never_full() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        for i in 0..1_000 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(rx.iter().take(1_000).count(), 1_000);
    }

    #[test]
    fn unpark_before_park_returns_immediately() {
        let p = super::sync::Parker::new();
        p.unparker().unpark();
        p.park(); // must not hang: the token was pre-armed
        assert!(!p.park_timeout(std::time::Duration::from_millis(5)), "token consumed");
    }

    #[test]
    fn unpark_wakes_parked_thread() {
        let p = super::sync::Parker::new();
        let u = p.unparker();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            u.unpark();
        });
        p.park();
        h.join().unwrap();
    }

    // Token-protocol tests pinned to the condvar-backed implementation, so
    // they keep covering it even when the pkg_model feature redirects the
    // public Parker to the model-aware one.
    #[test]
    fn std_impl_unpark_before_park_returns_immediately() {
        let p = super::sync::std_impl::Parker::new();
        p.unparker().unpark();
        p.park(); // must not hang: the token was pre-armed
        assert!(!p.park_timeout(std::time::Duration::from_millis(5)), "token consumed");
    }

    #[test]
    fn std_impl_tokens_do_not_accumulate() {
        let p = super::sync::std_impl::Parker::new();
        let u = p.unparker();
        u.unpark();
        u.unpark();
        u.unpark();
        p.park(); // consumes the single banked token
        assert!(
            !p.park_timeout(std::time::Duration::from_millis(5)),
            "repeated unparks must bank at most one token"
        );
    }

    #[test]
    fn std_impl_unpark_wakes_parked_thread() {
        let p = super::sync::std_impl::Parker::new();
        let u = p.unparker();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            u.unpark();
        });
        p.park();
        h.join().unwrap();
    }

    #[test]
    fn std_impl_park_timeout_reports_wake_vs_timeout() {
        let p = super::sync::std_impl::Parker::new();
        assert!(!p.park_timeout(std::time::Duration::from_millis(2)), "no token: times out");
        p.unparker().unpark();
        assert!(p.park_timeout(std::time::Duration::from_millis(2)), "token: woken");
    }

    /// Exhaustive model check of the park/unpark token protocol: across
    /// every interleaving of `{store flag, unpark}` with `park`, the park
    /// must complete (no lost wake, pre-armed tokens included) and must
    /// observe the write that preceded the unpark.
    #[cfg(feature = "pkg_model")]
    #[test]
    fn model_park_unpark_has_no_lost_wake() {
        pkg_model::model(|| {
            let p = super::sync::Parker::new();
            let u = p.unparker();
            let flag = std::sync::Arc::new(pkg_model::sync::atomic::AtomicU8::new(0));
            let f2 = std::sync::Arc::clone(&flag);
            let t = pkg_model::thread::spawn(move || {
                f2.store(1, pkg_model::sync::atomic::Ordering::SeqCst);
                u.unpark();
            });
            p.park();
            assert_eq!(
                flag.load(pkg_model::sync::atomic::Ordering::SeqCst),
                1,
                "park returned before the waker's write was visible"
            );
            t.join();
        });
    }

    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }
}
