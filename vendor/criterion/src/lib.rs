//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! Benchmarks compile and run: each registered function is timed for a
//! fixed number of samples and the mean ns/iter (plus element throughput
//! when configured) is printed. Statistical outlier analysis, HTML reports
//! and baseline comparison are intentionally out of scope.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted and ignored (every batch is one
/// input here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly, timing every call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Run `routine` over fresh inputs from `setup`; only `routine` is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: u64,
}

/// The benchmark harness entry point.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { config: Config { sample_size: 10 } }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (the shim maps one sample to
    /// one routine invocation).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for compatibility; the shim's run length is governed by
    /// `sample_size` alone.
    pub fn measurement_time(self, _dur: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; the shim does not warm up.
    pub fn warm_up_time(self, _dur: Duration) -> Self {
        self
    }

    /// Accepted for compatibility with `criterion_main!`-generated code.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, None, &id.into_benchmark_id(), None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            throughput: None,
            _criterion: self,
        }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing throughput/config settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    config: Config,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1) as u64;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, Some(&self.name), &id.into_benchmark_id(), self.throughput, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.config, Some(&self.name), &id.id, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

fn run_one<F>(
    config: &Config,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    let mut bencher = Bencher { iters: config.sample_size, elapsed: Duration::ZERO };
    f(&mut bencher);
    let iters = bencher.iters.max(1);
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => {
            let rate = n as f64 * 1e9 / ns_per_iter;
            println!("bench: {full:<50} {ns_per_iter:>14.1} ns/iter ({rate:>12.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if ns_per_iter > 0.0 => {
            let rate = n as f64 * 1e9 / ns_per_iter / (1024.0 * 1024.0);
            println!("bench: {full:<50} {ns_per_iter:>14.1} ns/iter ({rate:>9.1} MiB/s)");
        }
        _ => println!("bench: {full:<50} {ns_per_iter:>14.1} ns/iter"),
    }
}

/// Declare a group of benchmark functions, with or without a custom
/// `Criterion` configuration — both real-criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_to_completion() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10));
            g.sample_size(2);
            g.bench_function("in_group", |b| {
                b.iter_batched(
                    || 21u64,
                    |x| {
                        calls += 1;
                        x * 2
                    },
                    BatchSize::LargeInput,
                )
            });
            g.bench_with_input(BenchmarkId::new("param", 5), &5u64, |b, &p| b.iter(|| p + 1));
            g.finish();
        }
        assert_eq!(calls, 2);
    }

    #[test]
    fn macros_expand() {
        fn a_bench(c: &mut Criterion) {
            c.bench_function("macro_case", |b| b.iter(|| black_box(0u8)));
        }
        criterion_group!(shim_benches, a_bench);
        criterion_group! {
            name = shim_benches_cfg;
            config = Criterion::default().sample_size(2)
                .measurement_time(std::time::Duration::from_millis(1))
                .warm_up_time(std::time::Duration::from_millis(1));
            targets = a_bench
        }
        shim_benches();
        shim_benches_cfg();
    }
}
