//! The model-checking runtime: a controlled scheduler that serializes model
//! threads (one runs at a time) and enumerates interleavings by DFS over a
//! recorded schedule tree.
//!
//! Every shared-memory operation performed through [`crate::sync`] calls
//! [`Scheduler::switch`] first, making it a *scheduling point*: the scheduler
//! consults the recorded path (replay) or records a fresh branch listing every
//! runnable thread that could run instead. After an iteration completes, the
//! controller advances the deepest branch with an untried option and replays;
//! when no branch can advance, the space is exhausted.
//!
//! Preemption bounding (CHESS-style): switching away from a *runnable* thread
//! costs one unit of the preemption budget; switching because the current
//! thread blocked or finished is free. With the budget exhausted, the only
//! candidate at a scheduling point is the current thread, so no branch is
//! recorded there — this is what keeps big state spaces tractable without
//! losing the low-preemption schedules where most bugs live.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

/// Sentinel panic payload used to unwind model threads when the current
/// iteration is abandoned (a violation was found, possibly by another
/// thread). Never surfaces to user code: the per-thread wrapper catches it.
pub(crate) struct Abort;

/// What a model thread is currently able to do. The `usize` payloads are
/// identities: the address of the contended primitive, or a thread id for
/// joins.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    /// Blocked acquiring the model mutex with this identity.
    BlockedMutex(usize),
    /// Parked on the parker with this identity, no token pending.
    BlockedPark(usize),
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    Finished,
}

/// One branch of the schedule tree: the runnable candidates observed at a
/// scheduling point and which of them this iteration takes.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    options: Vec<usize>,
    index: usize,
}

struct Core {
    statuses: Vec<Status>,
    /// The one thread allowed to run right now.
    active: usize,
    /// Schedule prefix: replayed up to `cursor`, extended past it.
    path: Vec<Choice>,
    cursor: usize,
    preemptions: usize,
    /// Every chosen thread id, in order — the witness schedule for reports.
    decisions: Vec<usize>,
    violation: Option<crate::Violation>,
    /// OS threads (root + spawned) that have not yet exited their wrapper.
    live_os_threads: usize,
    /// Fresh branches recorded this iteration.
    branches: u64,
}

/// Shared scheduler state for one model iteration.
pub(crate) struct Scheduler {
    core: Mutex<Core>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    preemption_bound: Option<usize>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler/thread-id pair for the calling thread, if it is a model
/// thread. `None` means passthrough mode: the `sync` types behave like their
/// `std` counterparts.
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(sched: Arc<Scheduler>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

/// Install a process-wide panic-hook filter (once) that silences the [`Abort`]
/// sentinel unwinds; real violation panics still print, which is useful
/// context right before `check` returns the `Violation`.
pub(crate) fn install_abort_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Abort>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Extract a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Body wrapper for every model thread (root and spawned): binds the
/// thread-local scheduler handle, waits to be scheduled, runs `f`, and
/// reports the outcome (finish, assertion violation, or abort).
pub(crate) fn run_model_thread(sched: &Arc<Scheduler>, me: usize, f: impl FnOnce()) {
    set_current(Arc::clone(sched), me);
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        sched.wait_until_active(me);
        f();
    }));
    match result {
        Ok(()) => sched.finish_thread(me, None),
        Err(payload) => {
            if payload.is::<Abort>() {
                sched.thread_aborted();
            } else {
                sched.finish_thread(me, Some(panic_message(payload.as_ref())));
            }
        }
    }
}

impl Scheduler {
    pub(crate) fn new(path: Vec<Choice>, preemption_bound: Option<usize>) -> Self {
        Self {
            core: Mutex::new(Core {
                statuses: vec![Status::Runnable],
                active: 0,
                path,
                cursor: 0,
                preemptions: 0,
                decisions: Vec::new(),
                violation: None,
                live_os_threads: 1,
                branches: 0,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            preemption_bound,
        }
    }

    fn lock_core(&self) -> MutexGuard<'_, Core> {
        // The core lock is never held across a panic, but a poisoned std
        // mutex would otherwise wedge the whole harness — recover the guard.
        match self.core.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Park the calling OS thread until the scheduler makes it active.
    /// Unwinds with [`Abort`] if the iteration is being abandoned.
    pub(crate) fn wait_until_active(&self, me: usize) {
        let mut core = self.lock_core();
        loop {
            if core.violation.is_some() {
                drop(core);
                panic::panic_any(Abort);
            }
            if core.active == me {
                return;
            }
            core = match self.cv.wait(core) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Pick the next thread at a scheduling point. `current_runnable` is
    /// false when the current thread just blocked or finished (such switches
    /// are free under the preemption bound). Returns `None` on deadlock.
    fn decide(&self, core: &mut Core, current: usize, current_runnable: bool) -> Option<usize> {
        let mut candidates: Vec<usize> = Vec::new();
        if current_runnable {
            // Prefer staying on the current thread; alternatives are only on
            // the table while preemption budget remains.
            candidates.push(current);
            if self.preemption_bound.is_none_or(|bound| core.preemptions < bound) {
                candidates.extend(runnable_except(&core.statuses, current));
            }
        } else {
            candidates.extend(runnable_except(&core.statuses, usize::MAX));
        }
        if candidates.is_empty() {
            return None;
        }
        let chosen = if candidates.len() == 1 {
            // Forced moves are not branches: recording them would bloat the
            // path without adding schedules.
            candidates[0]
        } else if core.cursor < core.path.len() {
            let choice = &core.path[core.cursor];
            debug_assert_eq!(
                choice.options, candidates,
                "schedule replay diverged: the model body is not deterministic"
            );
            core.cursor += 1;
            choice.options[choice.index]
        } else {
            core.path.push(Choice { options: candidates, index: 0 });
            core.cursor += 1;
            core.branches += 1;
            core.path[core.cursor - 1].options[0]
        };
        if current_runnable && chosen != current {
            core.preemptions += 1;
        }
        core.decisions.push(chosen);
        Some(chosen)
    }

    /// A scheduling point: called before every shared-memory operation. May
    /// hand control to another thread and not return until control comes
    /// back.
    pub(crate) fn switch(&self, me: usize) {
        let mut core = self.lock_core();
        if core.violation.is_some() {
            drop(core);
            panic::panic_any(Abort);
        }
        debug_assert_eq!(core.active, me, "only the active thread reaches scheduling points");
        let Some(next) = self.decide(&mut core, me, true) else {
            unreachable!("the current thread is always a candidate while runnable");
        };
        if next != me {
            core.active = next;
            self.cv.notify_all();
            drop(core);
            self.wait_until_active(me);
        }
    }

    /// Mark the calling thread blocked with `status` and hand control away.
    /// Returns once another thread made it runnable and the scheduler picked
    /// it again. Declares a deadlock violation if nothing is runnable.
    pub(crate) fn block(&self, me: usize, status: Status) {
        let mut core = self.lock_core();
        if core.violation.is_some() {
            drop(core);
            panic::panic_any(Abort);
        }
        core.statuses[me] = status;
        match self.decide(&mut core, me, false) {
            Some(next) => {
                core.active = next;
                self.cv.notify_all();
                drop(core);
                self.wait_until_active(me);
            }
            None => {
                core.violation = Some(crate::Violation {
                    message: format!("deadlock: {}", describe(&core.statuses)),
                    schedule: core.decisions.clone(),
                });
                self.cv.notify_all();
                drop(core);
                panic::panic_any(Abort);
            }
        }
    }

    /// Make every thread whose status matches `pred` runnable again. The
    /// woken threads actually run when a later scheduling point picks them.
    pub(crate) fn unblock_where(&self, pred: impl Fn(Status) -> bool) {
        let mut core = self.lock_core();
        for status in &mut core.statuses {
            if pred(*status) {
                *status = Status::Runnable;
            }
        }
    }

    /// Register a newly spawned model thread; returns its thread id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut core = self.lock_core();
        let tid = core.statuses.len();
        core.statuses.push(Status::Runnable);
        core.live_os_threads += 1;
        tid
    }

    pub(crate) fn add_handle(&self, handle: std::thread::JoinHandle<()>) {
        match self.handles.lock() {
            Ok(mut guard) => guard.push(handle),
            Err(poisoned) => poisoned.into_inner().push(handle),
        }
    }

    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        self.lock_core().statuses[tid] == Status::Finished
    }

    /// Called by a thread's wrapper on completion. `panic_msg` carries a user
    /// assertion failure, which becomes the iteration's violation.
    fn finish_thread(&self, me: usize, panic_msg: Option<String>) {
        let mut core = self.lock_core();
        core.statuses[me] = Status::Finished;
        core.live_os_threads -= 1;
        if let Some(message) = panic_msg {
            if core.violation.is_none() {
                core.violation =
                    Some(crate::Violation { message, schedule: core.decisions.clone() });
            }
            self.cv.notify_all();
            return;
        }
        for status in &mut core.statuses {
            if *status == Status::BlockedJoin(me) {
                *status = Status::Runnable;
            }
        }
        if core.statuses.iter().all(|s| *s == Status::Finished) {
            self.cv.notify_all();
            return;
        }
        match self.decide(&mut core, me, false) {
            Some(next) => {
                core.active = next;
                self.cv.notify_all();
            }
            None => {
                // Everything left is blocked and nothing can ever wake it.
                core.violation = Some(crate::Violation {
                    message: format!("deadlock: {}", describe(&core.statuses)),
                    schedule: core.decisions.clone(),
                });
                self.cv.notify_all();
            }
        }
    }

    /// Called by a thread's wrapper after an [`Abort`] unwind.
    fn thread_aborted(&self) {
        let mut core = self.lock_core();
        core.live_os_threads -= 1;
        self.cv.notify_all();
    }

    /// Controller: wait for every model OS thread to exit its wrapper.
    pub(crate) fn wait_all_exited(&self) {
        let mut core = self.lock_core();
        while core.live_os_threads > 0 {
            core = match self.cv.wait(core) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    pub(crate) fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        match self.handles.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        }
    }

    /// Controller: collect the explored path, any violation, and the number
    /// of fresh branches this iteration recorded.
    pub(crate) fn take_results(&self) -> (Vec<Choice>, Option<crate::Violation>, u64) {
        let mut core = self.lock_core();
        (std::mem::take(&mut core.path), core.violation.take(), core.branches)
    }
}

fn runnable_except(statuses: &[Status], skip: usize) -> impl Iterator<Item = usize> + '_ {
    statuses
        .iter()
        .enumerate()
        .filter(move |&(tid, status)| tid != skip && *status == Status::Runnable)
        .map(|(tid, _)| tid)
}

fn describe(statuses: &[Status]) -> String {
    let parts: Vec<String> =
        statuses.iter().enumerate().map(|(tid, s)| format!("t{tid}={s:?}")).collect();
    parts.join(", ")
}

/// DFS backtrack: bump the deepest branch with an untried option, discarding
/// everything recorded below it. Returns false when the tree is exhausted.
pub(crate) fn advance(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.index + 1 < last.options.len() {
            last.index += 1;
            return true;
        }
        path.pop();
    }
    false
}
