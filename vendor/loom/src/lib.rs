#![forbid(unsafe_code)]
//! Offline loom-subset: a deterministic concurrency model checker for the
//! small `std::sync` surface the pool executor is built on.
//!
//! [`model`] runs a closure repeatedly under a controlled scheduler that
//! serializes its threads and enumerates interleavings by DFS over a recorded
//! schedule tree (see [`rt`] internals). Every operation on the types in
//! [`sync`] is a scheduling point; blocking (mutex contention, parking,
//! joins) goes through the scheduler, so lost wakes show up as detected
//! deadlocks rather than hangs, and assertion failures come back with the
//! schedule that produced them.
//!
//! Scope, relative to real loom:
//! - sequentially consistent exploration only — caller `Ordering`s are
//!   collapsed to `SeqCst`, so weak-memory reorderings are *not* modeled;
//! - no condvars: the engine's only blocking primitive besides mutexes is
//!   the token-based `Parker`, modeled directly;
//! - CHESS-style bounded preemption ([`Builder::preemption_bound`]) keeps
//!   bigger fixtures tractable: switches away from a runnable thread spend
//!   budget, switches at blocking points are free.

mod rt;
pub mod sync;
pub mod thread;

use std::fmt;
use std::sync::Arc;

/// A property violation found by the checker: a user assertion failure or a
/// deadlock, plus the schedule (chosen thread id per scheduling point) that
/// produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub message: String,
    pub schedule: Vec<usize>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if !self.schedule.is_empty() {
            const SHOWN: usize = 64;
            let head: Vec<usize> = self.schedule.iter().copied().take(SHOWN).collect();
            let ellipsis = if self.schedule.len() > SHOWN { ", …" } else { "" };
            write!(f, " [schedule: {head:?}{ellipsis}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

/// Exploration statistics for a passing check.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Complete schedules executed.
    pub iterations: u64,
    /// Branch points recorded across all iterations.
    pub branches: u64,
}

/// Configuration for a model run.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Maximum number of preemptive context switches per schedule; `None`
    /// explores the full (unbounded) interleaving space.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules; exceeding it panics (the fixture is
    /// too big — shrink it or bound preemptions).
    pub max_iterations: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Self { preemption_bound: None, max_iterations: 500_000 }
    }
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    #[must_use]
    pub fn max_iterations(mut self, cap: u64) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Exhaustively explore `f`'s interleavings; `Err` carries the first
    /// violation found, `Ok` the exploration statistics.
    ///
    /// # Panics
    /// Panics if the schedule space exceeds `max_iterations`.
    pub fn check<F>(&self, f: F) -> Result<Report, Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        rt::install_abort_hook();
        let f = Arc::new(f);
        let mut path = Vec::new();
        let mut iterations = 0u64;
        let mut branches = 0u64;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "pkg-model: schedule space exceeds max_iterations ({}); \
                 shrink the fixture or set a preemption bound",
                self.max_iterations
            );
            let sched = Arc::new(rt::Scheduler::new(path, self.preemption_bound));
            let root_sched = Arc::clone(&sched);
            let body = Arc::clone(&f);
            let root = std::thread::Builder::new()
                .name("pkg-model-root".into())
                .spawn(move || rt::run_model_thread(&root_sched, 0, || body()))
                .expect("spawn pkg-model root thread");
            sched.wait_all_exited();
            let _ = root.join();
            for handle in sched.take_handles() {
                let _ = handle.join();
            }
            let (explored, violation, iter_branches) = sched.take_results();
            branches += iter_branches;
            if let Some(v) = violation {
                return Err(v);
            }
            path = explored;
            if !rt::advance(&mut path) {
                return Ok(Report { iterations, branches });
            }
        }
    }

    /// Like [`Builder::check`], panicking on a violation — the loom-style
    /// entry point for tests.
    pub fn model<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        if let Err(violation) = self.check(f) {
            panic!("pkg-model violation: {violation}");
        }
    }
}

/// Exhaustively model-check `f` with default settings, panicking on any
/// violation.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().model(f);
}

/// Exhaustively model-check `f` with default settings, returning the first
/// violation instead of panicking.
///
/// # Errors
/// The first [`Violation`] (assertion failure or deadlock) encountered.
pub fn check<F>(f: F) -> Result<Report, Violation>
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU8, AtomicUsize, Ordering::SeqCst};
    use super::sync::{Mutex, Parker};
    use super::{check, model, thread, Builder};
    use std::sync::Arc;

    #[test]
    fn explores_multiple_interleavings() {
        let report = check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || a2.store(1, SeqCst));
            a.store(2, SeqCst);
            t.join();
            let v = a.load(SeqCst);
            assert!(v == 1 || v == 2);
        })
        .expect("no violation");
        assert!(report.iterations >= 2, "both store orders must be explored");
        assert!(report.branches >= 1);
    }

    #[test]
    fn catches_lost_update() {
        let violation = check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    thread::spawn(move || {
                        let v = a.load(SeqCst);
                        a.store(v + 1, SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(a.load(SeqCst), 2, "lost update");
        })
        .expect_err("the load/store race must be found");
        assert!(violation.message.contains("lost update"), "got: {violation}");
        assert!(!violation.schedule.is_empty(), "violation carries its schedule");
    }

    #[test]
    fn mutex_read_modify_write_is_safe() {
        let report = check(|| {
            let m = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        let mut g = m.lock().expect("model mutex");
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*m.lock().expect("model mutex"), 2);
        })
        .expect("mutex-protected increments never lose updates");
        assert!(report.iterations >= 2);
    }

    #[test]
    fn detects_ab_ba_deadlock() {
        let violation = check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || {
                let _ga = a1.lock().expect("model mutex");
                let _gb = b1.lock().expect("model mutex");
            });
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = thread::spawn(move || {
                let _gb = b2.lock().expect("model mutex");
                let _ga = a2.lock().expect("model mutex");
            });
            t1.join();
            t2.join();
        })
        .expect_err("the AB/BA schedule must be found");
        assert!(violation.message.contains("deadlock"), "got: {violation}");
    }

    #[test]
    fn parker_unpark_before_park_completes() {
        check(|| {
            let p = Parker::new();
            p.unparker().unpark();
            p.park();
        })
        .expect("a pre-armed token makes park return immediately");
    }

    #[test]
    fn parker_tokens_do_not_accumulate() {
        let violation = check(|| {
            let p = Parker::new();
            let u = p.unparker();
            u.unpark();
            u.unpark();
            p.park();
            p.park(); // needs a second token; single-token semantics deadlock
        })
        .expect_err("double unpark must not bank two tokens");
        assert!(violation.message.contains("deadlock"), "got: {violation}");
    }

    #[test]
    fn parker_has_no_lost_wake() {
        check(|| {
            let p = Parker::new();
            let u = p.unparker();
            let flag = Arc::new(AtomicU8::new(0));
            let f2 = Arc::clone(&flag);
            let t = thread::spawn(move || {
                f2.store(1, SeqCst);
                u.unpark();
            });
            p.park();
            assert_eq!(flag.load(SeqCst), 1, "park returned before the waker's write");
            t.join();
        })
        .expect("every interleaving of store+unpark vs park completes");
    }

    #[test]
    fn park_timeout_counts_as_plain_park_under_model() {
        let violation = check(|| {
            let p = Parker::new();
            // No unpark anywhere: in real time this would wake after 1ms,
            // but the model treats a load-bearing timeout as a deadlock.
            p.park_timeout(std::time::Duration::from_millis(1));
        })
        .expect_err("timeout-reliant schedules are violations");
        assert!(violation.message.contains("deadlock"), "got: {violation}");
    }

    fn two_thread_fixture() {
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || {
            for _ in 0..3 {
                a2.fetch_add(1, SeqCst);
            }
        });
        for _ in 0..3 {
            a.fetch_add(1, SeqCst);
        }
        t.join();
        assert_eq!(a.load(SeqCst), 6);
    }

    #[test]
    fn preemption_bound_prunes_schedules() {
        let full = check(two_thread_fixture).expect("fixture has no violation");
        let bounded = Builder::new()
            .preemption_bound(1)
            .check(two_thread_fixture)
            .expect("fixture has no violation");
        assert!(
            bounded.iterations < full.iterations,
            "bound 1 ({}) must prune vs unbounded ({})",
            bounded.iterations,
            full.iterations
        );
        assert!(bounded.iterations > 1, "bound 1 still explores blocking switches");
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = check(two_thread_fixture).expect("fixture has no violation");
        let b = check(two_thread_fixture).expect("fixture has no violation");
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.branches, b.branches);
    }

    #[test]
    fn join_returns_the_thread_value() {
        check(|| {
            let t = thread::spawn(|| 41 + 1);
            assert_eq!(t.join(), 42);
        })
        .expect("join passes values through");
    }

    #[test]
    fn passthrough_outside_model_behaves_like_std() {
        let a = AtomicUsize::new(5);
        assert_eq!(a.fetch_add(2, SeqCst), 5);
        assert_eq!(a.load(SeqCst), 7);

        let m = Mutex::new(1);
        *m.lock().expect("passthrough mutex") += 1;
        assert_eq!(*m.lock().expect("passthrough mutex"), 2);
        assert_eq!(m.into_inner().expect("passthrough mutex"), 2);

        let p = Parker::new();
        p.unparker().unpark();
        p.park(); // must not hang: token pre-armed
        assert!(!p.park_timeout(std::time::Duration::from_millis(1)), "token consumed");
    }

    #[test]
    #[should_panic(expected = "max_iterations")]
    fn max_iterations_guard_trips() {
        let _ = Builder::new().max_iterations(2).check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || {
                for _ in 0..4 {
                    a2.fetch_add(1, SeqCst);
                }
            });
            for _ in 0..4 {
                a.fetch_add(1, SeqCst);
            }
            t.join();
        });
    }

    #[test]
    #[should_panic(expected = "pkg-model violation")]
    fn model_panics_on_violation() {
        model(|| {
            let p = Parker::new();
            p.park(); // nobody will ever unpark: deadlock
        });
    }
}
