//! Model-aware drop-in replacements for the `std::sync` subset the engine's
//! pool executor uses: `Mutex`, `atomic::{AtomicU8, AtomicUsize}`, and the
//! crossbeam-style `Parker`/`Unparker` pair.
//!
//! Outside [`crate::model`] these behave exactly like their `std` (or
//! vendored-crossbeam) counterparts — passthrough mode, so code built against
//! them still runs normally in ordinary tests. Inside a model run, every
//! operation is a scheduling point and blocking goes through the controlled
//! scheduler instead of the OS, which is what lets the checker enumerate
//! interleavings and detect deadlocks.

use crate::rt::{self, Status};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

pub use std::sync::{LockResult, PoisonError};

fn flag_lock(flag: &StdMutex<bool>) -> std::sync::MutexGuard<'_, bool> {
    match flag.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A mutex that, under the model, blocks through the controlled scheduler.
///
/// Layout: `locked` is the model-visible ownership flag (its address is the
/// contention identity); `data` holds the protected value and is only ever
/// acquired uncontended (the scheduler serializes threads, and the flag is
/// published strictly after the inner guard is released).
pub struct Mutex<T> {
    locked: StdMutex<bool>,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self { locked: StdMutex::new(false), data: StdMutex::new(value) }
    }

    fn contention_id(&self) -> usize {
        std::ptr::from_ref(&self.locked) as usize
    }

    /// Acquire the lock. Always returns `Ok` under the model (a model thread
    /// that panics aborts the whole iteration, so poisoning cannot be
    /// observed); passthrough mode mirrors `std` poisoning.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::current() {
            None => match self.data.lock() {
                Ok(data) => Ok(MutexGuard { data: Some(data), model: None }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    data: Some(poisoned.into_inner()),
                    model: None,
                })),
            },
            Some((sched, me)) => {
                let id = self.contention_id();
                loop {
                    sched.switch(me);
                    let mut locked = flag_lock(&self.locked);
                    if !*locked {
                        *locked = true;
                        break;
                    }
                    drop(locked);
                    sched.block(me, Status::BlockedMutex(id));
                }
                let data = match self.data.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                Ok(MutexGuard { data: Some(data), model: Some((sched, &self.locked, id)) })
            }
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        match self.data.into_inner() {
            Ok(value) => Ok(value),
            Err(poisoned) => Err(PoisonError::new(poisoned.into_inner())),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("data", &self.data).finish()
    }
}

/// Guard for [`Mutex`]. On drop under the model: release the inner `std`
/// guard first, then clear the ownership flag and make blocked threads
/// runnable — all without a scheduling point, so the release is atomic from
/// the model's perspective (sound: releasing at the owner's *next* scheduling
/// point is indistinguishable, since only thread-local work happens between).
pub struct MutexGuard<'a, T> {
    data: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Arc<rt::Scheduler>, &'a StdMutex<bool>, usize)>,
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((sched, flag, id)) = self.model.take() {
            self.data = None;
            {
                let mut locked = flag_lock(flag);
                *locked = false;
            }
            sched.unblock_where(move |s| s == Status::BlockedMutex(id));
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.data {
            Some(guard) => guard,
            None => unreachable!("guard data is only taken during drop"),
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.data {
            Some(guard) => guard,
            None => unreachable!("guard data is only taken during drop"),
        }
    }
}

pub mod atomic {
    //! Model-aware atomics. Under the model every operation is a scheduling
    //! point, and all operations are performed sequentially consistent
    //! regardless of the caller's `Ordering`: the checker explores the
    //! SC interleaving space only (weak-memory reorderings are out of scope),
    //! which is why the engine keeps `SeqCst` at every site the model is the
    //! correctness argument for.

    use crate::rt;

    pub use std::sync::atomic::Ordering;

    fn switch_point() {
        if let Some((sched, me)) = rt::current() {
            sched.switch(me);
        }
    }

    macro_rules! model_atomic {
        ($name:ident, $std:ident, $int:ty) => {
            /// Model-aware counterpart of the std atomic of the same name.
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                pub const fn new(value: $int) -> Self {
                    Self(std::sync::atomic::$std::new(value))
                }

                pub fn load(&self, _order: Ordering) -> $int {
                    switch_point();
                    // ordering: model mode collapses to SeqCst by design
                    self.0.load(Ordering::SeqCst)
                }

                pub fn store(&self, value: $int, _order: Ordering) {
                    switch_point();
                    // ordering: model mode collapses to SeqCst by design
                    self.0.store(value, Ordering::SeqCst);
                }

                pub fn swap(&self, value: $int, _order: Ordering) -> $int {
                    switch_point();
                    // ordering: model mode collapses to SeqCst by design
                    self.0.swap(value, Ordering::SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$int, $int> {
                    switch_point();
                    // ordering: model mode collapses to SeqCst by design
                    self.0.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                pub fn fetch_add(&self, value: $int, _order: Ordering) -> $int {
                    switch_point();
                    // ordering: model mode collapses to SeqCst by design
                    self.0.fetch_add(value, Ordering::SeqCst)
                }

                pub fn fetch_sub(&self, value: $int, _order: Ordering) -> $int {
                    switch_point();
                    // ordering: model mode collapses to SeqCst by design
                    self.0.fetch_sub(value, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicU8, AtomicU8, u8);
    model_atomic!(AtomicUsize, AtomicUsize, usize);
}

struct ParkerInner {
    token: StdMutex<bool>,
    cv: Condvar,
}

impl ParkerInner {
    fn contention_id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }
}

/// Model-aware counterpart of the vendored crossbeam `Parker`: token-based
/// park/unpark with no lost-wakeup hazard. The parking side; owned by one
/// thread.
pub struct Parker {
    inner: Arc<ParkerInner>,
}

/// The waking side; cloneable and shareable across threads.
#[derive(Clone)]
pub struct Unparker {
    inner: Arc<ParkerInner>,
}

impl Default for Parker {
    fn default() -> Self {
        Self::new()
    }
}

impl Parker {
    /// A parker with no token pending.
    pub fn new() -> Self {
        Self { inner: Arc::new(ParkerInner { token: StdMutex::new(false), cv: Condvar::new() }) }
    }

    /// The waking handle for this parker.
    pub fn unparker(&self) -> Unparker {
        Unparker { inner: Arc::clone(&self.inner) }
    }

    /// Block until unparked; consumes the token (a pending unpark makes this
    /// return immediately).
    pub fn park(&self) {
        match rt::current() {
            None => {
                let mut token = flag_lock(&self.inner.token);
                while !*token {
                    token = match self.inner.cv.wait(token) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                *token = false;
            }
            Some((sched, me)) => {
                let id = self.inner.contention_id();
                loop {
                    sched.switch(me);
                    let mut token = flag_lock(&self.inner.token);
                    if *token {
                        *token = false;
                        return;
                    }
                    drop(token);
                    sched.block(me, Status::BlockedPark(id));
                }
            }
        }
    }

    /// Like [`Parker::park`] with a timeout; returns whether it was unparked
    /// (vs. timed out). Under the model the timeout *never* fires: a park
    /// that no schedule unparks is reported as a deadlock, which is exactly
    /// the discipline the engine wants — timeouts are a liveness backstop,
    /// never load-bearing for correctness.
    pub fn park_timeout(&self, timeout: Duration) -> bool {
        match rt::current() {
            None => {
                let deadline = std::time::Instant::now() + timeout;
                let mut token = flag_lock(&self.inner.token);
                while !*token {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    if left.is_zero() {
                        return false;
                    }
                    token = match self.inner.cv.wait_timeout(token, left) {
                        Ok((guard, _)) => guard,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                }
                *token = false;
                true
            }
            Some(_) => {
                self.park();
                true
            }
        }
    }
}

impl Unparker {
    /// Wake the parked thread (or pre-arm the token if it is not parked yet).
    pub fn unpark(&self) {
        match rt::current() {
            None => {
                let mut token = flag_lock(&self.inner.token);
                *token = true;
                self.inner.cv.notify_one();
            }
            Some((sched, me)) => {
                sched.switch(me);
                {
                    let mut token = flag_lock(&self.inner.token);
                    *token = true;
                }
                let id = self.inner.contention_id();
                sched.unblock_where(move |s| s == Status::BlockedPark(id));
            }
        }
    }
}
