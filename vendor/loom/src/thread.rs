//! Model-aware threads. `spawn` registers a new model thread with the
//! controlled scheduler and is itself a scheduling point (the child may be
//! scheduled before the parent continues). Only usable inside
//! [`crate::model`] — passthrough code should use `std::thread` directly.

use crate::rt::{self, Status};
use std::sync::{Arc, Mutex};

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

/// Spawn a model thread running `f`.
///
/// # Panics
/// Panics if called outside a model run.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some((sched, me)) = rt::current() else {
        panic!("pkg_model::thread::spawn outside model(); use std::thread instead");
    };
    let tid = sched.register_thread();
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let child_sched = Arc::clone(&sched);
    let os_handle = std::thread::Builder::new()
        .name(format!("pkg-model-{tid}"))
        .spawn(move || {
            rt::run_model_thread(&child_sched, tid, move || {
                let value = f();
                let mut guard = match slot.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                *guard = Some(value);
            });
        })
        .expect("spawn model OS thread");
    sched.add_handle(os_handle);
    sched.switch(me);
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value. Unlike
    /// `std::thread::JoinHandle::join` this returns `T` directly: a child
    /// that panics is a model violation and aborts the whole iteration, so
    /// the error arm cannot be observed here.
    pub fn join(self) -> T {
        let Some((sched, me)) = rt::current() else {
            panic!("pkg_model::thread::JoinHandle::join outside model()");
        };
        loop {
            sched.switch(me);
            if sched.is_finished(self.tid) {
                break;
            }
            // Not finished, and no other thread can finish it between the
            // check above and blocking here: we are the only running thread.
            sched.block(me, Status::BlockedJoin(self.tid));
        }
        let value = {
            let mut guard = match self.result.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.take()
        };
        match value {
            Some(v) => v,
            None => unreachable!("finished model threads always store their value"),
        }
    }
}

/// A pure scheduling point: yields to the scheduler under the model, to the
/// OS otherwise.
pub fn yield_now() {
    match rt::current() {
        Some((sched, me)) => sched.switch(me),
        None => std::thread::yield_now(),
    }
}
