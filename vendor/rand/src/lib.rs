//! Offline shim for the subset of the `rand` 0.9 API this workspace uses.
//!
//! Provides [`Rng`], [`SeedableRng`] and [`rngs::SmallRng`] (xoshiro256++,
//! seeded through SplitMix64 — the same construction the real `SmallRng`
//! uses on 64-bit targets). Streams are deterministic per seed but are not
//! bit-compatible with the real crate.

#![forbid(unsafe_code)]

/// Types that can be sampled uniformly from their "standard" distribution:
/// integers over their full range, `f64`/`f32` over `[0, 1)`, `bool` fair.
pub trait StandardSample: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for f64 {
    /// 53 random mantissa bits over `[0, 1)`.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// 24 random mantissa bits over `[0, 1)`.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] accepts. Generic over the output type
/// (rather than using an associated type) so that integer-literal inference
/// flows from the binding into the range, as with the real crate:
/// `let x: u8 = rng.random_range(0..2)` makes `0..2` a `Range<u8>`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                // Operands are at most 64 bits, so hi-lo+1 computed in
                // u128 never wraps to 0 and is at most 2^64.
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `[0, bound)` via 64×64→128 multiply-shift
/// with rejection (Lemire's method). `bound` must be ≤ 2^64 and non-zero.
#[inline]
fn uniform_u128_below<R: Rng + ?Sized>(rng: &mut R, bound: u128) -> u64 {
    debug_assert!(bound > 0 && bound <= 1 << 64);
    if bound == 1 << 64 {
        return rng.next_u64();
    }
    let bound = bound as u64;
    // Rejection zone: the low `threshold` residues are over-represented.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// The user-facing random-value interface.
pub trait Rng {
    /// The raw 64-bit generator output all sampling is built on.
    fn next_u64(&mut self) -> u64;

    /// Sample from the standard distribution of `T`.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the small, fast generator behind the real `SmallRng`
    /// on 64-bit platforms. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64-expand the seed so similar seeds give unrelated
            // streams and the all-zero state is unreachable.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..=9usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(100u64..100_000);
            assert!((100..100_000).contains(&v));
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }
}
