//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The [`proptest!`] macro expands each test into a deterministic loop of
//! `cases` generated inputs (seeded per test case, so failures reproduce).
//! Strategies cover what the workspace needs: integer/float ranges,
//! `any::<T>()`, tuples of strategies, and `prop::collection::vec`. The
//! real crate's shrinking, persistence, and failure-case files are
//! intentionally out of scope — a failing case panics with the assertion
//! message, and because cases are deterministic per (test name, case
//! index), rerunning the test reproduces the failure exactly.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
pub use rand::Rng;
use rand::SeedableRng;

/// A generator of values for one test argument.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Types with a default "any value" strategy (the `arg: Type` form of
/// [`proptest!`] and [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    /// Finite values across a wide dynamic range (not just `[0, 1)`).
    fn arbitrary(rng: &mut SmallRng) -> Self {
        let mantissa: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let exp = rng.random_range(-64i32..64);
        mantissa * (exp as f64).exp2()
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        let len = rng.random_range(0..100usize);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.random_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Per-`proptest!` block configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

/// Derive the RNG for one test case. Deterministic in (test name, case
/// index) so failures reproduce exactly; FNV-1a folds the name in.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Shimmed `proptest!` block: supports an optional
/// `#![proptest_config(expr)]` header and any number of test functions
/// whose arguments are either `name: Type` (an [`Arbitrary`] draw) or
/// `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $crate::proptest!(@bind __rng; $($args)*);
                $body
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@bind $rng:ident; ) => {};
    (@bind $rng:ident; $i:ident in $e:expr) => {
        let $i = $crate::Strategy::generate(&($e), &mut $rng);
    };
    (@bind $rng:ident; $i:ident in $e:expr, $($rest:tt)*) => {
        let $i = $crate::Strategy::generate(&($e), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $i:ident : $t:ty) => {
        let $i = <$t as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    (@bind $rng:ident; $i:ident : $t:ty, $($rest:tt)*) => {
        let $i = <$t as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn mixed_binding_forms(x: u64, v in prop::collection::vec(0u8..10, 1..5), f in 0.0f64..1.0) {
            let _ = x;
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 10));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_any(pairs in prop::collection::vec((0usize..8, 1u64..50), 0..20), data: Vec<u8>) {
            for (w, c) in &pairs {
                prop_assert!(*w < 8 && (1..50).contains(c));
            }
            prop_assert!(data.len() < 100);
        }
    }

    proptest! {
        #[test]
        fn default_config_form(a in 0u64..5, b in 0u64..5) {
            prop_assert!(a + b < 10);
        }
    }

    #[test]
    fn cases_reproduce() {
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        assert_eq!(rand::Rng::next_u64(&mut a), rand::Rng::next_u64(&mut b));
    }
}
