//! Windowed analytics on the two-phase aggregation subsystem: per-key means
//! over tumbling windows on the live engine, plus a sliding-window trend
//! query on the library windows directly.
//!
//! A fleet of "sensors" emits readings; PKG splits each sensor's stream
//! over two workers, every worker folds its share into Welford mean
//! accumulators inside a tick-driven tumbling window, and the aggregator
//! merges the two partials per sensor with Chan's combination — the
//! associativity of `PartialAgg::merge` is exactly what makes the split
//! transparent.
//!
//! ```text
//! cargo run --release --example windowed_analytics
//! ```

use std::time::Duration;

use partial_key_grouping::agg::SlidingWindow;
use partial_key_grouping::prelude::*;

/// Deterministic "reading" of a sensor at step `i`: a per-sensor baseline
/// plus a slow drift, so per-sensor means differ and trends exist.
fn reading(sensor: u64, i: u64) -> i64 {
    let baseline = 100 * (sensor + 1) as i64;
    let drift = (i / 1_000) as i64 * sensor as i64;
    baseline + drift + (i % 7) as i64
}

fn main() {
    let sensors = 12u64;
    let messages = 60_000u64;

    // Engine: source → 4 windowed workers → aggregator → collector.
    let collector = Collector::new();
    let mut topo = Topology::new();
    let src = topo.add_spout("sensors", 1, move |_| {
        let mut i = 0u64;
        spout_from_fn(move || {
            i += 1;
            (i <= messages).then(|| {
                let sensor = i % sensors;
                Tuple::new(format!("sensor-{sensor:02}").into_bytes(), reading(sensor, i))
            })
        })
    });
    let worker = topo
        .add_bolt("worker", 4, |_| Box::new(WindowedWorkerBolt::<Mean>::per_key()))
        .input(src, Grouping::partial_key())
        .tick_every(Duration::from_millis(20))
        .id();
    let agg = topo
        .add_bolt("aggregator", 1, |_| Box::new(AggregatorBolt::<Mean>::new()))
        .input(worker, Grouping::Key)
        .id();
    let c = collector.clone();
    let _sink = topo.add_bolt("collector", 1, move |_| c.bolt()).input(agg, Grouping::Global);
    let stats = Runtime::new().run(topo);

    println!("per-sensor means (merged from ≤ 2 PKG partials each):");
    let mut count = 0u64;
    for (key, mean) in collector.decoded::<Mean>() {
        let name = String::from_utf8(key.to_vec()).expect("sensor names are utf8");
        println!(
            "  {name}  mean {:>8.2}  stddev {:>7.2}  n {:>6}",
            mean.stats().mean(),
            mean.stats().stddev(),
            mean.stats().count()
        );
        count += mean.stats().count();
    }
    assert_eq!(count, messages, "every reading lands in exactly one accumulator");
    println!(
        "workers processed {} tuples; aggregator merged {} partial flushes\n",
        stats.processed("worker"),
        stats.processed("aggregator"),
    );

    // Library-level sliding window: total readings per sensor over the last
    // 3 panes of 5k steps, queried as the stream advances.
    let mut window: SlidingWindow<u64, Sum> = SlidingWindow::new(5_000, 3);
    let mut evicted = 0usize;
    for i in 0..messages {
        evicted += window.insert(i % sensors, i % sensors, reading(i % sensors, i), i).len();
    }
    let hot = (0..sensors)
        .filter_map(|s| window.query(&s).map(|a| (s, a.emit())))
        .max_by_key(|&(_, total)| total)
        .expect("window is populated");
    println!(
        "sliding window: {} resident panes ({} evicted); hottest sensor over the last \
         15k steps: sensor-{:02} with Σ readings = {}",
        window.panes(),
        evicted,
        hot.0,
        hot.1
    );
}
