//! A streaming naive Bayes "spam" classifier with vertical parallelism
//! (§VI-A of the paper).
//!
//! Training events are (feature, value, class) triples partitioned by
//! feature id. Text-like data has Zipf-skewed feature frequencies, so key
//! grouping overloads whichever worker owns the ubiquitous features; PKG
//! balances them while bounding query fan-out to two workers per feature.
//!
//! ```text
//! cargo run --release --example spam_classifier
//! ```

use partial_key_grouping::apps::naive_bayes::{synthetic_example, PartitionedNb};
use partial_key_grouping::prelude::*;
use pkg_metrics::imbalance;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let (workers, features, informative) = (8, 30, 5);
    let train_n = 30_000;
    let test_n = 2_000;

    for scheme in [
        ("KG ", SchemeSpec::KeyGrouping),
        ("PKG", SchemeSpec::pkg(EstimateKind::Local)),
        ("SG ", SchemeSpec::ShuffleGrouping),
    ] {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut nb = PartitionedNb::new(workers, &scheme.1, features, 42);
        for _ in 0..train_n {
            let (x, y) = synthetic_example(&mut rng, features, informative);
            nb.train(&x, y);
        }
        let mut correct = 0;
        for _ in 0..test_n {
            let (x, y) = synthetic_example(&mut rng, features, informative);
            if nb.predict(&x) == Some(y) {
                correct += 1;
            }
        }
        let loads = nb.worker_loads();
        println!(
            "{}  accuracy {:.1}%  worker imbalance {:>9.1}  counters {:>6}  probes/feature {}",
            scheme.0,
            100.0 * correct as f64 / test_n as f64,
            imbalance(&loads),
            nb.total_counters(),
            nb.probes_per_feature(0),
        );
    }
    println!(
        "\nSame accuracy everywhere (the counts are exact under any partitioning);\n\
         KG: 1 probe but imbalanced; SG: balanced but {workers} probes and {workers}x counters;\n\
         PKG: balanced, ≤2x counters, 2 probes."
    );
}
