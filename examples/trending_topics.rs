//! Trending topics: streaming top-k word count on the live engine — the
//! paper's running example (§II), "for example to identify trending topics
//! in a stream of tweets".
//!
//! Runs the same topology the paper deployed on Storm (1 source → 9
//! counters → 1 aggregator) under KG and PKG, and prints throughput,
//! per-counter loads, and end-to-end latency.
//!
//! ```text
//! cargo run --release --example trending_topics
//! ```

use std::time::Duration;

use partial_key_grouping::apps::wordcount::{
    exact_counts, top_k_of, wordcount_topology, WordCountConfig, WordCountVariant,
};
use partial_key_grouping::engine::Runtime;

fn main() {
    let base = WordCountConfig {
        sources: 1,
        counters: 9,
        messages_per_source: 60_000,
        vocabulary: 20_000,
        p1: 0.0932,
        service_delay: Duration::from_micros(100),
        aggregation_period: Some(Duration::from_millis(250)),
        top_k: 10,
        seed: 42,
        source_rate: None,
        variant: WordCountVariant::PartialKeyGrouping,
    };

    println!("top-10 words (ground truth):");
    for (w, c) in top_k_of(&exact_counts(&base), 10) {
        println!("  {w:<10} {c}");
    }
    println!();

    for variant in [WordCountVariant::KeyGrouping, WordCountVariant::PartialKeyGrouping] {
        let cfg = WordCountConfig { variant, ..base.clone() };
        let (topo, _, _, _) = wordcount_topology(&cfg);
        let stats = Runtime::new().run(topo);
        let lat = stats.latency("counter");
        println!(
            "{:<4}  throughput {:>7.0} keys/s   mean latency {:>7.2} ms   p99 {:>7.2} ms",
            variant.label(),
            stats.throughput("counter"),
            lat.mean() / 1e6,
            lat.quantile(0.99) as f64 / 1e6,
        );
        println!("      counter loads: {:?}", stats.loads("counter"));
        // The pkg-agg second phase: partial flushes every aggregation
        // period become merge messages into the aggregator.
        println!(
            "      aggregation: {} merge messages, avg {:.0} live counters/instance, \
             aggregator state {}",
            stats.processed("aggregator"),
            stats.avg_state("counter"),
            stats.final_state("aggregator"),
        );
    }
    println!(
        "\nKG pins the head words to single counters (note the hot instance);\n\
         PKG splits each word over two counters and the loads even out, at the\n\
         cost of up to 2x the merge messages in the aggregation phase."
    );
}
