//! Heavy hitters over a drifting cashtag stream with SPACESAVING + PKG
//! (§VI-C of the paper).
//!
//! Each message is routed by PKG to one of two candidate workers per key;
//! every worker maintains a SPACESAVING summary of its sub-stream. At query
//! time, a key's frequency is answered by merging the summaries of its
//! *two* candidates — so the error bound is two terms, independent of the
//! number of workers (with shuffle grouping it would be `W` terms).
//!
//! ```text
//! cargo run --release --example heavy_hitters
//! ```

use partial_key_grouping::apps::SpaceSaving;
use partial_key_grouping::prelude::*;
use pkg_datagen::DatasetProfile;

fn main() {
    let workers = 8;
    let spec = DatasetProfile::cashtags().build(42); // 690k msgs, drift included
    let mut pkg = PartialKeyGrouping::new(workers, 2, Estimate::local(workers), 42);
    let mut summaries: Vec<SpaceSaving> = (0..workers).map(|_| SpaceSaving::new(256)).collect();
    let mut exact: std::collections::HashMap<u64, u64> = Default::default();

    for msg in spec.iter(7) {
        let w = pkg.route(msg.key, msg.ts_ms);
        summaries[w].offer(msg.key, 1);
        *exact.entry(msg.key).or_default() += 1;
    }

    // Global top-10: merge all workers once (an aggregator would do this
    // periodically); per-key queries need only two summaries.
    let global = summaries.iter().skip(1).fold(summaries[0].clone(), |acc, s| acc.merge(s));
    println!("{:<10}{:>12}{:>12}{:>12}{:>10}", "key", "estimate", "error", "exact", "probes");
    for c in global.top_k(10) {
        // Point query through the PKG candidates only:
        let cands: std::collections::BTreeSet<usize> =
            pkg.candidates(c.key).into_iter().collect();
        let merged = cands
            .iter()
            .map(|&w| &summaries[w])
            .fold(SpaceSaving::new(256), |acc, s| acc.merge(s));
        let (est, err) = merged.estimate(c.key);
        let truth = exact.get(&c.key).copied().unwrap_or(0);
        println!("${:<9}{est:>12}{err:>12}{truth:>12}{:>10}", c.key, cands.len());
        assert!(est >= truth && est - err <= truth, "bounds must bracket the truth");
    }
    println!(
        "\nevery estimate brackets the exact count with a 2-summary error bound;\n\
         worker summary sizes: {:?}",
        summaries.iter().map(|s| s.len()).collect::<Vec<_>>()
    );
}
