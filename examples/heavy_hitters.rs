//! Heavy hitters over a drifting cashtag stream with SPACESAVING + PKG
//! (§VI-C of the paper), run as a real two-phase topology on the engine.
//!
//! Phase one: PKG routes each message to one of its two candidate workers;
//! every worker folds its sub-stream into a SPACESAVING summary (a
//! `pkg_agg::TopK` accumulator). Phase two: the aggregator merges the
//! workers' encoded partials with the mergeable-summary combination — so a
//! key's error bound is the sum of **two** per-summary terms, independent
//! of the parallelism level (with shuffle grouping it would be `W` terms).
//!
//! The same computation as a bare single-phase loop (what this example
//! hand-rolled before `pkg-agg` existed) produces a byte-identical summary,
//! which the example verifies.
//!
//! ```text
//! cargo run --release --example heavy_hitters
//! ```

use partial_key_grouping::agg::PartialAgg;
use partial_key_grouping::apps::heavy_hitters::{
    final_summary, heavy_hitters_topology, item_id, single_phase_summary, HeavyHittersConfig,
};
use partial_key_grouping::engine::{edge_seed, Runtime, RuntimeOptions};
use partial_key_grouping::prelude::*;

fn main() {
    let cfg = HeavyHittersConfig {
        workers: 8,
        profile: DatasetProfile::cashtags().with_messages(200_000),
        ..HeavyHittersConfig::default()
    };

    // Run the two-phase topology: source → 8 workers → aggregator.
    let (topo, collector) = heavy_hitters_topology(&cfg);
    let stats = Runtime::with_options(RuntimeOptions {
        channel_capacity: 1024,
        seed: cfg.engine_seed,
        ..RuntimeOptions::default()
    })
    .run(topo);
    let merged = final_summary(&collector).expect("merged summary collected");

    // The pre-pkg-agg single-phase loop computes the identical summary.
    let oracle = single_phase_summary(&cfg);
    assert_eq!(merged.encoded(), oracle.encoded(), "two-phase ≡ single-phase, byte for byte");

    // Ground truth + candidate sets for the report.
    let spec = cfg.profile.build(cfg.stream_seed);
    let mut exact: std::collections::HashMap<u64, (u64, u64)> = Default::default();
    for msg in spec.iter(cfg.stream_seed) {
        let e = exact.entry(item_id(msg.key)).or_insert((msg.key, 0));
        e.1 += 1;
    }
    let pkg = PartialKeyGrouping::new(
        cfg.workers,
        2,
        Estimate::local(cfg.workers),
        edge_seed(cfg.engine_seed, 0, 1),
    );

    println!("{:<12}{:>12}{:>12}{:>12}{:>10}", "cashtag", "estimate", "error", "exact", "probes");
    for c in merged.summary().top_k(10) {
        let (key, truth) = exact.get(&c.key).copied().unwrap_or((0, 0));
        let probes: std::collections::BTreeSet<usize> = pkg.candidates(c.key).into_iter().collect();
        println!("${:<11}{:>12}{:>12}{:>12}{:>10}", key, c.count, c.error, truth, probes.len());
        assert!(c.count >= truth && c.count - c.error <= truth, "bounds must bracket the truth");
    }
    println!(
        "\ntwo-phase merged summary over {} messages; every estimate brackets the exact\n\
         count with an error of at most two per-worker terms (PKG splits each key over\n\
         ≤ 2 of the {} workers). worker loads: {:?}",
        merged.emit(),
        cfg.workers,
        stats.loads("worker"),
    );
}
