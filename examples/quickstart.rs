//! Quickstart: route a skewed stream with key grouping, shuffle grouping
//! and PARTIAL KEY GROUPING, and compare imbalance and memory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use partial_key_grouping::prelude::*;
use pkg_core::ReplicationTracker;
use pkg_datagen::DatasetProfile;
use pkg_metrics::imbalance;

fn main() {
    let workers = 10;
    let messages = 1_000_000;
    // A Wikipedia-like stream: Zipf keys, the hottest carrying 9.32% of
    // traffic (Table I of the paper).
    let spec = DatasetProfile::wikipedia().with_messages(messages).with_keys(100_000).build(42);

    let mut schemes: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("KeyGrouping   (KG)", Box::new(KeyGrouping::new(workers, 42))),
        ("ShuffleGrouping(SG)", Box::new(ShuffleGrouping::new(workers))),
        (
            "PartialKeyGrp (PKG)",
            Box::new(PartialKeyGrouping::new(workers, 2, Estimate::local(workers), 42)),
        ),
    ];

    println!("routing {messages} messages (p1 = 9.32%) to {workers} workers\n");
    println!(
        "{:<22}{:>14}{:>12}{:>16}{:>14}",
        "scheme", "imbalance", "I/m", "counters", "max repl."
    );
    for (name, p) in schemes.iter_mut() {
        let mut loads = vec![0u64; workers];
        let mut tracker = ReplicationTracker::new();
        for msg in spec.iter(7) {
            let w = p.route(msg.key, msg.ts_ms);
            loads[w] += 1;
            tracker.record(msg.key, w);
        }
        let imb = imbalance(&loads);
        println!(
            "{:<22}{:>14.1}{:>12.2e}{:>16}{:>14}",
            name,
            imb,
            imb / messages as f64,
            tracker.total_pairs(),
            tracker.max_replication(),
        );
    }
    println!(
        "\nPKG matches SG's balance while touching at most 2 workers per key\n\
         (KG: 1 worker but massive imbalance; SG: perfect balance but every\n\
         key's state smeared over all {workers} workers)."
    );
}
