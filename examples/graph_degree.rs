//! Streaming in-degree computation over a social-graph edge stream — the
//! Q3 robustness scenario (Fig. 4 of the paper).
//!
//! Edges of a LiveJournal-like graph arrive as messages; source PEIs are
//! fed by key grouping on the *source* vertex (so sources themselves see
//! the skewed out-degree distribution), then each source routes to workers
//! by PKG on the *destination* vertex. The paper's finding: PKG's local
//! estimation keeps worker loads balanced even with severely skewed
//! sources — so PKG can be chained after a key-grouped edge.
//!
//! ```text
//! cargo run --release --example graph_degree
//! ```

use partial_key_grouping::prelude::*;
use pkg_datagen::DatasetProfile;
use pkg_metrics::imbalance;
use pkg_sim::source::SourceAssignment;

fn main() {
    let spec = DatasetProfile::livejournal().with_messages(2_000_000).build(42);
    let workers = 10;
    let sources = 5;

    for (label, assignment) in [
        ("uniform sources (shuffle)", SourceAssignment::RoundRobin),
        ("skewed sources (KG on src vertex)", SourceAssignment::KeyHash),
    ] {
        let cfg = SimConfig::new(workers, sources, SchemeSpec::pkg(EstimateKind::Local))
            .with_seed(42)
            .with_assignment(assignment);
        let report = run_simulation(&spec, &cfg);
        println!(
            "{label:<36} imbalance fraction = {:.3e}   worker loads = {:?}",
            report.final_fraction, report.worker_loads
        );
    }

    // Contrast: the same skewed-source setup under plain hashing.
    let cfg = SimConfig::new(workers, sources, SchemeSpec::KeyGrouping)
        .with_seed(42)
        .with_assignment(SourceAssignment::KeyHash);
    let report = run_simulation(&spec, &cfg);
    println!(
        "{:<36} imbalance fraction = {:.3e}   (hash partitioning, for contrast)",
        "key grouping", report.final_fraction
    );

    // In-degree sanity: the workers collectively hold every edge once.
    let total: u64 = report.worker_loads.iter().sum();
    assert_eq!(total, spec.messages());
    let _ = imbalance(&report.worker_loads);
}
