//! Streaming parallel decision tree (Ben-Haim & Tom-Tov) partitioned with
//! PKG (§VI-B of the paper).
//!
//! Feature events are keyed by feature id; each worker builds approximate
//! histograms per (leaf, feature, class) on its share of the stream; the
//! aggregator merges candidate workers' histograms and grows the tree. PKG
//! keeps the global histogram count at ≤ 2·D·C·L (vs W·D·C·L under
//! shuffle) and the merge fan-in at two.
//!
//! ```text
//! cargo run --release --example streaming_tree
//! ```

use partial_key_grouping::apps::decision_tree::{Spdt, SpdtConfig};
use partial_key_grouping::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A noisy two-feature concept: class = (x0 > 0.4) ∧ (x1 > 0.25).
fn sample(rng: &mut SmallRng, d: usize) -> (Vec<f64>, usize) {
    let x: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
    let mut y = usize::from(x[0] > 0.4 && x[1] > 0.25);
    if rng.random::<f64>() < 0.03 {
        y = 1 - y;
    }
    (x, y)
}

fn main() {
    let d = 6;
    let cfg =
        SpdtConfig { features: d, classes: 2, min_samples_split: 300.0, ..SpdtConfig::default() };

    for (label, scheme, w) in [
        ("PKG", SchemeSpec::pkg(EstimateKind::Local), 10usize),
        ("SG ", SchemeSpec::ShuffleGrouping, 10),
    ] {
        let mut spdt = Spdt::new(cfg.clone(), &scheme, w, 1_000, 42);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..30_000 {
            let (x, y) = sample(&mut rng, d);
            spdt.ingest(&x, y);
        }
        spdt.grow();
        let mut correct = 0;
        let test_n = 3_000;
        for _ in 0..test_n {
            let (x, y) = sample(&mut rng, d);
            if spdt.predict(&x) == y {
                correct += 1;
            }
        }
        println!(
            "{label}  accuracy {:.1}%  leaves {:>2}  depth {}  histograms across workers {:>4}  worker loads {:?}",
            100.0 * correct as f64 / test_n as f64,
            spdt.tree().leaves(),
            spdt.tree().depth(),
            spdt.total_histograms(),
            spdt.worker_loads(),
        );
    }
    println!("\nPKG needs a fraction of SG's histograms at equal accuracy (≤ 2·D·C·L vs W·D·C·L).");
}
