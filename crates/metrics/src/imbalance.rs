//! Free functions over raw load slices.
//!
//! These mirror [`crate::load::LoadVector`] for callers that already hold a
//! load slice (e.g. snapshots taken by the simulator).

/// `I = max(loads) − avg(loads)`; 0 for an empty slice.
pub fn imbalance(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let max = *loads.iter().max().expect("non-empty") as f64;
    let avg = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    max - avg
}

/// Imbalance normalized by the number of messages `m`; this is the
/// "fraction of imbalance" on the y-axis of Figures 2–4.
pub fn imbalance_fraction(loads: &[u64], m: u64) -> f64 {
    if m == 0 {
        0.0
    } else {
        imbalance(loads) / m as f64
    }
}

/// The theoretical upper bound of the imbalance for `m` messages over `n`
/// workers: all messages on one worker, `I = m(1 − 1/n)`. Useful for
/// property tests and for normalizing plots.
pub fn worst_case_imbalance(m: u64, n: usize) -> f64 {
    m as f64 * (1.0 - 1.0 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hand_computation() {
        let loads = [10u64, 0, 2];
        // avg = 4, max = 10 -> I = 6
        assert!((imbalance(&loads) - 6.0).abs() < 1e-12);
        assert!((imbalance_fraction(&loads, 12) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_are_safe() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance_fraction(&[0, 0], 0), 0.0);
    }

    #[test]
    fn worst_case_is_attained_by_single_worker_pileup() {
        let m = 100u64;
        let loads = [m, 0, 0, 0];
        assert!((imbalance(&loads) - worst_case_imbalance(m, 4)).abs() < 1e-9);
    }
}
