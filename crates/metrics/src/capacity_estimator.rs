//! Online capacity re-estimation from observed per-worker service rates.
//!
//! PR 5's [`crate::capacity::Capacities`] are *static configured* weights —
//! the operator's belief about relative worker speed. The
//! heterogeneous-cluster follow-up ("Load Balancing for Skewed Streams on
//! Heterogeneous Clusters") observes that weighted routing only helps if
//! the weights track reality: a worker that hits a 4× slowdown mid-run
//! keeps absorbing tuples at its configured weight forever. The
//! [`CapacityEstimator`] closes that loop: it accumulates per-worker
//! service-time observations on a sliding window and, at each window
//! rotation, re-derives relative capacity weights from the observed service
//! *rates* (`completions / Σ service_ns`). Load signals are then divided by
//! the weight, so a worker measured at quarter speed looks 4× as loaded to
//! every argmin within one window of the slowdown.
//!
//! Determinism contract: on *uniform* observations (all workers within the
//! relative dead-band of each other, or no observations at all) the
//! estimator reports uniform weights and [`CapacityEstimator::scale`]
//! returns its input untouched — so homogeneous runs stay byte-identical to
//! an estimator-free configuration.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default sliding-window length, in total observations across all workers.
pub const DEFAULT_ESTIMATOR_WINDOW: u64 = 2048;

/// Relative dead-band: when `max_rate / min_rate ≤ 1 + DEAD_BAND` across
/// observed workers, the window is declared uniform and weights reset to 1.
const DEAD_BAND: f64 = 0.10;

/// Sliding-window estimator of relative per-worker capacities.
#[derive(Debug)]
pub struct CapacityEstimator {
    /// Per-worker Σ observed service nanoseconds in the current window.
    sum_ns: Vec<AtomicU64>,
    /// Per-worker observation count in the current window.
    count: Vec<AtomicU64>,
    /// Total observations in the current window (rotation trigger).
    seen: AtomicU64,
    /// Window length in total observations.
    window: u64,
    /// Per-worker weight (f64 bits), mean-normalized to 1. Written only
    /// under `rotate_lock`.
    weights: Vec<AtomicU64>,
    /// 1 when the last rotation found the cluster uniform (scale becomes
    /// the identity — the byte-identity contract for homogeneous runs).
    uniform: AtomicU64,
    /// Completed window rotations.
    rotations: AtomicU64,
    /// Serializes rotation; also guards `history`.
    rotate_lock: Mutex<Option<Vec<Vec<f64>>>>,
}

impl CapacityEstimator {
    /// An estimator over `n` workers rotating every `window` observations.
    pub fn new(n: usize, window: u64) -> Self {
        Self {
            sum_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: (0..n).map(|_| AtomicU64::new(0)).collect(),
            seen: AtomicU64::new(0),
            window: window.max(1),
            weights: (0..n).map(|_| AtomicU64::new(1.0f64.to_bits())).collect(),
            uniform: AtomicU64::new(1),
            rotations: AtomicU64::new(0),
            rotate_lock: Mutex::new(None),
        }
    }

    /// Like [`CapacityEstimator::new`], additionally retaining the weight
    /// vector of every completed window (for reports).
    pub fn with_history(n: usize, window: u64) -> Self {
        let e = Self::new(n, window);
        // The lock is freshly constructed; a panic here is impossible.
        if let Ok(mut h) = e.rotate_lock.lock() {
            *h = Some(Vec::new());
        }
        e
    }

    /// Number of workers tracked.
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// Record one completed tuple on worker `w` with observed service time
    /// `service_ns`. Rotates the window when due.
    pub fn observe(&self, w: usize, service_ns: u64) {
        if w >= self.sum_ns.len() {
            return;
        }
        // ordering: Relaxed — per-window accumulators; a racy window cutoff
        // only shifts which window a sample lands in, never loses it.
        self.sum_ns[w].fetch_add(service_ns.max(1), Ordering::Relaxed);
        self.count[w].fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — the trigger counter is a heuristic clock; the
        // lock below serializes the actual rotation.
        let seen = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if seen.is_multiple_of(self.window) {
            self.rotate();
        }
    }

    /// Scale a raw load `signal` by the worker's estimated weight: a
    /// half-speed worker's signal doubles. Identity while the cluster
    /// measures uniform (or before the first rotation).
    pub fn scale(&self, w: usize, signal: u64) -> u64 {
        // ordering: Relaxed — stale uniform/weight reads only delay
        // adaptation by one read; the routing argmin needs no ordering.
        if self.uniform.load(Ordering::Relaxed) == 1 {
            return signal;
        }
        let Some(bits) = self.weights.get(w) else {
            return signal;
        };
        // ordering: Relaxed — see above.
        let weight = f64::from_bits(bits.load(Ordering::Relaxed));
        if !(weight.is_finite() && weight > 0.0) {
            return signal;
        }
        (signal as f64 / weight).round() as u64
    }

    /// Current weight vector (mean-normalized to 1).
    pub fn weights(&self) -> Vec<f64> {
        // ordering: Relaxed — snapshot for reporting only.
        self.weights.iter().map(|b| f64::from_bits(b.load(Ordering::Relaxed))).collect()
    }

    /// Completed window rotations so far.
    pub fn rotations(&self) -> u64 {
        // ordering: Relaxed — reporting counter.
        self.rotations.load(Ordering::Relaxed)
    }

    /// Weight vectors of every completed window, oldest first (only with
    /// [`CapacityEstimator::with_history`]).
    pub fn history(&self) -> Vec<Vec<f64>> {
        match self.rotate_lock.lock() {
            Ok(h) => h.clone().unwrap_or_default(),
            Err(_) => Vec::new(),
        }
    }

    /// Close the current window: derive per-worker service rates, update
    /// weights, and zero the accumulators.
    fn rotate(&self) {
        let Ok(mut history) = self.rotate_lock.lock() else {
            return;
        };
        let n = self.n();
        let mut rates = vec![0.0f64; n];
        for (w, rate) in rates.iter_mut().enumerate() {
            // ordering: Relaxed — the rotate lock orders rotations; a
            // straggler sample simply lands in the next window.
            let sum = self.sum_ns[w].swap(0, Ordering::Relaxed);
            let count = self.count[w].swap(0, Ordering::Relaxed);
            if sum > 0 && count > 0 {
                *rate = count as f64 / sum as f64;
            }
        }
        // Unobserved workers keep their previous weight (sticky): no
        // sample in this window is no evidence of change. Observed rates
        // are pre-normalized by their own mean so sticky weights and fresh
        // rates mix in the same (dimensionless) units.
        let observed = rates.iter().filter(|&&r| r > 0.0).count();
        let obs_mean = rates.iter().sum::<f64>() / (observed.max(1) as f64);
        let mut next: Vec<f64> = (0..n)
            .map(|w| {
                if rates[w] > 0.0 {
                    rates[w] / obs_mean
                } else {
                    // ordering: Relaxed — reading our own last store.
                    f64::from_bits(self.weights[w].load(Ordering::Relaxed))
                }
            })
            .collect();
        // Dead-band on the *mixed* vector (fresh rates and sticky weights
        // together): a spread within tolerance means the cluster measures
        // uniform, so weights snap to exactly 1 and `scale` stays the
        // identity — the homogeneous byte-identity contract.
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for &v in &next {
            if v > 0.0 {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if hi <= 0.0 || hi / lo <= 1.0 + DEAD_BAND {
            for b in &self.weights {
                // ordering: Relaxed — weights are advisory scaling factors;
                // see `scale`.
                b.store(1.0f64.to_bits(), Ordering::Relaxed);
            }
            // ordering: Relaxed — see `scale`.
            self.uniform.store(1, Ordering::Relaxed);
        } else {
            let mean = next.iter().sum::<f64>() / n as f64;
            if mean > 0.0 {
                for v in &mut next {
                    *v /= mean;
                }
            }
            for (b, v) in self.weights.iter().zip(&next) {
                // ordering: Relaxed — see `scale`.
                b.store(v.to_bits(), Ordering::Relaxed);
            }
            // ordering: Relaxed — see `scale`.
            self.uniform.store(0, Ordering::Relaxed);
        }
        // ordering: Relaxed — reporting counter.
        self.rotations.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = history.as_mut() {
            h.push(self.weights());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_before_any_rotation() {
        let e = CapacityEstimator::new(4, 100);
        assert_eq!(e.scale(0, 42), 42);
        assert_eq!(e.rotations(), 0);
        assert_eq!(e.weights(), vec![1.0; 4]);
    }

    #[test]
    fn uniform_observations_keep_scale_as_identity() {
        let e = CapacityEstimator::new(4, 40);
        for i in 0..80u64 {
            e.observe((i % 4) as usize, 10_000);
        }
        assert_eq!(e.rotations(), 2);
        for w in 0..4 {
            assert_eq!(e.scale(w, 1234), 1234, "uniform cluster must not perturb signals");
        }
    }

    #[test]
    fn slow_worker_signal_is_inflated_within_one_window() {
        let e = CapacityEstimator::new(4, 40);
        for i in 0..40u64 {
            let w = (i % 4) as usize;
            // Worker 0 is 4× slower than the rest.
            e.observe(w, if w == 0 { 40_000 } else { 10_000 });
        }
        assert_eq!(e.rotations(), 1);
        let weights = e.weights();
        assert!(weights[0] < weights[1], "slow worker gets the low weight: {weights:?}");
        assert!(
            e.scale(0, 1000) > e.scale(1, 1000),
            "equal raw signals must diverge after the slowdown is observed"
        );
        // Rates 0.25 : 1 : 1 : 1 normalized by mean 0.8125 → worker 0 at
        // ~0.307, others ~1.23: scaled signal ratio ≈ 4.
        let ratio = e.scale(0, 100_000) as f64 / e.scale(1, 100_000) as f64;
        assert!((3.5..4.5).contains(&ratio), "ratio tracks the true 4× slowdown: {ratio}");
    }

    #[test]
    fn unobserved_worker_keeps_its_previous_weight() {
        let e = CapacityEstimator::new(2, 20);
        for i in 0..20u64 {
            let w = (i % 2) as usize;
            e.observe(w, if w == 0 { 40_000 } else { 10_000 });
        }
        let before = e.weights()[0];
        assert!(before < 1.0);
        // Second window: only worker 1 reports. Worker 0's weight sticks.
        for _ in 0..20u64 {
            e.observe(1, 10_000);
        }
        assert_eq!(e.rotations(), 2);
        let after = e.weights();
        assert!(after[0] < after[1], "sticky weight for the silent worker: {after:?}");
    }

    #[test]
    fn recovery_returns_to_uniform_identity() {
        let e = CapacityEstimator::new(2, 20);
        for i in 0..20u64 {
            let w = (i % 2) as usize;
            e.observe(w, if w == 0 { 40_000 } else { 10_000 });
        }
        assert_ne!(e.scale(0, 1000), e.scale(1, 1000));
        for i in 0..20u64 {
            e.observe((i % 2) as usize, 10_000);
        }
        assert_eq!(e.scale(0, 1000), 1000, "recovered cluster is identity again");
        assert_eq!(e.scale(1, 1000), 1000);
    }

    #[test]
    fn history_records_each_window() {
        let e = CapacityEstimator::with_history(2, 10);
        for i in 0..30u64 {
            e.observe((i % 2) as usize, 10_000);
        }
        assert_eq!(e.history().len(), 3);
        assert!(CapacityEstimator::new(2, 10).history().is_empty());
    }

    #[test]
    fn out_of_range_worker_is_ignored() {
        let e = CapacityEstimator::new(2, 10);
        e.observe(7, 10_000);
        assert_eq!(e.scale(7, 55), 55);
    }
}
