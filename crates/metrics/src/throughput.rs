//! Throughput measurement for the engine experiments (Fig. 5).

use std::time::{Duration, Instant};

/// Counts events against wall-clock time.
///
/// The engine's sink executor owns one meter; `keys/s` in Fig. 5 is
/// `count / elapsed` over the steady-state window (the meter can be
/// `restart`ed after warm-up to exclude topology spin-up).
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    started: Instant,
    count: u64,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    /// Start measuring now.
    pub fn new() -> Self {
        Self { started: Instant::now(), count: 0 }
    }

    /// Record `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Events recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Time since start (or last restart).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Events per second since start; 0 if no time has passed.
    pub fn per_second(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.count as f64 / secs
        }
    }

    /// Zero the counter and restart the clock (end of warm-up).
    pub fn restart(&mut self) {
        self.started = Instant::now();
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut m = ThroughputMeter::new();
        m.add(10);
        m.add(5);
        assert_eq!(m.count(), 15);
    }

    #[test]
    fn rate_is_positive_after_work() {
        let mut m = ThroughputMeter::new();
        m.add(1000);
        std::thread::sleep(Duration::from_millis(10));
        let r = m.per_second();
        assert!(r > 0.0 && r < 1000.0 / 0.01 * 1.5, "rate = {r}");
    }

    #[test]
    fn restart_zeroes() {
        let mut m = ThroughputMeter::new();
        m.add(42);
        m.restart();
        assert_eq!(m.count(), 0);
    }
}
