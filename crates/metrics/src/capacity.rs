//! Per-worker capacity weights for heterogeneous clusters.
//!
//! The paper's cloud-deployment caveat (and the follow-up "Load Balancing
//! for Skewed Streams on Heterogeneous Clusters", Nasir et al., 2017) is
//! that PKG assumes identical workers. On mixed hardware the greedy choice
//! must compare *capacity-normalized* loads `L_i / c_i` — picking the raw
//! argmin funnels work onto the slowest machine — and the imbalance must be
//! measured relative to what each worker can absorb.
//!
//! [`Capacities`] is the shared representation of those weights. Two design
//! rules keep the homogeneous case exactly the homogeneous case:
//!
//! * **Uniform collapse**: [`Capacities::heterogeneous`] returns `None`
//!   when every weight is equal, so callers keep the capacity-free integer
//!   code path and routing stays byte-identical to the unweighted schemes
//!   (the degeneration `tests/property_tests.rs` pins).
//! * **Cross-multiplied comparisons**: [`Capacities::less`] compares
//!   `L_a / c_a < L_b / c_b` as `L_a · c_b < L_b · c_a` — no division, and
//!   exact whenever the products are f64-representable.
//!
//! Weights are normalized to mean 1 at construction, so
//! `max_i(L_i / c_i) − m/n` (the weighted imbalance) reduces to the paper's
//! `max_i L_i − m/n` when the cluster is homogeneous, whatever common
//! capacity value the caller passed in.

use std::sync::Arc;

/// Relative per-worker capacity weights, normalized to mean 1.
///
/// Cheap to clone (`Arc`-backed) so sources, simulators and report metrics
/// can share one allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Capacities {
    weights: Arc<[f64]>,
}

impl Capacities {
    /// Capacity weights for a heterogeneous cluster, normalized to mean 1.
    ///
    /// Returns `None` when all weights are equal: uniform capacities carry
    /// no information and callers must keep the exact capacity-free code
    /// path (byte-identical routing, identical metrics).
    ///
    /// # Panics
    /// Panics if `weights` is empty or any weight is non-finite or ≤ 0.
    pub fn heterogeneous(weights: &[f64]) -> Option<Self> {
        assert!(!weights.is_empty(), "need at least one worker capacity");
        for &w in weights {
            assert!(w.is_finite() && w > 0.0, "capacities must be finite and positive, got {w}");
        }
        if weights.iter().all(|&w| w == weights[0]) {
            return None;
        }
        let mean = weights.iter().sum::<f64>() / weights.len() as f64;
        Some(Self { weights: weights.iter().map(|&w| w / mean).collect() })
    }

    /// Number of workers covered.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when no workers are covered (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Normalized weight of worker `w` (mean over workers is 1).
    #[inline]
    pub fn weight(&self, w: usize) -> f64 {
        self.weights[w]
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `true` iff load `la` on worker `a` is *strictly* smaller than `lb`
    /// on worker `b` after capacity normalization. Cross-multiplied, so
    /// ties (and the uniform special case) behave exactly like the integer
    /// comparison `la < lb`.
    #[inline]
    pub fn less(&self, la: u64, a: usize, lb: u64, b: usize) -> bool {
        (la as f64) * self.weights[b] < (lb as f64) * self.weights[a]
    }

    /// Normalized load `load / c_w` of worker `w`.
    #[inline]
    pub fn normalized(&self, load: u64, w: usize) -> f64 {
        load as f64 / self.weights[w]
    }

    /// The same capacity vector over a grown or shrunk id space: existing
    /// workers keep their relative speeds, workers added past the current
    /// length join at the pre-normalization mean speed (weight 1), and the
    /// result is renormalized to mean 1. Collapses to `None` when the
    /// resize makes the vector uniform — exactly the
    /// [`Self::heterogeneous`] construction rule, so elastic resizes keep
    /// the uniform-collapse invariant.
    pub fn resized(&self, n: usize) -> Option<Self> {
        assert!(n > 0, "need at least one worker capacity");
        let mut w: Vec<f64> = self.weights.iter().copied().take(n).collect();
        w.resize(n, 1.0);
        Self::heterogeneous(&w)
    }

    /// The capacity weights restricted to a membership subset,
    /// renormalized to mean 1 over the survivors (same collapse rule as
    /// [`Self::heterogeneous`]). Used for epoch-scoped weighted imbalance.
    pub fn subset(&self, live: &[usize]) -> Option<Self> {
        assert!(!live.is_empty(), "need at least one live worker");
        let w: Vec<f64> = live.iter().map(|&i| self.weights[i]).collect();
        Self::heterogeneous(&w)
    }
}

/// The shared greedy-argmin step of every capacity-aware scheme: `true`
/// iff candidate `c` with load `l` *strictly* beats the incumbent `best`
/// with load `best_load` — by capacity-normalized load when weights are
/// attached, by the exact integer comparison otherwise. Keeping this in
/// one place keeps every scheme's tie-breaking (and therefore the
/// uniform-capacity byte-identity the proptests pin) in sync.
#[inline]
pub fn prefers(caps: Option<&Capacities>, l: u64, c: usize, best_load: u64, best: usize) -> bool {
    match caps {
        None => l < best_load,
        Some(w) => w.less(l, c, best_load, best),
    }
}

/// Weighted imbalance of a raw load slice:
/// `I_c = max_i(L_i / c_i) − m/n` with weights normalized to mean 1
/// (`m/n` is the ideal normalized load — every worker at its fair share
/// `m·c_i/C` has normalized load exactly `m/n`). `caps: None` is the
/// homogeneous cluster and reduces to [`crate::imbalance::imbalance`].
pub fn weighted_imbalance(loads: &[u64], caps: Option<&Capacities>) -> f64 {
    let Some(caps) = caps else {
        return crate::imbalance::imbalance(loads);
    };
    assert_eq!(loads.len(), caps.len(), "one capacity per worker");
    if loads.is_empty() {
        return 0.0;
    }
    let max = loads
        .iter()
        .enumerate()
        .map(|(w, &l)| caps.normalized(l, w))
        .fold(f64::NEG_INFINITY, f64::max);
    let avg = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    max - avg
}

/// [`weighted_imbalance`] divided by the message count `m`; 0 when `m = 0`.
pub fn weighted_imbalance_fraction(loads: &[u64], caps: Option<&Capacities>, m: u64) -> f64 {
    if m == 0 {
        0.0
    } else {
        weighted_imbalance(loads, caps) / m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_collapse_to_none() {
        assert!(Capacities::heterogeneous(&[1.0, 1.0, 1.0]).is_none());
        assert!(Capacities::heterogeneous(&[4.0, 4.0]).is_none());
        assert!(Capacities::heterogeneous(&[0.1]).is_none());
    }

    #[test]
    fn weights_normalize_to_mean_one() {
        let c = Capacities::heterogeneous(&[4.0, 1.0, 1.0]).expect("heterogeneous");
        let mean = c.weights().iter().sum::<f64>() / c.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
        // Ratios preserved.
        assert!((c.weight(0) / c.weight(1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_all_weights_changes_nothing() {
        let a = Capacities::heterogeneous(&[4.0, 1.0]).expect("het");
        let b = Capacities::heterogeneous(&[8.0, 2.0]).expect("het");
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn less_compares_normalized_loads() {
        let c = Capacities::heterogeneous(&[2.0, 1.0]).expect("het");
        // 10/2 = 5 < 6/1: worker 0 is effectively less loaded.
        assert!(c.less(10, 0, 6, 1));
        // Exactly equal normalized loads are not "less" (ties keep the
        // incumbent, like the integer path).
        assert!(!c.less(12, 0, 6, 1));
        assert!(!c.less(6, 1, 12, 0));
    }

    #[test]
    fn weighted_imbalance_matches_hand_computation() {
        // Weights 2:1:1 normalize to [1.5, 0.75, 0.75]; loads [30, 10, 8].
        let caps = Capacities::heterogeneous(&[2.0, 1.0, 1.0]).expect("het");
        let loads = [30u64, 10, 8];
        let max = (30.0f64 / 1.5).max(10.0 / 0.75).max(8.0 / 0.75);
        let expect = max - 48.0 / 3.0;
        assert!((weighted_imbalance(&loads, Some(&caps)) - expect).abs() < 1e-9);
    }

    #[test]
    fn none_caps_reduce_to_plain_imbalance() {
        let loads = [10u64, 0, 2];
        assert_eq!(weighted_imbalance(&loads, None), crate::imbalance::imbalance(&loads));
        assert_eq!(weighted_imbalance_fraction(&loads, None, 12), 0.5);
        assert_eq!(weighted_imbalance_fraction(&loads, None, 0), 0.0);
    }

    #[test]
    fn fair_share_loads_have_zero_weighted_imbalance() {
        // Loads proportional to capacity: every normalized load equals m/n.
        let caps = Capacities::heterogeneous(&[4.0, 1.0, 1.0, 2.0]).expect("het");
        let loads = [400u64, 100, 100, 200];
        assert!(weighted_imbalance(&loads, Some(&caps)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_weight_panics() {
        let _ = Capacities::heterogeneous(&[1.0, 0.0]);
    }

    #[test]
    fn resized_keeps_relative_speeds_and_collapses_when_uniform() {
        let caps = Capacities::heterogeneous(&[2.0, 1.0, 1.0]).expect("het");
        let grown = caps.resized(4).expect("still heterogeneous");
        assert_eq!(grown.len(), 4);
        // Worker 0 stays 2x workers 1 and 2; the joiner arrives at mean
        // speed (pre-normalization weight 1).
        assert!((grown.weight(0) / grown.weight(1) - 2.0).abs() < 1e-12);
        assert_eq!(grown.weight(1), grown.weight(2));
        // Shrinking to the uniform prefix collapses to None.
        assert!(caps.resized(1).is_none());
    }

    #[test]
    fn subset_renormalizes_over_survivors() {
        let caps = Capacities::heterogeneous(&[4.0, 1.0, 1.0]).expect("het");
        let sub = caps.subset(&[0, 1]).expect("still heterogeneous");
        assert_eq!(sub.len(), 2);
        assert!((sub.weight(0) / sub.weight(1) - 4.0).abs() < 1e-12);
        // A subset of equal-speed workers is uniform.
        assert!(caps.subset(&[1, 2]).is_none());
    }
}
