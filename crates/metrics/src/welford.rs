//! Welford's online algorithm for running mean and variance.
//!
//! Experiment drivers aggregate imbalance across snapshots and repetitions;
//! naive sum-of-squares accumulation loses precision catastrophically when
//! values are large and close together (e.g. loads near `m/n` for large `m`),
//! which is exactly our regime.

/// Numerically stable running mean / variance / min / max.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add an observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The raw state `(n, mean, m2, min, max)` — for serializing an
    /// accumulator across a process or topology edge (see `pkg-agg`).
    pub fn to_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuild from [`Self::to_parts`] output.
    pub fn from_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self { n, mean, m2, min, max }
    }

    /// Merge another accumulator (Chan's parallel combination).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut whole = Welford::new();
        for i in 0..1000 {
            let x = (i as f64).sin() * 1e6 + 1e9; // large offset stresses stability
            if i % 3 == 0 {
                a.add(x)
            } else {
                b.add(x)
            }
            whole.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() / whole.mean() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() / whole.variance() < 1e-9);
    }

    #[test]
    fn empty_is_all_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 0.0);
    }
}
