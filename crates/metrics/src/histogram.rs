//! Log-bucketed latency histogram.
//!
//! End-to-end latencies in the engine experiments span microseconds to
//! seconds, so a fixed-width histogram is useless. This histogram buckets a
//! `u64` (nanoseconds, or any unit) by a bounded-relative-error scheme in the
//! spirit of HDR histograms: each power-of-two range is split into
//! `2^sub_bits` linear sub-buckets, giving a worst-case relative error of
//! `2^-sub_bits` on reconstructed values.

/// Histogram with bounded relative error for values in `[0, 2^63)`.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    sub_bits: u32,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl LatencyHistogram {
    /// Create a histogram with `2^sub_bits` sub-buckets per octave
    /// (`sub_bits` in `1..=8`; 5 gives ~3% relative error and ~2k buckets).
    pub fn new(sub_bits: u32) -> Self {
        assert!((1..=8).contains(&sub_bits), "sub_bits must be in 1..=8");
        let buckets = (64 - sub_bits as usize) << sub_bits;
        Self { sub_bits, counts: vec![0; buckets], total: 0, sum: 0, max: 0, min: u64::MAX }
    }

    #[inline]
    fn bucket_of(&self, v: u64) -> usize {
        let sb = self.sub_bits;
        // Values below 2^sub_bits map linearly onto the first octave.
        if v < (1 << sb) {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros(); // >= sub_bits
        let octave = (msb - sb + 1) as usize;
        let offset = ((v >> (msb - sb)) - (1 << sb)) as usize;
        (octave << sb) + offset
    }

    /// Representative (lower-bound) value of bucket `b` — inverse of
    /// [`Self::bucket_of`] up to the bucket's width.
    fn bucket_value(&self, b: usize) -> u64 {
        let sb = self.sub_bits;
        let octave = (b >> sb) as u32;
        let offset = (b & ((1usize << sb) - 1)) as u64;
        if octave == 0 {
            offset
        } else {
            ((1u64 << sb) + offset) << (octave - 1)
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = self.bucket_of(v);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Merge another histogram with identical `sub_bits` into this one.
    ///
    /// # Panics
    /// Panics if the resolutions differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.sub_bits, other.sub_bits, "histogram resolutions differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of the recorded values (the sum is kept exactly).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`), with the histogram's
    /// bounded relative error. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_value(b).min(self.max).max(self.min);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_has_bounded_relative_error() {
        let h = LatencyHistogram::new(5);
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 123_456, 10u64.pow(9), u64::MAX >> 2] {
            let b = h.bucket_of(v);
            let rep = h.bucket_value(b);
            assert!(rep <= v, "rep {rep} > v {v}");
            let err = (v - rep) as f64 / v.max(1) as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "v={v} rep={rep} err={err}");
        }
    }

    #[test]
    fn buckets_are_monotone() {
        let h = LatencyHistogram::new(4);
        let mut prev = 0usize;
        for v in 0u64..100_000 {
            let b = h.bucket_of(v);
            assert!(b >= prev, "bucket decreased at v={v}");
            prev = b;
        }
    }

    #[test]
    fn quantiles_of_uniform_data() {
        let mut h = LatencyHistogram::new(5);
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.05, "p50 = {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.05, "p99 = {p99}");
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.min(), 1);
        assert!((h.mean() - 5_000.5).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new(5);
        let mut b = LatencyHistogram::new(5);
        let mut whole = LatencyHistogram::new(5);
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 7)
            } else {
                b.record(v * 7)
            }
            whole.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHistogram::new(3);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }
}
