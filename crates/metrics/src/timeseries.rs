//! Sampled time series for "imbalance through time" plots (Fig. 3).

/// A `(time, value)` series with bounded memory.
///
/// Experiments run for tens of millions of messages; recording every point
/// would dominate memory, so the series keeps at most `capacity` points by
/// doubling its sampling stride whenever it fills up (every other retained
/// point is discarded and subsequent pushes are decimated accordingly).
/// This preserves a uniform sampling of the whole run.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
    capacity: usize,
    stride: u64,
    seen: u64,
}

impl TimeSeries {
    /// A series keeping at most `capacity` (≥ 2) points.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "capacity must be at least 2");
        Self { points: Vec::with_capacity(capacity), capacity, stride: 1, seen: 0 }
    }

    /// Offer a point; it is retained if it falls on the current stride.
    pub fn push(&mut self, t: f64, v: f64) {
        if self.seen.is_multiple_of(self.stride) {
            if self.points.len() == self.capacity {
                // Halve resolution: keep even-indexed points, double stride.
                let mut i = 0;
                self.points.retain(|_| {
                    let keep = i % 2 == 0;
                    i += 1;
                    keep
                });
                self.stride *= 2;
                // The current point falls on the *old* stride; it is retained
                // only if it also falls on the new one.
                if self.seen.is_multiple_of(self.stride) {
                    self.points.push((t, v));
                }
            } else {
                self.points.push((t, v));
            }
        }
        self.seen += 1;
    }

    /// The retained points, in push order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points offered (not retained).
    pub fn offered(&self) -> u64 {
        self.seen
    }

    /// Mean of the retained values (used for "average imbalance" summaries).
    pub fn mean_value(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Last retained value, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_under_capacity() {
        let mut ts = TimeSeries::new(100);
        for i in 0..50 {
            ts.push(i as f64, (i * 2) as f64);
        }
        assert_eq!(ts.points().len(), 50);
        assert_eq!(ts.points()[10], (10.0, 20.0));
    }

    #[test]
    fn decimates_beyond_capacity() {
        let mut ts = TimeSeries::new(64);
        for i in 0..10_000 {
            ts.push(i as f64, i as f64);
        }
        assert!(ts.points().len() <= 64);
        assert_eq!(ts.offered(), 10_000);
        // Still spans the whole range.
        let first = ts.points().first().expect("non-empty").0;
        let last = ts.points().last().expect("non-empty").0;
        assert_eq!(first, 0.0);
        assert!(last >= 9_000.0, "last retained t = {last}");
        // Times strictly increasing (uniform decimation, no reordering).
        for w in ts.points().windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn mean_of_constant_series_is_the_constant() {
        let mut ts = TimeSeries::new(16);
        for i in 0..1000 {
            ts.push(i as f64, 7.5);
        }
        assert!((ts.mean_value() - 7.5).abs() < 1e-12);
    }
}
