//! Pluggable load signals — what "load" *means* to a load-consulting
//! partitioner.
//!
//! Every scheme in the paper minimizes a per-worker quantity; §II equates
//! that quantity with the routed-tuple count, which is exact in the
//! simulator but a proxy in a real deployment: the cloud-deployment caveat
//! (and the heterogeneous-cluster follow-up) both observe that a worker's
//! *service capacity* can drift away from its tuple count mid-run. This
//! module makes the minimized signal pluggable:
//!
//! * [`LoadMetricKind::TupleCount`] — the paper's signal and the default.
//!   Byte-identical to every pre-existing code path.
//! * [`LoadMetricKind::PendingRequests`] — in-flight tuples (dispatched but
//!   not yet completed); a queue-depth penalty in the
//!   `tower-load`/Finagle "least loaded" idiom.
//! * [`LoadMetricKind::PeakEwma`] — per-worker service latency decayed over
//!   a worst-case window, multiplied by the outstanding work
//!   (`count + pending`). An integer, clock-free adaptation of tower's
//!   Peak-EWMA: latency jumps to peaks instantly and decays slowly, so a
//!   worker that just exhibited a slowdown looks expensive for a full
//!   window even if its next samples are fast.
//!
//! The trait deliberately consumes a flattened [`LoadObservation`] rather
//! than referencing any shared state: pure `signal(obs) -> u64` functions
//! keep every consumer (core estimators, the simulator, both engine
//! executors) comparing the *same units* — the audit counterpart of the
//! `LoadVector` accessor rule.

/// Default decay window (in observations) for [`LoadMetricKind::PeakEwma`].
///
/// 64 samples ≈ the convergence window the elastic replay uses per worker;
/// long enough to smooth jitter, short enough that a genuine 4× slowdown
/// dominates the signal within one estimation window.
pub const DEFAULT_PEAK_EWMA_WINDOW: u32 = 64;

/// Everything a [`LoadMetric`] may consult about one worker, flattened to
/// plain integers so implementations stay pure and unit-testable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadObservation {
    /// Tuples routed to the worker so far (the paper's load).
    pub count: u64,
    /// Tuples dispatched but not yet completed (in-flight).
    pub pending: u64,
    /// Peak-EWMA of the worker's observed service latency, nanoseconds;
    /// 0 when this worker has no latency observation yet.
    pub peak_ewma_ns: u64,
    /// Pessimistic prior for unobserved workers: the *global maximum*
    /// peak-EWMA across all workers, nanoseconds; 0 iff no worker has any
    /// latency observation at all.
    pub fallback_ns: u64,
}

/// A pluggable definition of per-worker load.
///
/// Implementations must be monotone in genuine load (more outstanding work
/// on a slower worker never *decreases* the signal) so that every greedy
/// argmin in the repo remains meaningful regardless of which metric is
/// active.
pub trait LoadMetric: Send + Sync {
    /// Stable short label (reports, bench JSON records, TSV columns).
    fn label(&self) -> &'static str;

    /// The scalar the partitioner minimizes for this worker.
    fn signal(&self, obs: LoadObservation) -> u64;
}

/// Selector for the built-in metrics; the form configs and env vars carry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LoadMetricKind {
    /// Routed-tuple count — the paper's signal, and the default.
    #[default]
    TupleCount,
    /// In-flight (dispatched − completed) tuples.
    PendingRequests,
    /// Peak-decayed service latency × outstanding work.
    PeakEwma {
        /// Decay window in observations (see [`DEFAULT_PEAK_EWMA_WINDOW`]).
        window: u32,
    },
}

impl LoadMetricKind {
    /// Peak-EWMA with the default window.
    pub fn peak_ewma() -> Self {
        LoadMetricKind::PeakEwma { window: DEFAULT_PEAK_EWMA_WINDOW }
    }

    /// Stable short label (mirrors [`LoadMetric::label`]).
    pub fn label(&self) -> &'static str {
        self.metric().label()
    }

    /// The EWMA decay window this kind implies (1 ⇒ no memory).
    pub fn window(&self) -> u32 {
        match self {
            LoadMetricKind::PeakEwma { window } => (*window).max(1),
            _ => DEFAULT_PEAK_EWMA_WINDOW,
        }
    }

    /// Parse the config/env form: `count`, `pending`, `peak_ewma`, or
    /// `peak_ewma:<window>`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "count" => Some(LoadMetricKind::TupleCount),
            "pending" => Some(LoadMetricKind::PendingRequests),
            "peak_ewma" => Some(LoadMetricKind::peak_ewma()),
            other => {
                let window = other.strip_prefix("peak_ewma:")?.parse::<u32>().ok()?;
                (window > 0).then_some(LoadMetricKind::PeakEwma { window })
            }
        }
    }

    /// The metric implementation behind this selector.
    pub fn metric(&self) -> &'static dyn LoadMetric {
        match self {
            LoadMetricKind::TupleCount => &TupleCount,
            LoadMetricKind::PendingRequests => &PendingRequests,
            LoadMetricKind::PeakEwma { .. } => &PeakEwma,
        }
    }
}

/// The paper's signal: load = routed-tuple count.
#[derive(Debug, Clone, Copy, Default)]
pub struct TupleCount;

impl LoadMetric for TupleCount {
    fn label(&self) -> &'static str {
        "count"
    }

    fn signal(&self, obs: LoadObservation) -> u64 {
        obs.count
    }
}

/// In-flight penalty: load = dispatched − completed.
#[derive(Debug, Clone, Copy, Default)]
pub struct PendingRequests;

impl LoadMetric for PendingRequests {
    fn label(&self) -> &'static str {
        "pending"
    }

    fn signal(&self, obs: LoadObservation) -> u64 {
        obs.pending
    }
}

/// Peak-decayed latency × outstanding work, in the tower-load idiom.
///
/// Unobserved workers inherit the *global* peak as a pessimistic prior.
/// This choice is what pins the zero-latency collapse: with no latency
/// observed anywhere (`fallback_ns == 0`) the signal degenerates to the
/// exact tuple count, and with *uniform* observed latency `B` every
/// worker's signal is exactly `B × count` — the same argmin (including tie
/// patterns) as [`TupleCount`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PeakEwma;

impl LoadMetric for PeakEwma {
    fn label(&self) -> &'static str {
        "peak_ewma"
    }

    fn signal(&self, obs: LoadObservation) -> u64 {
        if obs.fallback_ns == 0 {
            return obs.count;
        }
        let per_tuple = if obs.peak_ewma_ns == 0 { obs.fallback_ns } else { obs.peak_ewma_ns };
        per_tuple.max(1).saturating_mul(obs.count.saturating_add(obs.pending))
    }
}

/// One integer Peak-EWMA update step (clock-free: the window counts
/// *observations*, not elapsed time, so the signal is deterministic and
/// identical across executors).
///
/// Peaks are adopted instantly (`sample >= prev` ⇒ `sample`); decay toward
/// a lower sample moves by `(prev − sample)/window` per step, floored at 1
/// so the estimate always makes progress and converges exactly on a
/// constant stream of samples.
pub fn peak_ewma_step(prev: u64, sample: u64, window: u32) -> u64 {
    if sample >= prev {
        return sample;
    }
    let step = ((prev - sample) / u64::from(window.max(1))).max(1);
    prev - step
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_parse_round_trip() {
        for kind in [
            LoadMetricKind::TupleCount,
            LoadMetricKind::PendingRequests,
            LoadMetricKind::peak_ewma(),
        ] {
            assert_eq!(LoadMetricKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(
            LoadMetricKind::parse("peak_ewma:128"),
            Some(LoadMetricKind::PeakEwma { window: 128 })
        );
        assert_eq!(LoadMetricKind::parse("peak_ewma:0"), None);
        assert_eq!(LoadMetricKind::parse("bogus"), None);
    }

    #[test]
    fn tuple_count_is_the_raw_count() {
        let obs = LoadObservation { count: 17, pending: 5, peak_ewma_ns: 99, fallback_ns: 120 };
        assert_eq!(TupleCount.signal(obs), 17);
    }

    #[test]
    fn pending_is_the_in_flight_depth() {
        let obs = LoadObservation { count: 17, pending: 5, peak_ewma_ns: 99, fallback_ns: 120 };
        assert_eq!(PendingRequests.signal(obs), 5);
    }

    #[test]
    fn peak_ewma_with_no_latency_anywhere_is_the_tuple_count() {
        for count in [0u64, 1, 5, 1000] {
            let obs = LoadObservation { count, pending: 3, peak_ewma_ns: 0, fallback_ns: 0 };
            assert_eq!(PeakEwma.signal(obs), count, "zero-latency collapse");
        }
    }

    #[test]
    fn peak_ewma_uniform_latency_preserves_count_order_and_ties() {
        let b = 7_000u64;
        let sig = |count| {
            PeakEwma.signal(LoadObservation { count, pending: 0, peak_ewma_ns: b, fallback_ns: b })
        };
        assert_eq!(sig(10), sig(10), "ties preserved");
        assert!(sig(9) < sig(10), "strict order preserved");
        assert_eq!(sig(10), b * 10, "exact constant multiple of count");
    }

    #[test]
    fn peak_ewma_unobserved_worker_uses_the_global_peak() {
        let obs = LoadObservation { count: 4, pending: 1, peak_ewma_ns: 0, fallback_ns: 9_000 };
        assert_eq!(PeakEwma.signal(obs), 9_000 * 5);
    }

    #[test]
    fn peak_ewma_slow_worker_outweighs_fast_one_at_equal_count() {
        let slow =
            LoadObservation { count: 10, pending: 0, peak_ewma_ns: 40_000, fallback_ns: 40_000 };
        let fast =
            LoadObservation { count: 10, pending: 0, peak_ewma_ns: 10_000, fallback_ns: 40_000 };
        assert!(PeakEwma.signal(slow) > PeakEwma.signal(fast));
    }

    #[test]
    fn step_jumps_to_peak_and_decays_with_progress() {
        assert_eq!(peak_ewma_step(100, 500, 64), 500, "jump to peak");
        assert_eq!(peak_ewma_step(500, 500, 64), 500, "steady state");
        let decayed = peak_ewma_step(6_500, 100, 64);
        assert_eq!(decayed, 6_400, "(6500-100)/64 = 100 per step");
        // The floor-at-1 guarantees convergence even when the gap is small.
        let mut v = 70u64;
        for _ in 0..100 {
            v = peak_ewma_step(v, 60, 64);
        }
        assert_eq!(v, 60, "converges exactly on a constant stream");
    }

    #[test]
    fn step_is_exact_on_uniform_samples() {
        let mut v = 0u64;
        for _ in 0..5 {
            v = peak_ewma_step(v, 8_000, 64);
        }
        assert_eq!(v, 8_000, "uniform samples pin the ewma at the sample");
    }
}
