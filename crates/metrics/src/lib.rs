//! Measurement substrate for the Partial Key Grouping reproduction.
//!
//! The paper's evaluation reports three families of quantities, and this
//! crate implements all of them:
//!
//! * **Load and imbalance** (§II): the load of worker `i` at time `t` is the
//!   number of messages routed to it up to `t`; the imbalance is
//!   `I(t) = max_i L_i(t) − avg_i L_i(t)`. Figures 2–4 report the *fraction
//!   of imbalance* (imbalance normalized by the number of messages). See
//!   [`load::LoadVector`] and [`mod@imbalance`].
//! * **Time series** (Fig. 3): imbalance sampled through (simulated) time.
//!   See [`timeseries::TimeSeries`].
//! * **Throughput / latency / memory** (Fig. 5): end-to-end engine metrics.
//!   See [`throughput::ThroughputMeter`] and [`histogram::LatencyHistogram`]
//!   (a log-bucketed histogram, since per-message latencies span orders of
//!   magnitude).
//!
//! [`welford::Welford`] provides numerically stable running mean/variance
//! used by several experiment drivers.
//!
//! For heterogeneous clusters, [`capacity::Capacities`] carries per-worker
//! capacity weights and the `weighted_*` accessors measure imbalance
//! relative to what each worker can absorb (`max_i L_i/c_i − avg`); with
//! uniform capacities every weighted quantity degenerates exactly to its
//! unweighted counterpart.
//!
//! [`load_metric::LoadMetric`] makes the *minimized signal itself*
//! pluggable (tuple count, in-flight depth, Peak-EWMA latency), and
//! [`capacity_estimator::CapacityEstimator`] re-derives capacity weights
//! online from observed service rates — see the module docs for the
//! byte-identity contracts both uphold in their default/uniform regimes.

#![forbid(unsafe_code)]

pub mod capacity;
pub mod capacity_estimator;
pub mod histogram;
pub mod imbalance;
pub mod load;
pub mod load_metric;
pub mod throughput;
pub mod timeseries;
pub mod welford;

pub use capacity::{prefers, weighted_imbalance, weighted_imbalance_fraction, Capacities};
pub use capacity_estimator::{CapacityEstimator, DEFAULT_ESTIMATOR_WINDOW};
pub use histogram::LatencyHistogram;
pub use imbalance::{imbalance, imbalance_fraction, worst_case_imbalance};
pub use load::LoadVector;
pub use load_metric::{
    peak_ewma_step, LoadMetric, LoadMetricKind, LoadObservation, DEFAULT_PEAK_EWMA_WINDOW,
};
pub use throughput::ThroughputMeter;
pub use timeseries::TimeSeries;
pub use welford::Welford;
