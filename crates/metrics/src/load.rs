//! Per-worker load accounting.

use crate::capacity::Capacities;

/// The load vector `L(t)` of a set of workers: `L_i(t)` counts the messages
/// handled by worker `i` up to the current point of the stream (§II of the
/// paper, the same definition used by Flux).
///
/// The maximum is tracked incrementally so that the imbalance can be read in
/// O(1) on the routing hot path; the average is `total / n`.
///
/// [`LoadVector::with_capacities`] attaches per-worker capacity weights for
/// heterogeneous clusters; the `weighted_*` accessors then measure load
/// relative to what each worker can absorb (uniform capacities collapse and
/// every weighted accessor equals its unweighted counterpart exactly).
#[derive(Debug, Clone)]
pub struct LoadVector {
    loads: Vec<u64>,
    total: u64,
    max: u64,
    capacities: Option<Capacities>,
}

impl LoadVector {
    /// A zeroed load vector over `n` workers.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one worker");
        Self { loads: vec![0; n], total: 0, max: 0, capacities: None }
    }

    /// Attach per-worker capacity weights (one per worker). Uniform weights
    /// collapse to the capacity-free representation, so the weighted
    /// accessors degenerate exactly to the unweighted ones.
    ///
    /// # Panics
    /// Panics if `capacities.len() != self.len()` or any weight is
    /// non-finite or ≤ 0.
    pub fn with_capacities(mut self, capacities: &[f64]) -> Self {
        assert_eq!(capacities.len(), self.loads.len(), "one capacity per worker");
        self.capacities = Capacities::heterogeneous(capacities);
        self
    }

    /// The attached capacity weights (`None` for a homogeneous cluster,
    /// including explicitly-uniform ones, which collapse at construction).
    pub fn capacities(&self) -> Option<&Capacities> {
        self.capacities.as_ref()
    }

    /// Number of workers.
    #[inline]
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// `true` when there are no workers (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Record `weight` units of load on worker `w`.
    #[inline]
    pub fn record(&mut self, w: usize, weight: u64) {
        let l = &mut self.loads[w];
        *l += weight;
        if *l > self.max {
            self.max = *l;
        }
        self.total += weight;
    }

    /// Load of worker `w`.
    #[inline]
    pub fn load(&self, w: usize) -> u64 {
        self.loads[w]
    }

    /// Total messages recorded.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum per-worker load.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Minimum per-worker load (O(n); not kept incrementally because the
    /// imbalance definition only needs the maximum).
    pub fn min(&self) -> u64 {
        self.loads.iter().copied().min().unwrap_or(0)
    }

    /// Average per-worker load.
    #[inline]
    pub fn avg(&self) -> f64 {
        self.total as f64 / self.loads.len() as f64
    }

    /// The imbalance `I(t) = max_i L_i(t) − avg_i L_i(t)`.
    #[inline]
    pub fn imbalance(&self) -> f64 {
        self.max as f64 - self.avg()
    }

    /// Imbalance divided by total messages ("fraction of imbalance" in the
    /// paper's figures); 0 when no messages have been recorded.
    #[inline]
    pub fn imbalance_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.imbalance() / self.total as f64
        }
    }

    /// The capacity-weighted imbalance `I_c(t) = max_i(L_i/c_i) − avg`
    /// (weights normalized to mean 1, so the subtracted average `total/n`
    /// is the ideal normalized load — see
    /// [`crate::capacity::weighted_imbalance`]). Equals [`Self::imbalance`]
    /// exactly when no heterogeneous capacities are attached.
    pub fn weighted_imbalance(&self) -> f64 {
        match &self.capacities {
            None => self.imbalance(),
            Some(caps) => {
                let max = self
                    .loads
                    .iter()
                    .enumerate()
                    .map(|(w, &l)| caps.normalized(l, w))
                    .fold(f64::NEG_INFINITY, f64::max);
                max - self.avg()
            }
        }
    }

    /// [`Self::weighted_imbalance`] divided by total messages; 0 when no
    /// messages have been recorded.
    pub fn weighted_imbalance_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.weighted_imbalance() / self.total as f64
        }
    }

    /// Immutable view of the raw per-worker loads.
    #[inline]
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Grow the id space to `n` workers: new workers start at zero load,
    /// existing workers keep their full history (totals, max, and any
    /// downstream Welford accumulators fed from this vector are
    /// unaffected). Attached capacities are resized via
    /// [`Capacities::resized`].
    ///
    /// # Panics
    /// Panics if `n < self.len()` — use [`Self::shrink_to`] to shrink.
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.loads.len(), "grow({n}) below current len {}", self.loads.len());
        self.loads.resize(n, 0);
        if let Some(caps) = self.capacities.take() {
            self.capacities = caps.resized(n);
        }
    }

    /// Shrink the id space to the first `n` workers, dropping the history
    /// of the removed ones (totals and max are recomputed from the
    /// survivors). For membership changes that *retire* workers without
    /// renumbering the id space — the elastic layer's normal mode — keep
    /// the full vector and scope reads with [`Self::imbalance_over`]
    /// instead; this is for permanently compacting a plan's capacity.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > self.len()`.
    pub fn shrink_to(&mut self, n: usize) {
        assert!(n > 0, "need at least one worker");
        assert!(n <= self.loads.len(), "shrink_to({n}) above current len {}", self.loads.len());
        self.loads.truncate(n);
        self.total = self.loads.iter().sum();
        self.max = self.loads.iter().copied().max().unwrap_or(0);
        if let Some(caps) = self.capacities.take() {
            self.capacities = caps.resized(n);
        }
    }

    /// The imbalance of the membership subset `live`:
    /// `max_{i∈live} L_i − avg_{i∈live} L_i`. With `live = 0..n` this is
    /// exactly [`Self::imbalance`]. Loads on non-live workers are ignored
    /// (their history is preserved, not forgotten).
    pub fn imbalance_over(&self, live: &[usize]) -> f64 {
        debug_assert!(!live.is_empty());
        let mut max = 0u64;
        let mut sum = 0u64;
        for &w in live {
            let l = self.loads[w];
            max = max.max(l);
            sum += l;
        }
        max as f64 - sum as f64 / live.len() as f64
    }

    /// [`Self::imbalance_over`] divided by the messages recorded on `live`
    /// workers; 0 when they have seen none.
    pub fn imbalance_fraction_over(&self, live: &[usize]) -> f64 {
        let sum: u64 = live.iter().map(|&w| self.loads[w]).sum();
        if sum == 0 {
            0.0
        } else {
            self.imbalance_over(live) / sum as f64
        }
    }

    /// Reset all loads to zero, keeping the worker count.
    pub fn reset(&mut self) {
        self.loads.fill(0);
        self.total = 0;
        self.max = 0;
    }

    /// Index of the least-loaded worker among `candidates`
    /// (ties broken toward the earlier candidate, as in the reference
    /// PKG implementation).
    #[inline]
    pub fn argmin_of(&self, candidates: &[usize]) -> usize {
        debug_assert!(!candidates.is_empty());
        let mut best = candidates[0];
        let mut best_load = self.loads[best];
        for &c in &candidates[1..] {
            let l = self.loads[c];
            if l < best_load {
                best = c;
                best_load = l;
            }
        }
        best
    }

    /// Index of the least *capacity-normalized* load among `candidates`
    /// (ties toward the earlier candidate). Identical to
    /// [`Self::argmin_of`] — decision by decision — when no heterogeneous
    /// capacities are attached.
    #[inline]
    pub fn weighted_argmin_of(&self, candidates: &[usize]) -> usize {
        debug_assert!(!candidates.is_empty());
        let mut best = candidates[0];
        let mut best_load = self.loads[best];
        for &c in &candidates[1..] {
            let l = self.loads[c];
            if crate::capacity::prefers(self.capacities.as_ref(), l, c, best_load, best) {
                best = c;
                best_load = l;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_total_and_max() {
        let mut lv = LoadVector::new(4);
        lv.record(0, 3);
        lv.record(1, 5);
        lv.record(0, 1);
        assert_eq!(lv.total(), 9);
        assert_eq!(lv.max(), 5);
        assert_eq!(lv.load(0), 4);
        assert_eq!(lv.min(), 0);
        assert!((lv.avg() - 2.25).abs() < 1e-12);
        assert!((lv.imbalance() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn perfectly_balanced_has_zero_imbalance() {
        let mut lv = LoadVector::new(8);
        for w in 0..8 {
            lv.record(w, 100);
        }
        assert_eq!(lv.imbalance(), 0.0);
        assert_eq!(lv.imbalance_fraction(), 0.0);
    }

    #[test]
    fn empty_fraction_is_zero() {
        let lv = LoadVector::new(3);
        assert_eq!(lv.imbalance_fraction(), 0.0);
    }

    #[test]
    fn argmin_prefers_first_on_tie() {
        let mut lv = LoadVector::new(5);
        lv.record(2, 4);
        assert_eq!(lv.argmin_of(&[1, 3]), 1);
        assert_eq!(lv.argmin_of(&[2, 3]), 3);
        assert_eq!(lv.argmin_of(&[2, 2]), 2);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut lv = LoadVector::new(2);
        lv.record(1, 7);
        lv.reset();
        assert_eq!(lv.total(), 0);
        assert_eq!(lv.max(), 0);
        assert_eq!(lv.loads(), &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = LoadVector::new(0);
    }

    #[test]
    fn uniform_capacities_collapse_and_match_unweighted() {
        let mut lv = LoadVector::new(4).with_capacities(&[3.0, 3.0, 3.0, 3.0]);
        assert!(lv.capacities().is_none(), "uniform capacities must collapse");
        lv.record(0, 3);
        lv.record(1, 5);
        assert_eq!(lv.weighted_imbalance(), lv.imbalance());
        assert_eq!(lv.weighted_imbalance_fraction(), lv.imbalance_fraction());
        assert_eq!(lv.weighted_argmin_of(&[0, 1, 2]), lv.argmin_of(&[0, 1, 2]));
    }

    #[test]
    fn weighted_imbalance_sees_slow_worker_overload() {
        // Worker 1 is half-speed; equal raw loads are NOT balanced.
        let mut lv = LoadVector::new(2).with_capacities(&[2.0, 1.0]);
        lv.record(0, 100);
        lv.record(1, 100);
        assert_eq!(lv.imbalance(), 0.0, "raw loads are equal");
        // Normalized weights [4/3, 2/3]: max(100/(4/3), 100/(2/3)) − 100.
        assert!((lv.weighted_imbalance() - 50.0).abs() < 1e-9);
        assert!(lv.weighted_imbalance_fraction() > 0.0);
    }

    #[test]
    fn weighted_argmin_prefers_fast_worker() {
        let mut lv = LoadVector::new(3).with_capacities(&[4.0, 1.0, 1.0]);
        // Raw loads: worker 0 has 12, worker 1 has 6. Normalized (weights
        // [2, 0.5, 0.5]): 12/2 = 6 vs 6/0.5 = 12 — the 4× worker wins
        // despite the higher raw load.
        lv.record(0, 12);
        lv.record(1, 6);
        assert_eq!(lv.argmin_of(&[0, 1]), 1);
        assert_eq!(lv.weighted_argmin_of(&[0, 1]), 0);
        // Equal normalized loads tie toward the earlier candidate.
        let mut tie = LoadVector::new(2).with_capacities(&[2.0, 1.0]);
        tie.record(0, 8);
        tie.record(1, 4);
        assert_eq!(tie.weighted_argmin_of(&[0, 1]), 0);
        assert_eq!(tie.weighted_argmin_of(&[1, 0]), 1);
    }

    #[test]
    #[should_panic(expected = "one capacity per worker")]
    fn mismatched_capacities_panic() {
        let _ = LoadVector::new(3).with_capacities(&[1.0, 2.0]);
    }

    #[test]
    fn grow_preserves_history_and_zeroes_new_workers() {
        let mut lv = LoadVector::new(2);
        lv.record(0, 10);
        lv.record(1, 4);
        lv.grow(4);
        assert_eq!(lv.len(), 4);
        assert_eq!(lv.loads(), &[10, 4, 0, 0]);
        assert_eq!(lv.total(), 14);
        assert_eq!(lv.max(), 10);
    }

    #[test]
    fn shrink_recomputes_totals_from_survivors() {
        let mut lv = LoadVector::new(4);
        lv.record(0, 1);
        lv.record(3, 9);
        lv.shrink_to(2);
        assert_eq!(lv.len(), 2);
        assert_eq!(lv.total(), 1);
        assert_eq!(lv.max(), 1);
    }

    #[test]
    fn grow_resizes_capacities_with_unit_speed_joiners() {
        let mut lv = LoadVector::new(2).with_capacities(&[3.0, 1.0]);
        lv.grow(3);
        let caps = lv.capacities().expect("still heterogeneous");
        assert_eq!(caps.len(), 3);
        // Raw speeds [1.5, 0.5] (normalized) + joiner at 1.0, renormalized.
        assert!(caps.weight(0) > caps.weight(2) && caps.weight(2) > caps.weight(1));
    }

    #[test]
    fn imbalance_over_full_set_matches_imbalance() {
        let mut lv = LoadVector::new(4);
        for (w, m) in [(0, 7), (1, 3), (2, 5), (3, 1)] {
            lv.record(w, m);
        }
        let all: Vec<usize> = (0..4).collect();
        assert!((lv.imbalance_over(&all) - lv.imbalance()).abs() < 1e-12);
        assert!((lv.imbalance_fraction_over(&all) - lv.imbalance_fraction()).abs() < 1e-12);
    }

    #[test]
    fn imbalance_over_ignores_dead_workers() {
        let mut lv = LoadVector::new(4);
        lv.record(0, 100); // dead in the subset below
        lv.record(1, 6);
        lv.record(2, 6);
        assert_eq!(lv.imbalance_over(&[1, 2]), 0.0);
        assert_eq!(lv.imbalance_fraction_over(&[1, 2]), 0.0);
        // History on worker 0 is preserved, just not measured.
        assert_eq!(lv.load(0), 100);
    }
}
