//! Per-instance executor loops.

use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError};
use pkg_core::SharedLoads;
use pkg_metrics::LatencyHistogram;

use crate::bolt::{Bolt, EdgeTx, Emitter, OutEdge, Sink};
use crate::ingress::{DepthGauge, SpoutIngress};
use crate::metrics::InstanceStats;
use crate::spout::Spout;
use crate::sync::Arc;
use crate::tuple::Packet;

/// Accumulates state-size samples (shared with the pool executor).
#[derive(Debug, Default)]
pub(crate) struct StateSampler {
    sum: f64,
    count: u64,
    pub(crate) max: usize,
}

impl StateSampler {
    pub(crate) fn sample(&mut self, size: usize) {
        self.sum += size as f64;
        self.count += 1;
        self.max = self.max.max(size);
    }

    pub(crate) fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

fn send_eof(edges: &mut [OutEdge]) {
    for edge in edges {
        match &edge.tx {
            EdgeTx::Channels(txs) => {
                for tx in txs {
                    // Downstream may only hang up after receiving Eof from
                    // every sender; if it already did, shutdown is in
                    // progress anyway.
                    let _ = tx.send(Packet::Eof);
                }
            }
            EdgeTx::Tasks(_) | EdgeTx::TaskRings(_) => {
                unreachable!("thread executor edges are channels")
            }
        }
    }
}

/// Drive a spout until exhaustion; stamps tuples' birth timestamps.
pub(crate) fn run_spout(
    component: String,
    instance: usize,
    mut spout: Box<dyn Spout>,
    mut edges: Vec<OutEdge>,
    epoch: Instant,
    stall_scale: f64,
    mut ingress: Option<SpoutIngress>,
) -> InstanceStats {
    let mut processed = 0u64;
    let mut emitted = 0u64;
    let mut stalled_ns = 0u64;
    while let Some(tuple) = spout.next() {
        processed += 1;
        let now_ns = epoch.elapsed().as_nanos() as u64;
        if let Some(ing) = ingress.as_mut() {
            let depth = edges.iter().map(OutEdge::max_gauge_depth).max().unwrap_or(0);
            if !ing.offer(&tuple.key, tuple.key_id(), tuple.value, depth, now_ns) {
                continue;
            }
        }
        let mut em = Emitter {
            edges: &mut edges,
            sink: Sink::Blocking,
            inherit_born_ns: 0,
            // Guard against a zero elapsed reading: 0 means "stamp me".
            now_ns: now_ns.max(1),
            emitted: &mut emitted,
            deferred_ns: 0,
            stall_scale,
            stalled_ns: 0,
        };
        em.emit(tuple);
        stalled_ns += em.stalled_ns;
    }
    // Drain phase: re-inject whatever the shed policy retained (degraded
    // summaries), as ordinary tuples ahead of Eof.
    if let Some(ing) = ingress.as_mut() {
        ing.start_drain();
        while let Some(tuple) = ing.next_drained() {
            let now_ns = (epoch.elapsed().as_nanos() as u64).max(1);
            let mut em = Emitter {
                edges: &mut edges,
                sink: Sink::Blocking,
                inherit_born_ns: 0,
                now_ns,
                emitted: &mut emitted,
                deferred_ns: 0,
                stall_scale,
                stalled_ns: 0,
            };
            em.emit(tuple);
            stalled_ns += em.stalled_ns;
        }
    }
    send_eof(&mut edges);
    InstanceStats {
        component,
        instance,
        processed,
        emitted,
        latency: LatencyHistogram::new(5),
        final_state: 0,
        max_state: 0,
        avg_state: 0.0,
        ticks: 0,
        stalled_ns,
        activations: 1,
        shed_dropped: ingress.as_ref().map_or(0, SpoutIngress::dropped),
        shed_degraded: ingress.as_ref().map_or(0, SpoutIngress::degraded),
        hedges: edges.iter().map(|e| e.hedge.as_ref().map_or(0, |h| h.issued)).sum(),
        max_depth: 0,
    }
}

/// Drive a bolt until every upstream sender has delivered its Eof.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_bolt(
    component: String,
    instance: usize,
    mut bolt: Box<dyn Bolt>,
    rx: Receiver<Packet>,
    mut edges: Vec<OutEdge>,
    mut eof_remaining: usize,
    tick_every: Option<Duration>,
    epoch: Instant,
    stall_scale: f64,
    gauge: Option<Arc<DepthGauge>>,
    signals: Option<SharedLoads>,
) -> InstanceStats {
    let mut processed = 0u64;
    let mut emitted = 0u64;
    let mut ticks = 0u64;
    let mut stalled_ns = 0u64;
    let mut latency = LatencyHistogram::new(5);
    let mut sampler = StateSampler::default();
    let mut next_tick = tick_every.map(|p| Instant::now() + p);

    loop {
        let packet = match next_tick {
            Some(deadline) => {
                let now = Instant::now();
                if now >= deadline {
                    let Some(period) = tick_every else {
                        unreachable!("deadline implies period");
                    };
                    let now_ns = (epoch.elapsed().as_nanos() as u64).max(1);
                    // Sample state at its peak, *before* the tick flushes it
                    // (Fig. 5(b)'s "average memory" is the live counter
                    // count at aggregation boundaries).
                    sampler.sample(bolt.state_size());
                    let mut em = Emitter {
                        edges: &mut edges,
                        sink: Sink::Blocking,
                        inherit_born_ns: 0,
                        now_ns,
                        emitted: &mut emitted,
                        deferred_ns: 0,
                        stall_scale,
                        stalled_ns: 0,
                    };
                    bolt.tick(&mut em);
                    stalled_ns += em.stalled_ns;
                    ticks += 1;
                    next_tick = Some(deadline + period);
                    continue;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(p) => p,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match rx.recv() {
                Ok(p) => p,
                Err(_) => break,
            },
        };
        match packet {
            Packet::Tuple(tuple) => {
                // Balance the sender-side increment (see `Sink::deliver`).
                if let Some(g) = &gauge {
                    g.dec();
                }
                let now_ns = (epoch.elapsed().as_nanos() as u64).max(1);
                latency.record(now_ns.saturating_sub(tuple.born_ns));
                let mut em = Emitter {
                    edges: &mut edges,
                    sink: Sink::Blocking,
                    inherit_born_ns: tuple.born_ns,
                    now_ns,
                    emitted: &mut emitted,
                    deferred_ns: 0,
                    stall_scale,
                    stalled_ns: 0,
                };
                let tuple_stalled = {
                    bolt.execute(tuple, &mut em);
                    em.stalled_ns
                };
                // Feed the load signals: this tuple is no longer in flight,
                // and its capacity-scaled service time is the latency sample
                // for Peak-EWMA and the online capacity estimator.
                if let Some(s) = signals.as_ref().and_then(SharedLoads::signals) {
                    s.complete(instance, tuple_stalled);
                }
                stalled_ns += tuple_stalled;
                processed += 1;
            }
            Packet::Eof => {
                eof_remaining -= 1;
                if eof_remaining == 0 {
                    break;
                }
            }
        }
    }

    // Sample peak state, final flush, then propagate shutdown.
    sampler.sample(bolt.state_size());
    let final_state = bolt.state_size();
    {
        let now_ns = (epoch.elapsed().as_nanos() as u64).max(1);
        let mut em = Emitter {
            edges: &mut edges,
            sink: Sink::Blocking,
            inherit_born_ns: 0,
            now_ns,
            emitted: &mut emitted,
            deferred_ns: 0,
            stall_scale,
            stalled_ns: 0,
        };
        bolt.finish(&mut em);
        stalled_ns += em.stalled_ns;
    }
    send_eof(&mut edges);

    InstanceStats {
        component,
        instance,
        processed,
        emitted,
        latency,
        final_state,
        max_state: sampler.max,
        avg_state: sampler.avg(),
        ticks,
        stalled_ns,
        activations: 1,
        shed_dropped: 0,
        shed_degraded: 0,
        hedges: edges.iter().map(|e| e.hedge.as_ref().map_or(0, |h| h.issued)).sum(),
        max_depth: gauge.as_ref().map_or(0, |g| g.high() as u64),
    }
}
