//! Bounded single-producer/single-consumer ring for pool-executor edges.
//!
//! Selected at `build_out_edges` time for destinations with **exactly one
//! upstream sender instance** (the executor's task state machine serializes
//! that sender's activations, so the single-producer discipline holds even
//! as the task migrates across workers; the destination task itself is the
//! single consumer). MPSC destinations keep the mutexed mailbox.
//!
//! The index protocol is lock-free: cache-line-padded `head`/`tail`
//! wrapping counters, the producer publishing on `tail`, the consumer on
//! `head`. The slot transfer itself goes through a per-slot
//! `crate::sync::Mutex` — the workspace forbids `unsafe`, so an
//! `UnsafeCell` hand-off is unavailable — but the index protocol guarantees
//! each slot lock is touched by exactly one thread at a time, so those
//! locks never contend (an uncontended lock is a single CAS, vs. the
//! mutexed mailbox's producer/consumer contention this ring removes).
//!
//! Backpressure follows the pool's park protocol: when the ring is full the
//! producer *announces* itself (`sleepers`), re-checks capacity under the
//! waiter lock, and only then registers for a release wake. The consumer
//! checks `sleepers` after popping; sequential consistency makes the
//! announce→re-check / pop→check pairs a total order in which a parked
//! producer is always observed (model-checked in `pool_model.rs`; see the
//! "Memory ordering policy" note in `pool.rs` — every atomic here is
//! `SeqCst` because the vendored checker explores SC interleavings only).

use crate::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use crate::sync::{lock, Mutex};
use crate::tuple::Packet;

/// Pad hot indices to their own cache line so the producer's `tail` writes
/// do not false-share with the consumer's `head` writes.
#[repr(align(64))]
struct CachePadded<T>(T);

/// A bounded SPSC ring of [`Packet`]s with parked-producer bookkeeping.
pub struct SpscRing {
    /// Logical capacity (exactly the configured mailbox capacity; the slot
    /// array is the next power of two for mask indexing).
    cap: usize,
    mask: usize,
    /// Consumer position: a free-running wrapping counter; slot index is
    /// `head & mask`.
    head: CachePadded<AtomicUsize>,
    /// Producer position (same encoding).
    tail: CachePadded<AtomicUsize>,
    slots: Box<[Mutex<Option<Packet>>]>,
    /// Producer's "I may be about to park" announcement; written before the
    /// under-lock capacity re-check so the consumer's pop→check sequence
    /// can never miss a parked producer.
    sleepers: AtomicUsize,
    /// Producer tasks parked on this ring being full (at most one — the
    /// single producer — but kept as a list for symmetry with the mailbox).
    waiters: Mutex<Vec<usize>>,
}

impl SpscRing {
    /// A ring accepting up to `cap ≥ 1` packets.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "ring capacity must be positive");
        let slots = cap.next_power_of_two();
        Self {
            cap,
            mask: slots - 1,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
            slots: (0..slots).map(|_| Mutex::new(None)).collect(),
            sleepers: AtomicUsize::new(0),
            waiters: Mutex::new(Vec::new()),
        }
    }

    /// Producer: non-blocking push. `Err` returns the packet when full.
    pub fn try_push(&self, packet: Packet) -> Result<(), Packet> {
        // ordering: SeqCst — tail is producer-owned; the load pairs with our
        // own last store (SC-only model, see module doc)
        let tail = self.tail.0.load(SeqCst);
        // ordering: SeqCst — capacity check against the consumer's pops; SC
        // puts it in one total order with head publications (SC-only model)
        let head = self.head.0.load(SeqCst);
        if tail.wrapping_sub(head) >= self.cap {
            return Err(packet);
        }
        *lock(&self.slots[tail & self.mask]) = Some(packet);
        // ordering: SeqCst — publishes the filled slot to the consumer; the
        // slot mutex's release already fences the payload (SC-only model)
        self.tail.0.store(tail.wrapping_add(1), SeqCst);
        Ok(())
    }

    /// Consumer: non-blocking pop.
    pub fn pop(&self) -> Option<Packet> {
        // ordering: SeqCst — head is consumer-owned (SC-only model)
        let head = self.head.0.load(SeqCst);
        // ordering: SeqCst — emptiness check pairs with the producer's tail
        // publication (SC-only model)
        let tail = self.tail.0.load(SeqCst);
        if head == tail {
            return None;
        }
        let packet = lock(&self.slots[head & self.mask]).take();
        debug_assert!(packet.is_some(), "non-empty ring slot holds a packet");
        // ordering: SeqCst — frees the slot for the producer's capacity
        // check (SC-only model)
        self.head.0.store(head.wrapping_add(1), SeqCst);
        packet
    }

    /// Producer: push as many packets from `supply` as currently fit,
    /// publishing `tail` **once** for the whole run — the batch analogue
    /// of [`Self::try_push`]. Returns how many packets were accepted;
    /// `supply` is only advanced that many times, so unaccepted packets
    /// stay with the caller.
    ///
    /// The capacity snapshot is taken before filling: a concurrent
    /// consumer can only *increase* free space, so a stale `head` read
    /// under-counts and the push is merely conservative, never unsound.
    pub fn push_batch(&self, supply: &mut impl Iterator<Item = Packet>) -> usize {
        // ordering: SeqCst — producer-owned tail (SC-only model)
        let tail = self.tail.0.load(SeqCst);
        // ordering: SeqCst — capacity snapshot against the consumer's head
        // publications; staleness only under-counts free slots (SC-only model)
        let head = self.head.0.load(SeqCst);
        let free = self.cap - tail.wrapping_sub(head);
        let mut accepted = 0usize;
        while accepted < free {
            let Some(packet) = supply.next() else { break };
            *lock(&self.slots[tail.wrapping_add(accepted) & self.mask]) = Some(packet);
            accepted += 1;
        }
        if accepted > 0 {
            // ordering: SeqCst — one publication for the whole run; every
            // slot mutex above is released before the consumer can observe
            // these indices (SC-only model)
            self.tail.0.store(tail.wrapping_add(accepted), SeqCst);
        }
        accepted
    }

    /// Consumer: pop up to `max` packets into `sink`, publishing `head`
    /// **once** for the whole run — the batch analogue of [`Self::pop`].
    /// Returns how many packets moved. The occupancy snapshot is taken
    /// before draining: a concurrent producer can only *add* packets, so a
    /// stale `tail` read under-counts and the drain is merely conservative.
    pub fn pop_batch(&self, max: usize, sink: &mut impl FnMut(Packet)) -> usize {
        // ordering: SeqCst — consumer-owned head (SC-only model)
        let head = self.head.0.load(SeqCst);
        // ordering: SeqCst — occupancy snapshot against the producer's tail
        // publication; staleness only under-counts (SC-only model)
        let tail = self.tail.0.load(SeqCst);
        let run = tail.wrapping_sub(head).min(max);
        for i in 0..run {
            let packet = lock(&self.slots[head.wrapping_add(i) & self.mask]).take();
            debug_assert!(packet.is_some(), "non-empty ring slot holds a packet");
            if let Some(p) = packet {
                sink(p);
            }
        }
        if run > 0 {
            // ordering: SeqCst — frees all drained slots for the producer's
            // capacity check in one publication (SC-only model)
            self.head.0.store(head.wrapping_add(run), SeqCst);
        }
        run
    }

    /// Producer: push, or register `waiter` for a backpressure-release
    /// wake. The announce→re-check sequence under the waiter lock is what
    /// makes the registration race-free against a concurrent drain (see
    /// module doc).
    pub fn push_or_park(&self, packet: Packet, waiter: usize) -> Result<(), Packet> {
        let packet = match self.try_push(packet) {
            Ok(()) => return Ok(()),
            Err(p) => p,
        };
        let mut ws = lock(&self.waiters);
        // ordering: SeqCst — announce BEFORE the capacity re-check: if that
        // still sees full it precedes the consumer's next pop in SC order,
        // so the pop's sleeper check sees the announce (SC-only model)
        self.sleepers.store(1, SeqCst);
        // ordering: SeqCst — producer-owned tail (SC-only model)
        let tail = self.tail.0.load(SeqCst);
        // ordering: SeqCst — re-check under the waiter lock (SC-only model)
        let head = self.head.0.load(SeqCst);
        if tail.wrapping_sub(head) < self.cap {
            // The consumer drained between the first check and the lock.
            // ordering: SeqCst — retract the announcement (SC-only model)
            self.sleepers.store(0, SeqCst);
            drop(ws);
            return self.try_push(packet);
        }
        if !ws.contains(&waiter) {
            ws.push(waiter);
        }
        Err(packet)
    }

    /// Consumer: collect parked producers to wake after draining. Returns
    /// an empty (allocation-free) vec on the fast path.
    pub fn take_waiters(&self) -> Vec<usize> {
        // ordering: SeqCst — executed after this consumer's pops; a parked
        // producer's announce precedes those pops' observed fullness, so it
        // is visible here (SC-only model)
        if self.sleepers.load(SeqCst) == 0 {
            return Vec::new();
        }
        let mut ws = lock(&self.waiters);
        // ordering: SeqCst — reset under the same lock producers announce
        // under (SC-only model)
        self.sleepers.store(0, SeqCst);
        std::mem::take(&mut ws)
    }

    /// Whether the ring holds no packets (same caveats as [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Packets currently queued (either endpoint may call; a racy estimate
    /// anywhere else, exact from the consumer). Used by the unit and
    /// model-checked suites; the hot path never needs a length.
    pub fn len(&self) -> usize {
        // ordering: SeqCst — paired snapshot reads (SC-only model)
        let tail = self.tail.0.load(SeqCst);
        // ordering: SeqCst — see above (SC-only model)
        let head = self.head.0.load(SeqCst);
        tail.wrapping_sub(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn tup(v: i64) -> Packet {
        Packet::Tuple(Tuple::new(vec![v as u8], v))
    }

    fn val(p: Packet) -> i64 {
        match p {
            Packet::Tuple(t) => t.value,
            Packet::Eof => -1,
        }
    }

    #[test]
    fn fifo_push_pop_round_trip() {
        let r = SpscRing::new(4);
        assert!(r.pop().is_none());
        for v in 0..4 {
            assert!(r.try_push(tup(v)).is_ok());
        }
        assert_eq!(r.len(), 4);
        assert!(r.try_push(tup(9)).is_err(), "full ring rejects");
        for v in 0..4 {
            assert_eq!(r.pop().map(val), Some(v));
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn wraps_many_laps_with_non_pow2_capacity() {
        let r = SpscRing::new(3);
        let mut next_in = 0i64;
        let mut next_out = 0i64;
        for _ in 0..50 {
            while r.try_push(tup(next_in)).is_ok() {
                next_in += 1;
            }
            while let Some(p) = r.pop() {
                assert_eq!(val(p), next_out);
                next_out += 1;
            }
        }
        assert_eq!(next_in, next_out);
        assert!(next_in >= 150, "3 per lap over 50 laps");
    }

    #[test]
    fn batch_ops_round_trip_and_spill_cleanly() {
        let r = SpscRing::new(3);
        let mut supply = (0..5).map(tup);
        assert_eq!(r.push_batch(&mut supply), 3, "capacity bounds the run");
        assert_eq!(supply.count(), 2, "unaccepted packets stay with the caller");
        let mut got = Vec::new();
        assert_eq!(r.pop_batch(2, &mut |p| got.push(val(p))), 2);
        assert_eq!(r.pop_batch(8, &mut |p| got.push(val(p))), 1);
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(r.pop_batch(8, &mut |_| unreachable!("empty ring")), 0);
    }

    #[test]
    fn batch_ops_wrap_many_laps_with_non_pow2_capacity() {
        let r = SpscRing::new(3);
        let mut next_in = 0i64;
        let mut next_out = 0i64;
        for _ in 0..50 {
            let mut supply = (next_in..next_in + 2).map(tup);
            next_in += r.push_batch(&mut supply) as i64;
            r.pop_batch(usize::MAX, &mut |p| {
                assert_eq!(val(p), next_out);
                next_out += 1;
            });
        }
        assert_eq!(next_in, next_out);
        assert!(next_in >= 100, "2 per lap over 50 laps");
    }

    #[test]
    fn push_or_park_registers_waiter_only_while_full() {
        let r = SpscRing::new(1);
        assert!(r.push_or_park(tup(1), 7).is_ok());
        let rejected = r.push_or_park(tup(2), 7);
        let Err(packet) = rejected else { panic!("full ring must reject") };
        // Duplicate registration is idempotent.
        assert!(r.push_or_park(packet, 7).is_err());
        assert_eq!(r.pop().map(val), Some(1));
        assert_eq!(r.take_waiters(), vec![7]);
        assert!(r.take_waiters().is_empty(), "waiters drain once");
        assert!(r.push_or_park(tup(3), 7).is_ok(), "space available again");
    }
}
