//! Stream operators.

use std::time::Duration;

use crate::grouping::{Router, Target};
use crate::ingress::{DepthGauge, HedgeState};
use crate::sync::Arc;
use crate::tuple::{Packet, Tuple};
use crossbeam::channel::Sender;
use pkg_core::SharedLoads;
use pkg_hash::FxHashMap;

/// A stream operator (Storm's bolt).
///
/// Implementations receive tuples one at a time and may emit downstream via
/// the [`Emitter`]. `tick` fires on the component's configured tick interval
/// (the aggregation period `T` of the paper's Q4 experiment); `finish` fires
/// once after the last upstream tuple.
pub trait Bolt: Send {
    /// Process one input tuple.
    fn execute(&mut self, tuple: Tuple, out: &mut Emitter<'_>);

    /// Periodic callback (aggregation flushes). Default: nothing.
    fn tick(&mut self, out: &mut Emitter<'_>) {
        let _ = out;
    }

    /// End-of-stream callback (final flush). Default: nothing.
    fn finish(&mut self, out: &mut Emitter<'_>) {
        let _ = out;
    }

    /// Number of state entries held (counters, histogram bins, …); the
    /// memory-overhead metric of Fig. 5(b). Default 0 for stateless bolts.
    fn state_size(&self) -> usize {
        0
    }
}

/// Routes emitted tuples to the downstream edges of the running instance.
///
/// Borrowed mutably into [`Bolt::execute`]; the `born_ns` of emitted tuples
/// is inherited from the input tuple currently being processed (so latency
/// is end-to-end), or stamped fresh for tick/finish emissions.
pub struct Emitter<'a> {
    pub(crate) edges: &'a mut [OutEdge],
    pub(crate) sink: Sink<'a>,
    /// Birth timestamp to inherit (0 = stamp with `now_ns`).
    pub(crate) inherit_born_ns: u64,
    pub(crate) now_ns: u64,
    pub(crate) emitted: &'a mut u64,
    /// Emulated service time requested via [`Emitter::stall`] that the pool
    /// executor realizes by re-arming the task on the timer wheel (the
    /// blocking executor sleeps inline and leaves this at 0).
    pub(crate) deferred_ns: u64,
    /// Service-time multiplier from the instance's capacity weight
    /// (`1/capacity`): a half-speed instance stalls twice as long per
    /// charged tuple. 1.0 on homogeneous topologies.
    pub(crate) stall_scale: f64,
    /// Capacity-scaled service time charged through [`Emitter::stall`] so
    /// far in this emitter's scope; executors accumulate it into
    /// [`crate::metrics::InstanceStats::stalled_ns`]. Deterministic in the
    /// requested durations (not wall-clock), so it is comparable across
    /// executors.
    pub(crate) stalled_ns: u64,
}

/// One outgoing edge of a running instance.
pub(crate) struct OutEdge {
    pub(crate) router: Router,
    pub(crate) tx: EdgeTx,
    /// Depth gauges of the downstream instances, parallel to the `Channels`
    /// senders (thread-per-instance executor). Empty under the pool, which
    /// reads its mailbox lengths directly.
    pub(crate) depths: Vec<Arc<DepthGauge>>,
    /// Hedged-dispatch state; `Some` only on spout out-edges when the
    /// ingress layer enables hedging.
    pub(crate) hedge: Option<HedgeState>,
    /// Destination component's shared load signals, when
    /// [`crate::load::LoadSignalOptions`] attached any. The router inside
    /// this edge then carries [`pkg_core::Estimate::Global`] handles onto
    /// the same vector, so every sender minimizes the same pluggable
    /// signal; counts and in-flight dispatches are recorded here at emit
    /// time (global estimates make `Estimate::record` a no-op).
    pub(crate) signals: Option<SharedLoads>,
}

impl OutEdge {
    /// Deepest downstream gauge on this edge (thread-per-instance depth
    /// signal; 0 under the pool, whose executors probe mailboxes instead).
    pub(crate) fn max_gauge_depth(&self) -> usize {
        self.depths.iter().map(|g| g.load()).max().unwrap_or(0)
    }
}

/// Where an edge's packets physically go — the executor-specific half of an
/// [`OutEdge`] (routing is executor-independent, which is what makes the
/// two executors byte-identical).
pub(crate) enum EdgeTx {
    /// Blocking bounded channels, one per downstream instance
    /// (thread-per-instance executor).
    Channels(Vec<Sender<Packet>>),
    /// Task ids of the downstream instances (pool executor); delivery goes
    /// through the shared pool state's mutexed mailboxes.
    Tasks(Vec<usize>),
    /// Task ids of downstream instances fed by exactly one upstream sender
    /// (pool executor); delivery goes through each destination's bounded
    /// SPSC ring, bypassing the mailbox mutex entirely. Selected at
    /// `build_out_edges` time — see [`crate::ring`].
    TaskRings(Vec<usize>),
}

impl EdgeTx {
    /// Number of downstream instances on this edge.
    pub(crate) fn fanout(&self) -> usize {
        match self {
            EdgeTx::Channels(txs) => txs.len(),
            EdgeTx::Tasks(dests) | EdgeTx::TaskRings(dests) => dests.len(),
        }
    }
}

/// Delivery discipline of an [`Emitter`].
pub(crate) enum Sink<'a> {
    /// Send on the edge channels, blocking while a mailbox is full. Used by
    /// the thread-per-instance executor (where blocking an OS thread *is*
    /// the backpressure mechanism) and by [`Emitter::drop_sink`].
    Blocking,
    /// Cooperative: non-blocking try-push into downstream mailboxes; on a
    /// full mailbox the packet spills into the task's outbox and the task
    /// parks at the end of its activation instead of blocking a worker.
    Pool {
        shared: &'a crate::pool::Shared,
        outbox: &'a mut std::collections::VecDeque<(usize, Packet)>,
    },
}

impl Sink<'_> {
    /// Deliver one routed packet to `dest` along `tx`. `depths` are the
    /// edge's downstream gauges (empty under the pool): tuple deliveries
    /// increment the destination's gauge *before* the send, so the owning
    /// bolt's decrement on receipt can never underflow it.
    fn deliver(&mut self, tx: &EdgeTx, depths: &[Arc<DepthGauge>], dest: usize, packet: Packet) {
        match (tx, self) {
            (EdgeTx::Channels(txs), Sink::Blocking) => {
                // Only tuples are gauged: the receiving bolt decrements per
                // `Packet::Tuple`, and Eof never passes through `deliver`.
                if matches!(packet, Packet::Tuple(_)) {
                    if let Some(gauge) = depths.get(dest) {
                        gauge.inc();
                    }
                }
                // A send fails only if the receiver hung up, which the
                // shutdown protocol makes impossible before our Eof.
                if txs[dest].send(packet).is_err() {
                    unreachable!("downstream alive until Eof");
                }
            }
            (EdgeTx::Tasks(dests) | EdgeTx::TaskRings(dests), Sink::Pool { shared, outbox }) => {
                let task = dests[dest];
                // Once anything spilled, everything spills: per-destination
                // FIFO must survive the detour through the outbox.
                if outbox.is_empty() {
                    match shared.try_push(task, packet) {
                        Ok(()) => {}
                        Err(packet) => outbox.push_back((task, packet)),
                    }
                } else {
                    outbox.push_back((task, packet));
                }
            }
            (EdgeTx::Channels(_), Sink::Pool { .. })
            | (EdgeTx::Tasks(_) | EdgeTx::TaskRings(_), Sink::Blocking) => {
                unreachable!("edge transport and emitter sink are built by the same executor")
            }
        }
    }
}

impl Emitter<'_> {
    /// Emit a tuple on every outgoing edge.
    ///
    /// The common single-edge case moves `tuple` straight through to
    /// delivery with zero clones; only a genuine fan-out (several out-edges,
    /// or a broadcast grouping) pays for copies — and then exactly
    /// `fan-out − 1` of them, the last destination taking ownership.
    pub fn emit(&mut self, mut tuple: Tuple) {
        tuple.born_ns = if self.inherit_born_ns != 0 { self.inherit_born_ns } else { self.now_ns };
        *self.emitted += 1;
        let key_id = tuple.key_id();
        let Some((last, rest)) = self.edges.split_last_mut() else {
            return;
        };
        for edge in rest {
            Self::emit_on(edge, &mut self.sink, self.now_ns, key_id, tuple.clone());
        }
        Self::emit_on(last, &mut self.sink, self.now_ns, key_id, tuple);
    }

    /// Route and deliver one owned tuple on one edge.
    fn emit_on(edge: &mut OutEdge, sink: &mut Sink<'_>, now_ns: u64, key_id: u64, tuple: Tuple) {
        let OutEdge { router, tx, depths, hedge, signals } = edge;
        // Count + in-flight bookkeeping for one routed delivery, mirroring
        // the simulator's `record` ordering: after the route decision,
        // before the next one. No-op on edges without attached signals.
        let note = |signals: &Option<SharedLoads>, w: usize| {
            if let Some(sl) = signals {
                sl.record(w);
                if let Some(s) = sl.signals() {
                    s.dispatch(w);
                }
            }
        };
        // Elastic edges: if this tuple crosses a membership threshold,
        // announce the new epoch in-band to every downstream instance
        // *before* routing it under the new live set. Markers are control
        // traffic — they bypass the router and do not count as emissions.
        while let Some(epoch) = router.advance_epoch() {
            let marker = crate::elastic::epoch_marker(epoch, now_ns);
            for w in 0..tx.fanout() {
                sink.deliver(tx, depths, w, Packet::Tuple(marker.clone()));
            }
        }
        // Hedging applies to head keys only, and their candidate set must
        // be read *before* `route` (which observes the key and can flip the
        // head prediction for the next message). Payload-carrying tuples
        // are never hedged — the hedge tag rides in the payload.
        let hedge_cands = match hedge {
            Some(_) if tuple.payload.is_empty() => router.head_candidates(key_id),
            _ => None,
        };
        match router.route(key_id) {
            Target::One(w) => {
                if let (Some(state), Some(cands)) = (hedge.as_mut(), hedge_cands) {
                    if Self::dest_depth(tx, depths, sink, w) > state.budget {
                        if let Some(&alt) = cands.iter().find(|&&c| c != w) {
                            // The chosen instance is over its latency
                            // budget: issue the tuple to both it and the
                            // next candidate, tagged so the aggregation
                            // stage drops whichever copy arrives second.
                            let mut tagged = tuple;
                            tagged.payload = pkg_ingress::hedge::encode_tag(state.next_id());
                            note(signals, alt);
                            sink.deliver(tx, depths, alt, Packet::Tuple(tagged.clone()));
                            note(signals, w);
                            sink.deliver(tx, depths, w, Packet::Tuple(tagged));
                            return;
                        }
                    }
                }
                note(signals, w);
                sink.deliver(tx, depths, w, Packet::Tuple(tuple));
            }
            Target::All => {
                let n = tx.fanout();
                for w in 1..n {
                    note(signals, w);
                    sink.deliver(tx, depths, w, Packet::Tuple(tuple.clone()));
                }
                if n > 0 {
                    note(signals, 0);
                    sink.deliver(tx, depths, 0, Packet::Tuple(tuple));
                }
            }
        }
    }

    /// Queue depth of `tx`'s destination `w` — the gauge under the thread
    /// executor, the live mailbox length under the pool.
    fn dest_depth(tx: &EdgeTx, depths: &[Arc<DepthGauge>], sink: &Sink<'_>, w: usize) -> usize {
        match (tx, sink) {
            (EdgeTx::Channels(_), _) => depths.get(w).map_or(0, |g| g.load()),
            (EdgeTx::Tasks(dests) | EdgeTx::TaskRings(dests), Sink::Pool { shared, .. }) => {
                shared.depth(dests[w])
            }
            _ => 0,
        }
    }

    /// Number of tuples emitted by this instance so far.
    pub fn emitted(&self) -> u64 {
        *self.emitted
    }

    /// Emulate `d` of per-tuple service time (the paper's Q4 CPU-delay
    /// knob). The requested duration is scaled by the instance's capacity
    /// weight ([`crate::runtime::RuntimeOptions::capacities`]): a
    /// half-speed instance is charged `2d` per call, so heterogeneous
    /// hardware is emulated end to end.
    ///
    /// Under the thread-per-instance executor this sleeps inline — each
    /// instance owns a dedicated OS thread, so blocking it *is* the service
    /// model. Under the pool executor the time is *deferred*: the current
    /// activation ends after this tuple and the task is re-armed on the
    /// central timer wheel, so emulated service time never occupies a
    /// worker thread and hundreds of delay-emulating instances progress
    /// concurrently on a small pool.
    ///
    /// Multiple calls within one `execute` accumulate. The knob models
    /// bolt-side processing cost: only the bolt `execute` path honors
    /// deferral under the pool executor — a spout (or tick/finish
    /// callback) calling `stall` sleeps inline under the thread executor
    /// but is ignored under the pool.
    pub fn stall(&mut self, d: Duration) {
        let d = if self.stall_scale == 1.0 {
            d
        } else {
            Duration::from_nanos((d.as_nanos() as f64 * self.stall_scale) as u64)
        };
        self.stalled_ns = self.stalled_ns.saturating_add(d.as_nanos() as u64);
        match &self.sink {
            Sink::Blocking => std::thread::sleep(d),
            Sink::Pool { .. } => {
                self.deferred_ns = self.deferred_ns.saturating_add(d.as_nanos() as u64);
            }
        }
    }

    /// An emitter with no outgoing edges: emissions are counted, then
    /// dropped. For unit-testing bolts outside a running topology.
    pub fn drop_sink(emitted: &mut u64) -> Emitter<'_> {
        Emitter {
            edges: &mut [],
            sink: Sink::Blocking,
            inherit_born_ns: 0,
            now_ns: 1,
            emitted,
            deferred_ns: 0,
            stall_scale: 1.0,
            stalled_ns: 0,
        }
    }
}

/// A simple counting bolt: accumulates `Σ value` per key. Used by tests and
/// the quickstart; the word-count application in `pkg-apps` builds richer
/// variants (flushing partials, top-k tracking).
#[derive(Debug, Default)]
pub struct CountingBolt {
    counts: FxHashMap<crate::tuple::TupleKey, i64>,
}

impl CountingBolt {
    /// Current count for a key.
    pub fn count(&self, key: &[u8]) -> i64 {
        self.counts.get(key).copied().unwrap_or(0)
    }
}

impl Bolt for CountingBolt {
    fn execute(&mut self, tuple: Tuple, _out: &mut Emitter<'_>) {
        *self.counts.entry(tuple.key).or_insert(0) += tuple.value;
    }

    fn state_size(&self) -> usize {
        self.counts.len()
    }
}
