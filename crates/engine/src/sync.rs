//! Facade over the concurrency primitives the pool executor is built on.
//!
//! Normal builds re-export the `std::sync` / vendored-crossbeam types
//! unchanged — a pure renaming with identical codegen. With the `pkg_model`
//! feature the same names resolve to `pkg-model`'s model-aware types, whose
//! every operation is a scheduling point of the deterministic interleaving
//! explorer (`vendor/loom`), and whose blocking goes through the controlled
//! scheduler so lost wakes surface as detected deadlocks.
//!
//! ```text
//!                pool.rs / timer.rs
//!                        │ (only import concurrency types from here;
//!                        │  enforced by pkg-lint rule `facade-isolation`)
//!                 crate::sync facade
//!                ┌───────┴────────┐
//!        default │                │ --features pkg_model
//!   std::sync::{Mutex, atomic}   pkg_model::sync::{Mutex, atomic}
//!   crossbeam::sync::Parker      pkg_model::sync::Parker
//!                                 (via crossbeam's own `pkg_model` facade)
//! ```
//!
//! `Instant` is re-exported from `std::time` in both modes: the model does
//! not virtualize time, and the model suite only exercises code paths whose
//! scheduling decisions are time-independent.

#[cfg(not(feature = "pkg_model"))]
pub(crate) use std::sync::{Mutex, MutexGuard};

#[cfg(feature = "pkg_model")]
pub(crate) use pkg_model::sync::{Mutex, MutexGuard};

// `Arc` is the std type in both modes: the model explores lock and atomic
// interleavings, and reference-count plumbing contributes no scheduling
// decisions of its own.
pub(crate) use std::sync::Arc;

pub(crate) use crossbeam::sync::{Parker, Unparker};

pub(crate) use std::time::Instant;

pub(crate) mod atomic {
    #[cfg(not(feature = "pkg_model"))]
    pub(crate) use std::sync::atomic::{AtomicU8, AtomicUsize};

    #[cfg(feature = "pkg_model")]
    pub(crate) use pkg_model::sync::atomic::{AtomicU8, AtomicUsize};

    pub(crate) use std::sync::atomic::Ordering;
}

/// Lock a facade mutex. The engine's workers never panic while holding a
/// lock, so poisoning is unreachable; this helper centralizes that argument
/// (and is the one place the facade is allowed to panic on it).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(_) => panic!("engine lock poisoned: a worker thread panicked"),
    }
}
