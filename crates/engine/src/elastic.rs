//! In-band elasticity plumbing: epoch markers and the migration bus.
//!
//! Membership changes travel through the data plane itself. Each sender's
//! [`crate::grouping::Router`] counts the tuples it has routed on an
//! elastic edge; when the count crosses a [`pkg_elastic::MembershipPlan`]
//! threshold the sender broadcasts an *epoch marker* — a regular
//! [`Tuple`] with the reserved key [`EPOCH_MARKER_KEY`] — to **every**
//! downstream instance, then starts routing with the new live set. Because
//! every channel/mailbox is FIFO, a marker separates the receiver's stream
//! into "old epoch" and "new epoch" halves with no extra synchronization:
//! tuples routed under the old membership always land before the marker,
//! so a departing instance knows exactly when its inbound traffic is
//! drained and its state can migrate.
//!
//! State moves over the [`MigrationBus`], a shared-memory side channel with
//! one queue per downstream instance. A departer serializes each window
//! accumulator (through the same `PartialAgg` codec the aggregation phase
//! uses) into a [`MigrationMsg::State`] addressed to the key's new owner,
//! then posts [`MigrationMsg::Done`] to every live instance so receivers
//! know when the hand-off is complete and routing can un-gate. The bus
//! counts sends and receipts so drivers can assert conservation.
//!
//! This module is covered by the `facade-isolation` lint rule: all
//! concurrency primitives come from `crate::sync`, keeping it eligible for
//! the model-checked suite.

use crate::sync::{lock, Arc, Mutex};
use crate::tuple::Tuple;

/// Reserved key of epoch-marker tuples. Starts with a NUL byte so no
/// ordinary text key can collide with it.
pub const EPOCH_MARKER_KEY: &[u8] = b"\x00pkg-elastic:epoch";

/// Build the marker tuple announcing `epoch`, stamped with `now_ns`.
pub fn epoch_marker(epoch: u32, now_ns: u64) -> Tuple {
    let mut t = Tuple::new(EPOCH_MARKER_KEY, i64::from(epoch));
    t.born_ns = now_ns;
    t
}

/// The epoch a marker tuple announces, or `None` for ordinary tuples.
pub fn marker_epoch(tuple: &Tuple) -> Option<u32> {
    if tuple.key.as_ref() == EPOCH_MARKER_KEY {
        u32::try_from(tuple.value).ok()
    } else {
        None
    }
}

/// One message on the [`MigrationBus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationMsg {
    /// A serialized window accumulator handed from a departing instance to
    /// the key's new owner.
    State {
        /// Epoch whose membership change triggered the hand-off.
        epoch: u32,
        /// Departing instance index.
        from: usize,
        /// The key whose accumulator is moving.
        key: Box<[u8]>,
        /// Codec bytes (`PartialAgg::encode` format).
        bytes: Vec<u8>,
    },
    /// A departing instance finished flushing for `epoch`; receivers count
    /// one `Done` per departer before un-gating.
    Done {
        /// Epoch whose membership change triggered the hand-off.
        epoch: u32,
        /// Departing instance index.
        from: usize,
    },
}

/// Shared-memory side channel for migrating state between the instances of
/// one elastic bolt: a queue per instance plus conservation counters.
/// Cloning is cheap and shares the underlying state.
#[derive(Clone)]
pub struct MigrationBus {
    state: Arc<Mutex<BusState>>,
}

struct BusState {
    queues: Vec<Vec<MigrationMsg>>,
    sent: u64,
    received: u64,
}

impl MigrationBus {
    /// A bus for `instances` downstream instances.
    pub fn new(instances: usize) -> Self {
        let queues = (0..instances).map(|_| Vec::new()).collect();
        Self { state: Arc::new(Mutex::new(BusState { queues, sent: 0, received: 0 })) }
    }

    /// Number of instance queues.
    pub fn instances(&self) -> usize {
        lock(&self.state).queues.len()
    }

    /// Post `msg` to instance `to`'s queue.
    pub fn send(&self, to: usize, msg: MigrationMsg) {
        let mut s = lock(&self.state);
        assert!(to < s.queues.len(), "migration bus: instance {to} out of range");
        s.queues[to].push(msg);
        s.sent += 1;
    }

    /// Take every message queued for instance `to`, in posting order.
    pub fn drain(&self, to: usize) -> Vec<MigrationMsg> {
        let mut s = lock(&self.state);
        assert!(to < s.queues.len(), "migration bus: instance {to} out of range");
        let msgs = std::mem::take(&mut s.queues[to]);
        s.received += msgs.len() as u64;
        msgs
    }

    /// `(sent, received)` message totals — equal exactly when every posted
    /// message has been drained (the driver's conservation check).
    pub fn totals(&self) -> (u64, u64) {
        let s = lock(&self.state);
        (s.sent, s.received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_round_trips_epoch() {
        let t = epoch_marker(7, 42);
        assert_eq!(t.born_ns, 42);
        assert_eq!(marker_epoch(&t), Some(7));
        assert_eq!(marker_epoch(&Tuple::new(b"word".as_slice(), 1)), None);
    }

    #[test]
    fn ordinary_nul_prefixed_key_is_not_a_marker() {
        let t = Tuple::new(b"\x00pkg-elastic:other".as_slice(), 3);
        assert_eq!(marker_epoch(&t), None);
    }

    #[test]
    fn bus_preserves_order_and_counts_conservation() {
        let bus = MigrationBus::new(3);
        let other = bus.clone();
        other.send(
            1,
            MigrationMsg::State { epoch: 1, from: 0, key: (*b"k").into(), bytes: vec![9] },
        );
        bus.send(1, MigrationMsg::Done { epoch: 1, from: 0 });
        assert_eq!(bus.totals(), (2, 0));
        let got = bus.drain(1);
        assert_eq!(got.len(), 2);
        assert!(matches!(got[0], MigrationMsg::State { .. }));
        assert!(matches!(got[1], MigrationMsg::Done { epoch: 1, from: 0 }));
        assert_eq!(bus.totals(), (2, 2));
        assert!(bus.drain(1).is_empty());
        assert!(bus.drain(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_send_panics() {
        MigrationBus::new(1).send(1, MigrationMsg::Done { epoch: 0, from: 0 });
    }
}
