//! Engine-side wiring of the pluggable load signals.
//!
//! [`LoadSignalOptions`] selects which load *signal* the load-consulting
//! groupings (`Partial`, `PartialHot`, `DChoices`, `WChoices`) minimize,
//! and whether an online [`CapacityEstimator`] re-derives per-instance
//! capacity weights from observed service times. When set, every component
//! that is the destination of at least one load-consulting edge gets one
//! shared [`SharedLoads`] — all senders route on the same signal, fed by
//! real observations: dispatches from the emitters, completions (with the
//! tuple's capacity-scaled `stalled_ns` as the service-time sample) from
//! the executors, under both executor modes identically.
//!
//! The default (`None`, or `TupleCount` with no estimator) attaches
//! nothing: the builders below return `None` per component and every
//! routing path stays byte-identical to an engine without this module.

use pkg_core::SharedLoads;
use pkg_metrics::{CapacityEstimator, LoadMetricKind, DEFAULT_ESTIMATOR_WINDOW};

use crate::grouping::Grouping;
use crate::sync::Arc;

/// Which load signal the engine's load-consulting edges minimize, plus the
/// optional online capacity re-estimation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSignalOptions {
    /// The minimized signal (see [`LoadMetricKind`]).
    pub metric: LoadMetricKind,
    /// Attach a [`CapacityEstimator`] rotating every this many completion
    /// observations (per destination component). `None` = static only.
    pub estimator_window: Option<u64>,
}

impl LoadSignalOptions {
    /// Minimize `metric`, no online capacity re-estimation.
    pub fn metric(metric: LoadMetricKind) -> Self {
        Self { metric, estimator_window: None }
    }

    /// The full adaptive stack: Peak-EWMA latency signal plus online
    /// capacity re-estimation on the default window.
    pub fn adaptive() -> Self {
        Self {
            metric: LoadMetricKind::peak_ewma(),
            estimator_window: Some(DEFAULT_ESTIMATOR_WINDOW),
        }
    }

    /// Builder: attach the online capacity estimator.
    pub fn with_estimator(mut self, window: u64) -> Self {
        self.estimator_window = Some(window.max(1));
        self
    }
}

/// Whether a grouping consults downstream load when routing. (`Elastic`
/// deliberately stays on per-sender local estimation: its epoch replay is
/// defined over the sender's own routed count.)
pub(crate) fn consults_load(grouping: &Grouping) -> bool {
    matches!(
        grouping,
        Grouping::Partial { .. }
            | Grouping::PartialHot { .. }
            | Grouping::DChoices { .. }
            | Grouping::WChoices { .. }
    )
}

/// One shared load-signal handle per destination component: `Some` exactly
/// for components fed by a load-consulting edge when `load` selects a
/// non-default configuration. `parallelism[c]` is component `c`'s instance
/// count; `out_edges[c]` its outgoing `(dest, grouping, seed)` edges.
pub(crate) fn component_signals(
    load: Option<&LoadSignalOptions>,
    out_edges: &[Vec<(usize, Grouping, u64)>],
    parallelism: &[usize],
) -> Vec<Option<SharedLoads>> {
    let mut shared: Vec<Option<SharedLoads>> = vec![None; parallelism.len()];
    let Some(opts) = load else {
        return shared;
    };
    for edges in out_edges {
        for (to, grouping, _) in edges {
            if consults_load(grouping) && shared[*to].is_none() {
                let estimator = opts
                    .estimator_window
                    .map(|w| Arc::new(CapacityEstimator::new(parallelism[*to], w)));
                let sl = SharedLoads::new(parallelism[*to]).with_signals(opts.metric, estimator);
                // The default configuration collapses to no signal state;
                // leave the component on the pre-existing local path then.
                if sl.signals().is_some() {
                    shared[*to] = Some(sl);
                }
            }
        }
    }
    shared
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_consulting_groupings_are_exactly_the_greedy_ones() {
        assert!(consults_load(&Grouping::partial_key()));
        assert!(consults_load(&Grouping::PartialHot { hot_threshold: 0.1, d_hot: 4 }));
        assert!(consults_load(&Grouping::d_choices()));
        assert!(consults_load(&Grouping::w_choices()));
        assert!(!consults_load(&Grouping::Shuffle));
        assert!(!consults_load(&Grouping::Key));
        assert!(!consults_load(&Grouping::Global));
        assert!(!consults_load(&Grouping::Broadcast));
        assert!(!consults_load(&Grouping::elastic(pkg_elastic::MembershipPlan::new(4))));
    }

    #[test]
    fn default_options_attach_nothing() {
        let edges = vec![vec![(1usize, Grouping::partial_key(), 7u64)]];
        let none = component_signals(None, &edges, &[1, 4]);
        assert!(none.iter().all(Option::is_none));
        let count =
            LoadSignalOptions { metric: LoadMetricKind::TupleCount, estimator_window: None };
        let collapsed = component_signals(Some(&count), &edges, &[1, 4]);
        assert!(collapsed.iter().all(Option::is_none), "TupleCount collapses per contract");
    }

    #[test]
    fn signals_attach_only_to_load_consulting_destinations() {
        let edges = vec![
            vec![(1usize, Grouping::partial_key(), 7u64), (2usize, Grouping::Key, 8u64)],
            vec![],
            vec![],
        ];
        let opts = LoadSignalOptions::adaptive();
        let shared = component_signals(Some(&opts), &edges, &[1, 4, 3]);
        assert!(shared[0].is_none(), "no in-edge at all");
        let s1 = shared[1].as_ref().expect("PKG destination gets signals");
        assert_eq!(s1.n(), 4);
        assert!(s1.signals().is_some());
        assert!(s1.signals().and_then(|s| s.estimator().cloned()).is_some());
        assert!(shared[2].is_none(), "key-grouped destination consults no load");
    }
}
