//! Stream groupings — how an edge partitions tuples among the downstream
//! instances. These mirror Storm's groupings plus the paper's new primitive.

use std::sync::Arc;

use pkg_core::{
    AdaptiveChoices, ChoiceConfig, ChoiceStrategy, Estimate, HotAwarePkg, PartialKeyGrouping,
    Partitioner as _, SharedLoads, DEFAULT_EPSILON,
};
use pkg_elastic::MembershipPlan;

/// Partitioning strategy of one topology edge.
#[derive(Debug, Clone, PartialEq)]
pub enum Grouping {
    /// Round-robin (Storm's shuffle grouping).
    Shuffle,
    /// Hash on the key (Storm's fields grouping / the paper's KG).
    Key,
    /// PARTIAL KEY GROUPING: `d` hash choices, pick the one with the lowest
    /// locally-estimated load (§III; `d = 2` in the paper).
    Partial {
        /// Number of candidate workers per key.
        d: usize,
    },
    /// Hot-aware PKG (an ad-hoc precursor of the W-Choices extension): keys
    /// locally estimated to exceed `hot_threshold` of the sender's traffic
    /// may use `d_hot` candidates; everything else uses plain two-choice
    /// PKG. Prefer [`Grouping::DChoices`]/[`Grouping::WChoices`], which
    /// implement the journal's candidate-count rule.
    PartialHot {
        /// Frequency fraction above which a key counts as hot.
        hot_threshold: f64,
        /// Choices for hot keys (`usize::MAX` = all instances).
        d_hot: usize,
    },
    /// D-CHOICES (the journal follow-up's adaptive scheme): keys whose
    /// locally-estimated frequency crosses `θ = 2(1+ε)/n` get
    /// `⌈p̂·n/(1+ε)⌉` candidates from their hash sequence; tail keys route
    /// exactly like [`Grouping::Partial`] with `d = 2`. Use when the
    /// downstream parallelism exceeds `O(1/p1)`.
    DChoices {
        /// Relative imbalance target `ε`.
        epsilon: f64,
    },
    /// W-CHOICES: like [`Grouping::DChoices`] but head keys may go to
    /// *every* downstream instance (lowest replication-vs-balance latency,
    /// highest aggregation cost).
    WChoices {
        /// Relative imbalance target `ε`.
        epsilon: f64,
    },
    /// Elastic PKG: [`Grouping::Partial`] routing confined to the live
    /// worker set of a [`MembershipPlan`]. Each sender replays the plan
    /// against its own routed-tuple count; on crossing a threshold it
    /// broadcasts an in-band epoch marker (see [`crate::elastic`]) to every
    /// downstream instance, then routes new tuples over the new live set.
    Elastic {
        /// Number of candidate workers per key (`2` = the paper's PKG).
        d: usize,
        /// The scripted membership schedule, shared by every sender.
        plan: Arc<MembershipPlan>,
    },
    /// Everything to instance 0 (Storm's global grouping; used for final
    /// aggregators).
    Global,
    /// Every tuple to every instance.
    Broadcast,
}

impl Grouping {
    /// The paper's PKG with two choices.
    pub fn partial_key() -> Self {
        Grouping::Partial { d: 2 }
    }

    /// D-Choices with the default imbalance target.
    pub fn d_choices() -> Self {
        Grouping::DChoices { epsilon: DEFAULT_EPSILON }
    }

    /// W-Choices with the default imbalance target.
    pub fn w_choices() -> Self {
        Grouping::WChoices { epsilon: DEFAULT_EPSILON }
    }

    /// Elastic PKG (two choices) following `plan`.
    pub fn elastic(plan: MembershipPlan) -> Self {
        Grouping::Elastic { d: 2, plan: Arc::new(plan) }
    }
}

/// Where a routed tuple goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// A single downstream instance.
    One(usize),
    /// All downstream instances (broadcast).
    All,
}

/// Reusable output buffer of [`Router::route_batch`]: per-tuple
/// destinations plus the tuple indices *grouped by destination* (a stable
/// counting sort), so the executor can deliver each destination's run with
/// one lock/wake instead of one per tuple.
///
/// Buffers are retained across batches — steady state allocates nothing.
#[derive(Debug, Default)]
pub struct TargetBatch {
    /// Destination of tuple `i`, in stream order.
    dests: Vec<u32>,
    /// Tuple indices stably sorted by destination.
    order: Vec<u32>,
    /// `(dest, start, end)` ranges into `order`, ascending by `dest`, one
    /// per destination that received at least one tuple.
    runs: Vec<(u32, u32, u32)>,
    /// Scratch: per-destination counts / cursor positions.
    counts: Vec<u32>,
}

impl TargetBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, keys: usize) {
        self.dests.clear();
        self.dests.reserve(keys);
        self.order.clear();
        self.runs.clear();
    }

    /// Group `dests` by destination with a stable counting sort: O(keys + n)
    /// and allocation-free once the scratch buffers are warm.
    fn group(&mut self, n: usize) {
        self.counts.clear();
        self.counts.resize(n, 0);
        for &d in &self.dests {
            self.counts[d as usize] += 1;
        }
        // Prefix sums: counts[d] becomes the start cursor of d's run.
        let mut start = 0u32;
        for d in 0..n {
            let c = self.counts[d];
            self.counts[d] = start;
            if c > 0 {
                self.runs.push((d as u32, start, start + c));
            }
            start += c;
        }
        self.order.resize(self.dests.len(), 0);
        for (i, &d) in self.dests.iter().enumerate() {
            let pos = &mut self.counts[d as usize];
            self.order[*pos as usize] = i as u32;
            *pos += 1;
        }
    }

    /// Destination of tuple `i`, in stream order.
    pub fn dest(&self, i: usize) -> usize {
        self.dests[i] as usize
    }

    /// Number of routed tuples in the batch.
    pub fn len(&self) -> usize {
        self.dests.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.dests.is_empty()
    }

    /// Per-destination runs: `(dest, tuple indices in stream order)`.
    pub fn runs(&self) -> impl Iterator<Item = (usize, &[u32])> {
        self.runs.iter().map(move |&(d, s, e)| (d as usize, &self.order[s as usize..e as usize]))
    }
}

/// Per-sender routing state for one outgoing edge.
///
/// Every upstream instance owns its own `Router` — for `Partial` this is
/// what makes load estimation *local*: the router's estimate counts only the
/// tuples this sender routed, per §III-B.
#[derive(Debug)]
pub struct Router {
    kind: RouterKind,
    n: usize,
}

#[derive(Debug)]
enum RouterKind {
    Shuffle { next: usize },
    Key { seed: u64 },
    Partial { pkg: PartialKeyGrouping },
    PartialHot { pkg: HotAwarePkg },
    Adaptive { choices: AdaptiveChoices },
    Elastic { pkg: PartialKeyGrouping, plan: Arc<MembershipPlan>, routed: u64, next_epoch: u32 },
    Global,
    Broadcast,
}

impl Router {
    /// Build routing state for an edge with `n` downstream instances.
    ///
    /// `seed` must be shared by all senders on the edge (so they agree on
    /// hash candidates); `sender_index` staggers shuffle's round-robin.
    /// Load-consulting groupings estimate locally — the paper's default.
    pub fn new(grouping: &Grouping, n: usize, seed: u64, sender_index: usize) -> Self {
        Self::with_shared(grouping, n, seed, sender_index, None)
    }

    /// Like [`Router::new`], but when `shared` is given the load-consulting
    /// groupings minimize its pluggable load *signal* instead of a local
    /// tuple count. Pending/latency signals are shared feedback by nature,
    /// so adaptive metrics imply global estimation; `None` keeps the
    /// paper's local estimation byte-identically.
    pub fn with_shared(
        grouping: &Grouping,
        n: usize,
        seed: u64,
        sender_index: usize,
        shared: Option<&SharedLoads>,
    ) -> Self {
        assert!(n > 0, "edges need at least one downstream instance");
        let estimate = || match shared {
            Some(s) => {
                assert_eq!(s.n(), n, "shared loads must cover every downstream instance");
                Estimate::global(s.clone())
            }
            None => Estimate::local(n),
        };
        let kind = match grouping {
            Grouping::Shuffle => RouterKind::Shuffle { next: sender_index % n },
            Grouping::Key => RouterKind::Key { seed },
            Grouping::Partial { d } => {
                RouterKind::Partial { pkg: PartialKeyGrouping::new(n, *d, estimate(), seed) }
            }
            Grouping::PartialHot { hot_threshold, d_hot } => RouterKind::PartialHot {
                pkg: HotAwarePkg::new(n, estimate(), *hot_threshold, (*d_hot).min(n).max(2), seed),
            },
            Grouping::DChoices { epsilon } => RouterKind::Adaptive {
                choices: AdaptiveChoices::new(
                    n,
                    ChoiceStrategy::DChoices,
                    ChoiceConfig::new(*epsilon),
                    estimate(),
                    seed,
                ),
            },
            Grouping::WChoices { epsilon } => RouterKind::Adaptive {
                choices: AdaptiveChoices::new(
                    n,
                    ChoiceStrategy::WChoices,
                    ChoiceConfig::new(*epsilon),
                    estimate(),
                    seed,
                ),
            },
            Grouping::Elastic { d, plan } => {
                assert_eq!(
                    plan.capacity(),
                    n,
                    "membership plan id space must match the downstream instance count"
                );
                let mut pkg = PartialKeyGrouping::new(n, *d, Estimate::local(n), seed);
                pkg.apply_membership(plan.live(0));
                RouterKind::Elastic { pkg, plan: Arc::clone(plan), routed: 0, next_epoch: 1 }
            }
            Grouping::Global => RouterKind::Global,
            Grouping::Broadcast => RouterKind::Broadcast,
        };
        Self { kind, n }
    }

    /// Route a tuple key.
    #[inline]
    pub fn route(&mut self, key_id: u64) -> Target {
        match &mut self.kind {
            RouterKind::Shuffle { next } => {
                let t = *next;
                *next += 1;
                if *next == self.n {
                    *next = 0;
                }
                Target::One(t)
            }
            RouterKind::Key { seed } => {
                use pkg_hash::StreamKey;
                Target::One((key_id.hash_seeded(*seed) % self.n as u64) as usize)
            }
            RouterKind::Partial { pkg } => Target::One(pkg.route(key_id, 0)),
            RouterKind::PartialHot { pkg } => Target::One(pkg.route(key_id, 0)),
            RouterKind::Adaptive { choices } => Target::One(choices.route(key_id, 0)),
            RouterKind::Elastic { pkg, routed, .. } => {
                *routed += 1;
                Target::One(pkg.route(key_id, 0))
            }
            RouterKind::Global => Target::One(0),
            RouterKind::Broadcast => Target::All,
        }
    }

    /// Candidate instances for a *head* key's next message under an
    /// adaptive (D-/W-Choices) grouping, in hash-sequence order; `None` for
    /// tail keys and every other grouping. Must be consulted *before*
    /// [`Router::route`] for the same message — routing observes the key,
    /// which can flip the head prediction for the one after. The hedged
    /// dispatcher uses this to pick the fallback instance.
    pub fn head_candidates(&self, key_id: u64) -> Option<Vec<usize>> {
        match &self.kind {
            RouterKind::Adaptive { choices } if choices.is_head(key_id) => {
                Some(choices.candidates(key_id))
            }
            _ => None,
        }
    }

    /// Advance this sender's membership epoch by one if its routed-tuple
    /// count has crossed the next plan threshold, switching routing onto the
    /// new live set and returning the epoch just entered. The emitter calls
    /// this before routing each tuple (looping, in case thresholds are a
    /// single tuple apart) and broadcasts an in-band marker per epoch
    /// returned — so on every FIFO channel the marker separates old-epoch
    /// from new-epoch traffic. `None` for non-elastic groupings and between
    /// thresholds.
    pub fn advance_epoch(&mut self) -> Option<u32> {
        match &mut self.kind {
            RouterKind::Elastic { pkg, plan, routed, next_epoch } => {
                if *next_epoch < plan.epochs() && *routed >= plan.threshold(*next_epoch) {
                    let epoch = *next_epoch;
                    pkg.apply_membership(plan.live(epoch));
                    *next_epoch += 1;
                    Some(epoch)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Downstream instance count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether [`Router::route_batch`] may be used for this edge.
    ///
    /// Two groupings opt out: `Broadcast` (no single destination to group
    /// by) and `Elastic` (epoch markers must interleave with the tuples
    /// that crossed each membership threshold, which only the per-tuple
    /// path can do). Every greedy scheme is batchable *by the paper's own
    /// argument*: between two argmin evaluations the loads move by at most
    /// the batch size, so deferring delivery (not the decision — decisions
    /// stay per-tuple, in stream order) changes nothing.
    pub fn is_batchable(&self) -> bool {
        !matches!(self.kind, RouterKind::Elastic { .. } | RouterKind::Broadcast)
    }

    /// Route a whole batch of key fingerprints in one pass, grouping the
    /// results by destination in `out`.
    ///
    /// Decisions are made per key **in stream order** with exactly the same
    /// state updates as [`Router::route`], so the chosen destinations are
    /// byte-identical to the one-at-a-time path (pinned by proptest); only
    /// the *delivery* is grouped. Callers must check
    /// [`Router::is_batchable`] first.
    pub fn route_batch(&mut self, keys: &[u64], out: &mut TargetBatch) {
        out.begin(keys.len());
        match &mut self.kind {
            RouterKind::Shuffle { next } => {
                for _ in keys {
                    out.dests.push(*next as u32);
                    *next += 1;
                    if *next == self.n {
                        *next = 0;
                    }
                }
            }
            RouterKind::Key { seed } => {
                use pkg_hash::StreamKey;
                let (seed, n) = (*seed, self.n as u64);
                out.dests.extend(keys.iter().map(|k| (k.hash_seeded(seed) % n) as u32));
            }
            RouterKind::Partial { pkg } => {
                out.dests.extend(keys.iter().map(|&k| pkg.route(k, 0) as u32));
            }
            RouterKind::PartialHot { pkg } => {
                out.dests.extend(keys.iter().map(|&k| pkg.route(k, 0) as u32));
            }
            RouterKind::Adaptive { choices } => {
                out.dests.extend(keys.iter().map(|&k| choices.route(k, 0) as u32));
            }
            RouterKind::Global => {
                out.dests.extend(keys.iter().map(|_| 0u32));
            }
            RouterKind::Elastic { .. } | RouterKind::Broadcast => {
                unreachable!("caller checks is_batchable before routing a batch")
            }
        }
        out.group(self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_routing_is_consistent_across_senders() {
        let mut a = Router::new(&Grouping::Key, 8, 7, 0);
        let mut b = Router::new(&Grouping::Key, 8, 7, 3);
        for k in 0..100u64 {
            assert_eq!(a.route(k), b.route(k));
        }
    }

    #[test]
    fn partial_splits_hot_key_over_two_instances() {
        let mut r = Router::new(&Grouping::partial_key(), 10, 3, 0);
        let mut hit = std::collections::HashSet::new();
        for _ in 0..100 {
            if let Target::One(t) = r.route(42) {
                hit.insert(t);
            }
        }
        assert!(hit.len() <= 2, "PKG must use at most two instances per key");
    }

    #[test]
    fn shuffle_staggers_by_sender() {
        let mut a = Router::new(&Grouping::Shuffle, 4, 0, 0);
        let mut b = Router::new(&Grouping::Shuffle, 4, 0, 1);
        assert_eq!(a.route(0), Target::One(0));
        assert_eq!(b.route(0), Target::One(1));
    }

    #[test]
    fn partial_hot_spreads_extreme_key_past_two() {
        let n = 16;
        let mut r =
            Router::new(&Grouping::PartialHot { hot_threshold: 0.02, d_hot: usize::MAX }, n, 5, 0);
        let mut hot_targets = std::collections::HashSet::new();
        for i in 0..20_000u64 {
            // 50% of traffic on key 0, rest unique.
            let key = if i % 2 == 0 { 0 } else { i + 1 };
            if let Target::One(t) = r.route(key) {
                if key == 0 {
                    hot_targets.insert(t);
                }
            }
        }
        assert!(
            hot_targets.len() > 2,
            "hot key stayed on {} instances; W-Choices must widen it",
            hot_targets.len()
        );
    }

    #[test]
    fn d_choices_widens_hot_key_and_keeps_tail_at_two() {
        let n = 32;
        let mut r = Router::new(&Grouping::d_choices(), n, 5, 0);
        let mut hot_targets = std::collections::HashSet::new();
        let mut tail_targets: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for i in 0..40_000u64 {
            // 40% of traffic on key 0, rest a cycling uniform tail.
            let key = if i % 5 < 2 { 0 } else { 1 + (i % 400) };
            if let Target::One(t) = r.route(key) {
                if key == 0 {
                    hot_targets.insert(t);
                } else {
                    tail_targets.entry(key).or_default().insert(t);
                }
            }
        }
        assert!(
            hot_targets.len() > 2,
            "hot key stayed on {} instances; D-Choices must widen it",
            hot_targets.len()
        );
        // d(0.4) = ceil(0.4·32/1.1) = 12: never wider than the bound.
        assert!(hot_targets.len() <= 12, "hot key on {} instances", hot_targets.len());
        for (key, targets) in tail_targets {
            assert!(targets.len() <= 2, "tail key {key} used {} instances", targets.len());
        }
    }

    #[test]
    fn w_choices_spreads_extreme_key_past_d_choices() {
        let n = 24;
        let run = |grouping: Grouping| {
            let mut r = Router::new(&grouping, n, 7, 0);
            let mut hot = std::collections::HashSet::new();
            for i in 0..30_000u64 {
                let key = if i % 2 == 0 { 0 } else { i + 1 };
                if let Target::One(t) = r.route(key) {
                    if key == 0 {
                        hot.insert(t);
                    }
                }
            }
            hot.len()
        };
        let dc = run(Grouping::d_choices());
        let wc = run(Grouping::w_choices());
        assert_eq!(wc, n, "a 50% key under W-Choices reaches every instance");
        assert!(dc < wc, "D-Choices spread {dc} must stay below W-Choices {wc}");
        assert!(dc > 2);
    }

    #[test]
    fn elastic_replays_plan_and_confines_routing_to_live_set() {
        use pkg_elastic::{Change, MembershipPlan};
        let plan = MembershipPlan::new(4)
            .with_step(100, [Change::Remove(3)])
            .with_step(200, [Change::Insert(3)]);
        let mut r = Router::new(&Grouping::elastic(plan), 4, 9, 0);
        assert_eq!(r.advance_epoch(), None, "epoch 0 needs no announcement");
        let mut epochs = Vec::new();
        let mut hit_while_dead = false;
        for (routed, k) in (0u64..300).enumerate() {
            let routed = routed as u64;
            while let Some(e) = r.advance_epoch() {
                epochs.push((routed, e));
            }
            if let Target::One(w) = r.route(k) {
                if (100..200).contains(&routed) && w == 3 {
                    hit_while_dead = true;
                }
            }
        }
        assert_eq!(epochs, vec![(100, 1), (200, 2)]);
        assert!(!hit_while_dead, "no tuple may route to a dead instance");
        assert_eq!(r.advance_epoch(), None, "plan exhausted");
    }

    #[test]
    fn elastic_senders_agree_on_candidates_with_static_partial() {
        // An elastic edge whose plan never changes routes exactly like
        // Partial — markers aside, the schemes are byte-identical.
        use pkg_elastic::MembershipPlan;
        let mut a = Router::new(&Grouping::elastic(MembershipPlan::new(8)), 8, 3, 0);
        let mut b = Router::new(&Grouping::partial_key(), 8, 3, 0);
        for k in 0..2_000u64 {
            assert_eq!(a.advance_epoch(), None);
            assert_eq!(a.route(k % 37), b.route(k % 37));
        }
    }

    #[test]
    fn route_batch_matches_per_tuple_route_for_every_batchable_grouping() {
        let groupings = [
            Grouping::Shuffle,
            Grouping::Key,
            Grouping::partial_key(),
            Grouping::PartialHot { hot_threshold: 0.05, d_hot: 6 },
            Grouping::d_choices(),
            Grouping::w_choices(),
            Grouping::Global,
        ];
        // A skewed stream: key 0 is hot, the tail cycles.
        let keys: Vec<u64> = (0..5_000u64).map(|i| if i % 3 == 0 { 0 } else { i % 97 }).collect();
        for g in groupings {
            let mut one = Router::new(&g, 12, 11, 2);
            let mut batched = Router::new(&g, 12, 11, 2);
            assert!(batched.is_batchable());
            let mut out = TargetBatch::new();
            for chunk in keys.chunks(64) {
                batched.route_batch(chunk, &mut out);
                assert_eq!(out.len(), chunk.len());
                for (i, &k) in chunk.iter().enumerate() {
                    assert_eq!(one.route(k), Target::One(out.dest(i)), "{g:?} diverged at key {k}");
                }
            }
        }
    }

    #[test]
    fn target_batch_runs_group_stably_by_destination() {
        let mut r = Router::new(&Grouping::Key, 4, 3, 0);
        let keys: Vec<u64> = (0..257).collect();
        let mut out = TargetBatch::new();
        r.route_batch(&keys, &mut out);
        let mut seen = 0usize;
        let mut prev_dest = None;
        for (dest, idxs) in out.runs() {
            assert!(prev_dest.is_none_or(|p| p < dest), "runs ascend by destination");
            prev_dest = Some(dest);
            assert!(!idxs.is_empty());
            for w in idxs.windows(2) {
                assert!(w[0] < w[1], "within a run, stream order is preserved");
            }
            for &i in idxs {
                assert_eq!(out.dest(i as usize), dest);
            }
            seen += idxs.len();
        }
        assert_eq!(seen, keys.len(), "runs partition the batch");
    }

    #[test]
    fn elastic_and_broadcast_are_not_batchable() {
        use pkg_elastic::MembershipPlan;
        assert!(!Router::new(&Grouping::elastic(MembershipPlan::new(4)), 4, 0, 0).is_batchable());
        assert!(!Router::new(&Grouping::Broadcast, 4, 0, 0).is_batchable());
    }

    #[test]
    fn global_always_zero_broadcast_always_all() {
        let mut g = Router::new(&Grouping::Global, 5, 0, 2);
        let mut b = Router::new(&Grouping::Broadcast, 5, 0, 2);
        assert_eq!(g.route(9), Target::One(0));
        assert_eq!(b.route(9), Target::All);
    }
}
