//! Central timer wheel for the pool executor's tick deadlines.
//!
//! The thread-per-instance executor realizes tick deadlines with a
//! `recv_timeout` per bolt thread — every ticking instance costs one blocked
//! OS thread and one kernel timer. The pool executor replaces all of them
//! with this single hashed wheel: tasks register `(deadline, task)` entries,
//! and the workers' scheduling loop calls [`TimerWheel::fire`] to collect
//! everything due, waking those tasks for a tick activation.
//!
//! Layout: 256 slots of ~1 ms granules (`GRANULE_NS` is a power of two so
//! the slot index is a shift, not a division), giving a ~268 ms horizon.
//! Entries beyond the horizon go to an overflow list and migrate into the
//! wheel as the cursor approaches them. Firing is exact: an entry only
//! fires once `now >= deadline`, never early — slot membership is a
//! coarsening for scan efficiency, not for firing decisions.

#![warn(clippy::pedantic)]

/// Slot granularity in nanoseconds (`2^20` ≈ 1.05 ms).
const GRANULE_NS: u64 = 1 << 20;
/// Number of wheel slots; horizon = `SLOTS * GRANULE_NS` ≈ 268 ms.
const SLOTS: u64 = 256;

#[derive(Debug, Clone, Copy)]
struct Entry {
    deadline_ns: u64,
    task: usize,
    /// `true` for service-stall deadlines, which must wake even a PARKED
    /// task (`WakeKind::Unpark`); tick deadlines wake with `Notify` and
    /// leave backpressure-parked tasks alone.
    unpark: bool,
}

/// A hashed timer wheel over `(deadline, task)` entries.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    /// Next granule to inspect; all entries with `granule < cursor` have
    /// fired.
    cursor: u64,
    /// Entries whose granule lies beyond `cursor + SLOTS`.
    overflow: Vec<Entry>,
    len: usize,
}

#[inline]
fn granule(deadline_ns: u64) -> u64 {
    deadline_ns / GRANULE_NS
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        Self {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            overflow: Vec::new(),
            len: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Register `task` to be tick-woken (`Notify`) once the clock reaches
    /// `deadline_ns` (nanoseconds on the same clock passed to
    /// [`TimerWheel::fire`]).
    pub(crate) fn insert(&mut self, deadline_ns: u64, task: usize) {
        self.insert_entry(Entry { deadline_ns, task, unpark: false });
    }

    /// Register a service-stall deadline: fires as an `Unpark` wake, which
    /// resumes the stalled (parked) task.
    pub(crate) fn insert_unpark(&mut self, deadline_ns: u64, task: usize) {
        self.insert_entry(Entry { deadline_ns, task, unpark: true });
    }

    fn insert_entry(&mut self, entry: Entry) {
        let g = granule(entry.deadline_ns).max(self.cursor);
        if g < self.cursor + SLOTS {
            self.slots[(g % SLOTS) as usize].push(entry);
        } else {
            self.overflow.push(entry);
        }
        self.len += 1;
    }

    /// Collect every `(task, unpark)` whose deadline is `<= now_ns` into
    /// `due` and advance the cursor.
    pub(crate) fn fire(&mut self, now_ns: u64, due: &mut Vec<(usize, bool)>) {
        if self.len == 0 {
            // Keep the cursor tracking the clock so late inserts land in
            // live slots rather than a long-dead window.
            self.cursor = self.cursor.max(granule(now_ns));
            return;
        }
        let now_granule = granule(now_ns);
        while self.cursor <= now_granule {
            let slot = &mut self.slots[(self.cursor % SLOTS) as usize];
            let cursor = self.cursor;
            let mut kept = 0;
            for i in 0..slot.len() {
                let e = slot[i];
                // A slot holds this granule's entries plus later wrap-around
                // residents; fire only the former, and of those only the
                // truly-due (the cursor granule itself may be mid-flight).
                if granule(e.deadline_ns).max(cursor) == cursor && e.deadline_ns <= now_ns {
                    due.push((e.task, e.unpark));
                    self.len -= 1;
                } else {
                    slot[kept] = e;
                    kept += 1;
                }
            }
            slot.truncate(kept);
            if self.cursor == now_granule {
                break;
            }
            self.cursor += 1;
            // Crossing into a new granule opens one slot of horizon; pull
            // any overflow entries that now fit.
            if !self.overflow.is_empty() {
                let horizon = self.cursor + SLOTS;
                let mut i = 0;
                while i < self.overflow.len() {
                    if granule(self.overflow[i].deadline_ns) < horizon {
                        let e = self.overflow.swap_remove(i);
                        let g = granule(e.deadline_ns).max(self.cursor);
                        self.slots[(g % SLOTS) as usize].push(e);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Earliest pending deadline, if any — the idle workers' sleep bound.
    /// O(entries); called only when a worker is about to park.
    pub(crate) fn next_deadline_ns(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.slots.iter().flatten().chain(self.overflow.iter()).map(|e| e.deadline_ns).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(w: &mut TimerWheel, now: u64) -> Vec<usize> {
        let mut due = Vec::new();
        w.fire(now, &mut due);
        let mut tasks: Vec<usize> = due.into_iter().map(|(t, _)| t).collect();
        tasks.sort_unstable();
        tasks
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let mut w = TimerWheel::new();
        w.insert(5 * GRANULE_NS + 17, 1);
        assert!(fired(&mut w, 5 * GRANULE_NS + 16).is_empty(), "one ns early");
        assert_eq!(fired(&mut w, 5 * GRANULE_NS + 17), vec![1], "exactly due");
        assert!(w.is_empty());
    }

    #[test]
    fn same_granule_split_by_exact_deadline() {
        let mut w = TimerWheel::new();
        w.insert(100, 1);
        w.insert(200, 2);
        assert_eq!(fired(&mut w, 150), vec![1]);
        assert_eq!(fired(&mut w, 250), vec![2]);
    }

    #[test]
    fn wrap_around_does_not_cross_fire() {
        let mut w = TimerWheel::new();
        // Same slot index, SLOTS granules apart.
        w.insert(3 * GRANULE_NS, 1);
        w.insert((3 + SLOTS) * GRANULE_NS, 2);
        assert_eq!(fired(&mut w, 4 * GRANULE_NS), vec![1]);
        assert!(fired(&mut w, (SLOTS + 2) * GRANULE_NS).is_empty());
        assert_eq!(fired(&mut w, (SLOTS + 4) * GRANULE_NS), vec![2]);
    }

    #[test]
    fn overflow_entries_migrate_and_fire() {
        let mut w = TimerWheel::new();
        let far = 5 * SLOTS * GRANULE_NS + 42;
        w.insert(far, 9);
        assert!(fired(&mut w, far - GRANULE_NS).is_empty());
        assert_eq!(fired(&mut w, far), vec![9]);
        assert!(w.is_empty());
    }

    #[test]
    fn next_deadline_is_minimum_across_wheel_and_overflow() {
        let mut w = TimerWheel::new();
        assert_eq!(w.next_deadline_ns(), None);
        w.insert(10 * SLOTS * GRANULE_NS, 1);
        w.insert(7 * GRANULE_NS, 2);
        assert_eq!(w.next_deadline_ns(), Some(7 * GRANULE_NS));
    }

    #[test]
    fn stale_clock_insert_still_fires() {
        let mut w = TimerWheel::new();
        let _ = fired(&mut w, 50 * GRANULE_NS); // cursor advanced
        w.insert(3, 4); // deadline long past the cursor
        assert_eq!(fired(&mut w, 50 * GRANULE_NS + 1), vec![4]);
    }

    #[test]
    fn unpark_flag_survives_the_wheel() {
        let mut w = TimerWheel::new();
        w.insert(3 * GRANULE_NS, 1);
        w.insert_unpark(3 * GRANULE_NS + 1, 2);
        let mut due = Vec::new();
        w.fire(4 * GRANULE_NS, &mut due);
        due.sort_unstable();
        assert_eq!(due, vec![(1, false), (2, true)]);
    }

    #[test]
    fn periodic_rearm_pattern() {
        let mut w = TimerWheel::new();
        let period = 5 * GRANULE_NS;
        let mut deadline = period;
        let mut fires = 0;
        for step in 1..=100u64 {
            let now = step * GRANULE_NS;
            for t in fired(&mut w, now) {
                assert_eq!(t, 0);
                fires += 1;
                deadline += period;
                w.insert(deadline, 0);
            }
            if step == 1 {
                w.insert(deadline, 0);
            }
        }
        assert_eq!(fires, 20, "one fire per elapsed period");
    }
}
