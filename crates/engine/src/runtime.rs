//! Topology execution: either one OS thread per instance with bounded
//! channels per edge (the original engine, kept as a differential-testing
//! oracle), or a cooperative worker-pool scheduler (`crate::pool`) that
//! runs hundred-instance topologies in one process. Both share the same
//! edge-seed derivation and Eof-counting shutdown, so a topology routes
//! byte-identically under either executor.

use std::time::Instant;

use crossbeam::channel::{bounded, Sender};
use pkg_hash::murmur3::fmix64;

use crate::bolt::{EdgeTx, OutEdge};
use crate::executor::{run_bolt, run_spout};
use crate::grouping::{Grouping, Router};
use crate::ingress::{DepthGauge, HedgeState, IngressOptions, SpoutIngress};
use crate::metrics::{InstanceStats, RunStats};
use crate::sync::Arc;
use crate::topology::{ComponentKind, Topology};
use crate::tuple::Packet;

/// Which executor drives a topology's instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorMode {
    /// One OS thread per processing element instance, blocking bounded
    /// channels per edge. Faithful to the paper's one-executor-per-PEI
    /// deployment, but collapses into scheduler thrash beyond ~100
    /// instances; kept as the differential-testing oracle for the pool.
    ThreadPerInstance,
    /// Cooperative worker-pool scheduler: a fixed pool of worker threads
    /// drives every instance as a task with its own mailbox, batching
    /// packets per activation and parking on backpressure instead of
    /// blocking OS threads. Hundreds of instances fit one process.
    Pool {
        /// Worker threads; `0` = `std::thread::available_parallelism()`.
        workers: usize,
        /// Packets drained per task activation; `0` = the default quantum
        /// ([`crate::pool::DEFAULT_BATCH`]).
        batch: usize,
    },
}

impl ExecutorMode {
    /// The pool executor with default worker count and batch quantum.
    pub fn pool() -> Self {
        ExecutorMode::Pool { workers: 0, batch: 0 }
    }

    /// Executor selected by the `PKG_ENGINE_EXECUTOR` environment variable
    /// (`pool` or `threads`), if set. Lets CI run the whole workspace test
    /// suite under the pool executor without touching any call site.
    fn from_env() -> Option<Self> {
        match std::env::var("PKG_ENGINE_EXECUTOR") {
            Ok(v) => match v.as_str() {
                "pool" => Some(ExecutorMode::pool()),
                "threads" | "thread-per-instance" | "" => Some(ExecutorMode::ThreadPerInstance),
                other => panic!("PKG_ENGINE_EXECUTOR must be 'pool' or 'threads', got {other:?}"),
            },
            Err(_) => None,
        }
    }
}

/// Per-instance relative capacity weights for heterogeneous deployments,
/// keyed by component name. A weight of `0.5` makes that instance
/// half-speed: every [`crate::bolt::Emitter::stall`] it charges (directly
/// or through `pkg_agg::ServiceDelay`) is scaled by `1/capacity`, so the
/// same per-tuple work takes twice as long — inline under the
/// thread-per-instance executor, on the timer wheel under the pool.
///
/// Instances not covered (unlisted components, or indices past the weight
/// vector) run at capacity 1.0.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InstanceCapacities {
    by_component: Vec<(String, Vec<f64>)>,
}

impl InstanceCapacities {
    /// Every instance at capacity 1.0 (the homogeneous default).
    pub fn uniform() -> Self {
        Self::default()
    }

    /// Set per-instance weights for one component (`weights[i]` is instance
    /// `i`'s relative capacity; missing trailing instances default to 1.0).
    ///
    /// # Panics
    /// Panics if any weight is non-finite or ≤ 0.
    pub fn with(mut self, component: impl Into<String>, weights: &[f64]) -> Self {
        for &w in weights {
            assert!(w.is_finite() && w > 0.0, "capacities must be finite and positive, got {w}");
        }
        let component = component.into();
        self.by_component.retain(|(c, _)| *c != component);
        self.by_component.push((component, weights.to_vec()));
        self
    }

    /// Relative capacity of `instance` of `component` (default 1.0).
    pub fn weight(&self, component: &str, instance: usize) -> f64 {
        self.by_component
            .iter()
            .find(|(c, _)| c == component)
            .and_then(|(_, ws)| ws.get(instance).copied())
            .unwrap_or(1.0)
    }

    /// The service-time multiplier `1/capacity` for one instance.
    pub(crate) fn stall_scale(&self, component: &str, instance: usize) -> f64 {
        1.0 / self.weight(component, instance)
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Capacity of each instance's input queue. Small values propagate
    /// backpressure quickly (an overloaded worker stalls its sources — the
    /// phenomenon Q4 measures); large values decouple components.
    pub channel_capacity: usize,
    /// Seed for edge hash functions.
    pub seed: u64,
    /// Executor driving the instances. The default honors
    /// `PKG_ENGINE_EXECUTOR` (falling back to
    /// [`ExecutorMode::ThreadPerInstance`]), so the executor under test is
    /// switchable process-wide.
    pub executor: ExecutorMode,
    /// Per-instance capacity weights (heterogeneous hardware emulation);
    /// both executors apply them by scaling emulated service time.
    pub capacities: InstanceCapacities,
    /// Pool executor only: give destinations fed by exactly one upstream
    /// sender instance a lock-free SPSC ring mailbox instead of a mutexed
    /// queue (on by default; `false` forces every mailbox onto the mutexed
    /// path, which the parity suite uses as a differential oracle).
    pub spsc_rings: bool,
    /// Ingress layer between spouts and the routing layer: admission
    /// control, load shedding, and hedged dispatch (see
    /// [`crate::ingress`]). `None` (the default) disables it entirely —
    /// the spout path is then byte-for-byte the pre-ingress code path.
    pub ingress: Option<IngressOptions>,
    /// Pluggable load signals for the load-consulting groupings (see
    /// [`crate::load::LoadSignalOptions`]): which signal they minimize
    /// (tuple count, in-flight tuples, Peak-EWMA service latency) and
    /// whether an online capacity estimator rescales it from observed
    /// service times. `None` (the default) — and the degenerate
    /// `TupleCount`-without-estimator configuration — keep the original
    /// per-sender local-count path byte-for-byte.
    pub load: Option<crate::load::LoadSignalOptions>,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self {
            channel_capacity: 1_024,
            seed: 42,
            executor: ExecutorMode::from_env().unwrap_or(ExecutorMode::ThreadPerInstance),
            capacities: InstanceCapacities::uniform(),
            spsc_rings: true,
            ingress: None,
            load: None,
        }
    }
}

/// The hash seed every sender on the edge `from → to` derives its routing
/// from (`from`/`to` are component indices in topology insertion order).
/// Exposed so out-of-engine replays — e.g. the single-phase parity oracle
/// in `pkg-apps::heavy_hitters` — can reproduce a run's routing exactly.
pub fn edge_seed(runtime_seed: u64, from: usize, to: usize) -> u64 {
    fmix64(runtime_seed ^ ((from as u64) << 32 | to as u64))
}

/// Outgoing edges of each component: `(to, grouping, edge_seed)` in input
/// declaration order. Shared by both executors so routing is identical.
pub(crate) fn build_out_edges(topology: &Topology, seed: u64) -> Vec<Vec<(usize, Grouping, u64)>> {
    let mut out_edges: Vec<Vec<(usize, Grouping, u64)>> =
        vec![Vec::new(); topology.components.len()];
    for (to, c) in topology.components.iter().enumerate() {
        for (from, grouping) in &c.inputs {
            out_edges[from.0].push((to, grouping.clone(), edge_seed(seed, from.0, to)));
        }
    }
    out_edges
}

/// Upstream sender (instance) counts per component, for Eof bookkeeping.
pub(crate) fn upstream_sender_counts(topology: &Topology) -> Vec<usize> {
    let mut upstream = vec![0usize; topology.components.len()];
    for (my_index, c) in topology.components.iter().enumerate() {
        for (from, _) in &c.inputs {
            upstream[my_index] += topology.components[from.0].parallelism;
        }
    }
    upstream
}

/// Executes topologies.
#[derive(Debug, Default, Clone)]
pub struct Runtime {
    opts: RuntimeOptions,
}

impl Runtime {
    /// Runtime with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runtime with custom options.
    pub fn with_options(opts: RuntimeOptions) -> Self {
        Self { opts }
    }

    /// Run a topology to completion (all spouts exhausted, all queues
    /// drained) and return the collected statistics.
    pub fn run(&self, topology: Topology) -> RunStats {
        topology.validate();
        match self.opts.executor {
            ExecutorMode::ThreadPerInstance => self.run_thread_per_instance(topology),
            ExecutorMode::Pool { workers, batch } => crate::pool::run_pool(
                &topology,
                self.opts.channel_capacity,
                self.opts.seed,
                if workers == 0 {
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                } else {
                    workers
                },
                if batch == 0 { crate::pool::DEFAULT_BATCH } else { batch },
                &self.opts.capacities,
                self.opts.spsc_rings,
                self.opts.ingress.as_ref(),
                self.opts.load.as_ref(),
            ),
        }
    }

    /// The original executor: spawn one OS thread per instance.
    fn run_thread_per_instance(&self, topology: Topology) -> RunStats {
        let n_components = topology.components.len();

        // Input channels: one per bolt instance. Spouts have none.
        let mut txs: Vec<Vec<Option<Sender<Packet>>>> = Vec::with_capacity(n_components);
        let mut rxs: Vec<Vec<Option<crossbeam::channel::Receiver<Packet>>>> =
            Vec::with_capacity(n_components);
        for c in &topology.components {
            match c.kind {
                ComponentKind::Spout(_) => {
                    txs.push(vec![None; 0]);
                    rxs.push(Vec::new());
                }
                ComponentKind::Bolt(_) => {
                    let mut ct = Vec::with_capacity(c.parallelism);
                    let mut cr = Vec::with_capacity(c.parallelism);
                    for _ in 0..c.parallelism {
                        let (tx, rx) = bounded(self.opts.channel_capacity);
                        ct.push(Some(tx));
                        cr.push(Some(rx));
                    }
                    txs.push(ct);
                    rxs.push(cr);
                }
            }
        }

        // Reverse adjacency with stable per-edge seeds, and upstream
        // sender counts for Eof bookkeeping — both shared with the pool
        // executor so the two route identically.
        let out_edges = build_out_edges(&topology, self.opts.seed);
        let upstream_senders = upstream_sender_counts(&topology);

        // Shared load signals per destination component (None everywhere
        // unless `RuntimeOptions::load` selects a non-default signal); the
        // same helper feeds the pool executor, so the two executors route
        // on identical signal state.
        let parallelism: Vec<usize> = topology.components.iter().map(|c| c.parallelism).collect();
        let component_shared =
            crate::load::component_signals(self.opts.load.as_ref(), &out_edges, &parallelism);

        // One depth gauge per bolt instance: every upstream sender
        // increments on delivery, the owning bolt decrements on receipt.
        // Always on — they feed `InstanceStats::max_depth` and, when the
        // ingress layer is enabled, the shed watermark and hedge budget.
        let gauges: Vec<Vec<Arc<DepthGauge>>> = topology
            .components
            .iter()
            .map(|c| match c.kind {
                ComponentKind::Spout(_) => Vec::new(),
                ComponentKind::Bolt(_) => {
                    (0..c.parallelism).map(|_| Arc::new(DepthGauge::new())).collect()
                }
            })
            .collect();

        let epoch = Instant::now();
        let (stats_tx, stats_rx) = crossbeam::channel::unbounded::<InstanceStats>();
        let mut handles = Vec::new();
        let mut total_instances = 0usize;

        for (ci, c) in topology.components.iter().enumerate() {
            // An index loop is clearer here: `i` names the instance and is
            // threaded into routers, receivers and executor identities.
            #[allow(clippy::needless_range_loop)]
            for i in 0..c.parallelism {
                total_instances += 1;
                let is_spout = matches!(c.kind, ComponentKind::Spout(_));
                // Build this instance's outgoing edges.
                let edges: Vec<OutEdge> = out_edges[ci]
                    .iter()
                    .map(|(to, grouping, edge_seed)| OutEdge {
                        router: Router::with_shared(
                            grouping,
                            topology.components[*to].parallelism,
                            *edge_seed,
                            i,
                            component_shared[*to].as_ref(),
                        ),
                        tx: EdgeTx::Channels(
                            txs[*to]
                                .iter()
                                .map(|t| match t.as_ref() {
                                    Some(tx) => tx.clone(),
                                    None => unreachable!("bolt txs live until spawn"),
                                })
                                .collect(),
                        ),
                        depths: gauges[*to].clone(),
                        hedge: match &self.opts.ingress {
                            Some(opts) if is_spout => opts.hedge_depth_budget.map(|budget| {
                                HedgeState::new(budget, (ci as u64) << 16 | i as u64)
                            }),
                            _ => None,
                        },
                        signals: component_shared[*to].clone(),
                    })
                    .collect();
                let name = c.name.clone();
                let stats_tx = stats_tx.clone();
                let stall_scale = self.opts.capacities.stall_scale(&c.name, i);
                match &c.kind {
                    ComponentKind::Spout(factory) => {
                        let spout = factory(i);
                        let ingress =
                            self.opts.ingress.as_ref().map(|opts| SpoutIngress::new(opts, i));
                        handles.push(std::thread::spawn(move || {
                            let s = run_spout(name, i, spout, edges, epoch, stall_scale, ingress);
                            if stats_tx.send(s).is_err() {
                                unreachable!("stats channel outlives executors");
                            }
                        }));
                    }
                    ComponentKind::Bolt(factory) => {
                        let bolt = factory(i);
                        let Some(rx) = rxs[ci][i].take() else {
                            unreachable!("each bolt receiver taken once");
                        };
                        let eof = upstream_senders[ci];
                        let tick = c.tick_every;
                        let gauge = Some(Arc::clone(&gauges[ci][i]));
                        let own_signals = component_shared[ci].clone();
                        handles.push(std::thread::spawn(move || {
                            let s = run_bolt(
                                name,
                                i,
                                bolt,
                                rx,
                                edges,
                                eof,
                                tick,
                                epoch,
                                stall_scale,
                                gauge,
                                own_signals,
                            );
                            if stats_tx.send(s).is_err() {
                                unreachable!("stats channel outlives executors");
                            }
                        }));
                    }
                }
            }
        }
        // Drop the runtime's own sender copies so only executors hold them.
        drop(txs);
        drop(stats_tx);

        let mut instances = Vec::with_capacity(total_instances);
        for _ in 0..total_instances {
            match stats_rx.recv() {
                Ok(s) => instances.push(s),
                Err(_) => panic!("an executor exited without reporting (did a bolt panic?)"),
            }
        }
        for h in handles {
            if h.join().is_err() {
                panic!("an executor thread panicked");
            }
        }
        let wall = epoch.elapsed();
        instances.sort_by(|a, b| a.component.cmp(&b.component).then(a.instance.cmp(&b.instance)));
        RunStats { wall, instances }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bolt::{Bolt, CountingBolt, Emitter};
    use crate::grouping::Grouping;
    use crate::spout::{spout_from_fn, spout_from_iter};
    use crate::tuple::Tuple;
    use std::time::Duration;

    fn word_stream(n: u64, vocab: u64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(format!("w{}", i % vocab).into_bytes(), 1)).collect()
    }

    #[test]
    fn single_spout_single_bolt_counts_everything() {
        let mut t = Topology::new();
        let s = t.add_spout("src", 1, |_| spout_from_iter(word_stream(5_000, 17)));
        let _ =
            t.add_bolt("count", 4, |_| Box::new(CountingBolt::default())).input(s, Grouping::Key);
        let stats = Runtime::new().run(t);
        assert_eq!(stats.processed("src"), 5_000);
        assert_eq!(stats.processed("count"), 5_000);
        assert_eq!(stats.loads("count").iter().sum::<u64>(), 5_000);
    }

    #[test]
    fn multiple_spout_instances_all_drain() {
        let mut t = Topology::new();
        let s = t.add_spout("src", 3, |_| spout_from_iter(word_stream(1_000, 7)));
        let _ = t
            .add_bolt("count", 2, |_| Box::new(CountingBolt::default()))
            .input(s, Grouping::Shuffle);
        let stats = Runtime::new().run(t);
        assert_eq!(stats.processed("src"), 3_000);
        assert_eq!(stats.processed("count"), 3_000);
        // Shuffle: both instances got work.
        assert!(stats.loads("count").iter().all(|&l| l > 1_000));
    }

    #[test]
    fn key_grouping_sends_each_key_to_one_instance() {
        // A bolt that re-emits its key; the downstream global bolt verifies
        // per-key instance exclusivity via distinct value tags.
        #[derive(Default)]
        struct TagBolt {
            me: usize,
        }
        impl Bolt for TagBolt {
            fn execute(&mut self, mut t: Tuple, out: &mut Emitter<'_>) {
                t.value = self.me as i64;
                out.emit(t);
            }
        }
        let mut t = Topology::new();
        let s = t.add_spout("src", 2, |_| spout_from_iter(word_stream(2_000, 11)));
        let tag =
            t.add_bolt("tag", 4, |i| Box::new(TagBolt { me: i })).input(s, Grouping::Key).id();
        let _sink = t
            .add_bolt("sink", 1, |_| Box::new(CollectBolt::default()))
            .input(tag, Grouping::Global)
            .id();

        #[derive(Default)]
        struct CollectBolt {
            seen: std::collections::HashMap<crate::tuple::TupleKey, i64>,
        }
        impl Bolt for CollectBolt {
            fn execute(&mut self, t: Tuple, _out: &mut Emitter<'_>) {
                let prev = self.seen.insert(t.key.clone(), t.value);
                if let Some(p) = prev {
                    assert_eq!(p, t.value, "key visited two different tag instances");
                }
            }
        }
        let stats = Runtime::new().run(t);
        // 2 spout instances × 2000 tuples each.
        assert_eq!(stats.processed("sink"), 4_000);
    }

    #[test]
    fn partial_grouping_balances_hot_key() {
        // Find a hot key whose two hash candidates differ under the edge
        // seed the runtime will derive (seed=9, edge (0 → 1)), so the test
        // is not at the mercy of a 1-in-n candidate collision.
        let seed = 9u64;
        let edge_seed = fmix64(seed ^ 1);
        let probe = crate::grouping::Router::new(&Grouping::partial_key(), 4, edge_seed, 0);
        let _ = probe; // candidates are internal; probe via a fresh PKG:
        let pkg = pkg_core::PartialKeyGrouping::new(4, 2, pkg_core::Estimate::local(4), edge_seed);
        use pkg_core::Partitioner as _;
        let hot = (0u64..100)
            .map(|i| format!("hot{i}"))
            .find(|k| {
                let t = Tuple::new(k.clone().into_bytes(), 0);
                let c = pkg.candidates(t.key_id());
                c[0] != c[1]
            })
            .expect("some key has distinct candidates");

        let mut t = Topology::new();
        // 60% of tuples share the hot key.
        let s = t.add_spout("src", 1, move |_| {
            let hot = hot.clone();
            let mut i = 0u64;
            spout_from_fn(move || {
                i += 1;
                (i <= 10_000).then(|| {
                    let k = if i % 10 < 6 { hot.clone() } else { format!("k{i}") };
                    Tuple::new(k.into_bytes(), 1)
                })
            })
        });
        let _ = t
            .add_bolt("count", 4, |_| Box::new(CountingBolt::default()))
            .input(s, Grouping::partial_key());
        let stats = Runtime::with_options(RuntimeOptions {
            channel_capacity: 1024,
            seed,
            ..RuntimeOptions::default()
        })
        .run(t);
        let loads = stats.loads("count");
        let max = *loads.iter().max().expect("non-empty");
        // KG would put ≥ 6000 on one instance; PKG splits the hot key over
        // its two candidates (~3000 each plus background traffic).
        assert!(max < 5_000, "loads = {loads:?}");
        assert_eq!(loads.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn ticks_fire_and_finish_flushes() {
        #[derive(Default)]
        struct FlushBolt {
            pending: i64,
        }
        impl Bolt for FlushBolt {
            fn execute(&mut self, t: Tuple, _out: &mut Emitter<'_>) {
                self.pending += t.value;
            }
            fn tick(&mut self, out: &mut Emitter<'_>) {
                if self.pending > 0 {
                    out.emit(Tuple::new(b"flush".to_vec(), self.pending));
                    self.pending = 0;
                }
            }
            fn finish(&mut self, out: &mut Emitter<'_>) {
                out.emit(Tuple::new(b"flush".to_vec(), self.pending));
                self.pending = 0;
            }
        }
        let mut t = Topology::new();
        let s = t.add_spout("src", 1, |_| {
            let mut i = 0;
            spout_from_fn(move || {
                i += 1;
                if i > 200 {
                    return None;
                }
                std::thread::sleep(Duration::from_micros(200));
                Some(Tuple::new(b"k".to_vec(), 1))
            })
        });
        let f = t
            .add_bolt("flush", 1, |_| Box::new(FlushBolt::default()))
            .input(s, Grouping::Global)
            .tick_every(Duration::from_millis(5))
            .id();
        let _ =
            t.add_bolt("sum", 1, |_| Box::new(CountingBolt::default())).input(f, Grouping::Global);
        let stats = Runtime::new().run(t);
        // Conservation through flushing: all 200 units arrive at the sink.
        let sink = stats.instances.iter().find(|i| i.component == "sum").expect("sink exists");
        assert_eq!(sink.processed, stats.emitted("flush"));
        let flusher =
            stats.instances.iter().find(|i| i.component == "flush").expect("flusher exists");
        assert!(flusher.ticks >= 2, "expected multiple ticks, got {}", flusher.ticks);
    }

    #[test]
    fn latency_is_recorded_at_bolts() {
        let mut t = Topology::new();
        let s = t.add_spout("src", 1, |_| spout_from_iter(word_stream(1_000, 5)));
        let _ =
            t.add_bolt("count", 2, |_| Box::new(CountingBolt::default())).input(s, Grouping::Key);
        let stats = Runtime::new().run(t);
        let lat = stats.latency("count");
        assert_eq!(lat.count(), 1_000);
        assert!(lat.mean() > 0.0);
    }

    fn pool_opts(
        workers: usize,
        batch: usize,
        channel_capacity: usize,
        seed: u64,
    ) -> RuntimeOptions {
        RuntimeOptions {
            channel_capacity,
            seed,
            executor: ExecutorMode::Pool { workers, batch },
            ..RuntimeOptions::default()
        }
    }

    #[test]
    fn pool_counts_everything_and_matches_thread_loads() {
        let build = || {
            let mut t = Topology::new();
            let s = t.add_spout("src", 2, |_| spout_from_iter(word_stream(4_000, 23)));
            let _ = t
                .add_bolt("count", 4, |_| Box::new(CountingBolt::default()))
                .input(s, Grouping::partial_key());
            t
        };
        let threads = Runtime::with_options(RuntimeOptions {
            channel_capacity: 64,
            seed: 7,
            executor: ExecutorMode::ThreadPerInstance,
            ..RuntimeOptions::default()
        })
        .run(build());
        let pool = Runtime::with_options(pool_opts(2, 0, 64, 7)).run(build());
        assert_eq!(pool.processed("count"), 8_000);
        // Byte-identical routing: per-instance loads agree exactly.
        assert_eq!(pool.loads("count"), threads.loads("count"));
        assert!(pool.activations("count") > 0, "pool counts activations");
    }

    #[test]
    fn pool_single_worker_completes_deep_chains() {
        // One worker, five cooperative stages, tiny mailboxes: progress
        // relies entirely on park/unpark, not on thread parallelism.
        struct Inc;
        impl Bolt for Inc {
            fn execute(&mut self, mut t: Tuple, out: &mut Emitter<'_>) {
                t.value += 1;
                out.emit(t);
            }
        }
        let mut t = Topology::new();
        let s = t.add_spout("src", 1, |_| spout_from_iter(word_stream(2_000, 5)));
        let mut prev = s;
        for name in ["a", "b", "c", "d"] {
            prev = t.add_bolt(name, 1, |_| Box::new(Inc)).input(prev, Grouping::Global).id();
        }
        let _ = t
            .add_bolt("sink", 1, |_| Box::new(CountingBolt::default()))
            .input(prev, Grouping::Global);
        let stats = Runtime::with_options(pool_opts(1, 8, 2, 3)).run(t);
        assert_eq!(stats.processed("sink"), 2_000);
        assert_eq!(stats.emitted("d"), 2_000);
    }

    #[test]
    fn pool_backpressure_parks_instead_of_blocking() {
        // Fast fan-in onto one slow consumer with capacity 1: producers
        // must park and be woken by the consumer, with nothing lost.
        let mut t = Topology::new();
        let s = t.add_spout("src", 3, |_| spout_from_iter(word_stream(1_500, 3)));
        let _ =
            t.add_bolt("slow", 1, |_| Box::new(CountingBolt::default())).input(s, Grouping::Global);
        let stats = Runtime::with_options(pool_opts(2, 16, 1, 11)).run(t);
        assert_eq!(stats.processed("slow"), 4_500);
    }

    #[test]
    fn pool_ticks_fire_from_timer_wheel() {
        #[derive(Default)]
        struct FlushBolt {
            pending: i64,
        }
        impl Bolt for FlushBolt {
            fn execute(&mut self, t: Tuple, _out: &mut Emitter<'_>) {
                self.pending += t.value;
            }
            fn tick(&mut self, out: &mut Emitter<'_>) {
                if self.pending > 0 {
                    out.emit(Tuple::new(b"flush".to_vec(), self.pending));
                    self.pending = 0;
                }
            }
            fn finish(&mut self, out: &mut Emitter<'_>) {
                if self.pending > 0 {
                    out.emit(Tuple::new(b"flush".to_vec(), self.pending));
                    self.pending = 0;
                }
            }
        }
        let mut t = Topology::new();
        let s = t.add_spout("src", 1, |_| {
            let mut i = 0;
            spout_from_fn(move || {
                i += 1;
                if i > 150 {
                    return None;
                }
                std::thread::sleep(Duration::from_micros(300));
                Some(Tuple::new(b"k".to_vec(), 1))
            })
        });
        let f = t
            .add_bolt("flush", 1, |_| Box::new(FlushBolt::default()))
            .input(s, Grouping::Global)
            .tick_every(Duration::from_millis(5))
            .id();
        struct SummingSink(std::sync::Arc<std::sync::atomic::AtomicI64>);
        impl Bolt for SummingSink {
            fn execute(&mut self, t: Tuple, _out: &mut Emitter<'_>) {
                self.0.fetch_add(t.value, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let mass = std::sync::Arc::new(std::sync::atomic::AtomicI64::new(0));
        let m = std::sync::Arc::clone(&mass);
        let _ = t
            .add_bolt("sum", 1, move |_| Box::new(SummingSink(std::sync::Arc::clone(&m))))
            .input(f, Grouping::Global);
        let stats = Runtime::with_options(pool_opts(2, 32, 1024, 5)).run(t);
        let sink = stats.instances.iter().find(|i| i.component == "sum").expect("sink exists");
        assert_eq!(sink.processed, stats.emitted("flush"));
        let flusher =
            stats.instances.iter().find(|i| i.component == "flush").expect("flusher exists");
        assert!(flusher.ticks >= 2, "expected ticks via the timer wheel, got {}", flusher.ticks);
        // Conservation through flushing: every unit arrives at the sink
        // exactly once, even across catch-up tick bursts.
        assert_eq!(mass.load(std::sync::atomic::Ordering::SeqCst), 150);
    }

    #[test]
    fn pool_diamond_and_broadcast_drain() {
        struct Forward;
        impl Bolt for Forward {
            fn execute(&mut self, t: Tuple, out: &mut Emitter<'_>) {
                out.emit(t);
            }
        }
        let mut t = Topology::new();
        let s = t.add_spout("src", 2, |_| spout_from_iter(word_stream(1_000, 13)));
        let a = t.add_bolt("a", 2, |_| Box::new(Forward)).input(s, Grouping::Shuffle).id();
        let b = t.add_bolt("b", 3, |_| Box::new(Forward)).input(s, Grouping::Broadcast).id();
        let _join = t
            .add_bolt("join", 2, |_| Box::new(CountingBolt::default()))
            .input(a, Grouping::Key)
            .input(b, Grouping::Key);
        let stats = Runtime::with_options(pool_opts(3, 64, 32, 2)).run(t);
        assert_eq!(stats.processed("a"), 2_000);
        assert_eq!(stats.processed("b"), 6_000, "broadcast replicates to all 3");
        assert_eq!(stats.processed("join"), 8_000);
    }

    #[test]
    fn pool_zero_capacity_clamps_to_one_and_completes() {
        // The thread executor's capacity-0 channels are rendezvous
        // channels; pool mailboxes have no rendezvous mode and clamp to 1
        // instead of deadlocking every producer.
        let mut t = Topology::new();
        let s = t.add_spout("src", 1, |_| spout_from_iter(word_stream(500, 7)));
        let _ = t
            .add_bolt("sink", 2, |_| Box::new(CountingBolt::default()))
            .input(s, Grouping::Shuffle);
        let stats = Runtime::with_options(pool_opts(2, 16, 0, 9)).run(t);
        assert_eq!(stats.processed("sink"), 500);
    }

    #[test]
    fn pool_empty_stream_shuts_down() {
        let mut t = Topology::new();
        let s = t.add_spout("src", 3, |_| spout_from_iter(Vec::new()));
        let _ = t
            .add_bolt("sink", 2, |_| Box::new(CountingBolt::default()))
            .input(s, Grouping::Shuffle);
        let stats = Runtime::with_options(pool_opts(2, 0, 8, 1)).run(t);
        assert_eq!(stats.processed("sink"), 0);
    }

    /// A bolt charging a fixed emulated service time per tuple via
    /// [`Emitter::stall`].
    struct StallBolt {
        per_tuple: Duration,
        seen: u64,
    }
    impl Bolt for StallBolt {
        fn execute(&mut self, _t: Tuple, out: &mut Emitter<'_>) {
            self.seen += 1;
            out.stall(self.per_tuple);
        }
    }

    #[test]
    fn pool_stalls_run_concurrently_instead_of_serializing_a_worker() {
        // 8 delay-emulating instances, 10 tuples × 5 ms each = 400 ms of
        // total emulated service time, driven by ONE pool worker. Sleeping
        // in execute would serialize all of it (≥ 400 ms); timer-wheel
        // stalls overlap across instances, so wall time stays near the
        // per-instance 50 ms. The generous bound still rejects any
        // serializing regression by a 2.5× margin.
        let mut t = Topology::new();
        let s = t.add_spout("src", 1, |_| spout_from_iter(word_stream(80, 80)));
        let _ = t
            .add_bolt("stall", 8, |_| {
                Box::new(StallBolt { per_tuple: Duration::from_millis(5), seen: 0 })
            })
            .input(s, Grouping::Shuffle);
        let stats = Runtime::with_options(pool_opts(1, 4, 64, 3)).run(t);
        assert_eq!(stats.processed("stall"), 80);
        assert!(
            stats.wall < Duration::from_millis(250),
            "stalls serialized the single worker: wall = {:?}",
            stats.wall
        );
    }

    #[test]
    fn pool_stalls_survive_concurrent_data_wakes() {
        // One stalling bolt instance fed by a fast spout on a 2-worker
        // pool: every push lands mid-activation and flips the bolt task to
        // NOTIFIED. The stall park must absorb those wakes (resuming at
        // the timer deadline, not immediately), so the 40 × 5 ms of
        // emulated service time is a hard LOWER bound on wall time — a
        // regression to requeue-on-notify finishes in milliseconds.
        let mut t = Topology::new();
        let s = t.add_spout("src", 1, |_| spout_from_iter(word_stream(40, 11)));
        let _ = t
            .add_bolt("stall", 1, |_| {
                Box::new(StallBolt { per_tuple: Duration::from_millis(5), seen: 0 })
            })
            .input(s, Grouping::Global);
        let stats = Runtime::with_options(pool_opts(2, 32, 8, 7)).run(t);
        assert_eq!(stats.processed("stall"), 40);
        assert!(
            stats.wall >= Duration::from_millis(150),
            "stalls were skipped under concurrent wakes: wall = {:?} < 40 × 5 ms",
            stats.wall
        );
    }

    #[test]
    fn thread_executor_stall_sleeps_inline_and_still_completes() {
        let mut t = Topology::new();
        let s = t.add_spout("src", 1, |_| spout_from_iter(word_stream(40, 7)));
        let _ = t
            .add_bolt("stall", 4, |_| {
                Box::new(StallBolt { per_tuple: Duration::from_millis(1), seen: 0 })
            })
            .input(s, Grouping::Shuffle);
        let stats = Runtime::with_options(RuntimeOptions {
            channel_capacity: 16,
            seed: 2,
            executor: ExecutorMode::ThreadPerInstance,
            ..RuntimeOptions::default()
        })
        .run(t);
        assert_eq!(stats.processed("stall"), 40);
        // 4 dedicated threads × 10 tuples × 1 ms: at least ~10 ms of real
        // sleeping happened somewhere (inline semantics preserved).
        assert!(stats.wall >= Duration::from_millis(8), "wall = {:?}", stats.wall);
    }

    #[test]
    fn capacity_weights_scale_stall_deterministically_on_both_executors() {
        // One spout shuffles 40 tuples over two stalling instances (20
        // each); instance 1 is a quarter-speed machine. The *charged*
        // service time is deterministic in the requested durations, so the
        // slow instance must report exactly 4× the stall of the fast one —
        // under either executor.
        let caps = InstanceCapacities::uniform().with("stall", &[1.0, 0.25]);
        let build = || {
            let mut t = Topology::new();
            let s = t.add_spout("src", 1, |_| spout_from_iter(word_stream(40, 7)));
            let _ = t
                .add_bolt("stall", 2, |_| {
                    Box::new(StallBolt { per_tuple: Duration::from_millis(1), seen: 0 })
                })
                .input(s, Grouping::Shuffle);
            t
        };
        for executor in
            [ExecutorMode::ThreadPerInstance, ExecutorMode::Pool { workers: 2, batch: 16 }]
        {
            let stats = Runtime::with_options(RuntimeOptions {
                channel_capacity: 64,
                seed: 3,
                executor,
                capacities: caps.clone(),
                ..RuntimeOptions::default()
            })
            .run(build());
            assert_eq!(stats.processed("stall"), 40);
            let stalled = stats.stalled_ns("stall");
            assert_eq!(stalled[0], 20 * 1_000_000, "full-speed instance charges 20 × 1 ms");
            assert_eq!(stalled[1], 4 * stalled[0], "quarter-speed instance charges 4×");
        }
    }

    #[test]
    fn pool_half_speed_instance_actually_runs_half_speed() {
        // A single half-capacity instance owing 10 × 5 ms of service time
        // must keep the topology alive for ≥ the scaled 100 ms — the
        // timer-wheel deadline is armed with the scaled duration, so this
        // is a hard lower bound (a full-speed run owes only 50 ms).
        let mut t = Topology::new();
        let s = t.add_spout("src", 1, |_| spout_from_iter(word_stream(10, 5)));
        let _ = t
            .add_bolt("stall", 1, |_| {
                Box::new(StallBolt { per_tuple: Duration::from_millis(5), seen: 0 })
            })
            .input(s, Grouping::Global);
        let stats = Runtime::with_options(RuntimeOptions {
            channel_capacity: 64,
            seed: 9,
            executor: ExecutorMode::Pool { workers: 2, batch: 4 },
            capacities: InstanceCapacities::uniform().with("stall", &[0.5]),
            ..RuntimeOptions::default()
        })
        .run(t);
        assert_eq!(stats.processed("stall"), 10);
        assert!(
            stats.wall >= Duration::from_millis(80),
            "half-speed instance finished too fast: wall = {:?} < 10 × 10 ms",
            stats.wall
        );
    }

    #[test]
    fn uncovered_instances_default_to_full_capacity() {
        let caps = InstanceCapacities::uniform().with("stall", &[2.0]);
        assert_eq!(caps.weight("stall", 0), 2.0);
        assert_eq!(caps.weight("stall", 1), 1.0, "index past the vector");
        assert_eq!(caps.weight("other", 0), 1.0, "unlisted component");
        // Re-setting a component replaces its weights.
        let caps = caps.with("stall", &[4.0]);
        assert_eq!(caps.weight("stall", 0), 4.0);
    }

    #[test]
    fn load_signal_default_collapses_to_exact_baseline_routing() {
        // `TupleCount` with no estimator is the degenerate configuration:
        // `component_signals` attaches nothing and every router takes the
        // pre-existing local-estimation path — loads must be byte-identical
        // to a run with `load: None`, under both executors.
        let build = || {
            let mut t = Topology::new();
            let s = t.add_spout("src", 2, |_| spout_from_iter(word_stream(3_000, 19)));
            let _ = t
                .add_bolt("count", 4, |_| Box::new(CountingBolt::default()))
                .input(s, Grouping::partial_key());
            t
        };
        for executor in
            [ExecutorMode::ThreadPerInstance, ExecutorMode::Pool { workers: 2, batch: 32 }]
        {
            let run = |load| {
                Runtime::with_options(RuntimeOptions {
                    channel_capacity: 64,
                    seed: 13,
                    executor,
                    load,
                    ..RuntimeOptions::default()
                })
                .run(build())
            };
            let base = run(None);
            let collapsed = run(Some(crate::load::LoadSignalOptions::metric(
                pkg_metrics::LoadMetricKind::TupleCount,
            )));
            assert_eq!(collapsed.loads("count"), base.loads("count"));
            assert_eq!(collapsed.processed("count"), 6_000);
        }
    }

    #[test]
    fn adaptive_signals_shed_load_from_a_slow_instance() {
        // Four stalling instances behind PKG; instance 0 is a quarter-speed
        // machine (its charged service time is 4×). Count-greedy routing is
        // capacity-blind and splits evenly; the Peak-EWMA signal observes
        // the 4× latency and sheds load from the slow instance.
        let caps = InstanceCapacities::uniform().with("stall", &[0.25]);
        let build = || {
            let mut t = Topology::new();
            let s = t.add_spout("src", 1, |_| spout_from_iter(word_stream(3_000, 997)));
            let _ = t
                .add_bolt("stall", 4, |_| {
                    Box::new(StallBolt { per_tuple: Duration::from_micros(50), seen: 0 })
                })
                .input(s, Grouping::partial_key());
            t
        };
        let run = |load| {
            Runtime::with_options(RuntimeOptions {
                channel_capacity: 16,
                seed: 17,
                capacities: caps.clone(),
                load,
                ..RuntimeOptions::default()
            })
            .run(build())
        };
        let adaptive = run(Some(crate::load::LoadSignalOptions::adaptive()));
        let static_run = run(None);
        let (a, s) = (adaptive.loads("stall"), static_run.loads("stall"));
        assert_eq!(a.iter().sum::<u64>(), 3_000);
        assert_eq!(s.iter().sum::<u64>(), 3_000);
        assert!(
            a[0] * 2 < s[0],
            "peak-ewma routing kept loading the slow instance: adaptive {a:?} vs static {s:?}"
        );
    }

    #[test]
    fn backpressure_does_not_deadlock() {
        // Tiny queues, fast producer, slow consumer: must still complete.
        let mut t = Topology::new();
        let s = t.add_spout("src", 1, |_| spout_from_iter(word_stream(2_000, 3)));
        let _ = t
            .add_bolt("slow", 1, |_| {
                struct SlowBolt;
                impl Bolt for SlowBolt {
                    fn execute(&mut self, _t: Tuple, _out: &mut Emitter<'_>) {
                        std::hint::black_box(0u64);
                    }
                }
                Box::new(SlowBolt)
            })
            .input(s, Grouping::Shuffle);
        let stats = Runtime::with_options(RuntimeOptions {
            channel_capacity: 4,
            seed: 1,
            ..RuntimeOptions::default()
        })
        .run(t);
        assert_eq!(stats.processed("slow"), 2_000);
    }
}
