//! A miniature Storm-like distributed stream processing engine.
//!
//! The paper's Q4 experiments run word count "on a Storm cluster of 10
//! virtual servers" and measure throughput, end-to-end latency, and memory.
//! This crate substitutes that cluster with a real multi-threaded engine.
//! Two executors are available via [`runtime::ExecutorMode`]: the faithful
//! one-OS-thread-per-PEI mode with blocking bounded channels, and a
//! cooperative worker-pool scheduler that runs each instance as a task
//! with a bounded mailbox — letting topologies with hundreds of instances
//! fit one process. In both, an overloaded instance exerts genuine
//! backpressure on its sources (exactly the mechanism that makes load
//! imbalance destroy throughput), and stream partitioning is pluggable
//! per edge via [`grouping::Grouping`] — including
//! [`grouping::Grouping::Partial`], the paper's contribution, implemented on
//! top of `pkg_core::PartialKeyGrouping` with per-sender **local** load
//! estimation, just as the reference Storm `CustomStreamGrouping` does.
//!
//! ```
//! use pkg_engine::prelude::*;
//!
//! // A 1-source → 3-counter topology over a tiny word stream.
//! let mut topo = Topology::new();
//! let words = topo.add_spout("words", 1, |_| {
//!     let mut n = 0u64;
//!     spout_from_fn(move || {
//!         n += 1;
//!         (n <= 1000).then(|| Tuple::new(format!("w{}", n % 7).into_bytes(), 1))
//!     })
//! });
//! let counts = topo
//!     .add_bolt("count", 3, |_| Box::new(CountingBolt::default()))
//!     .input(words, Grouping::partial_key());
//! let _ = counts;
//! let stats = Runtime::new().run(topo);
//! assert_eq!(stats.processed("count"), 1000);
//! ```

#![forbid(unsafe_code)]

pub mod bolt;
pub mod elastic;
pub mod executor;
pub mod grouping;
pub mod ingress;
pub mod load;
pub mod metrics;
pub(crate) mod pool;
pub mod ring;
pub mod runtime;
pub mod spout;
pub(crate) mod sync;
pub(crate) mod timer;
pub mod topology;
pub mod tuple;

/// Convenient glob import for building topologies.
pub mod prelude {
    pub use crate::bolt::{Bolt, CountingBolt, Emitter};
    pub use crate::elastic::{MigrationBus, MigrationMsg};
    pub use crate::grouping::Grouping;
    pub use crate::ingress::IngressOptions;
    pub use crate::load::LoadSignalOptions;
    pub use crate::runtime::{ExecutorMode, InstanceCapacities, Runtime, RuntimeOptions};
    pub use crate::spout::{spout_from_fn, spout_from_iter, Spout};
    pub use crate::topology::Topology;
    pub use crate::tuple::{Tuple, TupleKey};
}

pub use bolt::{Bolt, Emitter};
pub use elastic::{MigrationBus, MigrationMsg, EPOCH_MARKER_KEY};
pub use grouping::Grouping;
pub use ingress::IngressOptions;
pub use load::LoadSignalOptions;
pub use metrics::{InstanceStats, RunStats};
pub use runtime::{edge_seed, ExecutorMode, InstanceCapacities, Runtime, RuntimeOptions};
pub use spout::Spout;
pub use topology::Topology;
pub use tuple::{Tuple, TupleKey};
