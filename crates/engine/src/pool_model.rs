//! Model-checked concurrency suite for the pool executor (`--features
//! pkg_model`). Compiled as a child of `pool` so fixtures can build [`Shared`]
//! directly and drive the real `wake_state`/`settle`/`run_task`/`worker_loop`
//! code paths under `pkg_model`'s controlled scheduler, which exhaustively
//! enumerates thread interleavings (DFS, bounded preemption).
//!
//! Invariants pinned here:
//! 1. **Lost-wake freedom** — a mailbox push racing the worker's
//!    empty-check → IDLE transition never strands a packet
//!    ([`no_lost_wake_between_empty_check_and_idle`]).
//! 2. **Stalls survive data wakes** (the PR 4 regression) — a concurrent
//!    `Notify` never converts an `Outcome::Stall` park into an instant
//!    requeue ([`stall_never_skipped_by_concurrent_data_wake`]).
//! 3. **Parker token protocol** — exhaustively checked in `pkg-model`'s own
//!    suite and `vendor/crossbeam`'s `model_park_unpark_has_no_lost_wake`.
//! 4. **Eof ordering under spill** — a full spout→bolt run over a
//!    capacity-1 mailbox (every second emission spills) preserves
//!    per-destination FIFO and the Eof-last protocol, end to end through
//!    the real `worker_loop` ([`spill_preserves_order_and_eof_protocol`]).
//!
//! Detection power is proved, not assumed: `mutation_*` tests re-introduce
//! the PR 4 stall bug and an unconditional-IDLE variant of the idle
//! transition, and assert the checker *finds* the violating schedule.

// Test-only module: the parent's `#![warn(clippy::pedantic)]` does not need
// to police fixture code.
#![allow(clippy::pedantic)]

use super::*;
use crate::grouping::Grouping;
use crate::spout::spout_from_iter;
use crate::tuple::Tuple;
use std::sync::{Arc, Mutex as StdMutex};

/// A `Shared` with `n_tasks` bolt-like slots (mailbox capacity `cap`) and
/// one worker-local queue; enough to race producers against settlement.
fn mini_shared(n_tasks: usize, cap: usize) -> Shared {
    Shared {
        tasks: (0..n_tasks)
            .map(|_| TaskSlot {
                state: AtomicU8::new(IDLE),
                mailbox: Some(Mailbox { cap, inner: Mutex::default() }),
                body: Mutex::new(None),
            })
            .collect(),
        sched: Mutex::new(Sched { runq: VecDeque::new(), timers: TimerWheel::new() }),
        locals: vec![Mutex::new(VecDeque::new())],
        idlers: Mutex::new(Vec::new()),
        remaining: AtomicUsize::new(n_tasks),
        epoch: Instant::now(),
        batch: DEFAULT_BATCH,
        stats: Mutex::new(Vec::new()),
    }
}

fn mailbox_len(shared: &Shared, tid: usize) -> usize {
    let Some(mb) = shared.tasks[tid].mailbox.as_ref() else {
        unreachable!("mini_shared tasks all have mailboxes");
    };
    lock(&mb.inner).queue.len()
}

/// Invariant 1: across *every* interleaving of a producer's
/// `try_push`+wake with the worker's "mailbox empty → settle(Idle)"
/// epilogue, a queued packet always leaves the task runnable (QUEUED) —
/// the NOTIFIED latch plus the CAS-failure requeue close the race window.
#[test]
fn no_lost_wake_between_empty_check_and_idle() {
    pkg_model::Builder::new().preemption_bound(2).model(|| {
        let shared = Arc::new(mini_shared(1, 4));
        shared.tasks[0].state.store(RUNNING, SeqCst);
        let producer = {
            let shared = Arc::clone(&shared);
            pkg_model::thread::spawn(move || {
                let pushed = shared.try_push(0, Packet::Eof);
                assert!(pushed.is_ok(), "capacity 4 mailbox never fills here");
            })
        };
        let worker = {
            let shared = Arc::clone(&shared);
            pkg_model::thread::spawn(move || {
                let mut inbox = PacketBatch::default();
                let outcome = if shared.refill_inbox(0, &mut inbox, 64) == 0 {
                    Outcome::Idle
                } else {
                    Outcome::Yield
                };
                let requeue = || {
                    shared.tasks[0].state.store(QUEUED, SeqCst);
                    lock(&shared.sched).runq.push_back(0);
                };
                settle(&shared, 0, &outcome, requeue);
            })
        };
        producer.join();
        worker.join();
        if mailbox_len(&shared, 0) > 0 {
            assert_eq!(
                shared.tasks[0].state.load(SeqCst),
                QUEUED,
                "lost wake: packet queued but task went quiet"
            );
        }
    });
}

/// Detection power for invariant 1: replace `settle`'s guarded
/// RUNNING→IDLE CAS with an unconditional IDLE store and the checker must
/// produce the stranded-packet schedule.
#[test]
fn mutation_unconditional_idle_store_is_caught() {
    let violation = pkg_model::Builder::new()
        .preemption_bound(2)
        .check(|| {
            let shared = Arc::new(mini_shared(1, 4));
            shared.tasks[0].state.store(RUNNING, SeqCst);
            let producer = {
                let shared = Arc::clone(&shared);
                pkg_model::thread::spawn(move || {
                    let _ = shared.try_push(0, Packet::Eof);
                })
            };
            let worker = {
                let shared = Arc::clone(&shared);
                pkg_model::thread::spawn(move || {
                    let mut inbox = PacketBatch::default();
                    if shared.refill_inbox(0, &mut inbox, 64) == 0 {
                        // BUG (deliberate): ignores a NOTIFIED latched by a
                        // concurrent wake instead of CASing RUNNING→IDLE.
                        shared.tasks[0].state.store(IDLE, SeqCst);
                    } else {
                        shared.tasks[0].state.store(QUEUED, SeqCst);
                        lock(&shared.sched).runq.push_back(0);
                    }
                })
            };
            producer.join();
            worker.join();
            if mailbox_len(&shared, 0) > 0 {
                assert_eq!(
                    shared.tasks[0].state.load(SeqCst),
                    QUEUED,
                    "lost wake: packet queued but task went quiet"
                );
            }
        })
        .expect_err("the unconditional-IDLE bug must be caught");
    assert!(violation.message.contains("lost wake"), "got: {violation}");
}

const STALL_DEADLINE_NS: u64 = 1_000_000;

/// Invariant 2 (the PR 4 regression, exhaustively pinned): settling
/// `Outcome::Stall` parks *unconditionally* and only then arms the timer,
/// so a data wake that latched NOTIFIED mid-activation is absorbed — the
/// task ends PARKED with the deadline armed, in every interleaving.
#[test]
fn stall_never_skipped_by_concurrent_data_wake() {
    pkg_model::Builder::new().preemption_bound(2).model(|| {
        let shared = Arc::new(mini_shared(1, 4));
        shared.tasks[0].state.store(RUNNING, SeqCst);
        let producer = {
            let shared = Arc::clone(&shared);
            pkg_model::thread::spawn(move || {
                let _ = shared.try_push(0, Packet::Tuple(Tuple::new(*b"k", 1)));
            })
        };
        let worker = {
            let shared = Arc::clone(&shared);
            pkg_model::thread::spawn(move || {
                settle(&shared, 0, &Outcome::Stall(STALL_DEADLINE_NS), || {
                    unreachable!("a stall settle must never requeue");
                });
            })
        };
        producer.join();
        worker.join();
        assert_eq!(shared.tasks[0].state.load(SeqCst), PARKED, "stall skipped: task is not parked");
        let mut due = Vec::new();
        lock(&shared.sched).timers.fire(STALL_DEADLINE_NS * 2, &mut due);
        assert_eq!(due, vec![(0, true)], "stall deadline armed and fires as an Unpark");
    });
}

/// Detection power for invariant 2: re-introduce the literal PR 4 bug — a
/// *conditional* RUNNING→PARKED CAS whose failure path requeues — and the
/// checker must find the schedule where a concurrent data wake cancels the
/// emulated service time.
#[test]
fn mutation_pr4_conditional_stall_park_is_caught() {
    let violation = pkg_model::Builder::new()
        .preemption_bound(2)
        .check(|| {
            let shared = Arc::new(mini_shared(1, 4));
            shared.tasks[0].state.store(RUNNING, SeqCst);
            let producer = {
                let shared = Arc::clone(&shared);
                pkg_model::thread::spawn(move || {
                    let _ = shared.try_push(0, Packet::Tuple(Tuple::new(*b"k", 1)));
                })
            };
            let worker = {
                let shared = Arc::clone(&shared);
                pkg_model::thread::spawn(move || {
                    // BUG (deliberate, PR 4's original): park only if still
                    // RUNNING; a NOTIFIED wake turns the stall into an
                    // instant requeue, silently skipping the service time.
                    let slot = &shared.tasks[0];
                    if slot.state.compare_exchange(RUNNING, PARKED, SeqCst, SeqCst).is_ok() {
                        lock(&shared.sched).timers.insert_unpark(STALL_DEADLINE_NS, 0);
                    } else {
                        slot.state.store(QUEUED, SeqCst);
                        lock(&shared.sched).runq.push_back(0);
                    }
                })
            };
            producer.join();
            worker.join();
            assert_eq!(
                shared.tasks[0].state.load(SeqCst),
                PARKED,
                "stall skipped: task is not parked"
            );
        })
        .expect_err("the PR 4 conditional-park bug must be caught");
    assert!(violation.message.contains("stall skipped"), "got: {violation}");
}

/// Order-recording sink bolt for the end-to-end spill fixture. The log uses
/// a raw `std` mutex on purpose: `execute` runs between scheduling points,
/// so the lock is never contended under the model.
struct OrderBolt {
    seen: Arc<StdMutex<Vec<i64>>>,
}

impl Bolt for OrderBolt {
    fn execute(&mut self, tuple: Tuple, _out: &mut Emitter<'_>) {
        self.seen.lock().expect("order log").push(tuple.value);
    }
}

fn blank_body(component: &str, kind: TaskKind, edges: Vec<OutEdge>) -> TaskBody {
    TaskBody {
        component: component.to_owned(),
        instance: 0,
        kind,
        edges,
        outbox: VecDeque::new(),
        inbox: PacketBatch::default(),
        processed: 0,
        emitted: 0,
        ticks: 0,
        activations: 0,
        stall_scale: 1.0,
        stalled_ns: 0,
        latency: LatencyHistogram::new(5),
        sampler: StateSampler::default(),
        final_state: 0,
    }
}

/// Spout (3 tuples) → capacity-1 mailbox → sink bolt: every second emission
/// spills to the outbox and parks the spout, exercising push_or_park waiter
/// registration, backpressure-release wakes, and Eof-after-spill delivery.
fn spill_fixture(seen: Arc<StdMutex<Vec<i64>>>, workers: usize) -> Shared {
    let spout_edges =
        vec![OutEdge { router: Router::new(&Grouping::Key, 1, 7, 0), tx: EdgeTx::Tasks(vec![1]) }];
    let spout_kind = TaskKind::Spout {
        spout: spout_from_iter((1..=3).map(|v| Tuple::new(*b"k", v))),
        exhausted: false,
    };
    let bolt_kind = TaskKind::Bolt {
        bolt: Box::new(OrderBolt { seen }),
        eof_remaining: 1,
        tick_period_ns: None,
        next_tick_ns: u64::MAX,
    };
    Shared {
        tasks: vec![
            TaskSlot {
                state: AtomicU8::new(QUEUED),
                mailbox: None,
                body: Mutex::new(Some(Box::new(blank_body("src", spout_kind, spout_edges)))),
            },
            TaskSlot {
                state: AtomicU8::new(IDLE),
                mailbox: Some(Mailbox { cap: 1, inner: Mutex::default() }),
                body: Mutex::new(Some(Box::new(blank_body("sink", bolt_kind, Vec::new())))),
            },
        ],
        sched: Mutex::new(Sched { runq: VecDeque::from([0]), timers: TimerWheel::new() }),
        locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        idlers: Mutex::new(Vec::new()),
        remaining: AtomicUsize::new(2),
        epoch: Instant::now(),
        batch: 2,
        stats: Mutex::new(Vec::new()),
    }
}

/// Invariant 4, end to end through the real [`worker_loop`]: across every
/// (preemption-bounded) interleaving of two workers, the spill/backpressure
/// path delivers all tuples in per-destination FIFO order, the Eof arrives
/// last (the `debug_assert` in `activate` checks packets-after-final-Eof),
/// both tasks reach DONE, and the idle-park shutdown protocol terminates —
/// under the model, `park_timeout` never times out, so termination *proves*
/// every needed wake is edge-delivered rather than rescued by the backstop.
#[test]
fn spill_preserves_order_and_eof_protocol() {
    let report = pkg_model::Builder::new()
        .preemption_bound(2)
        .check(|| {
            let seen = Arc::new(StdMutex::new(Vec::new()));
            let shared = Arc::new(spill_fixture(Arc::clone(&seen), 2));
            let workers: Vec<_> = (0..2)
                .map(|wid| {
                    let shared = Arc::clone(&shared);
                    pkg_model::thread::spawn(move || worker_loop(&shared, wid))
                })
                .collect();
            for w in workers {
                w.join();
            }
            assert_eq!(
                *seen.lock().expect("order log"),
                vec![1, 2, 3],
                "spill must preserve per-destination FIFO"
            );
            assert_eq!(shared.remaining.load(SeqCst), 0, "all tasks retired");
            for slot in &shared.tasks {
                assert_eq!(slot.state.load(SeqCst), DONE);
            }
            let stats = lock(&shared.stats);
            assert_eq!(stats.len(), 2, "both tasks reported stats");
            for s in stats.iter() {
                assert_eq!(s.processed, 3, "{} processed every tuple", s.component);
            }
        })
        .expect("no schedule may violate the spill/Eof protocol");
    // Exploration sanity: a degenerate tree (one schedule) would mean the
    // fixture isn't racing anything and the proof is vacuous.
    assert!(
        report.iterations >= 100,
        "expected a real interleaving space, got {} schedules",
        report.iterations
    );
}
