//! Model-checked concurrency suite for the pool executor (`--features
//! pkg_model`). Compiled as a child of `pool` so fixtures can build [`Shared`]
//! directly and drive the real `wake_state`/`settle`/`run_task`/`worker_loop`
//! code paths under `pkg_model`'s controlled scheduler, which exhaustively
//! enumerates thread interleavings (DFS, bounded preemption).
//!
//! Invariants pinned here:
//! 1. **Lost-wake freedom** — a mailbox push racing the worker's
//!    empty-check → IDLE transition never strands a packet
//!    ([`no_lost_wake_between_empty_check_and_idle`]).
//! 2. **Stalls survive data wakes** (the PR 4 regression) — a concurrent
//!    `Notify` never converts an `Outcome::Stall` park into an instant
//!    requeue ([`stall_never_skipped_by_concurrent_data_wake`]).
//! 3. **Parker token protocol** — exhaustively checked in `pkg-model`'s own
//!    suite and `vendor/crossbeam`'s `model_park_unpark_has_no_lost_wake`.
//! 4. **Eof ordering under spill** — a full spout→bolt run over a
//!    capacity-1 mailbox (every second emission spills) preserves
//!    per-destination FIFO and the Eof-last protocol, end to end through
//!    the real `worker_loop` ([`spill_preserves_order_and_eof_protocol`]),
//!    and again over a capacity-1 **SPSC ring** edge
//!    ([`spill_preserves_order_and_eof_protocol_over_ring`]).
//! 5. **Ring park protocol** — the SPSC ring's announce→re-check sequence
//!    never loses a backpressure-release wake, and the index protocol is
//!    FIFO under every producer/consumer interleaving
//!    ([`model_ring_parked_producer_is_always_observed`],
//!    [`model_ring_spsc_fifo_across_interleavings`]).
//!
//! Detection power is proved, not assumed: `mutation_*` tests re-introduce
//! the PR 4 stall bug and an unconditional-IDLE variant of the idle
//! transition, and assert the checker *finds* the violating schedule.

// Test-only module: the parent's `#![warn(clippy::pedantic)]` does not need
// to police fixture code.
#![allow(clippy::pedantic)]

use super::*;
use crate::grouping::Grouping;
use crate::spout::spout_from_iter;
use crate::tuple::Tuple;
use std::sync::{Arc, Mutex as StdMutex};

/// A `Shared` with `n_tasks` bolt-like slots (mailbox capacity `cap`) and
/// one worker-local queue; enough to race producers against settlement.
fn mini_shared(n_tasks: usize, cap: usize) -> Shared {
    Shared {
        tasks: (0..n_tasks)
            .map(|_| TaskSlot {
                state: AtomicU8::new(IDLE),
                mailbox: Some(Mailbox::Mutexed { cap, inner: Mutex::default() }),
                body: Mutex::new(None),
                depth_high: AtomicUsize::new(0),
            })
            .collect(),
        sched: Mutex::new(Sched { runq: VecDeque::new(), timers: TimerWheel::new() }),
        locals: vec![WorkStealingDeque::new(8)],
        idlers: Mutex::new(Vec::new()),
        remaining: AtomicUsize::new(n_tasks),
        epoch: Instant::now(),
        batch: DEFAULT_BATCH,
        stats: Mutex::new(Vec::new()),
    }
}

fn mailbox_len(shared: &Shared, tid: usize) -> usize {
    match shared.tasks[tid].mailbox.as_ref() {
        Some(Mailbox::Mutexed { inner, .. }) => lock(inner).queue.len(),
        Some(Mailbox::Ring(ring)) => ring.len(),
        None => unreachable!("mini_shared tasks all have mailboxes"),
    }
}

/// Invariant 1: across *every* interleaving of a producer's
/// `try_push`+wake with the worker's "mailbox empty → settle(Idle)"
/// epilogue, a queued packet always leaves the task runnable (QUEUED) —
/// the NOTIFIED latch plus the CAS-failure requeue close the race window.
#[test]
fn no_lost_wake_between_empty_check_and_idle() {
    pkg_model::Builder::new().preemption_bound(2).model(|| {
        let shared = Arc::new(mini_shared(1, 4));
        shared.tasks[0].state.store(RUNNING, SeqCst);
        let producer = {
            let shared = Arc::clone(&shared);
            pkg_model::thread::spawn(move || {
                let pushed = shared.try_push(0, Packet::Eof);
                assert!(pushed.is_ok(), "capacity 4 mailbox never fills here");
            })
        };
        let worker = {
            let shared = Arc::clone(&shared);
            pkg_model::thread::spawn(move || {
                let mut inbox = PacketBatch::default();
                let outcome = if shared.refill_inbox(0, &mut inbox, 64) == 0 {
                    Outcome::Idle
                } else {
                    Outcome::Yield
                };
                let requeue = || {
                    shared.tasks[0].state.store(QUEUED, SeqCst);
                    lock(&shared.sched).runq.push_back(0);
                };
                settle(&shared, 0, &outcome, requeue);
            })
        };
        producer.join();
        worker.join();
        if mailbox_len(&shared, 0) > 0 {
            assert_eq!(
                shared.tasks[0].state.load(SeqCst),
                QUEUED,
                "lost wake: packet queued but task went quiet"
            );
        }
    });
}

/// Detection power for invariant 1: replace `settle`'s guarded
/// RUNNING→IDLE CAS with an unconditional IDLE store and the checker must
/// produce the stranded-packet schedule.
#[test]
fn mutation_unconditional_idle_store_is_caught() {
    let violation = pkg_model::Builder::new()
        .preemption_bound(2)
        .check(|| {
            let shared = Arc::new(mini_shared(1, 4));
            shared.tasks[0].state.store(RUNNING, SeqCst);
            let producer = {
                let shared = Arc::clone(&shared);
                pkg_model::thread::spawn(move || {
                    let _ = shared.try_push(0, Packet::Eof);
                })
            };
            let worker = {
                let shared = Arc::clone(&shared);
                pkg_model::thread::spawn(move || {
                    let mut inbox = PacketBatch::default();
                    if shared.refill_inbox(0, &mut inbox, 64) == 0 {
                        // BUG (deliberate): ignores a NOTIFIED latched by a
                        // concurrent wake instead of CASing RUNNING→IDLE.
                        shared.tasks[0].state.store(IDLE, SeqCst);
                    } else {
                        shared.tasks[0].state.store(QUEUED, SeqCst);
                        lock(&shared.sched).runq.push_back(0);
                    }
                })
            };
            producer.join();
            worker.join();
            if mailbox_len(&shared, 0) > 0 {
                assert_eq!(
                    shared.tasks[0].state.load(SeqCst),
                    QUEUED,
                    "lost wake: packet queued but task went quiet"
                );
            }
        })
        .expect_err("the unconditional-IDLE bug must be caught");
    assert!(violation.message.contains("lost wake"), "got: {violation}");
}

const STALL_DEADLINE_NS: u64 = 1_000_000;

/// Invariant 2 (the PR 4 regression, exhaustively pinned): settling
/// `Outcome::Stall` parks *unconditionally* and only then arms the timer,
/// so a data wake that latched NOTIFIED mid-activation is absorbed — the
/// task ends PARKED with the deadline armed, in every interleaving.
#[test]
fn stall_never_skipped_by_concurrent_data_wake() {
    pkg_model::Builder::new().preemption_bound(2).model(|| {
        let shared = Arc::new(mini_shared(1, 4));
        shared.tasks[0].state.store(RUNNING, SeqCst);
        let producer = {
            let shared = Arc::clone(&shared);
            pkg_model::thread::spawn(move || {
                let _ = shared.try_push(0, Packet::Tuple(Tuple::new(*b"k", 1)));
            })
        };
        let worker = {
            let shared = Arc::clone(&shared);
            pkg_model::thread::spawn(move || {
                settle(&shared, 0, &Outcome::Stall(STALL_DEADLINE_NS), || {
                    unreachable!("a stall settle must never requeue");
                });
            })
        };
        producer.join();
        worker.join();
        assert_eq!(shared.tasks[0].state.load(SeqCst), PARKED, "stall skipped: task is not parked");
        let mut due = Vec::new();
        lock(&shared.sched).timers.fire(STALL_DEADLINE_NS * 2, &mut due);
        assert_eq!(due, vec![(0, true)], "stall deadline armed and fires as an Unpark");
    });
}

/// Detection power for invariant 2: re-introduce the literal PR 4 bug — a
/// *conditional* RUNNING→PARKED CAS whose failure path requeues — and the
/// checker must find the schedule where a concurrent data wake cancels the
/// emulated service time.
#[test]
fn mutation_pr4_conditional_stall_park_is_caught() {
    let violation = pkg_model::Builder::new()
        .preemption_bound(2)
        .check(|| {
            let shared = Arc::new(mini_shared(1, 4));
            shared.tasks[0].state.store(RUNNING, SeqCst);
            let producer = {
                let shared = Arc::clone(&shared);
                pkg_model::thread::spawn(move || {
                    let _ = shared.try_push(0, Packet::Tuple(Tuple::new(*b"k", 1)));
                })
            };
            let worker = {
                let shared = Arc::clone(&shared);
                pkg_model::thread::spawn(move || {
                    // BUG (deliberate, PR 4's original): park only if still
                    // RUNNING; a NOTIFIED wake turns the stall into an
                    // instant requeue, silently skipping the service time.
                    let slot = &shared.tasks[0];
                    if slot.state.compare_exchange(RUNNING, PARKED, SeqCst, SeqCst).is_ok() {
                        lock(&shared.sched).timers.insert_unpark(STALL_DEADLINE_NS, 0);
                    } else {
                        slot.state.store(QUEUED, SeqCst);
                        lock(&shared.sched).runq.push_back(0);
                    }
                })
            };
            producer.join();
            worker.join();
            assert_eq!(
                shared.tasks[0].state.load(SeqCst),
                PARKED,
                "stall skipped: task is not parked"
            );
        })
        .expect_err("the PR 4 conditional-park bug must be caught");
    assert!(violation.message.contains("stall skipped"), "got: {violation}");
}

/// Order-recording sink bolt for the end-to-end spill fixture. The log uses
/// a raw `std` mutex on purpose: `execute` runs between scheduling points,
/// so the lock is never contended under the model.
struct OrderBolt {
    seen: Arc<StdMutex<Vec<i64>>>,
}

impl Bolt for OrderBolt {
    fn execute(&mut self, tuple: Tuple, _out: &mut Emitter<'_>) {
        self.seen.lock().expect("order log").push(tuple.value);
    }
}

fn blank_body(component: &str, kind: TaskKind, edges: Vec<OutEdge>) -> TaskBody {
    TaskBody::new(component.to_owned(), 0, kind, edges, 1.0, None)
}

/// Spout (3 tuples) → capacity-1 mailbox → sink bolt: every second emission
/// spills to the outbox and parks the spout, exercising push_or_park waiter
/// registration, backpressure-release wakes, and Eof-after-spill delivery.
/// With `ring`, the edge is an SPSC ring instead of the mutexed mailbox,
/// covering the ring legs of the same protocol.
fn spill_fixture(seen: Arc<StdMutex<Vec<i64>>>, workers: usize, ring: bool) -> Shared {
    let tx = if ring { EdgeTx::TaskRings(vec![1]) } else { EdgeTx::Tasks(vec![1]) };
    let spout_edges = vec![OutEdge {
        router: Router::new(&Grouping::Key, 1, 7, 0),
        tx,
        depths: Vec::new(),
        hedge: None,
        signals: None,
    }];
    let spout_kind = TaskKind::Spout {
        spout: spout_from_iter((1..=3).map(|v| Tuple::new(*b"k", v))),
        exhausted: false,
        ingress: None,
    };
    let bolt_kind = TaskKind::Bolt {
        bolt: Box::new(OrderBolt { seen }),
        eof_remaining: 1,
        tick_period_ns: None,
        next_tick_ns: u64::MAX,
    };
    let mailbox = if ring {
        Mailbox::Ring(SpscRing::new(1))
    } else {
        Mailbox::Mutexed { cap: 1, inner: Mutex::default() }
    };
    Shared {
        tasks: vec![
            TaskSlot {
                state: AtomicU8::new(QUEUED),
                mailbox: None,
                body: Mutex::new(Some(Box::new(blank_body("src", spout_kind, spout_edges)))),
                depth_high: AtomicUsize::new(0),
            },
            TaskSlot {
                state: AtomicU8::new(IDLE),
                mailbox: Some(mailbox),
                body: Mutex::new(Some(Box::new(blank_body("sink", bolt_kind, Vec::new())))),
                depth_high: AtomicUsize::new(0),
            },
        ],
        sched: Mutex::new(Sched { runq: VecDeque::from([0]), timers: TimerWheel::new() }),
        locals: (0..workers).map(|_| WorkStealingDeque::new(8)).collect(),
        idlers: Mutex::new(Vec::new()),
        remaining: AtomicUsize::new(2),
        epoch: Instant::now(),
        batch: 2,
        stats: Mutex::new(Vec::new()),
    }
}

/// Invariant 4, end to end through the real [`worker_loop`]: across every
/// (preemption-bounded) interleaving of two workers, the spill/backpressure
/// path delivers all tuples in per-destination FIFO order, the Eof arrives
/// last (the `debug_assert` in `activate` checks packets-after-final-Eof),
/// both tasks reach DONE, and the idle-park shutdown protocol terminates —
/// under the model, `park_timeout` never times out, so termination *proves*
/// every needed wake is edge-delivered rather than rescued by the backstop.
fn check_spill_protocol(ring: bool) {
    let report = pkg_model::Builder::new()
        .preemption_bound(2)
        .check(move || {
            let seen = Arc::new(StdMutex::new(Vec::new()));
            let shared = Arc::new(spill_fixture(Arc::clone(&seen), 2, ring));
            let workers: Vec<_> = (0..2)
                .map(|wid| {
                    let shared = Arc::clone(&shared);
                    pkg_model::thread::spawn(move || worker_loop(&shared, wid))
                })
                .collect();
            for w in workers {
                w.join();
            }
            assert_eq!(
                *seen.lock().expect("order log"),
                vec![1, 2, 3],
                "spill must preserve per-destination FIFO"
            );
            // ordering: SeqCst — post-join observations; every worker has
            // terminated, so these are quiescent reads (SC-only model)
            assert_eq!(shared.remaining.load(SeqCst), 0, "all tasks retired");
            for slot in &shared.tasks {
                // ordering: SeqCst — quiescent post-join read (SC-only model)
                assert_eq!(slot.state.load(SeqCst), DONE);
            }
            let stats = lock(&shared.stats);
            assert_eq!(stats.len(), 2, "both tasks reported stats");
            for s in stats.iter() {
                assert_eq!(s.processed, 3, "{} processed every tuple", s.component);
            }
        })
        .expect("no schedule may violate the spill/Eof protocol");
    // Exploration sanity: a degenerate tree (one schedule) would mean the
    // fixture isn't racing anything and the proof is vacuous.
    assert!(
        report.iterations >= 100,
        "expected a real interleaving space, got {} schedules",
        report.iterations
    );
}

#[test]
fn spill_preserves_order_and_eof_protocol() {
    check_spill_protocol(false);
}

/// Invariant 4 over the SPSC-ring edge: identical FIFO/Eof/termination
/// guarantees when the sink's mailbox is a capacity-1 ring, exercising the
/// ring spill path in `push_run`/`deliver_outbox`, the announce→re-check
/// park in `push_or_park`, and the `take_waiters` release wake in
/// `refill_inbox` — all through the real `worker_loop`.
#[test]
fn spill_preserves_order_and_eof_protocol_over_ring() {
    check_spill_protocol(true);
}

fn ring_tuple(v: i64) -> Packet {
    Packet::Tuple(Tuple::new(*b"k", v))
}

fn ring_value(p: Packet) -> i64 {
    match p {
        Packet::Tuple(t) => t.value,
        Packet::Eof => -1,
    }
}

/// Invariant 5a — the ring's no-lost-wake theorem, exhaustively: whenever
/// the producer parks (`push_or_park` returns `Err`), the consumer's
/// post-pop `take_waiters` is guaranteed to return it. SC forces a total
/// order in which "announce, then re-check still full" precedes the
/// consumer's `head` publication, which precedes its sleeper check.
#[test]
fn model_ring_parked_producer_is_always_observed() {
    pkg_model::Builder::new().preemption_bound(2).model(|| {
        let ring = Arc::new(SpscRing::new(1));
        assert!(ring.try_push(Packet::Eof).is_ok(), "pre-fill a capacity-1 ring");
        let consumer = {
            let ring = Arc::clone(&ring);
            pkg_model::thread::spawn(move || {
                assert!(ring.pop().is_some(), "pre-filled ring pops");
                ring.take_waiters()
            })
        };
        let parked = ring.push_or_park(Packet::Eof, 7).is_err();
        let woken = consumer.join();
        if parked {
            assert_eq!(woken, vec![7], "lost wake: parked producer missed by the consumer");
        }
    });
}

/// Invariant 5b — SPSC FIFO under every interleaving: a concurrent pop
/// observes the producer's two pushes in order, never value 2 before
/// value 1, and never a duplicated or dropped slot across the race.
#[test]
fn model_ring_spsc_fifo_across_interleavings() {
    pkg_model::Builder::new().preemption_bound(2).model(|| {
        let ring = Arc::new(SpscRing::new(4));
        let producer = {
            let ring = Arc::clone(&ring);
            pkg_model::thread::spawn(move || {
                assert!(ring.try_push(ring_tuple(1)).is_ok());
                assert!(ring.try_push(ring_tuple(2)).is_ok());
            })
        };
        // Exactly one pop races the pushes (an unbounded drain loop would
        // diverge under the DFS scheduler); the rest drains after join.
        let first = ring.pop().map(ring_value);
        producer.join();
        let mut rest = Vec::new();
        while let Some(p) = ring.pop() {
            rest.push(ring_value(p));
        }
        match first {
            None => assert_eq!(rest, vec![1, 2]),
            Some(1) => assert_eq!(rest, vec![2]),
            other => panic!("consumer observed out-of-order first value {other:?}"),
        }
    });
}
