//! The cooperative worker-pool executor.
//!
//! Instead of one OS thread per instance (`executor.rs`), a fixed pool of N
//! worker threads drives every instance as a schedulable *task*:
//!
//! * Each bolt task owns a bounded **mailbox**; producers `try_push` into
//!   it and never block an OS thread.
//! * A task activation drains up to a **batch quantum** of packets
//!   ([`DEFAULT_BATCH`]), amortizing mailbox locking and emitter setup,
//!   then yields the worker.
//! * Tick deadlines live in one central [`TimerWheel`](crate::timer) —
//!   replacing the per-thread `recv_timeout` of the legacy executor — and
//!   wake the owning task when due.
//! * **Backpressure parks instead of blocking**: when an emission finds a
//!   downstream mailbox full, the packet spills into the task's outbox, the
//!   task parks, and the *consumer* wakes it after draining (a
//!   backpressure-release edge, not a timeout).
//!
//! Scheduling state per task is a small atomic state machine
//! (idle / queued / running / running-notified / parked / done) that makes
//! wake-ups idempotent and race-free: a wake during `RUNNING` marks
//! `NOTIFIED`, which the worker converts into a requeue when the
//! activation ends, so no packet arrival is ever lost between a task's
//! "mailbox empty" check and its transition to idle.
//!
//! Determinism: all routing state (the per-sender [`Router`]s, seeded by
//! the same `edge_seed` derivation) is owned by the task and consulted in
//! the task's own processing order, so a topology routes **byte-identically**
//! under both executors regardless of how activations interleave — the
//! property `tests/engine_executor_parity.rs` pins down.
//!
//! # Memory ordering policy
//!
//! Every atomic in this module uses `SeqCst`, deliberately. The correctness
//! argument for the wake/idle handshake is the model-checked suite in
//! `pool_model.rs` (`--features pkg_model`), and the vendored checker
//! explores **sequentially consistent** interleavings only — a weaker
//! ordering would be outside what the model proves. Per-site `// ordering:`
//! comments (enforced by `pkg-lint`) state what each access must order
//! against; "SC-only model" below refers back to this paragraph.
//!
//! All concurrency primitives are imported via the [`crate::sync`] facade
//! (also lint-enforced) so the same code runs under the model checker.

#![warn(clippy::pedantic)]
// Curated pedantic allows, each deliberate:
// - cast_possible_truncation: ns-since-epoch u128→u64 overflows after ~584
//   years of run time; every cast site is such a conversion.
// - single_match_else: the spout/task dispatch matches read better with the
//   two outcomes visually parallel than as `if let`/`else`.
// - too_many_lines: `activate` is one cohesive task state machine and
//   `run_pool` one topology build; splitting them would scatter invariants
//   the model suite references by name.
#![allow(clippy::cast_possible_truncation, clippy::single_match_else, clippy::too_many_lines)]

use std::collections::VecDeque;
use std::time::Duration;

use crossbeam::deque::{Steal, WorkStealingDeque};
use pkg_core::SharedLoads;
use pkg_metrics::LatencyHistogram;

use crate::bolt::{Bolt, EdgeTx, Emitter, OutEdge, Sink};
use crate::executor::StateSampler;
use crate::grouping::{Router, TargetBatch};
use crate::ingress::{HedgeState, IngressOptions, SpoutIngress};
use crate::metrics::{InstanceStats, RunStats};
use crate::ring::SpscRing;
use crate::spout::Spout;
use crate::sync::atomic::{AtomicU8, AtomicUsize, Ordering::SeqCst};
use crate::sync::{lock, Instant, Mutex, Parker, Unparker};
use crate::timer::TimerWheel;
use crate::topology::{ComponentKind, Topology};
use crate::tuple::{Packet, PacketBatch, Tuple};

/// Default batch quantum: packets drained per task activation.
pub const DEFAULT_BATCH: usize = 256;

/// Upper bound on an idle worker's sleep. A defensive backstop: all wakes
/// are edge-triggered, so this only bounds recovery latency, it is not a
/// correctness mechanism.
const MAX_IDLE_PARK: Duration = Duration::from_millis(100);

// Task scheduling states.
const IDLE: u8 = 0;
/// In the global run queue or a worker's local queue.
const QUEUED: u8 = 1;
/// A worker is executing an activation.
const RUNNING: u8 = 2;
/// Running, and a wake arrived mid-activation: requeue instead of idling.
const NOTIFIED: u8 = 3;
/// Blocked on a full downstream mailbox; woken by its consumer.
const PARKED: u8 = 4;
const DONE: u8 = 5;

enum WakeKind {
    /// Data/tick wake: does not disturb a backpressure-parked task (it
    /// cannot make progress until its downstream drains).
    Notify,
    /// Park-ending wake: a consumer freed mailbox space (backpressure
    /// release) or a service-stall deadline fired on the timer wheel.
    Unpark,
}

enum Outcome {
    /// Mailbox empty, nothing pending: wait for a wake.
    Idle,
    /// More input than the batch quantum: reschedule.
    Yield,
    /// Downstream full: sleep until the consumer wakes us.
    Park,
    /// Emulated service time requested ([`Emitter::stall`]): park and arm
    /// the carried deadline on the timer wheel — without occupying a
    /// worker thread, which is what lets `engine_scale`-style runs emulate
    /// per-tuple CPU cost on many more instances than workers. The park is
    /// unconditional (a data wake that landed mid-activation is absorbed —
    /// the whole point is not to process more input before the deadline),
    /// and the timer is armed only *after* the task is parked so the wake
    /// can never be consumed early and lost. If the stalling tuple also
    /// hit backpressure, the task is additionally registered as a mailbox
    /// waiter and whichever wake fires first resumes it.
    Stall(u64),
    /// Eof protocol complete, stats finalized.
    Done,
}

enum TaskKind {
    Spout {
        spout: Box<dyn Spout>,
        exhausted: bool,
        /// Admission control / shedding state ([`IngressOptions`] set).
        ingress: Option<SpoutIngress>,
    },
    Bolt {
        bolt: Box<dyn Bolt>,
        eof_remaining: usize,
        tick_period_ns: Option<u64>,
        next_tick_ns: u64,
    },
}

struct TaskBody {
    component: String,
    instance: usize,
    kind: TaskKind,
    edges: Vec<OutEdge>,
    /// Spilled emissions awaiting delivery: `(dest task, packet)` in
    /// emission order (per-destination FIFO is what Eof counting needs).
    outbox: VecDeque<(usize, Packet)>,
    /// Packets drained from the mailbox but not yet processed.
    inbox: PacketBatch,
    /// Scratch for the batched spout path (`route_batch`): routing keys of
    /// the tuples generated this activation. Retained across activations so
    /// steady state allocates nothing.
    batch_keys: Vec<u64>,
    /// Scratch: the generated tuples, taken (`Option::take`) one by one as
    /// per-destination runs are delivered.
    batch_tuples: Vec<Option<Tuple>>,
    /// Scratch: destinations grouped by the batch router.
    targets: TargetBatch,
    processed: u64,
    emitted: u64,
    ticks: u64,
    activations: u64,
    /// Service-time multiplier `1/capacity` of this instance.
    stall_scale: f64,
    stalled_ns: u64,
    latency: LatencyHistogram,
    sampler: StateSampler,
    final_state: usize,
    /// High-water mark of this task's own mailbox depth, copied from the
    /// producer-maintained `TaskSlot::depth_high` when the task completes.
    max_depth: u64,
    /// This task's *own* component's shared load signals, when
    /// [`crate::load::LoadSignalOptions`] attached any: bolt tasks feed a
    /// completion (with the tuple's capacity-scaled service time) per
    /// executed tuple. Dispatch-side bookkeeping lives on the out-edges.
    signals: Option<SharedLoads>,
}

impl TaskBody {
    fn new(
        component: String,
        instance: usize,
        kind: TaskKind,
        edges: Vec<OutEdge>,
        stall_scale: f64,
        signals: Option<SharedLoads>,
    ) -> Self {
        Self {
            component,
            instance,
            kind,
            edges,
            outbox: VecDeque::new(),
            inbox: PacketBatch::default(),
            batch_keys: Vec::new(),
            batch_tuples: Vec::new(),
            targets: TargetBatch::new(),
            processed: 0,
            emitted: 0,
            ticks: 0,
            activations: 0,
            stall_scale,
            stalled_ns: 0,
            latency: LatencyHistogram::new(5),
            sampler: StateSampler::default(),
            final_state: 0,
            max_depth: 0,
            signals,
        }
    }

    fn into_stats(self) -> InstanceStats {
        let (shed_dropped, shed_degraded) = match &self.kind {
            TaskKind::Spout { ingress: Some(ing), .. } => (ing.dropped(), ing.degraded()),
            _ => (0, 0),
        };
        let hedges = self.edges.iter().map(|e| e.hedge.as_ref().map_or(0, |h| h.issued)).sum();
        InstanceStats {
            component: self.component,
            instance: self.instance,
            processed: self.processed,
            emitted: self.emitted,
            latency: self.latency,
            final_state: self.final_state,
            max_state: self.sampler.max,
            avg_state: self.sampler.avg(),
            ticks: self.ticks,
            stalled_ns: self.stalled_ns,
            activations: self.activations,
            shed_dropped,
            shed_degraded,
            hedges,
            max_depth: self.max_depth,
        }
    }
}

#[derive(Default)]
struct MailboxInner {
    queue: VecDeque<Packet>,
    /// Producer tasks parked on this mailbox being full.
    waiters: Vec<usize>,
}

/// A task's input queue. The transport is chosen at `run_pool` build time
/// per destination and encoded in the matching [`EdgeTx`] variant:
///
/// | upstream sender instances | transport | edge |
/// |---------------------------|-----------|------|
/// | exactly 1 (and rings on)  | [`SpscRing`] — lock-free indices | `TaskRings` |
/// | several (MPSC)            | mutexed `VecDeque` | `Tasks` |
enum Mailbox {
    /// Multi-producer: every push/drain takes the mailbox lock.
    Mutexed { cap: usize, inner: Mutex<MailboxInner> },
    /// Single-producer: bounded SPSC ring, no lock on the packet path.
    Ring(SpscRing),
}

struct TaskSlot {
    state: AtomicU8,
    /// `None` for spouts (no inputs).
    mailbox: Option<Mailbox>,
    /// Taken by the worker for the duration of an activation.
    body: Mutex<Option<Box<TaskBody>>>,
    /// Producer-maintained high-water mark of the mailbox depth — the pool
    /// analogue of `DepthGauge::high` in the thread executor, surfaced as
    /// `InstanceStats::max_depth` when the task completes.
    depth_high: AtomicUsize,
}

struct Sched {
    runq: VecDeque<usize>,
    timers: TimerWheel,
}

/// Shared pool state; [`Emitter`] reaches it through [`Sink::Pool`] to
/// deliver emissions without blocking.
pub(crate) struct Shared {
    tasks: Vec<TaskSlot>,
    sched: Mutex<Sched>,
    /// Per-worker run queues for self-requeues; idle workers steal. Each is
    /// a Chase–Lev deque: worker `w` alone pushes/pops queue `w` (LIFO,
    /// cache-hot), siblings steal the oldest entry by CAS — no lock on the
    /// requeue path.
    locals: Vec<WorkStealingDeque>,
    /// Idle workers awaiting work, newest last.
    idlers: Mutex<Vec<(usize, Unparker)>>,
    /// Tasks not yet `DONE`.
    remaining: AtomicUsize,
    epoch: Instant,
    batch: usize,
    stats: Mutex<Vec<InstanceStats>>,
}

impl Shared {
    #[inline]
    fn now_ns(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() as u64).max(1)
    }

    fn mailbox(&self, tid: usize) -> &Mailbox {
        let Some(mb) = self.tasks[tid].mailbox.as_ref() else {
            unreachable!("edge destinations are bolts");
        };
        mb
    }

    /// Current queue depth of `tid`'s mailbox — the downstream-pressure
    /// signal consulted by ingress watermark shedding and hedged dispatch.
    /// A point-in-time read: the mutexed arm takes the mailbox lock, the
    /// ring arm reads the published indices.
    pub(crate) fn depth(&self, tid: usize) -> usize {
        match self.mailbox(tid) {
            Mailbox::Mutexed { inner, .. } => lock(inner).queue.len(),
            Mailbox::Ring(ring) => ring.len(),
        }
    }

    /// Fold an observed mailbox depth into `tid`'s high-water mark. The
    /// model-switched `AtomicUsize` has no `fetch_max`, hence the CAS loop.
    fn note_depth(&self, tid: usize, depth: usize) {
        let high = &self.tasks[tid].depth_high;
        // ordering: SeqCst — statistics-only high-water, kept at the module
        // policy ordering (SC-only model)
        let mut cur = high.load(SeqCst);
        while depth > cur {
            // ordering: SeqCst — monotone max update (SC-only model)
            match high.compare_exchange(cur, depth, SeqCst, SeqCst) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// Emitter fast path: non-blocking push into `dest`'s mailbox. On
    /// `Err` the caller spills to its outbox and parks at activation end.
    pub(crate) fn try_push(&self, dest: usize, packet: Packet) -> Result<(), Packet> {
        let depth = match self.mailbox(dest) {
            Mailbox::Mutexed { cap, inner } => {
                let mut inner = lock(inner);
                if inner.queue.len() >= *cap {
                    return Err(packet);
                }
                inner.queue.push_back(packet);
                inner.queue.len()
            }
            Mailbox::Ring(ring) => {
                ring.try_push(packet)?;
                ring.len()
            }
        };
        self.note_depth(dest, depth);
        self.wake(dest, &WakeKind::Notify);
        Ok(())
    }

    /// Delivery path: like [`Shared::try_push`], but on full registers
    /// `waiter` for a backpressure-release wake — for the mutexed mailbox
    /// under the same lock as the capacity check, for the ring via its
    /// announce→re-check protocol — so the release can never be missed.
    fn push_or_park(&self, dest: usize, packet: Packet, waiter: usize) -> Result<(), Packet> {
        let depth = match self.mailbox(dest) {
            Mailbox::Mutexed { cap, inner } => {
                let mut inner = lock(inner);
                if inner.queue.len() >= *cap {
                    debug_assert_ne!(
                        // ordering: SeqCst — debug-only sanity read (SC-only model)
                        self.tasks[dest].state.load(SeqCst),
                        DONE,
                        "a done task cannot still have senders (Eof protocol)"
                    );
                    if !inner.waiters.contains(&waiter) {
                        inner.waiters.push(waiter);
                    }
                    return Err(packet);
                }
                inner.queue.push_back(packet);
                inner.queue.len()
            }
            Mailbox::Ring(ring) => {
                ring.push_or_park(packet, waiter)?;
                ring.len()
            }
        };
        self.note_depth(dest, depth);
        self.wake(dest, &WakeKind::Notify);
        Ok(())
    }

    /// Batched delivery of one destination's routed run: take each indexed
    /// tuple out of `tuples` and push it to `dest` — one lock acquisition
    /// and at most one wake for the whole run, instead of one per tuple.
    /// Tuples that do not fit (or follow one that spilled, anywhere) go to
    /// `outbox` in order, preserving the all-or-spill FIFO discipline of
    /// [`Sink::Pool`].
    fn push_run(
        &self,
        dest: usize,
        run: &[u32],
        tuples: &mut [Option<Tuple>],
        outbox: &mut VecDeque<(usize, Packet)>,
    ) {
        // `next` = first run index not yet handled; `accepted` = how many
        // actually landed in the mailbox (a ring rejection consumes its
        // index by spilling the taken packet straight to the outbox).
        let mut next = 0usize;
        let mut accepted = 0usize;
        if outbox.is_empty() {
            match self.mailbox(dest) {
                Mailbox::Mutexed { cap, inner } => {
                    let mut inner = lock(inner);
                    while next < run.len() && inner.queue.len() < *cap {
                        inner.queue.push_back(take_routed(tuples, run[next]));
                        next += 1;
                    }
                    accepted = next;
                }
                Mailbox::Ring(ring) => {
                    // One tail publication for the whole run (the batch
                    // analogue of the mutexed arm's single lock hold).
                    let mut supply = run.iter().map(|&idx| take_routed(tuples, idx));
                    accepted = ring.push_batch(&mut supply);
                    next = accepted;
                }
            }
        }
        for &idx in &run[next..] {
            outbox.push_back((dest, take_routed(tuples, idx)));
        }
        if accepted > 0 {
            // One high-water fold per run (the batch analogue of the
            // per-push updates in `try_push`/`push_or_park`).
            self.note_depth(dest, self.depth(dest));
            self.wake(dest, &WakeKind::Notify);
        }
    }

    /// Drain up to `max` packets of `tid`'s own mailbox into `inbox`,
    /// waking any producers that were parked on the mailbox being full.
    fn refill_inbox(&self, tid: usize, inbox: &mut PacketBatch, max: usize) -> usize {
        match self.mailbox(tid) {
            Mailbox::Mutexed { inner, .. } => {
                let (moved, waiters) = {
                    let mut inner = lock(inner);
                    let moved = inbox.refill(&mut inner.queue, max);
                    let waiters = if moved > 0 && !inner.waiters.is_empty() {
                        std::mem::take(&mut inner.waiters)
                    } else {
                        Vec::new()
                    };
                    (moved, waiters)
                };
                for w in waiters {
                    self.wake(w, &WakeKind::Unpark);
                }
                moved
            }
            Mailbox::Ring(ring) => {
                // One head publication for the whole drain (the batch
                // analogue of the mutexed arm's single lock hold).
                let moved = ring.pop_batch(max, &mut |p| inbox.push(p));
                if moved > 0 {
                    for w in ring.take_waiters() {
                        self.wake(w, &WakeKind::Unpark);
                    }
                }
                moved
            }
        }
    }

    /// Drive the state machine for a wake; returns whether the caller must
    /// queue the task.
    fn wake_state(&self, t: usize, kind: &WakeKind) -> bool {
        let state = &self.tasks[t].state;
        loop {
            // ordering: SeqCst — one total order with mailbox pushes and the
            // worker's empty-check→IDLE transition (SC-only model)
            match state.load(SeqCst) {
                IDLE => {
                    // ordering: SeqCst — IDLE→QUEUED orders after the push (SC-only model)
                    if state.compare_exchange(IDLE, QUEUED, SeqCst, SeqCst).is_ok() {
                        return true;
                    }
                }
                PARKED => match kind {
                    WakeKind::Unpark => {
                        // ordering: SeqCst — PARKED→QUEUED release wake (SC-only model)
                        if state.compare_exchange(PARKED, QUEUED, SeqCst, SeqCst).is_ok() {
                            return true;
                        }
                    }
                    WakeKind::Notify => return false,
                },
                RUNNING => {
                    // ordering: SeqCst — RUNNING→NOTIFIED latches a mid-activation
                    // wake so idling later requeues instead (SC-only model)
                    if state.compare_exchange(RUNNING, NOTIFIED, SeqCst, SeqCst).is_ok() {
                        return false;
                    }
                }
                QUEUED | NOTIFIED | DONE => return false,
                other => unreachable!("invalid task state {other}"),
            }
        }
    }

    fn wake(&self, t: usize, kind: &WakeKind) {
        if self.wake_state(t, kind) {
            lock(&self.sched).runq.push_back(t);
            self.unpark_one_idler();
        }
    }

    fn unpark_one_idler(&self) {
        let popped = lock(&self.idlers).pop();
        if let Some((_, u)) = popped {
            u.unpark();
        }
    }

    fn unpark_all_idlers(&self) {
        let drained: Vec<_> = lock(&self.idlers).drain(..).collect();
        for (_, u) in drained {
            u.unpark();
        }
    }
}

/// Take tuple `idx` out of the batch scratch (each routed tuple is
/// delivered exactly once).
fn take_routed(tuples: &mut [Option<Tuple>], idx: u32) -> Packet {
    let Some(tuple) = tuples[idx as usize].take() else {
        unreachable!("routed tuple index {idx} already taken");
    };
    Packet::Tuple(tuple)
}

/// Append one Eof per downstream instance (all edges) to the outbox.
fn queue_eofs(edges: &[OutEdge], outbox: &mut VecDeque<(usize, Packet)>) {
    for edge in edges {
        match &edge.tx {
            EdgeTx::Tasks(dests) | EdgeTx::TaskRings(dests) => {
                for &d in dests {
                    outbox.push_back((d, Packet::Eof));
                }
            }
            EdgeTx::Channels(_) => unreachable!("pool tasks only have pool edges"),
        }
    }
}

/// Deliver spilled emissions in order; `false` means a downstream mailbox
/// is full and `tid` is registered for its release wake.
fn deliver_outbox(shared: &Shared, tid: usize, outbox: &mut VecDeque<(usize, Packet)>) -> bool {
    while let Some((dest, packet)) = outbox.pop_front() {
        if let Err(packet) = shared.push_or_park(dest, packet, tid) {
            outbox.push_front((dest, packet));
            return false;
        }
    }
    true
}

fn activate(shared: &Shared, tid: usize, body: &mut TaskBody) -> Outcome {
    body.activations += 1;
    if !deliver_outbox(shared, tid, &mut body.outbox) {
        return Outcome::Park;
    }
    if is_complete(body) {
        // The Eof protocol finished on an earlier activation, but the task
        // parked on its trailing deliveries; the outbox just drained.
        return Outcome::Done;
    }
    let TaskBody {
        instance,
        kind,
        edges,
        outbox,
        inbox,
        batch_keys,
        batch_tuples,
        targets,
        processed,
        emitted,
        ticks,
        stall_scale,
        stalled_ns,
        latency,
        sampler,
        final_state,
        signals,
        ..
    } = body;
    let stall_scale = *stall_scale;
    match kind {
        TaskKind::Spout { spout, exhausted, ingress } => {
            // Attached load signals force the per-tuple path: `route_batch`
            // makes all its decisions before any count is recorded, which
            // under a shared global estimate would dump the whole batch on
            // one argmin destination. The per-tuple emitter records after
            // each route, matching the simulator's (and the thread
            // executor's) interleaving exactly.
            if !*exhausted
                && edges.len() == 1
                && edges[0].router.is_batchable()
                && edges[0].signals.is_none()
                && ingress.is_none()
            {
                // Batched hot path: generate up to a quantum of tuples,
                // route them all in one `route_batch` pass, and deliver
                // each destination's run with one lock acquisition and one
                // wake — instead of per-tuple emitter setup, routing, and
                // mailbox locking. Routing results are byte-identical to
                // the per-tuple path (pinned by `grouping.rs` tests and
                // `engine_executor_parity.rs`): the router consumes keys in
                // stream order either way.
                let now_ns = shared.now_ns();
                batch_keys.clear();
                batch_tuples.clear();
                while batch_tuples.len() < shared.batch {
                    match spout.next() {
                        Some(mut tuple) => {
                            tuple.born_ns = now_ns;
                            batch_keys.push(tuple.key_id());
                            batch_tuples.push(Some(tuple));
                        }
                        None => {
                            *exhausted = true;
                            break;
                        }
                    }
                }
                *processed += batch_keys.len() as u64;
                *emitted += batch_keys.len() as u64;
                let edge = &mut edges[0];
                edge.router.route_batch(batch_keys, targets);
                let (EdgeTx::Tasks(dests) | EdgeTx::TaskRings(dests)) = &edge.tx else {
                    unreachable!("pool tasks only have pool edges");
                };
                for (d, run) in targets.runs() {
                    shared.push_run(dests[d], run, batch_tuples, outbox);
                }
                if *exhausted {
                    queue_eofs(edges, outbox);
                }
            } else if !*exhausted {
                // Per-tuple fallback: multi-edge fan-out, broadcast, or
                // elastic edges (epoch markers) need the full emitter.
                for _ in 0..shared.batch {
                    match spout.next() {
                        Some(tuple) => {
                            *processed += 1;
                            let now_ns = shared.now_ns();
                            if let Some(ing) = ingress.as_mut() {
                                // The watermark signal: deepest downstream
                                // mailbox across every edge destination.
                                let depth = edges
                                    .iter()
                                    .map(|e| {
                                        let (EdgeTx::Tasks(dests) | EdgeTx::TaskRings(dests)) =
                                            &e.tx
                                        else {
                                            unreachable!("pool tasks only have pool edges");
                                        };
                                        dests.iter().map(|&d| shared.depth(d)).max().unwrap_or(0)
                                    })
                                    .max()
                                    .unwrap_or(0);
                                let admit = ing.offer(
                                    &tuple.key,
                                    tuple.key_id(),
                                    tuple.value,
                                    depth,
                                    now_ns,
                                );
                                if !admit {
                                    continue;
                                }
                            }
                            let mut em = Emitter {
                                edges,
                                sink: Sink::Pool { shared, outbox },
                                inherit_born_ns: 0,
                                now_ns,
                                emitted,
                                deferred_ns: 0,
                                stall_scale,
                                stalled_ns: 0,
                            };
                            em.emit(tuple);
                            if !outbox.is_empty() {
                                // Downstream full: stop producing, park.
                                break;
                            }
                        }
                        None => {
                            *exhausted = true;
                            if ingress.is_none() {
                                queue_eofs(edges, outbox);
                            }
                            break;
                        }
                    }
                }
            }
            if *exhausted {
                if let Some(ing) = ingress.as_mut() {
                    // Drain phase: re-inject retained summaries as ordinary
                    // tuples ahead of Eof. Restartable — if the outbox fills
                    // mid-drain the task parks here, and `is_complete` holds
                    // the Eof protocol open until the queue runs dry.
                    ing.start_drain();
                    while outbox.is_empty() {
                        let Some(tuple) = ing.next_drained() else { break };
                        let now_ns = shared.now_ns();
                        let mut em = Emitter {
                            edges,
                            sink: Sink::Pool { shared, outbox },
                            inherit_born_ns: 0,
                            now_ns,
                            emitted,
                            deferred_ns: 0,
                            stall_scale,
                            stalled_ns: 0,
                        };
                        em.emit(tuple);
                    }
                    // Queued at most once: after this activation,
                    // `is_complete` short-circuits the arm to `Done`.
                    if ing.drain_complete() {
                        queue_eofs(edges, outbox);
                    }
                }
            }
            if !deliver_outbox(shared, tid, outbox) {
                return Outcome::Park;
            }
            let drain_complete = match ingress {
                Some(ing) => ing.drain_complete(),
                None => true,
            };
            if *exhausted && drain_complete {
                Outcome::Done
            } else {
                // Input left, or retained summaries still draining.
                Outcome::Yield
            }
        }
        TaskKind::Bolt { bolt, eof_remaining, tick_period_ns, next_tick_ns } => {
            // 1. Tick deadlines, catching up on every overdue period (the
            //    legacy executor's deadline-first loop does the same).
            if let Some(period) = *tick_period_ns {
                let mut now_ns = shared.now_ns();
                let mut fired = false;
                while now_ns >= *next_tick_ns {
                    // Sample state at its peak, before the tick flushes it.
                    sampler.sample(bolt.state_size());
                    let mut em = Emitter {
                        edges,
                        sink: Sink::Pool { shared, outbox },
                        inherit_born_ns: 0,
                        now_ns,
                        emitted,
                        deferred_ns: 0,
                        stall_scale,
                        stalled_ns: 0,
                    };
                    bolt.tick(&mut em);
                    *stalled_ns += em.stalled_ns;
                    *ticks += 1;
                    *next_tick_ns += period;
                    fired = true;
                    now_ns = shared.now_ns();
                }
                if fired {
                    // Re-arm the wheel for the advanced deadline.
                    lock(&shared.sched).timers.insert(*next_tick_ns, tid);
                    if !deliver_outbox(shared, tid, outbox) {
                        return Outcome::Park;
                    }
                }
            }
            // 2. Input packets, up to the batch quantum. One clock read per
            //    mailbox refill instead of per tuple: tuples drained
            //    together share a timestamp, with skew bounded by one drain
            //    quantum — far below the scheduling granularity the latency
            //    histogram resolves — while saving a `clock_gettime` on
            //    every packet.
            let mut budget = shared.batch;
            let mut now_ns = shared.now_ns();
            while budget > 0 {
                if inbox.is_empty() {
                    if shared.refill_inbox(tid, inbox, budget) == 0 {
                        break;
                    }
                    now_ns = shared.now_ns();
                }
                let Some(packet) = inbox.pop() else {
                    unreachable!("refill reported packets moved");
                };
                budget -= 1;
                match packet {
                    Packet::Tuple(tuple) => {
                        latency.record(now_ns.saturating_sub(tuple.born_ns));
                        let mut em = Emitter {
                            edges,
                            sink: Sink::Pool { shared, outbox },
                            inherit_born_ns: tuple.born_ns,
                            now_ns,
                            emitted,
                            deferred_ns: 0,
                            stall_scale,
                            stalled_ns: 0,
                        };
                        bolt.execute(tuple, &mut em);
                        let stall_ns = em.deferred_ns;
                        let tuple_stalled = em.stalled_ns;
                        // Feed the load signals: one in-flight tuple done,
                        // its capacity-scaled service time is the latency
                        // sample for Peak-EWMA and the capacity estimator.
                        if let Some(s) = signals.as_ref().and_then(SharedLoads::signals) {
                            s.complete(*instance, tuple_stalled);
                        }
                        *stalled_ns += tuple_stalled;
                        *processed += 1;
                        let blocked = !outbox.is_empty() && !deliver_outbox(shared, tid, outbox);
                        if stall_ns > 0 {
                            // End the activation: emulated service time must
                            // not hold a worker. run_task parks the task and
                            // then arms this deadline (in that order — see
                            // Outcome::Stall). When `blocked` too, the
                            // mailbox waiter registered by push_or_park
                            // doubles as an earlier-release wake.
                            return Outcome::Stall(shared.now_ns() + stall_ns);
                        }
                        if blocked {
                            return Outcome::Park;
                        }
                    }
                    Packet::Eof => {
                        *eof_remaining -= 1;
                        if *eof_remaining == 0 {
                            // Every sender's Eof is its last send, so FIFO
                            // implies nothing can follow the final Eof.
                            debug_assert!(inbox.is_empty(), "packets after final Eof");
                            sampler.sample(bolt.state_size());
                            *final_state = bolt.state_size();
                            let now_ns = shared.now_ns();
                            let mut em = Emitter {
                                edges,
                                sink: Sink::Pool { shared, outbox },
                                inherit_born_ns: 0,
                                now_ns,
                                emitted,
                                deferred_ns: 0,
                                stall_scale,
                                stalled_ns: 0,
                            };
                            bolt.finish(&mut em);
                            *stalled_ns += em.stalled_ns;
                            queue_eofs(edges, outbox);
                            if !deliver_outbox(shared, tid, outbox) {
                                return Outcome::Park;
                            }
                            return Outcome::Done;
                        }
                    }
                }
            }
            // budget > 0 here means the final refill found the mailbox
            // empty; any packet arriving after that flips us to NOTIFIED,
            // so idling cannot lose a wake.
            if inbox.is_empty() && budget > 0 {
                Outcome::Idle
            } else {
                Outcome::Yield
            }
        }
    }
}

/// Is the Eof protocol complete for this body? (Outbox drained and, for
/// bolts, the final Eof processed.) A parked task can be `Done`-pending:
/// it finishes on a later activation once its outbox drains.
fn is_complete(body: &TaskBody) -> bool {
    if !body.outbox.is_empty() {
        return false;
    }
    match &body.kind {
        TaskKind::Spout { exhausted, ingress, .. } => match ingress {
            // A spout with ingress is complete only once the retained
            // summaries have all been re-injected (see the drain phase).
            Some(ing) => *exhausted && ing.drain_complete(),
            None => *exhausted,
        },
        TaskKind::Bolt { eof_remaining, .. } => *eof_remaining == 0,
    }
}

/// Settle a task's scheduling state after a non-`Done` activation.
/// `requeue` is how the caller re-queues the task (the worker pushes onto
/// its local queue; the model suite substitutes its own). Split from
/// [`run_task`] so the model checker can race exactly this transition
/// against concurrent wakes (`pool_model.rs`).
fn settle(shared: &Shared, tid: usize, outcome: &Outcome, requeue: impl Fn()) {
    let slot = &shared.tasks[tid];
    match outcome {
        // Quantum exhausted with input left.
        Outcome::Yield => requeue(),
        // The CAS failure arms handle wakes that landed mid-activation
        // (state is NOTIFIED): requeue instead of going quiet.
        Outcome::Idle => {
            // ordering: SeqCst — RUNNING→IDLE must order after the final
            // empty mailbox check; failure means NOTIFIED landed (SC-only model)
            if slot.state.compare_exchange(RUNNING, IDLE, SeqCst, SeqCst).is_err() {
                requeue();
            }
        }
        Outcome::Park => {
            // ordering: SeqCst — RUNNING→PARKED after waiter registration;
            // failure means NOTIFIED landed (SC-only model)
            if slot.state.compare_exchange(RUNNING, PARKED, SeqCst, SeqCst).is_err() {
                requeue();
            }
        }
        Outcome::Stall(deadline_ns) => {
            // Park *unconditionally*: a NOTIFIED data wake that landed
            // mid-activation must not cancel the emulated service time (the
            // mailbox keeps the packets; we resume at the deadline). Safe to
            // absorb because the timer below is a guaranteed future wake —
            // and it is armed only now, after PARKED is visible, so it can
            // never fire against RUNNING and be consumed as a no-op.
            // ordering: SeqCst — store, not CAS: absorbs NOTIFIED by design (SC-only model)
            slot.state.store(PARKED, SeqCst);
            lock(&shared.sched).timers.insert_unpark(*deadline_ns, tid);
        }
        Outcome::Done => unreachable!("Done is finalized by run_task, not settled"),
    }
}

fn run_task(shared: &Shared, tid: usize, wid: usize) {
    let slot = &shared.tasks[tid];
    // ordering: SeqCst — QUEUED→RUNNING claims the activation (SC-only model)
    let prev = slot.state.swap(RUNNING, SeqCst);
    debug_assert_eq!(prev, QUEUED, "only queued tasks run");
    let Some(mut body) = lock(&slot.body).take() else {
        unreachable!("queued task owns a body");
    };
    let outcome = activate(shared, tid, &mut body);
    if matches!(outcome, Outcome::Done) {
        // Every sender's Eof was its last send, so the high-water mark is
        // final by the time the task completes.
        // ordering: SeqCst — read after the Eof protocol quiesced (SC-only model)
        body.max_depth = slot.depth_high.load(SeqCst) as u64;
        lock(&shared.stats).push(body.into_stats());
        // ordering: SeqCst — DONE precedes the remaining decrement (SC-only model)
        slot.state.store(DONE, SeqCst);
        // ordering: SeqCst — the final decrement pairs with the idle workers'
        // remaining-count exit checks (SC-only model)
        if shared.remaining.fetch_sub(1, SeqCst) == 1 {
            shared.unpark_all_idlers();
        }
        return;
    }
    *lock(&slot.body) = Some(body);
    let requeue = || {
        // ordering: SeqCst — QUEUED before the id is published to the queue (SC-only model)
        slot.state.store(QUEUED, SeqCst);
        if !shared.locals[wid].push(tid) {
            // Deques are sized to the task count and a task id is queued at
            // most once (state machine), so a full deque is unreachable —
            // but the global injector is a safe overflow all the same.
            lock(&shared.sched).runq.push_back(tid);
        }
    };
    settle(shared, tid, &outcome, requeue);
}

fn steal(shared: &Shared, wid: usize) -> Option<usize> {
    let n = shared.locals.len();
    for k in 1..n {
        let victim = (wid + k) % n;
        loop {
            match shared.locals[victim].steal() {
                Steal::Success(tid) => return Some(tid),
                // Lost a CAS race: someone else is making progress on this
                // victim; try it again before moving on.
                Steal::Retry => {}
                Steal::Empty => break,
            }
        }
    }
    None
}

fn worker_loop(shared: &Shared, wid: usize) {
    let parker = Parker::new();
    let mut due: Vec<(usize, bool)> = Vec::new();
    loop {
        // Pick order: global injector (also firing due timers) → own local
        // queue → steal from a sibling. Global-first keeps freshly woken
        // tasks from starving behind a self-requeueing task.
        let task = {
            let mut s = lock(&shared.sched);
            due.clear();
            s.timers.fire(shared.now_ns(), &mut due);
            for &(t, unpark) in &due {
                let kind = if unpark { WakeKind::Unpark } else { WakeKind::Notify };
                if shared.wake_state(t, &kind) {
                    s.runq.push_back(t);
                }
            }
            s.runq.pop_front()
        };
        let task = task.or_else(|| shared.locals[wid].pop()).or_else(|| steal(shared, wid));
        match task {
            Some(tid) => {
                run_task(shared, tid, wid);
            }
            None => {
                // ordering: SeqCst — exit check pairs with run_task's final
                // decrement (SC-only model)
                if shared.remaining.load(SeqCst) == 0 {
                    shared.unpark_all_idlers();
                    return;
                }
                // Register as idle *before* re-checking the queue: a
                // producer that enqueues after our check will pop our
                // unparker, and a pre-park unpark makes park return
                // immediately (no lost wake).
                lock(&shared.idlers).push((wid, parker.unparker()));
                let (empty, next_deadline) = {
                    let s = lock(&shared.sched);
                    (s.runq.is_empty(), s.timers.next_deadline_ns())
                };
                // ordering: SeqCst — re-check under idler registration (SC-only model)
                if empty && shared.remaining.load(SeqCst) != 0 {
                    let sleep = next_deadline
                        .map_or(MAX_IDLE_PARK, |d| {
                            Duration::from_nanos(d.saturating_sub(shared.now_ns()))
                        })
                        .clamp(Duration::from_micros(50), MAX_IDLE_PARK);
                    parker.park_timeout(sleep);
                }
                lock(&shared.idlers).retain(|(w, _)| *w != wid);
            }
        }
    }
}

/// Execute `topology` on a cooperative pool of `workers` threads with a
/// per-activation quantum of `batch` packets. With `spsc_rings` on,
/// destinations fed by exactly one upstream sender instance get lock-free
/// SPSC ring mailboxes instead of mutexed queues.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pool(
    topology: &Topology,
    channel_capacity: usize,
    seed: u64,
    workers: usize,
    batch: usize,
    capacities: &crate::runtime::InstanceCapacities,
    spsc_rings: bool,
    ingress: Option<&IngressOptions>,
    load: Option<&crate::load::LoadSignalOptions>,
) -> RunStats {
    // Pool mailboxes are asynchronous queues with no rendezvous mode: a
    // capacity-0 mailbox could never accept a packet and every producer
    // would park forever. The thread executor's capacity-0 channels are
    // rendezvous channels; capacity 1 is the closest pool equivalent.
    let mailbox_capacity = channel_capacity.max(1);
    let n_components = topology.components.len();
    let out_edges = crate::runtime::build_out_edges(topology, seed);
    let upstream = crate::runtime::upstream_sender_counts(topology);
    // Shared load signals per destination component — the same helper the
    // thread executor uses, so both executors route on identical state.
    let parallelism: Vec<usize> = topology.components.iter().map(|c| c.parallelism).collect();
    let component_shared = crate::load::component_signals(load, &out_edges, &parallelism);
    let mut first_task = Vec::with_capacity(n_components);
    let mut total_instances = 0usize;
    for c in &topology.components {
        first_task.push(total_instances);
        total_instances += c.parallelism;
    }

    // A destination whose in-edges carry exactly one upstream sender
    // instance in total is single-producer: its mailbox can be a lock-free
    // SPSC ring (the task state machine serializes that sender's
    // activations, so the discipline holds across worker migration).
    let use_ring = |ci: usize| spsc_rings && upstream[ci] == 1;

    let epoch = Instant::now();
    let mut tasks = Vec::with_capacity(total_instances);
    let mut timers = TimerWheel::new();
    let mut runq = VecDeque::new();
    for (ci, c) in topology.components.iter().enumerate() {
        for i in 0..c.parallelism {
            let tid = first_task[ci] + i;
            let is_spout = matches!(c.kind, ComponentKind::Spout(_));
            let edges: Vec<OutEdge> = out_edges[ci]
                .iter()
                .map(|(to, grouping, edge_seed)| OutEdge {
                    router: Router::with_shared(
                        grouping,
                        topology.components[*to].parallelism,
                        *edge_seed,
                        i,
                        component_shared[*to].as_ref(),
                    ),
                    tx: {
                        let dests = (0..topology.components[*to].parallelism)
                            .map(|j| first_task[*to] + j)
                            .collect();
                        if use_ring(*to) {
                            EdgeTx::TaskRings(dests)
                        } else {
                            EdgeTx::Tasks(dests)
                        }
                    },
                    // Gauges are the thread executor's depth signal; the
                    // pool reads mailbox lengths via `Shared::depth`.
                    depths: Vec::new(),
                    hedge: match ingress {
                        // Same sender id derivation as the thread executor,
                        // so hedge tags are executor-independent.
                        Some(opts) if is_spout => opts
                            .hedge_depth_budget
                            .map(|budget| HedgeState::new(budget, (ci as u64) << 16 | i as u64)),
                        _ => None,
                    },
                    signals: component_shared[*to].clone(),
                })
                .collect();
            let (kind, mailbox, initial_state) = match &c.kind {
                ComponentKind::Spout(factory) => {
                    runq.push_back(tid);
                    let ing = ingress.map(|opts| SpoutIngress::new(opts, i));
                    (
                        TaskKind::Spout { spout: factory(i), exhausted: false, ingress: ing },
                        None,
                        QUEUED,
                    )
                }
                ComponentKind::Bolt(factory) => {
                    let period_ns = c.tick_every.map(|p| (p.as_nanos() as u64).max(1));
                    let next_tick_ns = match period_ns {
                        Some(p) => {
                            let deadline = (epoch.elapsed().as_nanos() as u64).max(1) + p;
                            timers.insert(deadline, tid);
                            deadline
                        }
                        None => u64::MAX,
                    };
                    let mailbox = if use_ring(ci) {
                        Mailbox::Ring(SpscRing::new(mailbox_capacity))
                    } else {
                        Mailbox::Mutexed { cap: mailbox_capacity, inner: Mutex::default() }
                    };
                    (
                        TaskKind::Bolt {
                            bolt: factory(i),
                            eof_remaining: upstream[ci],
                            tick_period_ns: period_ns,
                            next_tick_ns,
                        },
                        Some(mailbox),
                        IDLE,
                    )
                }
            };
            tasks.push(TaskSlot {
                state: AtomicU8::new(initial_state),
                mailbox,
                depth_high: AtomicUsize::new(0),
                body: Mutex::new(Some(Box::new(TaskBody::new(
                    c.name.clone(),
                    i,
                    kind,
                    edges,
                    capacities.stall_scale(&c.name, i),
                    component_shared[ci].clone(),
                )))),
            });
        }
    }

    let shared = Shared {
        tasks,
        sched: Mutex::new(Sched { runq, timers }),
        // Each task id is queued at most once across all queues (the QUEUED
        // state is exclusive), so `total + 1` slots can never fill.
        locals: (0..workers).map(|_| WorkStealingDeque::new(total_instances + 1)).collect(),
        idlers: Mutex::new(Vec::new()),
        remaining: AtomicUsize::new(total_instances),
        epoch,
        batch,
        stats: Mutex::new(Vec::with_capacity(total_instances)),
    };

    std::thread::scope(|scope| {
        for wid in 0..workers {
            let shared = &shared;
            scope.spawn(move || worker_loop(shared, wid));
        }
    });

    let wall = epoch.elapsed();
    let Ok(mut instances) = shared.stats.into_inner() else {
        panic!("engine lock poisoned: a worker thread panicked");
    };
    assert_eq!(instances.len(), total_instances, "every task reports stats");
    instances.sort_by(|a, b| a.component.cmp(&b.component).then(a.instance.cmp(&b.instance)));
    RunStats { wall, instances }
}

#[cfg(all(test, feature = "pkg_model"))]
#[path = "pool_model.rs"]
mod pool_model;
