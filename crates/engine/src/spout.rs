//! Stream sources.

use crate::tuple::Tuple;

/// A source of tuples (Storm's spout). `next` returning `None` ends the
/// stream; the runtime then propagates end-of-stream markers downstream and
/// shuts the topology down once they drain.
pub trait Spout: Send {
    /// Produce the next tuple, or `None` at end of stream.
    fn next(&mut self) -> Option<Tuple>;
}

/// A spout from a closure.
pub fn spout_from_fn<F>(f: F) -> Box<dyn Spout>
where
    F: FnMut() -> Option<Tuple> + Send + 'static,
{
    struct FnSpout<F>(F);
    impl<F: FnMut() -> Option<Tuple> + Send> Spout for FnSpout<F> {
        fn next(&mut self) -> Option<Tuple> {
            (self.0)()
        }
    }
    Box::new(FnSpout(f))
}

/// A spout from any iterator of tuples.
pub fn spout_from_iter<I>(iter: I) -> Box<dyn Spout>
where
    I: IntoIterator<Item = Tuple>,
    I::IntoIter: Send + 'static,
{
    struct IterSpout<I>(I);
    impl<I: Iterator<Item = Tuple> + Send> Spout for IterSpout<I> {
        fn next(&mut self) -> Option<Tuple> {
            self.0.next()
        }
    }
    Box::new(IterSpout(iter.into_iter()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spout_yields_then_ends() {
        let mut n = 0;
        let mut s = spout_from_fn(move || {
            n += 1;
            (n <= 3).then(|| Tuple::new(vec![n as u8], 0))
        });
        assert!(s.next().is_some());
        assert!(s.next().is_some());
        assert!(s.next().is_some());
        assert!(s.next().is_none());
    }

    #[test]
    fn iter_spout_drains_iterator() {
        let tuples = vec![Tuple::new(b"a".to_vec(), 1), Tuple::new(b"b".to_vec(), 2)];
        let mut s = spout_from_iter(tuples);
        assert_eq!(s.next().expect("first").value, 1);
        assert_eq!(s.next().expect("second").value, 2);
        assert!(s.next().is_none());
    }
}
