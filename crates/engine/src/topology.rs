//! Declarative topology construction (the DAG of Fig. 1).

use std::time::Duration;

use crate::bolt::Bolt;
use crate::grouping::Grouping;
use crate::spout::Spout;

/// Identifies a component (spout or bolt) in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// Factory creating the `i`-th instance of a spout component.
pub type SpoutFactory = Box<dyn Fn(usize) -> Box<dyn Spout> + Send>;
/// Factory creating the `i`-th instance of a bolt component.
pub type BoltFactory = Box<dyn Fn(usize) -> Box<dyn Bolt> + Send>;

pub(crate) enum ComponentKind {
    Spout(SpoutFactory),
    Bolt(BoltFactory),
}

pub(crate) struct Component {
    pub(crate) name: String,
    pub(crate) parallelism: usize,
    pub(crate) kind: ComponentKind,
    /// Input edges: (upstream node, grouping).
    pub(crate) inputs: Vec<(NodeId, Grouping)>,
    /// Tick interval for bolts (aggregation period), if any.
    pub(crate) tick_every: Option<Duration>,
}

/// A directed acyclic graph of spouts and bolts.
#[derive(Default)]
pub struct Topology {
    pub(crate) components: Vec<Component>,
}

/// Fluent handle returned by [`Topology::add_bolt`] for wiring inputs.
pub struct BoltHandle<'a> {
    topo: &'a mut Topology,
    id: NodeId,
}

impl BoltHandle<'_> {
    /// Subscribe this bolt to `from` with the given grouping.
    pub fn input(self, from: NodeId, grouping: Grouping) -> Self {
        assert!(
            from.0 < self.id.0,
            "inputs must reference earlier components (the builder is topological)"
        );
        self.topo.components[self.id.0].inputs.push((from, grouping));
        self
    }

    /// Configure a periodic tick (the aggregation period of Q4).
    pub fn tick_every(self, period: Duration) -> Self {
        assert!(!period.is_zero(), "tick period must be positive");
        self.topo.components[self.id.0].tick_every = Some(period);
        self
    }

    /// The component id, for wiring further bolts.
    pub fn id(&self) -> NodeId {
        self.id
    }
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a spout component with `parallelism` instances; `factory(i)`
    /// creates instance `i`.
    pub fn add_spout(
        &mut self,
        name: &str,
        parallelism: usize,
        factory: impl Fn(usize) -> Box<dyn Spout> + Send + 'static,
    ) -> NodeId {
        assert!(parallelism > 0, "parallelism must be positive");
        let id = NodeId(self.components.len());
        self.components.push(Component {
            name: name.to_string(),
            parallelism,
            kind: ComponentKind::Spout(Box::new(factory)),
            inputs: Vec::new(),
            tick_every: None,
        });
        id
    }

    /// Add a bolt component; wire its inputs through the returned handle.
    pub fn add_bolt(
        &mut self,
        name: &str,
        parallelism: usize,
        factory: impl Fn(usize) -> Box<dyn Bolt> + Send + 'static,
    ) -> BoltHandle<'_> {
        assert!(parallelism > 0, "parallelism must be positive");
        let id = NodeId(self.components.len());
        self.components.push(Component {
            name: name.to_string(),
            parallelism,
            kind: ComponentKind::Bolt(Box::new(factory)),
            inputs: Vec::new(),
            tick_every: None,
        });
        BoltHandle { topo: self, id }
    }

    /// Validate structural invariants (every bolt has ≥ 1 input, names are
    /// unique). Called by the runtime before spawning threads.
    pub fn validate(&self) {
        let mut names = std::collections::HashSet::new();
        for (i, c) in self.components.iter().enumerate() {
            assert!(names.insert(&c.name), "duplicate component name {}", c.name);
            match c.kind {
                ComponentKind::Spout(_) => {
                    assert!(c.inputs.is_empty(), "spout {} cannot have inputs", c.name)
                }
                ComponentKind::Bolt(_) => {
                    assert!(!c.inputs.is_empty(), "bolt {} has no inputs", c.name);
                    for (from, _) in &c.inputs {
                        assert!(from.0 < i, "edge must go forward");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bolt::CountingBolt;
    use crate::spout::spout_from_iter;

    #[test]
    fn builder_wires_edges() {
        let mut t = Topology::new();
        let s = t.add_spout("s", 2, |_| spout_from_iter(Vec::new()));
        let b =
            t.add_bolt("b", 3, |_| Box::new(CountingBolt::default())).input(s, Grouping::Key).id();
        let _ =
            t.add_bolt("agg", 1, |_| Box::new(CountingBolt::default())).input(b, Grouping::Global);
        t.validate();
        assert_eq!(t.components.len(), 3);
        assert_eq!(t.components[1].inputs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "has no inputs")]
    fn bolt_without_inputs_is_invalid() {
        let mut t = Topology::new();
        let _ = t.add_bolt("orphan", 1, |_| Box::new(CountingBolt::default()));
        t.validate();
    }

    #[test]
    #[should_panic(expected = "duplicate component name")]
    fn duplicate_names_are_invalid() {
        let mut t = Topology::new();
        let s = t.add_spout("x", 1, |_| spout_from_iter(Vec::new()));
        let _ =
            t.add_bolt("x", 1, |_| Box::new(CountingBolt::default())).input(s, Grouping::Shuffle);
        t.validate();
    }
}
