//! Runtime measurement results.

use std::time::Duration;

use pkg_metrics::LatencyHistogram;

/// Statistics of one component instance, reported when its executor exits.
#[derive(Debug)]
pub struct InstanceStats {
    /// Component name.
    pub component: String,
    /// Instance index within the component.
    pub instance: usize,
    /// Tuples processed (bolts) or produced (spouts).
    pub processed: u64,
    /// Tuples emitted downstream.
    pub emitted: u64,
    /// Histogram of input-tuple age at processing time (ns) — end-to-end
    /// latency when measured at terminal bolts.
    pub latency: LatencyHistogram,
    /// [`crate::bolt::Bolt::state_size`] at end of stream, sampled *before*
    /// the final flush (partial counters drain on finish; this captures the
    /// state they actually held).
    pub final_state: usize,
    /// Maximum observed state size (sampled at every tick and at finish).
    pub max_state: usize,
    /// Mean of the state-size samples.
    pub avg_state: f64,
    /// Number of ticks fired.
    pub ticks: u64,
    /// Emulated service time charged via [`crate::bolt::Emitter::stall`],
    /// in nanoseconds, *after* capacity scaling
    /// ([`crate::runtime::RuntimeOptions::capacities`]). Deterministic in
    /// the requested durations, so a half-speed instance reports exactly
    /// twice the stall of a full-speed one under either executor.
    pub stalled_ns: u64,
    /// Scheduler activations that drove this instance. Under the pool
    /// executor this counts how often a worker picked the task up (the
    /// batching quantum's amortization denominator); under
    /// thread-per-instance the whole run is one long activation, so it
    /// is 1.
    pub activations: u64,
    /// Tuples refused at ingress and discarded outright (spouts only; zero
    /// when the ingress layer is disabled).
    pub shed_dropped: u64,
    /// Tuples refused at ingress and absorbed into a degraded summary
    /// (spouts only; see `pkg_ingress::Shed::Absorbed`).
    pub shed_degraded: u64,
    /// Hedged dispatches issued (spouts only): head tuples duplicated to a
    /// second candidate because the chosen instance was over its latency
    /// budget.
    pub hedges: u64,
    /// High-water mark of this instance's input queue depth (bolts only):
    /// the deepest its mailbox/gauge got at any point in the run.
    pub max_depth: u64,
}

/// Results of one topology run.
#[derive(Debug)]
pub struct RunStats {
    /// Wall-clock time from spawn to full drain.
    pub wall: Duration,
    /// All instance statistics.
    pub instances: Vec<InstanceStats>,
}

impl RunStats {
    /// Total tuples processed by a component.
    pub fn processed(&self, component: &str) -> u64 {
        self.instances.iter().filter(|i| i.component == component).map(|i| i.processed).sum()
    }

    /// Total tuples emitted by a component.
    pub fn emitted(&self, component: &str) -> u64 {
        self.instances.iter().filter(|i| i.component == component).map(|i| i.emitted).sum()
    }

    /// Per-instance processed counts of a component (the engine-level load
    /// vector — its imbalance is the paper's `I(t)` on a live topology).
    pub fn loads(&self, component: &str) -> Vec<u64> {
        let mut v: Vec<(usize, u64)> = self
            .instances
            .iter()
            .filter(|i| i.component == component)
            .map(|i| (i.instance, i.processed))
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, p)| p).collect()
    }

    /// Throughput of a component in tuples/second over the whole run.
    pub fn throughput(&self, component: &str) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.processed(component) as f64 / secs
        }
    }

    /// Total scheduler activations of a component (pool executor; see
    /// [`InstanceStats::activations`]).
    pub fn activations(&self, component: &str) -> u64 {
        self.instances.iter().filter(|i| i.component == component).map(|i| i.activations).sum()
    }

    /// Per-instance charged service time of a component, in nanoseconds,
    /// sorted by instance index (see [`InstanceStats::stalled_ns`]).
    pub fn stalled_ns(&self, component: &str) -> Vec<u64> {
        let mut v: Vec<(usize, u64)> = self
            .instances
            .iter()
            .filter(|i| i.component == component)
            .map(|i| (i.instance, i.stalled_ns))
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, s)| s).collect()
    }

    /// Merged latency histogram of a component.
    pub fn latency(&self, component: &str) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new(5);
        for i in self.instances.iter().filter(|i| i.component == component) {
            merged.merge(&i.latency);
        }
        merged
    }

    /// Sum of final state sizes of a component (total live counters).
    pub fn final_state(&self, component: &str) -> usize {
        self.instances.iter().filter(|i| i.component == component).map(|i| i.final_state).sum()
    }

    /// Sum of per-instance *average* state sizes — the "average memory
    /// (counters)" axis of Fig. 5(b).
    pub fn avg_state(&self, component: &str) -> f64 {
        self.instances.iter().filter(|i| i.component == component).map(|i| i.avg_state).sum()
    }

    /// Sum of per-instance maximum state sizes.
    pub fn max_state(&self, component: &str) -> usize {
        self.instances.iter().filter(|i| i.component == component).map(|i| i.max_state).sum()
    }

    /// Tuples a component's ingress layer dropped outright.
    pub fn shed_dropped(&self, component: &str) -> u64 {
        self.instances.iter().filter(|i| i.component == component).map(|i| i.shed_dropped).sum()
    }

    /// Tuples a component's ingress layer absorbed into degraded summaries.
    pub fn shed_degraded(&self, component: &str) -> u64 {
        self.instances.iter().filter(|i| i.component == component).map(|i| i.shed_degraded).sum()
    }

    /// Hedged dispatches a component issued.
    pub fn hedges(&self, component: &str) -> u64 {
        self.instances.iter().filter(|i| i.component == component).map(|i| i.hedges).sum()
    }

    /// Deepest input queue any instance of a component reached.
    pub fn max_depth(&self, component: &str) -> u64 {
        self.instances
            .iter()
            .filter(|i| i.component == component)
            .map(|i| i.max_depth)
            .max()
            .unwrap_or(0)
    }

    /// `[p50, p99, p999]` of a component's merged input-age histogram, in
    /// nanoseconds (end-to-end latency at terminal bolts).
    pub fn latency_percentiles(&self, component: &str) -> [u64; 3] {
        let merged = self.latency(component);
        [merged.quantile(0.50), merged.quantile(0.99), merged.quantile(0.999)]
    }
}
