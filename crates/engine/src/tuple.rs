//! The unit of data flowing through a topology.

/// A message `⟨t, k, v⟩`: a byte-string key, an integer value, and a birth
/// timestamp for end-to-end latency measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    /// Routing key (a word, URL, feature id, …).
    pub key: Box<[u8]>,
    /// Payload value (counts, deltas; applications interpret it).
    pub value: i64,
    /// Opaque application bytes riding along with the tuple — empty (and
    /// allocation-free) for plain tuples. The aggregation subsystem
    /// (`pkg-agg`) ships encoded partial aggregates here.
    pub payload: Box<[u8]>,
    /// Nanoseconds since the runtime epoch at which the tuple entered the
    /// topology (stamped by the spout executor; preserved across bolts so
    /// sink latency is end-to-end).
    pub born_ns: u64,
}

impl Tuple {
    /// A tuple with an unset birth timestamp (the spout executor stamps it).
    pub fn new(key: impl Into<Box<[u8]>>, value: i64) -> Self {
        Self { key: key.into(), value, payload: Box::default(), born_ns: 0 }
    }

    /// A tuple carrying opaque payload bytes (e.g. an encoded partial
    /// aggregate).
    pub fn with_payload(
        key: impl Into<Box<[u8]>>,
        value: i64,
        payload: impl Into<Box<[u8]>>,
    ) -> Self {
        Self { key: key.into(), value, payload: payload.into(), born_ns: 0 }
    }

    /// Key as UTF-8, if it is (diagnostics/tests).
    pub fn key_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.key).ok()
    }

    /// The 64-bit key fingerprint used for routing decisions.
    #[inline]
    pub fn key_id(&self) -> u64 {
        use pkg_hash::StreamKey;
        self.key.as_ref().key_id()
    }
}

/// What travels on a channel: data, periodic ticks are generated locally by
/// executors, so only tuples and end-of-stream markers cross threads.
#[derive(Debug)]
pub enum Packet {
    /// A data tuple.
    Tuple(Tuple),
    /// End of stream from one upstream sender; an instance finishes when it
    /// has received one per upstream instance.
    Eof,
}

/// A reusable batch of packets drained from a mailbox in one lock
/// acquisition.
///
/// The pool executor's hot path amortizes synchronization over the batch
/// quantum: instead of locking the mailbox once per packet (the
/// channel-`recv` cost structure of the thread-per-instance executor), a
/// task activation moves up to `B` packets here under a single lock and
/// processes them lock-free. Packets left over when an activation suspends
/// (downstream backpressure) stay in the batch and are consumed first on
/// the next activation, preserving per-sender FIFO order — which is what
/// keeps Eof counting and byte-identical routing intact across executors.
#[derive(Debug, Default)]
pub(crate) struct PacketBatch {
    items: std::collections::VecDeque<Packet>,
}

impl PacketBatch {
    pub(crate) fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub(crate) fn pop(&mut self) -> Option<Packet> {
        self.items.pop_front()
    }

    /// Move up to `max` packets from `queue` (a mailbox's locked interior)
    /// into this batch; returns how many moved.
    pub(crate) fn refill(
        &mut self,
        queue: &mut std::collections::VecDeque<Packet>,
        max: usize,
    ) -> usize {
        let n = max.min(queue.len());
        self.items.extend(queue.drain(..n));
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_batch_refill_preserves_fifo_and_caps_at_max() {
        let mut q: std::collections::VecDeque<Packet> =
            (0..5).map(|i| Packet::Tuple(Tuple::new(vec![i as u8], i))).collect();
        let mut b = PacketBatch::default();
        assert_eq!(b.refill(&mut q, 3), 3);
        assert_eq!(q.len(), 2);
        for want in 0..3 {
            match b.pop() {
                Some(Packet::Tuple(t)) => assert_eq!(t.value, want),
                other => panic!("expected tuple, got {other:?}"),
            }
        }
        assert!(b.is_empty());
        assert_eq!(b.refill(&mut q, 10), 2);
    }

    #[test]
    fn key_id_is_stable_and_collision_free_on_small_sets() {
        let a = Tuple::new(b"hello".to_vec(), 1);
        let b = Tuple::new(b"hello".to_vec(), 2);
        let c = Tuple::new(b"world".to_vec(), 1);
        assert_eq!(a.key_id(), b.key_id());
        assert_ne!(a.key_id(), c.key_id());
    }

    #[test]
    fn key_str_roundtrip() {
        let t = Tuple::new(b"word".to_vec(), 0);
        assert_eq!(t.key_str(), Some("word"));
    }
}
