//! The unit of data flowing through a topology.

/// A message `⟨t, k, v⟩`: a byte-string key, an integer value, and a birth
/// timestamp for end-to-end latency measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    /// Routing key (a word, URL, feature id, …).
    pub key: Box<[u8]>,
    /// Payload value (counts, deltas; applications interpret it).
    pub value: i64,
    /// Opaque application bytes riding along with the tuple — empty (and
    /// allocation-free) for plain tuples. The aggregation subsystem
    /// (`pkg-agg`) ships encoded partial aggregates here.
    pub payload: Box<[u8]>,
    /// Nanoseconds since the runtime epoch at which the tuple entered the
    /// topology (stamped by the spout executor; preserved across bolts so
    /// sink latency is end-to-end).
    pub born_ns: u64,
}

impl Tuple {
    /// A tuple with an unset birth timestamp (the spout executor stamps it).
    pub fn new(key: impl Into<Box<[u8]>>, value: i64) -> Self {
        Self { key: key.into(), value, payload: Box::default(), born_ns: 0 }
    }

    /// A tuple carrying opaque payload bytes (e.g. an encoded partial
    /// aggregate).
    pub fn with_payload(
        key: impl Into<Box<[u8]>>,
        value: i64,
        payload: impl Into<Box<[u8]>>,
    ) -> Self {
        Self { key: key.into(), value, payload: payload.into(), born_ns: 0 }
    }

    /// Key as UTF-8, if it is (diagnostics/tests).
    pub fn key_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.key).ok()
    }

    /// The 64-bit key fingerprint used for routing decisions.
    #[inline]
    pub fn key_id(&self) -> u64 {
        use pkg_hash::StreamKey;
        self.key.as_ref().key_id()
    }
}

/// What travels on a channel: data, periodic ticks are generated locally by
/// executors, so only tuples and end-of-stream markers cross threads.
#[derive(Debug)]
pub enum Packet {
    /// A data tuple.
    Tuple(Tuple),
    /// End of stream from one upstream sender; an instance finishes when it
    /// has received one per upstream instance.
    Eof,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_id_is_stable_and_collision_free_on_small_sets() {
        let a = Tuple::new(b"hello".to_vec(), 1);
        let b = Tuple::new(b"hello".to_vec(), 2);
        let c = Tuple::new(b"world".to_vec(), 1);
        assert_eq!(a.key_id(), b.key_id());
        assert_ne!(a.key_id(), c.key_id());
    }

    #[test]
    fn key_str_roundtrip() {
        let t = Tuple::new(b"word".to_vec(), 0);
        assert_eq!(t.key_str(), Some("word"));
    }
}
