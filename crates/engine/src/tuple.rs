//! The unit of data flowing through a topology.
//!
//! Keys use a small-string-optimized representation ([`TupleKey`]): keys of
//! up to [`INLINE_KEY_CAP`] bytes live inline in the tuple (no heap
//! allocation anywhere on the hot path — wordcount vocabularies, feature
//! ids and URLs' hot prefixes all fit), longer keys spill to a boxed slice.
//! The [`audit`] module counts the spills and tuple clones so drivers can
//! assert the flagship path stays allocation-free per message.

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::ops::Deref;

/// Allocation-audit counters for the tuple hot path.
///
/// These count *logical* allocation events owned by this module — heap-key
/// spills ([`TupleKey`] contents too long to inline) and whole-[`Tuple`]
/// clones (the emitter's fan-out cost) — not every allocation in the
/// process. The flagship throughput driver asserts that neither grows with
/// message volume when keys fit inline and topologies are single-out-edge.
pub mod audit {
    use std::sync::atomic::{AtomicU64, Ordering};

    // ordering: Relaxed — pure statistics counters; no other memory is
    // published through them and exact interleaving does not matter.
    static HEAP_KEYS: AtomicU64 = AtomicU64::new(0);
    static TUPLE_CLONES: AtomicU64 = AtomicU64::new(0);

    #[inline]
    pub(crate) fn note_heap_key() {
        // ordering: Relaxed — statistics only (see module doc).
        HEAP_KEYS.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn note_tuple_clone() {
        // ordering: Relaxed — statistics only (see module doc).
        TUPLE_CLONES.fetch_add(1, Ordering::Relaxed);
    }

    /// Heap-key allocations (inline-capacity overflows, [`super::TupleKey`]
    /// clones of heap keys, and `into_boxed` copies) since process start.
    pub fn heap_keys() -> u64 {
        // ordering: Relaxed — statistics only (see module doc).
        HEAP_KEYS.load(Ordering::Relaxed)
    }

    /// Whole-[`super::Tuple`] clones since process start.
    pub fn tuple_clones() -> u64 {
        // ordering: Relaxed — statistics only (see module doc).
        TUPLE_CLONES.load(Ordering::Relaxed)
    }
}

/// Longest key that lives inline in a [`TupleKey`] (bytes). Chosen so the
/// whole enum is 24 bytes — one byte of discriminant, one of length, 22 of
/// payload — only 8 bytes over `Box<[u8]>`'s two words.
pub const INLINE_KEY_CAP: usize = 22;

/// A tuple's routing key with small-size optimization.
///
/// Behaves like an immutable `[u8]` everywhere (`Deref`, `AsRef`, `Borrow`,
/// byte-wise `Eq`/`Ord`/`Hash`), so maps keyed by `TupleKey` support
/// `&[u8]` lookups exactly like maps keyed by `Box<[u8]>` did.
pub struct TupleKey {
    repr: Repr,
}

enum Repr {
    /// Up to [`INLINE_KEY_CAP`] bytes stored in the tuple itself.
    Inline { len: u8, buf: [u8; INLINE_KEY_CAP] },
    /// Longer keys spill to the heap (counted by [`audit::heap_keys`]).
    Heap(Box<[u8]>),
}

impl TupleKey {
    /// The empty key (allocation-free; routes consistently — used by
    /// stream-global accumulators).
    pub const fn empty() -> Self {
        Self { repr: Repr::Inline { len: 0, buf: [0; INLINE_KEY_CAP] } }
    }

    /// Copy `bytes` into a key, inlining when it fits.
    pub fn from_slice(bytes: &[u8]) -> Self {
        if bytes.len() <= INLINE_KEY_CAP {
            let mut buf = [0u8; INLINE_KEY_CAP];
            buf[..bytes.len()].copy_from_slice(bytes);
            Self { repr: Repr::Inline { len: bytes.len() as u8, buf } }
        } else {
            audit::note_heap_key();
            Self { repr: Repr::Heap(bytes.into()) }
        }
    }

    /// The key bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..usize::from(*len)],
            Repr::Heap(b) => b,
        }
    }

    /// Key length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Whether the key is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the key is stored inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Convert into a boxed slice (moves the existing allocation for heap
    /// keys; copies — and counts an allocation — for inline keys).
    pub fn into_boxed(self) -> Box<[u8]> {
        match self.repr {
            Repr::Inline { len, buf } => {
                audit::note_heap_key();
                buf[..usize::from(len)].into()
            }
            Repr::Heap(b) => b,
        }
    }
}

impl Clone for TupleKey {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Inline { len, buf } => Self { repr: Repr::Inline { len: *len, buf: *buf } },
            Repr::Heap(b) => {
                audit::note_heap_key();
                Self { repr: Repr::Heap(b.clone()) }
            }
        }
    }
}

impl Default for TupleKey {
    fn default() -> Self {
        Self::empty()
    }
}

impl Deref for TupleKey {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl AsRef<[u8]> for TupleKey {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl Borrow<[u8]> for TupleKey {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl Hash for TupleKey {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Delegate to the slice hash so `Borrow<[u8]>` map lookups agree.
        self.as_bytes().hash(state);
    }
}

impl PartialEq for TupleKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for TupleKey {}

impl PartialOrd for TupleKey {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TupleKey {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }
}

impl std::fmt::Debug for TupleKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match std::str::from_utf8(self.as_bytes()) {
            Ok(s) => write!(f, "TupleKey({s:?})"),
            Err(_) => write!(f, "TupleKey({:?})", self.as_bytes()),
        }
    }
}

impl From<&[u8]> for TupleKey {
    fn from(bytes: &[u8]) -> Self {
        Self::from_slice(bytes)
    }
}

impl From<Vec<u8>> for TupleKey {
    fn from(bytes: Vec<u8>) -> Self {
        if bytes.len() <= INLINE_KEY_CAP {
            Self::from_slice(&bytes)
        } else {
            // The vec's buffer moves into the box; shrink-to-fit may copy
            // but the key itself introduces no extra allocation.
            Self { repr: Repr::Heap(bytes.into_boxed_slice()) }
        }
    }
}

impl From<Box<[u8]>> for TupleKey {
    fn from(bytes: Box<[u8]>) -> Self {
        if bytes.len() <= INLINE_KEY_CAP {
            Self::from_slice(&bytes)
        } else {
            Self { repr: Repr::Heap(bytes) }
        }
    }
}

impl<const N: usize> From<[u8; N]> for TupleKey {
    fn from(bytes: [u8; N]) -> Self {
        Self::from_slice(&bytes)
    }
}

impl<const N: usize> From<&[u8; N]> for TupleKey {
    fn from(bytes: &[u8; N]) -> Self {
        Self::from_slice(bytes)
    }
}

/// A message `⟨t, k, v⟩`: a byte-string key, an integer value, and a birth
/// timestamp for end-to-end latency measurement.
#[derive(Debug, PartialEq, Eq)]
pub struct Tuple {
    /// Routing key (a word, URL, feature id, …).
    pub key: TupleKey,
    /// Payload value (counts, deltas; applications interpret it).
    pub value: i64,
    /// Opaque application bytes riding along with the tuple — empty (and
    /// allocation-free) for plain tuples. The aggregation subsystem
    /// (`pkg-agg`) ships encoded partial aggregates here.
    pub payload: Box<[u8]>,
    /// Nanoseconds since the runtime epoch at which the tuple entered the
    /// topology (stamped by the spout executor; preserved across bolts so
    /// sink latency is end-to-end).
    pub born_ns: u64,
}

impl Clone for Tuple {
    fn clone(&self) -> Self {
        audit::note_tuple_clone();
        Self {
            key: self.key.clone(),
            value: self.value,
            payload: self.payload.clone(),
            born_ns: self.born_ns,
        }
    }
}

impl Tuple {
    /// A tuple with an unset birth timestamp (the spout executor stamps it).
    pub fn new(key: impl Into<TupleKey>, value: i64) -> Self {
        Self { key: key.into(), value, payload: Box::default(), born_ns: 0 }
    }

    /// A tuple carrying opaque payload bytes (e.g. an encoded partial
    /// aggregate).
    pub fn with_payload(
        key: impl Into<TupleKey>,
        value: i64,
        payload: impl Into<Box<[u8]>>,
    ) -> Self {
        Self { key: key.into(), value, payload: payload.into(), born_ns: 0 }
    }

    /// Key as UTF-8, if it is (diagnostics/tests).
    pub fn key_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.key).ok()
    }

    /// The 64-bit key fingerprint used for routing decisions.
    #[inline]
    pub fn key_id(&self) -> u64 {
        use pkg_hash::StreamKey;
        self.key.as_bytes().key_id()
    }
}

/// What travels on a channel: data, periodic ticks are generated locally by
/// executors, so only tuples and end-of-stream markers cross threads.
#[derive(Debug)]
pub enum Packet {
    /// A data tuple.
    Tuple(Tuple),
    /// End of stream from one upstream sender; an instance finishes when it
    /// has received one per upstream instance.
    Eof,
}

/// A reusable batch of packets drained from a mailbox in one lock
/// acquisition.
///
/// The pool executor's hot path amortizes synchronization over the batch
/// quantum: instead of locking the mailbox once per packet (the
/// channel-`recv` cost structure of the thread-per-instance executor), a
/// task activation moves up to `B` packets here under a single lock and
/// processes them lock-free. Packets left over when an activation suspends
/// (downstream backpressure) stay in the batch and are consumed first on
/// the next activation, preserving per-sender FIFO order — which is what
/// keeps Eof counting and byte-identical routing intact across executors.
#[derive(Debug, Default)]
pub(crate) struct PacketBatch {
    items: std::collections::VecDeque<Packet>,
}

impl PacketBatch {
    pub(crate) fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub(crate) fn pop(&mut self) -> Option<Packet> {
        self.items.pop_front()
    }

    /// Move up to `max` packets from `queue` (a mailbox's locked interior)
    /// into this batch; returns how many moved.
    pub(crate) fn refill(
        &mut self,
        queue: &mut std::collections::VecDeque<Packet>,
        max: usize,
    ) -> usize {
        let n = max.min(queue.len());
        self.items.extend(queue.drain(..n));
        n
    }

    /// Append one packet (ring-buffer refill path: packets are popped from
    /// the ring one at a time but batched here all the same).
    pub(crate) fn push(&mut self, packet: Packet) {
        self.items.push_back(packet);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_batch_refill_preserves_fifo_and_caps_at_max() {
        let mut q: std::collections::VecDeque<Packet> =
            (0..5).map(|i| Packet::Tuple(Tuple::new(vec![i as u8], i))).collect();
        let mut b = PacketBatch::default();
        assert_eq!(b.refill(&mut q, 3), 3);
        assert_eq!(q.len(), 2);
        for want in 0..3 {
            match b.pop() {
                Some(Packet::Tuple(t)) => assert_eq!(t.value, want),
                other => panic!("expected tuple, got {other:?}"),
            }
        }
        assert!(b.is_empty());
        assert_eq!(b.refill(&mut q, 10), 2);
    }

    #[test]
    fn key_id_is_stable_and_collision_free_on_small_sets() {
        let a = Tuple::new(b"hello".to_vec(), 1);
        let b = Tuple::new(b"hello".to_vec(), 2);
        let c = Tuple::new(b"world".to_vec(), 1);
        assert_eq!(a.key_id(), b.key_id());
        assert_ne!(a.key_id(), c.key_id());
    }

    #[test]
    fn key_str_roundtrip() {
        let t = Tuple::new(b"word".to_vec(), 0);
        assert_eq!(t.key_str(), Some("word"));
    }

    #[test]
    fn small_keys_inline_and_large_keys_spill() {
        let small = TupleKey::from_slice(b"word");
        assert!(small.is_inline());
        assert_eq!(small.as_bytes(), b"word");
        let exact = TupleKey::from_slice(&[7u8; INLINE_KEY_CAP]);
        assert!(exact.is_inline());
        assert_eq!(exact.len(), INLINE_KEY_CAP);
        let big = TupleKey::from_slice(&[7u8; INLINE_KEY_CAP + 1]);
        assert!(!big.is_inline());
        assert_eq!(big.len(), INLINE_KEY_CAP + 1);
    }

    #[test]
    fn key_representation_is_transparent_to_eq_ord_hash() {
        use std::collections::hash_map::DefaultHasher;
        let inline = TupleKey::from_slice(b"same-bytes");
        // Force a heap representation of identical bytes via into_boxed on
        // a long key then truncation is impossible — build directly instead.
        let heap = TupleKey { repr: Repr::Heap(b"same-bytes".to_vec().into_boxed_slice()) };
        assert!(!heap.is_inline());
        assert_eq!(inline, heap);
        assert_eq!(inline.cmp(&heap), std::cmp::Ordering::Equal);
        let hash = |k: &TupleKey| {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&inline), hash(&heap));
        // Borrow<[u8]> lookups work for inline keys in hash maps.
        let mut m: pkg_hash::FxHashMap<TupleKey, i64> = pkg_hash::FxHashMap::default();
        m.insert(inline, 1);
        assert_eq!(m.get(b"same-bytes".as_slice()), Some(&1));
    }

    #[test]
    fn inline_clone_is_allocation_free_and_heap_clone_is_counted() {
        let before = audit::heap_keys();
        let small = TupleKey::from_slice(b"abc");
        #[allow(clippy::redundant_clone)]
        let _copy = small.clone();
        assert_eq!(audit::heap_keys(), before, "inline keys clone without allocating");
        let big = TupleKey::from_slice(&[1u8; 64]);
        let after_spill = audit::heap_keys();
        assert!(after_spill > before, "oversized key spills to the heap");
        let _copy = big.clone();
        assert!(audit::heap_keys() > after_spill, "heap-key clones are counted");
    }

    #[test]
    fn into_boxed_round_trips() {
        let k = TupleKey::from_slice(b"roundtrip");
        assert_eq!(k.clone().into_boxed().as_ref(), b"roundtrip");
        let big = TupleKey::from_slice(&[9u8; 40]);
        assert_eq!(big.into_boxed().len(), 40);
    }

    #[test]
    fn tuple_clones_are_counted() {
        let before = audit::tuple_clones();
        let t = Tuple::new(b"k".to_vec(), 1);
        let _c = t.clone();
        assert!(audit::tuple_clones() > before);
    }
}
