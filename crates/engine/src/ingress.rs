//! Engine-side ingress wiring: admission control, load shedding, and the
//! state backing hedged dispatch.
//!
//! The mechanisms (token bucket, shed policies, hedge tag codec) live in
//! `pkg-ingress`; this module owns the *placement*: a [`SpoutIngress`] sits
//! between each spout and its emitter and decides, tuple by tuple, whether
//! the tuple enters the topology. Refused tuples go to the configured
//! [`ShedPolicy`](pkg_ingress::ShedPolicy); whatever the policy retains is
//! re-injected at end-of-stream via the drain phase, ahead of EOF, so
//! downstream bolts see degraded summaries as ordinary tuples.
//!
//! Depth signals come from two sources depending on executor: the
//! thread-per-instance executor counts in-flight packets per bolt instance
//! with a shared [`DepthGauge`] (senders increment, the receiving bolt
//! decrements), while the pool executor reads its mailboxes' queue lengths
//! directly and keeps a producer-side high-water mark per slot. Both
//! surface the same "tuples queued downstream" signal, so watermark
//! shedding behaves the same under either transport (pinned by
//! `tests/ingress_overload.rs`).

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::Arc;
use crate::tuple::{Tuple, TupleKey};
use std::collections::VecDeque;
use std::fmt;

use pkg_ingress::{HardDrop, Shed, ShedPolicy, TokenBucket};

/// Factory producing one [`ShedPolicy`] per spout instance (instances run
/// on different threads, and policies are stateful).
pub type ShedPolicyFactory = dyn Fn(usize) -> Box<dyn ShedPolicy> + Send + Sync;

/// Ingress configuration, carried by `RuntimeOptions`. `None` (the
/// default at the `RuntimeOptions` level) disables the layer entirely —
/// the spout path is then byte-for-byte the pre-ingress code path.
#[derive(Clone)]
pub struct IngressOptions {
    /// Sustained admission rate in tuples/second per spout instance;
    /// `None` disables the token bucket.
    pub rate_per_sec: Option<u64>,
    /// Token-bucket burst capacity (tokens); clamped to at least 1.
    pub burst: u64,
    /// Maximum tuples in flight downstream of one spout instance before
    /// admission refuses; `None` disables the limit.
    pub inflight_limit: Option<usize>,
    /// Downstream queue-depth watermark: when the deepest downstream
    /// mailbox reaches this many queued tuples, new tuples are shed until
    /// it recedes. `None` disables watermark shedding.
    pub watermark: Option<usize>,
    /// Builds the shed policy for a given spout instance; `None` means
    /// [`HardDrop`].
    pub policy: Option<Arc<ShedPolicyFactory>>,
    /// Hedged dispatch: when a head tuple's chosen instance has more than
    /// this many tuples queued, re-issue the tuple to the next candidate.
    /// `None` disables hedging.
    pub hedge_depth_budget: Option<usize>,
    /// Logical admission clock: advance the token bucket's clock by this
    /// many nanoseconds per *offered* tuple instead of reading wall time.
    /// Makes the admit/shed decision sequence a pure function of the input
    /// stream — identical across executors and hosts.
    pub logical_step_ns: Option<u64>,
}

impl Default for IngressOptions {
    fn default() -> Self {
        Self {
            rate_per_sec: None,
            burst: 1,
            inflight_limit: None,
            watermark: None,
            policy: None,
            hedge_depth_budget: None,
            logical_step_ns: None,
        }
    }
}

impl fmt::Debug for IngressOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IngressOptions")
            .field("rate_per_sec", &self.rate_per_sec)
            .field("burst", &self.burst)
            .field("inflight_limit", &self.inflight_limit)
            .field("watermark", &self.watermark)
            .field("policy", &self.policy.as_ref().map(|_| "<factory>"))
            .field("hedge_depth_budget", &self.hedge_depth_budget)
            .field("logical_step_ns", &self.logical_step_ns)
            .finish()
    }
}

/// Per-spout-instance admission state. Both executors consult it with
/// `(tuple, observed downstream depth, clock)` before emitting; at
/// end-of-stream they run the drain phase to re-inject whatever the shed
/// policy retained.
pub(crate) struct SpoutIngress {
    bucket: Option<TokenBucket>,
    inflight_limit: Option<usize>,
    watermark: Option<usize>,
    policy: Box<dyn ShedPolicy>,
    logical_step_ns: Option<u64>,
    logical_now_ns: u64,
    dropped: u64,
    degraded: u64,
    drained: VecDeque<Tuple>,
    drain_started: bool,
}

impl SpoutIngress {
    pub(crate) fn new(options: &IngressOptions, instance: usize) -> Self {
        Self {
            bucket: options.rate_per_sec.map(|r| TokenBucket::new(r, options.burst)),
            inflight_limit: options.inflight_limit,
            watermark: options.watermark,
            policy: match &options.policy {
                Some(factory) => factory(instance),
                None => Box::new(HardDrop),
            },
            logical_step_ns: options.logical_step_ns,
            logical_now_ns: 0,
            dropped: 0,
            degraded: 0,
            drained: VecDeque::new(),
            drain_started: false,
        }
    }

    /// Offer one tuple for admission. `depth` is the deepest downstream
    /// queue observed right now; `wall_now_ns` is the executor clock (used
    /// only when no logical clock is configured). Returns `true` to admit;
    /// on `false` the tuple has already been handed to the shed policy.
    pub(crate) fn offer(
        &mut self,
        key: &TupleKey,
        key_id: u64,
        value: i64,
        depth: usize,
        wall_now_ns: u64,
    ) -> bool {
        let now_ns = match self.logical_step_ns {
            Some(step) => {
                self.logical_now_ns += step;
                self.logical_now_ns
            }
            None => wall_now_ns,
        };
        let over_inflight = self.inflight_limit.is_some_and(|limit| depth >= limit);
        let over_watermark = self.watermark.is_some_and(|mark| depth >= mark);
        let denied_by_bucket = match &mut self.bucket {
            Some(bucket) => !bucket.admit(now_ns),
            None => false,
        };
        if !(over_inflight || over_watermark || denied_by_bucket) {
            return true;
        }
        match self.policy.shed(key.as_bytes(), key_id, value) {
            Shed::Dropped => self.dropped += 1,
            Shed::Absorbed => self.degraded += 1,
        }
        false
    }

    /// Begin the end-of-stream drain phase: collect whatever the shed
    /// policy retained, as ordinary tuples with empty payloads. Idempotent,
    /// and restartable through [`Self::next_drained`] — the pool executor
    /// may yield mid-drain when its outbox fills.
    pub(crate) fn start_drain(&mut self) {
        if self.drain_started {
            return;
        }
        self.drain_started = true;
        for (key, value) in self.policy.drain() {
            self.drained.push_back(Tuple {
                key: TupleKey::from_slice(&key),
                value,
                payload: Box::new([]),
                born_ns: 0,
            });
        }
    }

    /// Next retained tuple to re-inject, if any.
    pub(crate) fn next_drained(&mut self) -> Option<Tuple> {
        self.drained.pop_front()
    }

    /// Has the drain phase started *and* run dry? Gates the Eof protocol
    /// in the pool executor (a spout is not complete while retained
    /// summaries still await re-injection).
    pub(crate) fn drain_complete(&self) -> bool {
        self.drain_started && self.drained.is_empty()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn degraded(&self) -> u64 {
        self.degraded
    }
}

/// Shared in-flight counter for one bolt instance under the
/// thread-per-instance executor: every upstream sender increments on
/// delivery, the owning bolt decrements on receipt. The pool executor does
/// not use gauges — it reads its mailbox lengths directly.
pub(crate) struct DepthGauge {
    depth: AtomicUsize,
    high: AtomicUsize,
}

impl DepthGauge {
    pub(crate) fn new() -> Self {
        Self { depth: AtomicUsize::new(0), high: AtomicUsize::new(0) }
    }

    pub(crate) fn inc(&self) {
        // ordering: Relaxed — the gauge is an advisory load signal (shed
        // watermarks, hedge budgets), never a synchronization edge; the
        // channel send/recv pair orders the packet itself.
        let now = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        // Monotonic max via CAS (the facade atomic exposes no fetch_max).
        // ordering: Relaxed — folds one racy sample into a statistic.
        let mut cur = self.high.load(Ordering::Relaxed);
        while now > cur {
            // ordering: Relaxed — same statistic; retry on a lost race.
            match self.high.compare_exchange(cur, now, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn dec(&self) {
        // ordering: Relaxed — see `inc`.
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn load(&self) -> usize {
        // ordering: Relaxed — advisory read; staleness only shifts *when*
        // shedding engages, never correctness.
        self.depth.load(Ordering::Relaxed)
    }

    pub(crate) fn high(&self) -> usize {
        // ordering: Relaxed — read after the run joins, which synchronizes.
        self.high.load(Ordering::Relaxed)
    }
}

/// Per-edge hedging state for a spout's out-edge: the latency budget, an
/// id generator for hedge tags, and the issue counter surfaced in
/// `InstanceStats::hedges`.
pub(crate) struct HedgeState {
    /// Queue-depth budget: hedge when the chosen instance has *more* than
    /// this many tuples queued.
    pub(crate) budget: usize,
    /// High bits of every hedge id from this spout instance, so ids are
    /// unique topology-wide without coordination.
    pub(crate) sender: u64,
    /// Per-sender sequence number (low bits of the hedge id).
    pub(crate) seq: u64,
    /// Hedges issued (each producing exactly one duplicate downstream).
    pub(crate) issued: u64,
}

impl HedgeState {
    pub(crate) fn new(budget: usize, sender: u64) -> Self {
        Self { budget, sender, seq: 0, issued: 0 }
    }

    /// Mint the tag id for the next hedge.
    pub(crate) fn next_id(&mut self) -> u64 {
        let id = (self.sender << 40) | self.seq;
        self.seq += 1;
        self.issued += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_gauge_tracks_depth_and_high_water() {
        let g = DepthGauge::new();
        g.inc();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.load(), 2);
        assert_eq!(g.high(), 3);
        g.dec();
        g.dec();
        assert_eq!(g.load(), 0);
        assert_eq!(g.high(), 3, "high-water mark never recedes");
    }

    #[test]
    fn watermark_sheds_exactly_at_the_mark() {
        let options = IngressOptions { watermark: Some(4), ..IngressOptions::default() };
        let mut ingress = SpoutIngress::new(&options, 0);
        let key = TupleKey::from_slice(b"k");
        assert!(ingress.offer(&key, 1, 1, 3, 0), "below the mark admits");
        assert!(!ingress.offer(&key, 1, 1, 4, 0), "at the mark sheds");
        assert!(!ingress.offer(&key, 1, 1, 9, 0), "above the mark sheds");
        assert!(ingress.offer(&key, 1, 1, 0, 0), "receding depth re-admits");
        assert_eq!(ingress.dropped(), 2);
        assert_eq!(ingress.degraded(), 0);
    }

    #[test]
    fn logical_clock_makes_bucket_decisions_input_only() {
        // 1000 tokens/s, one offer per 0.5 ms of logical time: after the
        // initial token, every other offer is admitted — regardless of
        // wall-clock values passed in.
        let options = IngressOptions {
            rate_per_sec: Some(1000),
            burst: 1,
            logical_step_ns: Some(500_000),
            ..IngressOptions::default()
        };
        let mut ingress = SpoutIngress::new(&options, 0);
        let key = TupleKey::from_slice(b"k");
        let decisions: Vec<bool> = (0..10).map(|i| ingress.offer(&key, 1, 1, 0, i * 999)).collect();
        assert_eq!(decisions.iter().filter(|&&d| d).count(), 5);
        assert_eq!(ingress.dropped(), 5);
    }

    #[test]
    fn drain_is_idempotent_and_restartable() {
        struct Retain(Vec<(Vec<u8>, i64)>);
        impl ShedPolicy for Retain {
            fn shed(&mut self, key: &[u8], _key_id: u64, value: i64) -> Shed {
                self.0.push((key.to_vec(), value));
                Shed::Absorbed
            }
            fn drain(&mut self) -> Vec<(Vec<u8>, i64)> {
                std::mem::take(&mut self.0)
            }
        }
        let options = IngressOptions {
            watermark: Some(0),
            policy: Some(Arc::new(|_| Box::new(Retain(Vec::new())))),
            ..IngressOptions::default()
        };
        let mut ingress = SpoutIngress::new(&options, 0);
        let key = TupleKey::from_slice(b"k");
        assert!(!ingress.offer(&key, 1, 7, 0, 0));
        assert!(!ingress.offer(&key, 1, 8, 0, 0));
        assert_eq!(ingress.degraded(), 2);
        ingress.start_drain();
        ingress.start_drain();
        let first = ingress.next_drained().expect("two retained tuples");
        assert_eq!(first.value, 7);
        ingress.start_drain();
        assert_eq!(ingress.next_drained().map(|t| t.value), Some(8));
        assert!(ingress.next_drained().is_none());
    }

    #[test]
    fn hedge_ids_are_unique_per_sender() {
        let mut a = HedgeState::new(4, 1);
        let mut b = HedgeState::new(4, 2);
        let ids = [a.next_id(), a.next_id(), b.next_id(), b.next_id()];
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        assert_eq!(a.issued, 2);
    }
}
