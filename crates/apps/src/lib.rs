//! Data-mining applications from §VI of the paper.
//!
//! The paper motivates PKG with four application patterns, all of which are
//! implemented here on real substrates:
//!
//! * [`wordcount`] — streaming top-k word count, the running example (§II)
//!   and the application deployed on Storm for Q4 (Fig. 5). Three variants
//!   matching the paper's: key grouping with running counters, shuffle /
//!   partial key grouping with periodically-flushed partial counters plus a
//!   downstream aggregator.
//! * [`spacesaving`] — the SPACESAVING algorithm [Metwally et al., ICDT'05]
//!   with mergeable-summary combination [Berinde et al., TODS'10] (§VI-C):
//!   with PKG "the error for each item depends on the sum of only two error
//!   terms, regardless of the parallelism level".
//! * [`naive_bayes`] — a streaming naive Bayes classifier with vertical
//!   parallelism (§VI-A): feature-class co-occurrence counters partitioned
//!   by feature; PKG bounds the query fan-out to two workers per feature.
//! * [`histogram_sketch`] + [`decision_tree`] — the streaming parallel
//!   decision tree of Ben-Haim & Tom-Tov [JMLR'10] (§VI-B), built on
//!   fixed-size mergeable approximate histograms; PKG makes the histogram
//!   count per feature `2·D·C·L` instead of `W·D·C·L`.

#![forbid(unsafe_code)]

pub mod decision_tree;
pub mod heavy_hitters;
pub mod naive_bayes;
pub mod wordcount;

// The sketch substrates moved into `pkg-agg` (they are the mergeable
// summaries of its aggregation algebra); re-exported here so existing
// `pkg_apps::spacesaving::…` / `pkg_apps::SpaceSaving` paths keep working.
pub use pkg_agg::{histogram_sketch, spacesaving};

pub use decision_tree::{SpdtAggregator, SpdtConfig, SpdtWorker};
pub use heavy_hitters::{heavy_hitters_topology, HeavyHittersConfig};
pub use histogram_sketch::BhHistogram;
pub use naive_bayes::{NaiveBayes, NbEvent};
pub use spacesaving::SpaceSaving;
pub use wordcount::{wordcount_topology, WordCountConfig, WordCountVariant};
