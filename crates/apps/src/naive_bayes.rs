//! Streaming naive Bayes with vertical parallelism (§VI-A).
//!
//! The classifier counts co-occurrences of (feature, value, class). Under
//! vertical parallelism each training example is exploded into one event per
//! feature and the events are partitioned *by feature id*; with a skewed
//! feature distribution (ubiquitous in text data) key grouping overloads the
//! worker owning the hot features — the load problem PKG solves.
//!
//! At query time the per-feature counters must be gathered: KG probes one
//! worker per feature, PKG exactly two ("the two workers are
//! deterministically assigned for each feature… the algorithm needs to probe
//! only two workers for each feature, rather than having to broadcast it to
//! all the workers"), SG all `W`.

use pkg_core::{Estimate, Partitioner, SchemeSpec, SharedLoads};
use pkg_hash::FxHashMap;

/// One vertical-parallelism training event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NbEvent {
    /// Feature identifier (the partitioning key).
    pub feature: u32,
    /// Discretized feature value.
    pub value: u8,
    /// Class label.
    pub class: u8,
}

/// Co-occurrence counts — both the single-machine model and each worker's
/// partial state.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayes {
    /// (feature, value, class) → count.
    counts: FxHashMap<(u32, u8, u8), u64>,
    /// class → count of *events* (feature observations).
    class_events: FxHashMap<u8, u64>,
}

impl NaiveBayes {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event.
    pub fn observe(&mut self, e: NbEvent) {
        *self.counts.entry((e.feature, e.value, e.class)).or_insert(0) += 1;
        *self.class_events.entry(e.class).or_insert(0) += 1;
    }

    /// Count for a (feature, value, class) triple.
    pub fn count(&self, feature: u32, value: u8, class: u8) -> u64 {
        self.counts.get(&(feature, value, class)).copied().unwrap_or(0)
    }

    /// Number of counters held (the memory metric).
    pub fn counters(&self) -> usize {
        self.counts.len()
    }

    /// Merge a partial model (counts add).
    pub fn merge(&mut self, other: &Self) {
        for (&k, &v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        for (&c, &v) in &other.class_events {
            *self.class_events.entry(c).or_insert(0) += v;
        }
    }

    /// Log-likelihood of `class` given binary/discrete `features`, with
    /// Laplace smoothing. `lookup` resolves a (feature, value, class) count
    /// — on a single machine this is [`Self::count`]; in the partitioned
    /// setting it sums the candidate workers' partials.
    fn log_score<F: Fn(u32, u8, u8) -> u64>(
        &self,
        features: &[(u32, u8)],
        class: u8,
        lookup: &F,
        class_total: u64,
        grand_total: u64,
    ) -> f64 {
        let prior = (class_total as f64 + 1.0) / (grand_total as f64 + 2.0);
        let mut score = prior.ln();
        for &(f, v) in features {
            let c = lookup(f, v, class);
            // P(f=v | class) with add-one smoothing over the value domain
            // (binary features here: 2 values).
            let p = (c as f64 + 1.0) / (class_total as f64 / features.len().max(1) as f64 + 2.0);
            score += p.ln();
        }
        score
    }

    /// Predict the most likely class among those observed.
    pub fn predict(&self, features: &[(u32, u8)]) -> Option<u8> {
        let grand: u64 = self.class_events.values().sum();
        let mut classes: Vec<u8> = self.class_events.keys().copied().collect();
        classes.sort_unstable();
        classes
            .into_iter()
            .map(|c| {
                let total = self.class_events[&c];
                let s = self.log_score(features, c, &|f, v, cl| self.count(f, v, cl), total, grand);
                (c, s)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
            .map(|(c, _)| c)
    }
}

/// Naive Bayes distributed over `w` workers by a partitioning scheme.
pub struct PartitionedNb {
    workers: Vec<NaiveBayes>,
    partitioner: Box<dyn Partitioner>,
    /// Class priors are tracked at the source (each example counted once).
    class_examples: FxHashMap<u8, u64>,
    examples: u64,
    feature_count: usize,
}

impl PartitionedNb {
    /// Distribute over `w` workers under `scheme`.
    pub fn new(w: usize, scheme: &SchemeSpec, feature_count: usize, seed: u64) -> Self {
        let shared = SharedLoads::new(w);
        let partitioner = scheme.build(w, seed, 0, &shared, None);
        // The shared loads are only read by Global estimates; the default
        // schemes used here (KG / PKG-L / SG) do not need them after build.
        let _ = Estimate::local(w);
        Self {
            workers: (0..w).map(|_| NaiveBayes::new()).collect(),
            partitioner,
            class_examples: FxHashMap::default(),
            examples: 0,
            feature_count,
        }
    }

    /// Train on one example: explode into per-feature events, route each by
    /// feature id.
    pub fn train(&mut self, features: &[(u32, u8)], class: u8) {
        self.examples += 1;
        *self.class_examples.entry(class).or_insert(0) += 1;
        for &(f, v) in features {
            let w = self.partitioner.route(u64::from(f), 0);
            self.workers[w].observe(NbEvent { feature: f, value: v, class });
        }
    }

    /// Workers probed per feature at query time (1 for KG, 2 for PKG,
    /// `W` for SG) — the §VI-A query-cost claim.
    pub fn probes_per_feature(&self, feature: u32) -> usize {
        let mut c = self.partitioner.candidates(u64::from(feature));
        c.sort_unstable();
        c.dedup();
        c.len()
    }

    /// Total counters across all workers (the memory metric).
    pub fn total_counters(&self) -> usize {
        self.workers.iter().map(|w| w.counters()).sum()
    }

    /// Per-worker event loads (the balance metric).
    pub fn worker_loads(&self) -> Vec<u64> {
        self.workers.iter().map(|w| w.class_events.values().sum()).collect()
    }

    /// Predict by gathering per-feature counts from candidate workers only.
    pub fn predict(&self, features: &[(u32, u8)]) -> Option<u8> {
        let grand: u64 = self.class_examples.values().sum::<u64>() * self.feature_count as u64;
        let lookup = |f: u32, v: u8, c: u8| -> u64 {
            self.partitioner
                .candidates(u64::from(f))
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .map(|w| self.workers[w].count(f, v, c))
                .sum()
        };
        let mut classes: Vec<u8> = self.class_examples.keys().copied().collect();
        classes.sort_unstable();
        let helper = NaiveBayes::new();
        classes
            .into_iter()
            .map(|c| {
                let total = self.class_examples[&c] * self.feature_count as u64;
                let s = helper.log_score(features, c, &lookup, total, grand);
                (c, s)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
            .map(|(c, _)| c)
    }
}

/// Generate a synthetic binary-feature classification stream: informative
/// features flip probability by class; feature *popularity* is skewed
/// (feature 0 appears in every example, mirroring text data).
pub fn synthetic_example(
    rng: &mut rand::rngs::SmallRng,
    features: usize,
    informative: usize,
) -> (Vec<(u32, u8)>, u8) {
    use rand::Rng;
    let class: u8 = rng.random_range(0..2);
    let mut x = Vec::with_capacity(features);
    for f in 0..features {
        // Zipf-ish presence: feature f appears with probability ~ 1/(f+1).
        if f > 0 && rng.random::<f64>() > 1.0 / (f as f64 + 1.0) {
            continue;
        }
        let p1 = if f < informative {
            if class == 0 {
                0.8
            } else {
                0.2
            }
        } else {
            0.5
        };
        let v = u8::from(rng.random::<f64>() < p1);
        x.push((f as u32, v));
    }
    (x, class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkg_core::EstimateKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn train_partitioned(scheme: &SchemeSpec, n: usize) -> (PartitionedNb, NaiveBayes) {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut part = PartitionedNb::new(8, scheme, 20, 3);
        let mut whole = NaiveBayes::new();
        for _ in 0..n {
            let (x, y) = synthetic_example(&mut rng, 20, 4);
            part.train(&x, y);
            for &(f, v) in &x {
                whole.observe(NbEvent { feature: f, value: v, class: y });
            }
        }
        (part, whole)
    }

    #[test]
    fn single_machine_model_learns() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut nb = NaiveBayes::new();
        for _ in 0..5_000 {
            let (x, y) = synthetic_example(&mut rng, 20, 4);
            for &(f, v) in &x {
                nb.observe(NbEvent { feature: f, value: v, class: y });
            }
        }
        let mut correct = 0;
        let n_test = 1_000;
        for _ in 0..n_test {
            let (x, y) = synthetic_example(&mut rng, 20, 4);
            if nb.predict(&x) == Some(y) {
                correct += 1;
            }
        }
        let acc = correct as f64 / n_test as f64;
        assert!(acc > 0.75, "accuracy = {acc}");
    }

    #[test]
    fn pkg_probes_two_workers_kg_one_sg_all() {
        let (pkg, _) = train_partitioned(&SchemeSpec::pkg(EstimateKind::Local), 100);
        let (kg, _) = train_partitioned(&SchemeSpec::KeyGrouping, 100);
        let (sg, _) = train_partitioned(&SchemeSpec::ShuffleGrouping, 100);
        for f in 0..20u32 {
            assert!(pkg.probes_per_feature(f) <= 2);
            assert_eq!(kg.probes_per_feature(f), 1);
            assert_eq!(sg.probes_per_feature(f), 8);
        }
    }

    #[test]
    fn partitioned_counts_sum_to_whole() {
        // Gathering from PKG's two candidates recovers the exact global
        // count for every (feature, value, class) triple.
        let (part, whole) = train_partitioned(&SchemeSpec::pkg(EstimateKind::Local), 2_000);
        for f in 0..20u32 {
            let cands: std::collections::BTreeSet<usize> =
                part.partitioner.candidates(u64::from(f)).into_iter().collect();
            for v in 0..2u8 {
                for c in 0..2u8 {
                    let sum: u64 = cands.iter().map(|&w| part.workers[w].count(f, v, c)).sum();
                    assert_eq!(sum, whole.count(f, v, c), "triple ({f},{v},{c})");
                }
            }
        }
    }

    #[test]
    fn pkg_balances_feature_skew_better_than_kg() {
        use pkg_metrics::imbalance;
        let (pkg, _) = train_partitioned(&SchemeSpec::pkg(EstimateKind::Local), 20_000);
        let (kg, _) = train_partitioned(&SchemeSpec::KeyGrouping, 20_000);
        let i_pkg = imbalance(&pkg.worker_loads());
        let i_kg = imbalance(&kg.worker_loads());
        assert!(i_pkg < i_kg, "PKG imbalance {i_pkg} must beat KG {i_kg} under feature skew");
    }

    #[test]
    fn partitioned_prediction_agrees_with_centralized() {
        let (part, whole) = train_partitioned(&SchemeSpec::pkg(EstimateKind::Local), 3_000);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut agree = 0;
        for _ in 0..200 {
            let (x, _) = synthetic_example(&mut rng, 20, 4);
            if part.predict(&x) == whole.predict(&x) {
                agree += 1;
            }
        }
        // Scores differ slightly (priors counted per example vs per event),
        // but decisions should almost always agree.
        assert!(agree >= 190, "agreement = {agree}/200");
    }
}
