//! The Streaming Parallel Decision Tree (SPDT) of Ben-Haim & Tom-Tov
//! [JMLR 2010], parallelized the way §VI-B of the PKG paper proposes.
//!
//! Workers build [`BhHistogram`]s for every (leaf, feature, class) triple
//! over their share of the stream; an aggregator periodically merges the
//! histograms, evaluates candidate thresholds (the histogram's *uniform*
//! quantiles), and splits leaves by information gain.
//!
//! The partitioning angle: events are keyed by *feature*. Under shuffle
//! grouping every worker may hold a histogram for every triple
//! (`W·D·C·L` histograms) and the aggregator merges `W` per triple; under
//! PKG each feature is tracked by at most two workers (`2·D·C·L`
//! histograms, two-way merges) while the load stays balanced even when
//! feature popularity is skewed.

use pkg_core::{Partitioner, SchemeSpec, SharedLoads};
use pkg_hash::FxHashMap;

use crate::histogram_sketch::BhHistogram;

/// SPDT hyper-parameters.
#[derive(Debug, Clone)]
pub struct SpdtConfig {
    /// Number of input features `D`.
    pub features: usize,
    /// Number of classes `C`.
    pub classes: usize,
    /// Histogram capacity `B`.
    pub bins: usize,
    /// Candidate thresholds per feature (the `b̃` of the uniform procedure).
    pub candidate_splits: usize,
    /// Minimum samples a leaf must absorb before it may split.
    pub min_samples_split: f64,
    /// Minimum information gain to split.
    pub min_gain: f64,
    /// Stop growing past this many leaves.
    pub max_leaves: usize,
}

impl Default for SpdtConfig {
    fn default() -> Self {
        Self {
            features: 8,
            classes: 2,
            bins: 32,
            candidate_splits: 8,
            min_samples_split: 200.0,
            min_gain: 0.01,
            max_leaves: 64,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Class histogram observed at this leaf (for majority prediction).
        counts: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// The shared model: an axis-aligned binary decision tree.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn new(classes: usize) -> Self {
        Self { nodes: vec![Node::Leaf { counts: vec![0.0; classes] }] }
    }

    /// Index of the leaf node that `x` reaches.
    pub fn leaf_of(&self, x: &[f64]) -> usize {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { .. } => return i,
                Node::Split { feature, threshold, left, right } => {
                    i = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Majority-class prediction.
    pub fn predict(&self, x: &[f64]) -> usize {
        match &self.nodes[self.leaf_of(x)] {
            Node::Leaf { counts } => counts
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite counts"))
                .map(|(c, _)| c)
                .expect("at least one class"),
            Node::Split { .. } => unreachable!("leaf_of returns leaves"),
        }
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Tree depth (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }
}

/// A worker's histogram state over its sub-stream.
#[derive(Debug, Default)]
pub struct SpdtWorker {
    hists: FxHashMap<(u32, u16, u16), BhHistogram>,
    bins: usize,
}

impl SpdtWorker {
    /// Worker with histogram capacity `bins`.
    pub fn new(bins: usize) -> Self {
        Self { hists: FxHashMap::default(), bins }
    }

    /// Absorb one (leaf, feature, class, value) event.
    pub fn observe(&mut self, leaf: u32, feature: u16, class: u16, value: f64) {
        self.hists
            .entry((leaf, feature, class))
            .or_insert_with(|| BhHistogram::new(self.bins))
            .update(value);
    }

    /// Histogram for a triple, if present.
    pub fn histogram(&self, leaf: u32, feature: u16, class: u16) -> Option<&BhHistogram> {
        self.hists.get(&(leaf, feature, class))
    }

    /// Number of histograms held (the §VI-B memory metric).
    pub fn histogram_count(&self) -> usize {
        self.hists.len()
    }

    /// Events absorbed.
    pub fn events(&self) -> f64 {
        self.hists.values().map(|h| h.total()).sum()
    }

    /// Drop the histograms of a leaf that has been split.
    pub fn clear_leaf(&mut self, leaf: u32) {
        self.hists.retain(|&(l, _, _), _| l != leaf);
    }
}

/// The aggregator: owns the tree, merges worker histograms and grows.
pub struct SpdtAggregator {
    cfg: SpdtConfig,
    tree: Tree,
}

fn entropy(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / total;
            -p * p.log2()
        })
        .sum()
}

impl SpdtAggregator {
    /// Fresh single-leaf tree.
    pub fn new(cfg: SpdtConfig) -> Self {
        let classes = cfg.classes;
        Self { cfg, tree: Tree::new(classes) }
    }

    /// The current model.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Merge worker histograms and attempt one round of splits; returns the
    /// number of leaves split. Workers' histograms for split leaves are
    /// cleared (children restart collection).
    pub fn try_grow(
        &mut self,
        workers: &mut [SpdtWorker],
        candidates_of: &dyn Fn(u16) -> Vec<usize>,
    ) -> usize {
        let leaf_ids: Vec<u32> = self
            .tree
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, Node::Leaf { .. }))
            .map(|(i, _)| i as u32)
            .collect();
        let mut splits = 0;
        for leaf in leaf_ids {
            if self.tree.leaves() >= self.cfg.max_leaves {
                break;
            }
            // Merge per-class histograms per feature from candidate workers.
            struct BestSplit {
                feature: usize,
                gain: f64,
                threshold: f64,
                left_counts: Vec<f64>,
                right_counts: Vec<f64>,
            }
            let mut best: Option<BestSplit> = None;
            let mut leaf_counts = vec![0.0; self.cfg.classes];
            for f in 0..self.cfg.features as u16 {
                let workers_of_f = candidates_of(f);
                let mut per_class: Vec<BhHistogram> = Vec::with_capacity(self.cfg.classes);
                for c in 0..self.cfg.classes as u16 {
                    let mut merged = BhHistogram::new(self.cfg.bins);
                    for &w in &workers_of_f {
                        if let Some(h) = workers[w].histogram(leaf, f, c) {
                            merged.merge(h);
                        }
                    }
                    per_class.push(merged);
                }
                let class_totals: Vec<f64> = per_class.iter().map(|h| h.total()).collect();
                if f == 0 {
                    leaf_counts = class_totals.clone();
                }
                let n: f64 = class_totals.iter().sum();
                if n < self.cfg.min_samples_split {
                    continue;
                }
                // Candidate thresholds from the class-agnostic histogram.
                let mut overall = BhHistogram::new(self.cfg.bins);
                for h in &per_class {
                    overall.merge(h);
                }
                let parent_h = entropy(&class_totals);
                for t in overall.uniform(self.cfg.candidate_splits) {
                    let left: Vec<f64> = per_class.iter().map(|h| h.sum(t)).collect();
                    let right: Vec<f64> =
                        class_totals.iter().zip(&left).map(|(tot, l)| (tot - l).max(0.0)).collect();
                    let (nl, nr) = (left.iter().sum::<f64>(), right.iter().sum::<f64>());
                    if nl < 1.0 || nr < 1.0 {
                        continue;
                    }
                    let gain = parent_h - (nl / n) * entropy(&left) - (nr / n) * entropy(&right);
                    if gain > self.cfg.min_gain && best.as_ref().is_none_or(|b| gain > b.gain) {
                        best = Some(BestSplit {
                            feature: f as usize,
                            gain,
                            threshold: t,
                            left_counts: left,
                            right_counts: right,
                        });
                    }
                }
            }
            if let Some(BestSplit { feature, threshold, left_counts, right_counts, .. }) = best {
                let l = self.tree.nodes.len();
                self.tree.nodes.push(Node::Leaf { counts: left_counts });
                let r = self.tree.nodes.len();
                self.tree.nodes.push(Node::Leaf { counts: right_counts });
                self.tree.nodes[leaf as usize] =
                    Node::Split { feature, threshold, left: l, right: r };
                for w in workers.iter_mut() {
                    w.clear_leaf(leaf);
                }
                splits += 1;
            } else if let Node::Leaf { counts } = &mut self.tree.nodes[leaf as usize] {
                // Keep prediction counts fresh even when not splitting.
                if leaf_counts.iter().sum::<f64>() > 0.0 {
                    for (c, v) in counts.iter_mut().zip(&leaf_counts) {
                        *c = c.max(*v);
                    }
                }
            }
        }
        splits
    }
}

/// End-to-end trainer wiring source → partitioner → workers → aggregator.
pub struct Spdt {
    aggregator: SpdtAggregator,
    workers: Vec<SpdtWorker>,
    partitioner: Box<dyn Partitioner>,
    grow_every: u64,
    seen: u64,
}

impl Spdt {
    /// A trainer over `w` workers partitioned by `scheme`, growing the tree
    /// every `grow_every` examples.
    pub fn new(cfg: SpdtConfig, scheme: &SchemeSpec, w: usize, grow_every: u64, seed: u64) -> Self {
        let shared = SharedLoads::new(w);
        let bins = cfg.bins;
        Self {
            aggregator: SpdtAggregator::new(cfg),
            workers: (0..w).map(|_| SpdtWorker::new(bins)).collect(),
            partitioner: scheme.build(w, seed, 0, &shared, None),
            grow_every,
            seen: 0,
        }
    }

    /// Ingest one labeled example.
    pub fn ingest(&mut self, x: &[f64], y: usize) {
        let leaf = self.aggregator.tree.leaf_of(x) as u32;
        if let Node::Leaf { counts } = &mut self.aggregator.tree.nodes[leaf as usize] {
            counts[y] += 1.0;
        }
        for (f, &v) in x.iter().enumerate() {
            let w = self.partitioner.route(f as u64, self.seen);
            self.workers[w].observe(leaf, f as u16, y as u16, v);
        }
        self.seen += 1;
        if self.seen.is_multiple_of(self.grow_every) {
            self.grow();
        }
    }

    /// Force a growth round.
    pub fn grow(&mut self) -> usize {
        let part = &self.partitioner;
        let candidates_of = |f: u16| -> Vec<usize> {
            let mut c = part.candidates(u64::from(f));
            c.sort_unstable();
            c.dedup();
            c
        };
        self.aggregator.try_grow(&mut self.workers, &candidates_of)
    }

    /// Predict a class label.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.aggregator.tree.predict(x)
    }

    /// The model.
    pub fn tree(&self) -> &Tree {
        &self.aggregator.tree
    }

    /// Total histograms across workers (§VI-B memory metric: `≤ 2·D·C·L`
    /// under PKG, up to `W·D·C·L` under shuffle).
    pub fn total_histograms(&self) -> usize {
        self.workers.iter().map(|w| w.histogram_count()).sum()
    }

    /// Per-worker event loads.
    pub fn worker_loads(&self) -> Vec<u64> {
        self.workers.iter().map(|w| w.events() as u64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkg_core::EstimateKind;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// y = 1 iff x0 > 0.35 (with 5% label noise); other features are noise.
    fn sample(rng: &mut SmallRng, d: usize) -> (Vec<f64>, usize) {
        let x: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
        let mut y = usize::from(x[0] > 0.35);
        if rng.random::<f64>() < 0.05 {
            y = 1 - y;
        }
        (x, y)
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(&[10.0, 0.0]), 0.0);
        assert!((entropy(&[5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn learns_threshold_concept() {
        let cfg = SpdtConfig { features: 4, min_samples_split: 100.0, ..SpdtConfig::default() };
        let mut spdt = Spdt::new(cfg, &SchemeSpec::pkg(EstimateKind::Local), 6, 500, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..6_000 {
            let (x, y) = sample(&mut rng, 4);
            spdt.ingest(&x, y);
        }
        spdt.grow();
        assert!(spdt.tree().leaves() >= 2, "tree never split");
        let mut correct = 0;
        let n = 1_000;
        for _ in 0..n {
            let (x, y) = sample(&mut rng, 4);
            if spdt.predict(&x) == y {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!(acc > 0.85, "accuracy = {acc}");
        // The first split should be near the true threshold on feature 0.
        match &spdt.tree().nodes[0] {
            Node::Split { feature, threshold, .. } => {
                assert_eq!(*feature, 0);
                assert!((threshold - 0.35).abs() < 0.1, "threshold = {threshold}");
            }
            Node::Leaf { .. } => panic!("root must be a split"),
        }
    }

    #[test]
    fn pkg_memory_bound_2dcl() {
        let d = 8;
        let cfg = SpdtConfig { features: d, ..SpdtConfig::default() };
        let w = 10;
        let build = |scheme: &SchemeSpec| {
            let mut spdt = Spdt::new(cfg.clone(), scheme, w, u64::MAX, 3);
            let mut rng = SmallRng::seed_from_u64(4);
            for _ in 0..3_000 {
                let (x, y) = sample(&mut rng, d);
                spdt.ingest(&x, y);
            }
            spdt.total_histograms()
        };
        let pkg = build(&SchemeSpec::pkg(EstimateKind::Local));
        let sg = build(&SchemeSpec::ShuffleGrouping);
        let kg = build(&SchemeSpec::KeyGrouping);
        let (c, l) = (2, 1); // classes, leaves (no growth: grow_every = MAX)
        assert!(pkg <= 2 * d * c * l, "PKG histograms {pkg} exceed 2DCL");
        assert!(kg <= d * c * l, "KG histograms {kg} exceed DCL");
        assert!(sg > pkg, "SG ({sg}) must hold more histograms than PKG ({pkg})");
        assert!(sg <= w * d * c * l);
    }

    #[test]
    fn multiclass_tree_grows() {
        // Three classes separable on two features.
        let cfg = SpdtConfig {
            features: 2,
            classes: 3,
            min_samples_split: 150.0,
            ..SpdtConfig::default()
        };
        let mut spdt = Spdt::new(cfg, &SchemeSpec::pkg(EstimateKind::Local), 4, 400, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let gen = |rng: &mut SmallRng| -> (Vec<f64>, usize) {
            let x: Vec<f64> = vec![rng.random(), rng.random()];
            let y = if x[0] < 0.33 {
                0
            } else if x[1] < 0.5 {
                1
            } else {
                2
            };
            (x, y)
        };
        for _ in 0..8_000 {
            let (x, y) = gen(&mut rng);
            spdt.ingest(&x, y);
        }
        spdt.grow();
        assert!(spdt.tree().leaves() >= 3, "leaves = {}", spdt.tree().leaves());
        let mut correct = 0;
        for _ in 0..1_000 {
            let (x, y) = gen(&mut rng);
            if spdt.predict(&x) == y {
                correct += 1;
            }
        }
        assert!(correct > 800, "accuracy = {}/1000", correct);
    }

    #[test]
    fn split_clears_worker_histograms() {
        let cfg = SpdtConfig { features: 2, min_samples_split: 50.0, ..SpdtConfig::default() };
        let mut spdt = Spdt::new(cfg, &SchemeSpec::pkg(EstimateKind::Local), 4, u64::MAX, 7);
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..2_000 {
            let (x, y) = sample(&mut rng, 2);
            spdt.ingest(&x, y);
        }
        let before = spdt.total_histograms();
        let splits = spdt.grow();
        assert!(splits >= 1);
        // Histograms of the split leaf were dropped.
        assert!(spdt.total_histograms() < before);
    }
}
