//! Streaming heavy hitters (§VI-C): SPACESAVING summaries under PKG, run as
//! a real two-phase topology on the engine.
//!
//! Each worker holds one [`TopK`] accumulator (a SpaceSaving summary of its
//! sub-stream); the aggregator merges the workers' encoded partials with
//! the mergeable-summary combination of Berinde et al. Under PKG every item
//! reaches at most two workers, so a point query needs only two summaries
//! and its merged error bound is the sum of **two** per-summary terms,
//! independent of the parallelism level — the paper's claim for this
//! application.
//!
//! Before `pkg-agg`, this pipeline was hand-rolled in the `heavy_hitters`
//! example (a bare loop over partitioner + summaries). The topology here is
//! the same computation as engine bolts; [`single_phase_summary`] recomputes
//! that bare loop with the identical routing and canonical merge, and the
//! two results are byte-identical — the regression the `fig5_overhead`
//! driver checks.

use std::time::Duration;

use pkg_agg::{canonical_merge, AggregatorBolt, Collector, PartialAgg, TopK, WindowedWorkerBolt};
use pkg_datagen::DatasetProfile;
use pkg_engine::grouping::{Router, Target};
use pkg_engine::prelude::*;

/// Summary capacity used by the heavy-hitters pipeline (the example's
/// historical `k = 256`).
pub const SUMMARY_K: usize = 256;

/// The heavy-hitters accumulator: a SpaceSaving summary with
/// [`SUMMARY_K`] counters over item fingerprints.
pub type HhSummary = TopK<SUMMARY_K>;

/// Configuration of the heavy-hitters topology.
#[derive(Debug, Clone)]
pub struct HeavyHittersConfig {
    /// Worker parallelism.
    pub workers: usize,
    /// Input stream (a `pkg-datagen` profile; keys are item ids).
    pub profile: DatasetProfile,
    /// Stream content seed.
    pub stream_seed: u64,
    /// Engine seed (drives the edge hash functions; keep fixed when
    /// comparing against [`single_phase_summary`]).
    pub engine_seed: u64,
    /// Worker flush period; `None` flushes once at end of stream (the
    /// deterministic setting — periodic flushes depend on wall-clock tick
    /// timing).
    pub aggregation_period: Option<Duration>,
    /// Partitioning of the source → worker edge.
    pub grouping: Grouping,
}

impl Default for HeavyHittersConfig {
    fn default() -> Self {
        Self {
            workers: 8,
            profile: DatasetProfile::cashtags().with_messages(100_000),
            stream_seed: 7,
            engine_seed: 42,
            aggregation_period: None,
            grouping: Grouping::partial_key(),
        }
    }
}

/// The fingerprint under which item `key` is summarized (the routing
/// `key_id` of its tuple).
pub fn item_id(key: u64) -> u64 {
    Tuple::new(key.to_le_bytes().to_vec(), 0).key_id()
}

/// Build `source → workers → aggregator → collector`; the collector ends up
/// holding one tuple whose payload is the encoded merged [`HhSummary`].
pub fn heavy_hitters_topology(cfg: &HeavyHittersConfig) -> (Topology, Collector) {
    let collector = Collector::new();
    let mut topo = Topology::new();
    let spec = cfg.profile.build(cfg.stream_seed);
    let stream_seed = cfg.stream_seed;
    let source = topo.add_spout("source", 1, move |_| {
        let mut iter = spec.iter(stream_seed);
        spout_from_fn(move || iter.next().map(|msg| Tuple::new(msg.key.to_le_bytes().to_vec(), 1)))
    });
    let mut worker_handle = topo
        .add_bolt("worker", cfg.workers, |_| Box::new(WindowedWorkerBolt::<HhSummary>::global()))
        .input(source, cfg.grouping.clone());
    if let Some(period) = cfg.aggregation_period {
        worker_handle = worker_handle.tick_every(period);
    }
    let worker = worker_handle.id();
    let agg = topo
        .add_bolt("aggregator", 1, |_| Box::new(AggregatorBolt::<HhSummary>::new()))
        .input(worker, Grouping::Global)
        .id();
    let c = collector.clone();
    let _sink = topo.add_bolt("collector", 1, move |_| c.bolt()).input(agg, Grouping::Global);
    (topo, collector)
}

/// The merged summary a finished run left in the collector.
pub fn final_summary(collector: &Collector) -> Option<HhSummary> {
    collector.decoded::<HhSummary>().into_iter().next().map(|(_, a)| a)
}

/// The pre-`pkg-agg` single-phase computation: replay the stream through
/// the same per-edge router the engine builds (same candidate hashes, same
/// local load estimates), summarize each worker's sub-stream, and fold the
/// summaries with [`canonical_merge`].
///
/// With `aggregation_period = None` and one source, a run of
/// [`heavy_hitters_topology`] produces a byte-identical summary — threading
/// changes nothing because routing is per-sender deterministic and the
/// canonical fold is arrival-order-insensitive.
pub fn single_phase_summary(cfg: &HeavyHittersConfig) -> HhSummary {
    // Our topology adds the source as component 0 and the workers as
    // component 1, so the engine hashes their edge with this seed.
    let seed = pkg_engine::edge_seed(cfg.engine_seed, 0, 1);
    let mut router = Router::new(&cfg.grouping, cfg.workers, seed, 0);
    let mut summaries: Vec<HhSummary> = (0..cfg.workers).map(|_| HhSummary::identity()).collect();
    let spec = cfg.profile.build(cfg.stream_seed);
    for msg in spec.iter(cfg.stream_seed) {
        let id = item_id(msg.key);
        match router.route(id) {
            Target::One(w) => summaries[w].insert(id, 1),
            Target::All => {
                for s in summaries.iter_mut() {
                    s.insert(id, 1);
                }
            }
        }
    }
    canonical_merge(&summaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HeavyHittersConfig {
        HeavyHittersConfig {
            workers: 4,
            profile: DatasetProfile::cashtags().with_messages(20_000),
            ..HeavyHittersConfig::default()
        }
    }

    #[test]
    fn two_phase_matches_single_phase_byte_for_byte() {
        let cfg = small();
        let (topo, collector) = heavy_hitters_topology(&cfg);
        let stats = Runtime::with_options(pkg_engine::RuntimeOptions {
            channel_capacity: 1024,
            seed: cfg.engine_seed,
            ..pkg_engine::RuntimeOptions::default()
        })
        .run(topo);
        assert_eq!(stats.processed("worker"), 20_000);
        let engine = final_summary(&collector).expect("summary collected");
        let oracle = single_phase_summary(&cfg);
        assert_eq!(engine.emit(), 20_000, "summary mass conserved");
        assert_eq!(engine.encoded(), oracle.encoded(), "byte-identical to single-phase");
    }

    #[test]
    fn pkg_point_queries_touch_at_most_two_workers() {
        let cfg = small();
        let (topo, collector) = heavy_hitters_topology(&cfg);
        let stats = Runtime::with_options(pkg_engine::RuntimeOptions {
            channel_capacity: 1024,
            seed: cfg.engine_seed,
            ..pkg_engine::RuntimeOptions::default()
        })
        .run(topo);
        // Every worker's partial went to the aggregator exactly once.
        assert_eq!(stats.processed("aggregator"), cfg.workers as u64);
        let merged = final_summary(&collector).expect("summary collected");
        // The merged top items dominate the stream (cashtags are skewed).
        let top = merged.summary().top_k(5);
        assert!(top[0].count > top[4].count);
    }

    #[test]
    fn periodic_flushes_conserve_mass() {
        let cfg =
            HeavyHittersConfig { aggregation_period: Some(Duration::from_millis(5)), ..small() };
        let (topo, collector) = heavy_hitters_topology(&cfg);
        Runtime::new().run(topo);
        let merged = final_summary(&collector).expect("summary collected");
        assert_eq!(merged.emit(), 20_000);
    }
}
