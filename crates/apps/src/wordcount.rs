//! Streaming top-k word count — the paper's running example (§II) and the
//! application measured on the real deployment (Q4, Fig. 5).
//!
//! Three variants, exactly as the paper deploys them:
//!
//! * **KG** — key grouping to the counters; each counter keeps a *running*
//!   count per word (each word lives on exactly one counter) and
//!   periodically sends its local top-k to the aggregator.
//! * **SG** — shuffle grouping; counters keep *partial* counts for any word
//!   and flush them (emit + clear) every aggregation period `T`; the
//!   aggregator sums partials into totals. Memory grows as `O(W·K)`.
//! * **PKG** — partial key grouping; like SG but each word reaches at most
//!   two counters, so memory is `O(2K)` and per-word aggregation merges two
//!   partials instead of `W`.
//!
//! The per-tuple `service_delay` emulates the paper's CPU-delay knob (they
//! add 0.1–1 ms of processing per key to reach the cluster's saturation
//! point). Under the thread-per-instance executor it sleeps the instance's
//! dedicated thread, modeling one core per PEI (the paper's 10-VM cluster)
//! rather than contending for this machine's cores; under the pool executor
//! it reschedules the instance via the timer wheel so emulated service time
//! never occupies a pool worker (see `pkg_agg::ServiceDelay`).

use std::sync::Arc;
use std::time::Duration;

use pkg_agg::{Max, ServiceDelay, Sum, WindowedWorkerBolt};
use pkg_datagen::text::{word_bytes_for_rank, word_for_rank, MAX_WORD_LEN};
use pkg_datagen::zipf::ZipfTable;
use pkg_engine::prelude::*;
use pkg_engine::topology::NodeId;
use pkg_hash::FxHashMap;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Which stream partitioning the source → counter edge uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordCountVariant {
    /// Key grouping (running counters, top-k flushes).
    KeyGrouping,
    /// Shuffle grouping (partial counters, full flushes).
    ShuffleGrouping,
    /// Partial key grouping (partial counters, full flushes, ≤ 2 workers
    /// per word).
    PartialKeyGrouping,
}

impl WordCountVariant {
    /// Short label (KG / SG / PKG).
    pub fn label(&self) -> &'static str {
        match self {
            WordCountVariant::KeyGrouping => "KG",
            WordCountVariant::ShuffleGrouping => "SG",
            WordCountVariant::PartialKeyGrouping => "PKG",
        }
    }

    fn grouping(&self) -> Grouping {
        match self {
            WordCountVariant::KeyGrouping => Grouping::Key,
            WordCountVariant::ShuffleGrouping => Grouping::Shuffle,
            WordCountVariant::PartialKeyGrouping => Grouping::partial_key(),
        }
    }
}

/// Configuration of a word-count topology.
#[derive(Debug, Clone)]
pub struct WordCountConfig {
    /// Partitioning variant under test.
    pub variant: WordCountVariant,
    /// Source parallelism (paper: 1).
    pub sources: usize,
    /// Counter parallelism (paper: 9).
    pub counters: usize,
    /// Words emitted *per source instance*.
    pub messages_per_source: u64,
    /// Vocabulary size.
    pub vocabulary: u64,
    /// Head-word probability (the stream is Zipf with this `p1`).
    pub p1: f64,
    /// Emulated per-tuple CPU cost at the counters.
    pub service_delay: Duration,
    /// Aggregation period `T` (tick interval of the counters); `None`
    /// flushes only at end of stream.
    pub aggregation_period: Option<Duration>,
    /// `k` of the final top-k.
    pub top_k: usize,
    /// Stream seed.
    pub seed: u64,
    /// Cap the source emission rate (tuples/s per source); `None` emits as
    /// fast as backpressure allows. The paper's cluster ingests a bounded
    /// external stream; the cap reproduces its unsaturated-at-low-delay /
    /// saturated-at-high-delay transition.
    pub source_rate: Option<f64>,
}

impl Default for WordCountConfig {
    fn default() -> Self {
        Self {
            variant: WordCountVariant::PartialKeyGrouping,
            sources: 1,
            counters: 9,
            messages_per_source: 100_000,
            vocabulary: 10_000,
            p1: 0.0932, // the WP profile's skew
            service_delay: Duration::ZERO,
            aggregation_period: None,
            top_k: 10,
            seed: 42,
            source_rate: None,
        }
    }
}

/// The word counter bolt (both running and partial flavors).
///
/// The partial flavor (SG/PKG) *is* the generic phase-one worker of
/// `pkg-agg` — a [`WindowedWorkerBolt`] over [`Sum`] accumulators, flushing
/// encoded partial counts every aggregation period. The running flavor (KG)
/// keeps per-word running totals and flushes only its local top-k, which is
/// key-grouping-specific logic, not partial aggregation, so it stays here.
pub struct CounterBolt {
    inner: CounterInner,
}

enum CounterInner {
    Running(RunningTopKBolt),
    Partial(WindowedWorkerBolt<Sum>),
}

impl CounterBolt {
    /// A counter bolt: `running = true` for the KG variant (keeps state,
    /// flushes its top-k), `false` for SG/PKG (flushes and clears all
    /// partial counts).
    pub fn new(running: bool, delay: Duration, top_k: usize) -> Self {
        let inner = if running {
            CounterInner::Running(RunningTopKBolt {
                counts: FxHashMap::default(),
                delay: ServiceDelay::new(delay),
                top_k,
            })
        } else {
            CounterInner::Partial(WindowedWorkerBolt::per_key().service_delay(delay))
        };
        Self { inner }
    }
}

impl Bolt for CounterBolt {
    fn execute(&mut self, tuple: Tuple, out: &mut Emitter<'_>) {
        match &mut self.inner {
            CounterInner::Running(b) => b.execute(tuple, out),
            CounterInner::Partial(b) => b.execute(tuple, out),
        }
    }

    fn tick(&mut self, out: &mut Emitter<'_>) {
        match &mut self.inner {
            CounterInner::Running(b) => b.tick(out),
            CounterInner::Partial(b) => b.tick(out),
        }
    }

    fn finish(&mut self, out: &mut Emitter<'_>) {
        match &mut self.inner {
            CounterInner::Running(b) => b.finish(out),
            CounterInner::Partial(b) => b.finish(out),
        }
    }

    fn state_size(&self) -> usize {
        match &self.inner {
            CounterInner::Running(b) => b.state_size(),
            CounterInner::Partial(b) => b.state_size(),
        }
    }
}

/// The KG counter: running per-word totals, top-k flushes, state retained.
struct RunningTopKBolt {
    counts: FxHashMap<TupleKey, i64>,
    delay: ServiceDelay,
    top_k: usize,
}

impl RunningTopKBolt {
    fn flush(&mut self, out: &mut Emitter<'_>) {
        // Emit the local top-k running counts (value = running total).
        let mut entries: Vec<(&TupleKey, &i64)> = self.counts.iter().collect();
        entries.sort_unstable_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (key, &count) in entries.into_iter().take(self.top_k) {
            out.emit(Tuple::new(key.clone(), count));
        }
    }
}

impl Bolt for RunningTopKBolt {
    fn execute(&mut self, tuple: Tuple, out: &mut Emitter<'_>) {
        self.delay.charge(out);
        *self.counts.entry(tuple.key).or_insert(0) += tuple.value;
    }

    fn tick(&mut self, out: &mut Emitter<'_>) {
        self.flush(out);
    }

    fn finish(&mut self, out: &mut Emitter<'_>) {
        self.flush(out);
    }

    fn state_size(&self) -> usize {
        self.counts.len()
    }
}

/// The top-k aggregator bolt: the generic `pkg-agg` phase-two aggregator,
/// instantiated over [`Sum`] for partial inputs (SG/PKG) or [`Max`] for
/// running inputs (KG, whose flushes re-state monotone running totals).
pub struct AggregatorBolt {
    inner: AggregatorInner,
}

enum AggregatorInner {
    Running(pkg_agg::AggregatorBolt<Max>),
    Partial(pkg_agg::AggregatorBolt<Sum>),
}

impl AggregatorBolt {
    /// An aggregator: `running_inputs = true` merges running counts by
    /// maximum (KG), `false` sums partial counts (SG/PKG).
    pub fn new(running_inputs: bool) -> Self {
        let inner = if running_inputs {
            AggregatorInner::Running(pkg_agg::AggregatorBolt::new())
        } else {
            AggregatorInner::Partial(pkg_agg::AggregatorBolt::new())
        };
        Self { inner }
    }
}

impl Bolt for AggregatorBolt {
    fn execute(&mut self, tuple: Tuple, out: &mut Emitter<'_>) {
        match &mut self.inner {
            AggregatorInner::Running(b) => b.execute(tuple, out),
            AggregatorInner::Partial(b) => b.execute(tuple, out),
        }
    }

    fn finish(&mut self, out: &mut Emitter<'_>) {
        match &mut self.inner {
            AggregatorInner::Running(b) => b.finish(out),
            AggregatorInner::Partial(b) => b.finish(out),
        }
    }

    fn state_size(&self) -> usize {
        match &self.inner {
            AggregatorInner::Running(b) => b.state_size(),
            AggregatorInner::Partial(b) => b.state_size(),
        }
    }
}

/// Precomputed rank→word table: fixed-width word bytes plus actual length.
type Lexicon = Vec<([u8; MAX_WORD_LEN], u8)>;

/// Build the three-stage topology: `source → counter → aggregator`.
///
/// Returns the topology and the node ids `(source, counter, aggregator)`.
pub fn wordcount_topology(cfg: &WordCountConfig) -> (Topology, NodeId, NodeId, NodeId) {
    let mut topo = Topology::new();
    let cfg2 = cfg.clone();
    // The Zipf exponent fit (80 bisection steps, each an O(K) harmonic sum)
    // and the rank→word lexicon are identical for every source instance, so
    // both are built once per topology and shared. Rebuilding them inside
    // the per-instance factory cost ~13 ms *per source* — at 80 sources
    // that was 1 s of setup, dwarfing the benchmark's execution time.
    // Streams are unchanged: only the per-instance RNG seed differs.
    let shared_zipf = Arc::new(ZipfTable::with_p1(cfg.vocabulary, cfg.p1));
    // Rank→word synthesis costs a base-70 division chain per tuple; for
    // realistic vocabularies the whole lexicon is precomputed (10k words
    // ≈ 230 KiB) so the hot loop is a table lookup. Streams are
    // byte-identical either way.
    let shared_words: Option<Arc<Lexicon>> = (cfg.vocabulary <= 1 << 16).then(|| {
        Arc::new(
            (0..cfg.vocabulary)
                .map(|r| {
                    let (word, len) = word_bytes_for_rank(r);
                    (word, len as u8)
                })
                .collect(),
        )
    });
    let source = topo.add_spout("source", cfg.sources, move |i| {
        let zipf = Arc::clone(&shared_zipf);
        let mut rng = SmallRng::seed_from_u64(cfg2.seed ^ (i as u64).wrapping_mul(0x9e37));
        let words = shared_words.clone();
        let mut left = cfg2.messages_per_source;
        let rate = cfg2.source_rate;
        let started = std::time::Instant::now();
        let total = cfg2.messages_per_source;
        spout_from_fn(move || {
            if left == 0 {
                return None;
            }
            if let Some(r) = rate {
                // Emit tuple i no earlier than i/r seconds after start;
                // sleep only when ahead by more than the timer slack.
                let emitted = total - left;
                let due = Duration::from_secs_f64(emitted as f64 / r);
                let ahead = due.saturating_sub(started.elapsed());
                if ahead > Duration::from_millis(2) {
                    std::thread::sleep(ahead);
                }
            }
            left -= 1;
            let rank = zipf.sample(&mut rng);
            // Stack/table-buffered word bytes: every word fits the tuple
            // key's inline capacity, so the source emits without allocating.
            if let Some(words) = &words {
                let (word, len) = &words[rank as usize];
                Some(Tuple::new(&word[..usize::from(*len)], 1))
            } else {
                let (word, len) = word_bytes_for_rank(rank);
                Some(Tuple::new(&word[..len], 1))
            }
        })
    });

    let running = cfg.variant == WordCountVariant::KeyGrouping;
    let (delay, top_k) = (cfg.service_delay, cfg.top_k);
    let mut counter_handle = topo
        .add_bolt("counter", cfg.counters, move |_| {
            Box::new(CounterBolt::new(running, delay, top_k))
        })
        .input(source, cfg.variant.grouping());
    if let Some(period) = cfg.aggregation_period {
        counter_handle = counter_handle.tick_every(period);
    }
    let counter = counter_handle.id();

    // Partials for the same word must meet: key grouping into the
    // aggregator (a single instance here, as in the paper's topology).
    let aggregator = topo
        .add_bolt("aggregator", 1, move |_| Box::new(AggregatorBolt::new(running)))
        .input(counter, Grouping::Key)
        .id();
    (topo, source, counter, aggregator)
}

/// Ground-truth word counts for a config (regenerates the same stream).
pub fn exact_counts(cfg: &WordCountConfig) -> FxHashMap<String, i64> {
    let mut totals: FxHashMap<String, i64> = FxHashMap::default();
    let zipf = ZipfTable::with_p1(cfg.vocabulary, cfg.p1);
    for i in 0..cfg.sources {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9e37));
        for _ in 0..cfg.messages_per_source {
            *totals.entry(word_for_rank(zipf.sample(&mut rng))).or_insert(0) += 1;
        }
    }
    totals
}

/// Extract the aggregator's final top-k from run statistics — requires the
/// aggregator bolt to have been observed via a terminal probe; for
/// simplicity the experiments re-derive top-k from `exact_counts` where
/// needed, and tests assert conservation instead.
pub fn top_k_of(totals: &FxHashMap<String, i64>, k: usize) -> Vec<(String, i64)> {
    let mut v: Vec<(String, i64)> = totals.iter().map(|(w, &c)| (w.clone(), c)).collect();
    v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: &WordCountConfig) -> pkg_engine::RunStats {
        let (topo, _, _, _) = wordcount_topology(cfg);
        Runtime::new().run(topo)
    }

    #[test]
    fn partial_variant_conserves_counts() {
        let cfg = WordCountConfig {
            variant: WordCountVariant::PartialKeyGrouping,
            messages_per_source: 20_000,
            vocabulary: 500,
            aggregation_period: Some(Duration::from_millis(10)),
            ..WordCountConfig::default()
        };
        let stats = run(&cfg);
        assert_eq!(stats.processed("counter"), 20_000);
        // Every unit reaches the aggregator exactly once (flush+clear).
        let agg = stats.instances.iter().find(|i| i.component == "aggregator").expect("agg");
        assert!(agg.processed > 0);
        // The aggregator's totals equal the message count: verified via
        // state accounting — final state counts distinct words; the sum is
        // checked in the integration tests where the bolt is accessible.
        assert_eq!(stats.emitted("counter"), agg.processed);
    }

    #[test]
    fn pkg_memory_between_kg_and_sg() {
        // §III: KG keeps K counters, PKG ≤ 2K, SG up to W·K.
        let base = WordCountConfig {
            messages_per_source: 30_000,
            vocabulary: 300,
            counters: 8,
            aggregation_period: None, // keep counters resident
            ..WordCountConfig::default()
        };
        let counters_of = |variant| {
            let cfg = WordCountConfig { variant, ..base.clone() };
            run(&cfg).final_state("counter")
        };
        let kg = counters_of(WordCountVariant::KeyGrouping);
        let pkg = counters_of(WordCountVariant::PartialKeyGrouping);
        let sg = counters_of(WordCountVariant::ShuffleGrouping);
        assert_eq!(kg, 300, "KG keeps exactly one counter per word");
        assert!(pkg <= 600, "PKG ≤ 2K, got {pkg}");
        assert!(pkg > kg, "splitting must cost something");
        assert!(sg > pkg, "SG must exceed PKG (got sg={sg} pkg={pkg})");
    }

    #[test]
    fn kg_load_is_more_imbalanced_than_pkg() {
        let base = WordCountConfig {
            messages_per_source: 30_000,
            vocabulary: 2_000,
            p1: 0.2, // strong skew
            counters: 6,
            ..WordCountConfig::default()
        };
        let max_load = |variant| {
            let cfg = WordCountConfig { variant, ..base.clone() };
            *run(&cfg).loads("counter").iter().max().expect("non-empty")
        };
        let kg = max_load(WordCountVariant::KeyGrouping);
        let pkg = max_load(WordCountVariant::PartialKeyGrouping);
        assert!(pkg < kg, "PKG max load {pkg} must be below KG {kg} under 20% head skew");
    }

    #[test]
    fn exact_counts_match_stream() {
        let cfg = WordCountConfig {
            messages_per_source: 5_000,
            vocabulary: 100,
            sources: 2,
            ..WordCountConfig::default()
        };
        let totals = exact_counts(&cfg);
        assert_eq!(totals.values().sum::<i64>(), 10_000);
        let top = top_k_of(&totals, 5);
        assert_eq!(top.len(), 5);
        assert!(top[0].1 >= top[4].1);
    }
}
