//! Windowed partial aggregation — the **second phase** of Partial Key
//! Grouping.
//!
//! PKG's key splitting spreads each key's state over two workers, so every
//! real deployment runs a downstream aggregation that periodically merges
//! the partial results; the paper quantifies its overhead — aggregation
//! messages and memory versus the period `T` — in §V-D / Fig. 5. This crate
//! makes that phase a reusable subsystem instead of per-application flush
//! loops:
//!
//! * [`PartialAgg`] — the algebra: identity / `insert` / associative
//!   `merge` / `emit`, plus an `encode`/`decode` codec so partial states
//!   travel as tuple payloads.
//! * [`accumulators`] — ready-made instances: [`Count`], [`Sum`], [`Max`],
//!   [`Mean`] (Welford), [`TopK`] (SpaceSaving with mergeable-summary
//!   combination, §VI-C), [`Distinct`] (BH-histogram sketch).
//! * [`window`] — [`TumblingWindow`] / [`SlidingWindow`] managers keyed by
//!   stream key, with per-pane staleness bookkeeping.
//! * [`bolts`] — the generic two-phase pair for `pkg-engine`:
//!   [`WindowedWorkerBolt`] (phase one) and [`AggregatorBolt`] (phase two),
//!   plus a [`Collector`] sink for reading results out of a run.
//!
//! The sketch substrates themselves — [`spacesaving`] and
//! [`histogram_sketch`] — live here too (moved from `pkg-apps`, which
//! re-exports them), because the aggregation layer is what makes them
//! *mergeable summaries* in the sense of Berinde et al. [TODS'10].
//!
//! ```
//! use pkg_agg::{PartialAgg, Sum, TumblingWindow};
//!
//! // Two workers each hold a partial sum for the same key …
//! let mut w: TumblingWindow<&str, Sum> = TumblingWindow::new(10);
//! w.insert("pkg", 1, 3, 0);
//! let mut a = w.flush().expect("pane open").accs.remove("pkg").expect("key present");
//! let mut b = Sum::identity();
//! b.insert(1, 4);
//! // … and the aggregation phase merges them.
//! a.merge(&b);
//! assert_eq!(a.emit(), 7);
//! ```

#![forbid(unsafe_code)]

pub mod accumulators;
pub mod bolts;
pub mod elastic;
pub mod histogram_sketch;
pub mod partial;
pub mod shed;
pub mod spacesaving;
pub mod window;

pub use accumulators::{Count, Distinct, Max, Mean, Sum, TopK};
pub use bolts::{
    AggScope, AggregatorBolt, Collector, CollectorBolt, ServiceDelay, WindowedWorkerBolt,
    GLOBAL_KEY,
};
pub use elastic::ElasticWorkerBolt;
pub use histogram_sketch::BhHistogram;
pub use partial::{canonical_merge, PartialAgg};
pub use shed::SketchDegrade;
pub use spacesaving::SpaceSaving;
pub use window::{Pane, SlidingWindow, TumblingWindow};
