//! Degrade-instead-of-drop load shedding: refused tuples fold into a
//! Space-Saving summary.
//!
//! `pkg-ingress` defines *when* to shed and the [`ShedPolicy`] contract;
//! the sketch types live here, so the degrade policy does too. Instead of
//! discarding a refused tuple ([`pkg_ingress::HardDrop`]), [`SketchDegrade`]
//! absorbs its weight into a [`SpaceSaving`] summary of `k` counters, and
//! surfaces the surviving heavy-hitter counts through
//! [`ShedPolicy::drain`] at end-of-stream. The engine re-injects those as
//! ordinary tuples ahead of Eof, so aggregate answers keep sketch-level
//! accuracy for the head of the distribution — exactly the keys the paper's
//! skew model makes matter — even under overload where individual tuples
//! could not be admitted.

use pkg_hash::{FxHashMap, FxHashSet};
use pkg_ingress::{Shed, ShedPolicy};

use crate::spacesaving::SpaceSaving;

/// Shed policy that absorbs refused tuples into a Space-Saving summary.
pub struct SketchDegrade {
    sketch: SpaceSaving,
    /// Key bytes per monitored fingerprint, so drained counts can be
    /// re-injected under their original keys. Pruned lazily to the
    /// monitored set — bounded by `2k` entries between prunes.
    names: FxHashMap<u64, Vec<u8>>,
}

impl SketchDegrade {
    /// A summary of `k ≥ 1` counters (the sketch-accuracy budget).
    pub fn new(k: usize) -> Self {
        Self { sketch: SpaceSaving::new(k), names: FxHashMap::default() }
    }

    /// Total weight absorbed so far.
    pub fn total(&self) -> u64 {
        self.sketch.total()
    }
}

impl ShedPolicy for SketchDegrade {
    fn shed(&mut self, key: &[u8], key_id: u64, value: i64) -> Shed {
        // Every refused tuple carries at least unit weight, so counting
        // streams (value 1 per occurrence) degrade to exact tuple counts
        // within the sketch's error bound.
        let weight = u64::try_from(value).unwrap_or(0).max(1);
        self.sketch.offer(key_id, weight);
        self.names.entry(key_id).or_insert_with(|| key.to_vec());
        if self.names.len() > 2 * self.sketch.capacity() {
            let live: FxHashSet<u64> = self.sketch.counters().iter().map(|c| c.key).collect();
            self.names.retain(|id, _| live.contains(id));
        }
        Shed::Absorbed
    }

    fn drain(&mut self) -> Vec<(Vec<u8>, i64)> {
        // `counters()` orders by count desc then key asc — deterministic,
        // so the re-injected stream is reproducible.
        self.sketch
            .counters()
            .iter()
            .filter_map(|c| {
                let count = i64::try_from(c.count).unwrap_or(i64::MAX);
                self.names.get(&c.key).map(|bytes| (bytes.clone(), count))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_and_drains_heavy_hitters() {
        let mut policy = SketchDegrade::new(4);
        for round in 0..50i64 {
            assert_eq!(policy.shed(b"hot", 1, 1), Shed::Absorbed);
            if round % 10 == 0 {
                assert_eq!(policy.shed(b"warm", 2, 1), Shed::Absorbed);
            }
        }
        assert_eq!(policy.total(), 55);
        let drained = policy.drain();
        assert_eq!(drained[0], (b"hot".to_vec(), 50));
        assert!(drained.iter().any(|(k, _)| k == b"warm"));
    }

    #[test]
    fn drain_conserves_weight_without_eviction() {
        let mut policy = SketchDegrade::new(8);
        for id in 0..8u64 {
            policy.shed(format!("k{id}").as_bytes(), id, (id as i64) + 1);
        }
        let drained = policy.drain();
        assert_eq!(drained.len(), 8);
        assert_eq!(drained.iter().map(|(_, v)| v).sum::<i64>(), 36);
    }

    #[test]
    fn name_table_stays_bounded_under_churn() {
        let mut policy = SketchDegrade::new(4);
        for id in 0..1000u64 {
            policy.shed(format!("k{id}").as_bytes(), id, 1);
        }
        assert!(policy.names.len() <= 2 * 4 + 1, "names pruned to the monitored set");
        // Every monitored counter still resolves to its key bytes.
        assert_eq!(policy.drain().len(), 4);
    }

    #[test]
    fn non_positive_values_count_as_unit_weight() {
        let mut policy = SketchDegrade::new(2);
        policy.shed(b"z", 9, 0);
        policy.shed(b"n", 10, -3);
        assert_eq!(policy.total(), 2);
    }
}
