//! Phase-one worker bolt for **elastic** topologies: windowed partial
//! aggregation that survives runtime membership changes via key-space
//! migration.
//!
//! An [`ElasticWorkerBolt`] sits downstream of a
//! `pkg_engine::Grouping::Elastic` edge. Senders on that edge announce each
//! membership epoch with an in-band marker tuple (see `pkg_engine::elastic`)
//! broadcast on every FIFO channel, so a receiving instance knows precisely
//! when its old-epoch inbound traffic has drained: once it holds one marker
//! per upstream sender, no earlier-epoch tuple can still be in flight to it.
//!
//! The migration protocol, per epoch transition `e−1 → e`:
//!
//! 1. Every instance (live or not — markers are broadcast) counts markers
//!    for epoch `e`; the transition *seals* at the instance when the count
//!    reaches the upstream sender count.
//! 2. A **departer** (live in `e−1`, dead in `e`) seals, then drains: each
//!    per-key accumulator of its open window pane is encoded with the
//!    ordinary [`PartialAgg`] codec and posted on the
//!    [`pkg_engine::MigrationBus`] as a `State` message addressed to the
//!    key's new owner — a deterministic hash pick over `live(e)`. A `Done`
//!    message then goes to every live instance.
//! 3. A **live** instance that seals while departers exist *gates*: new
//!    tuples are buffered (never dropped) until a `Done` arrives from every
//!    departer, guaranteeing migrated state merges in before post-migration
//!    results can flush. Absorbed `State` messages fold into the open pane
//!    via `TumblingWindow::merge_partial`.
//! 4. A **joiner** (dead in `e−1`, live in `e`) needs no migration of its
//!    own — its estimate-driven catch-up is the router's business — but
//!    gates like any live instance, since it may own migrated keys.
//!
//! In-flight old-epoch tuples are therefore always *processed at the old
//! owner before it drains* (FIFO + marker counting), migrated state is
//! merged before un-gating, and nothing is ever dropped — the conservation
//! and byte-identity gates the `fig_elastic` driver checks.

use std::time::{Duration, Instant};

use pkg_elastic::MembershipPlan;
use pkg_engine::bolt::{Bolt, Emitter};
use pkg_engine::elastic::{marker_epoch, MigrationBus, MigrationMsg};
use pkg_engine::tuple::{Tuple, TupleKey};
use pkg_hash::{FxHashMap, FxHashSet, HashFamily};

use crate::partial::PartialAgg;
use crate::window::TumblingWindow;

use std::sync::Arc;

/// How long [`Bolt::finish`] will poll the migration bus for outstanding
/// `Done` messages before giving up (a departer stuck before its seal would
/// otherwise hang shutdown; in a correct topology the wait is microseconds).
const FINISH_WAIT_CAP: Duration = Duration::from_secs(10);

/// Phase one of an elastic two-phase aggregation: a windowed per-key worker
/// that follows a [`MembershipPlan`] — leaving the live set hands its window
/// state to the surviving instances, rejoining picks traffic straight back
/// up.
pub struct ElasticWorkerBolt<A: PartialAgg> {
    /// This instance's index in the fixed id space `0..plan.capacity()`.
    index: usize,
    /// Upstream sender count on the elastic edge (markers per epoch).
    senders: usize,
    plan: Arc<MembershipPlan>,
    bus: MigrationBus,
    /// Owner pick for migrating keys: first hash choice over the live set.
    /// Deterministic and shared by all instances; it need not agree with the
    /// senders' two-choice routing — any live owner flushes downstream to
    /// the same aggregator.
    family: HashFamily,
    window: TumblingWindow<TupleKey, A>,
    /// Logical clock: engine ticks fired so far.
    ticks: u64,
    /// The epoch whose traffic this instance is currently processing.
    epoch: u32,
    /// Markers received per not-yet-sealed epoch.
    markers: FxHashMap<u32, usize>,
    /// Every `(epoch, departer)` whose `Done` has arrived.
    dones: FxHashSet<(u32, usize)>,
    /// Outstanding `(epoch, departer)` pairs gating this instance.
    waiting: FxHashSet<(u32, usize)>,
    /// Tuples buffered while gated, replayed in arrival order on un-gate.
    pending: Vec<Tuple>,
}

impl<A: PartialAgg> ElasticWorkerBolt<A> {
    /// A per-key elastic worker. `index` is this instance's id, `senders`
    /// the number of upstream instances on the elastic edge, and `seed` any
    /// constant shared by all instances of the bolt (it parameterizes the
    /// migration owner pick, not routing).
    pub fn new(
        index: usize,
        senders: usize,
        plan: Arc<MembershipPlan>,
        bus: MigrationBus,
        seed: u64,
    ) -> Self {
        assert!(index < plan.capacity(), "instance index outside the plan's id space");
        assert!(senders > 0, "an elastic edge needs at least one sender");
        Self {
            index,
            senders,
            plan,
            bus,
            family: HashFamily::new(1, seed),
            window: TumblingWindow::new(1),
            ticks: 0,
            epoch: 0,
            markers: FxHashMap::default(),
            dones: FxHashSet::default(),
            waiting: FxHashSet::default(),
            pending: Vec::new(),
        }
    }

    /// Builder: widen panes to close every `n ≥ 1` ticks instead of every
    /// tick.
    pub fn panes_every_ticks(mut self, n: u64) -> Self {
        self.window = TumblingWindow::new(n.max(1));
        self
    }

    /// Epoch this instance is currently processing.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Whether the instance is currently buffering tuples behind a gate.
    pub fn gated(&self) -> bool {
        !self.waiting.is_empty()
    }

    fn emit_pane(&mut self, pane: crate::window::Pane<TupleKey, A>, out: &mut Emitter<'_>) {
        let mut buf = Vec::new();
        for (key, acc) in pane.accs {
            buf.clear();
            acc.encode(&mut buf);
            out.emit(Tuple::with_payload(key, acc.emit(), buf.as_slice()));
        }
    }

    /// Drain this instance's migration-bus queue: fold `State` into the open
    /// pane, record `Done`s (possibly releasing the gate).
    fn absorb_bus(&mut self, out: &mut Emitter<'_>) {
        for msg in self.bus.drain(self.index) {
            match msg {
                MigrationMsg::State { key, bytes, epoch, from } => match A::decode(&bytes) {
                    Some(part) => {
                        // The bus speaks boxed keys (cold path); re-inline on
                        // arrival so window lookups stay allocation-free.
                        let key = TupleKey::from(key);
                        if let Some(pane) = self.window.merge_partial(key, &part, self.ticks) {
                            self.emit_pane(pane, out);
                        }
                    }
                    None => panic!(
                        "undecodable {} migration payload (epoch {epoch}, from {from})",
                        A::NAME
                    ),
                },
                MigrationMsg::Done { epoch, from } => {
                    self.dones.insert((epoch, from));
                    self.waiting.remove(&(epoch, from));
                }
            }
        }
        if self.waiting.is_empty() && !self.pending.is_empty() {
            for t in std::mem::take(&mut self.pending) {
                self.fold(t);
            }
        }
    }

    /// Fold one ordinary tuple into the open window pane.
    fn fold(&mut self, tuple: Tuple) {
        let key_id = tuple.key_id();
        let closed = self.window.insert(tuple.key, key_id, tuple.value, self.ticks);
        debug_assert!(closed.is_none(), "the logical clock only moves on ticks");
    }

    /// Seal the transition into `epoch`: run the departer hand-off or raise
    /// the receiver gate, as this instance's role demands.
    fn enter_epoch(&mut self, epoch: u32, out: &mut Emitter<'_>) {
        let was_live = self.plan.live(epoch - 1).contains(&self.index);
        let now_live = self.plan.live(epoch).contains(&self.index);
        self.epoch = epoch;
        if was_live && !now_live {
            // Departing: everything this instance holds must move. Any
            // buffered tuples were legitimately routed here while live —
            // fold them in so they migrate too (the gate they waited on is
            // moot once the state leaves).
            self.absorb_bus(out);
            self.waiting.clear();
            for t in std::mem::take(&mut self.pending) {
                self.fold(t);
            }
            let live = self.plan.live(epoch);
            if let Some(pane) = self.window.flush() {
                for (key, acc) in pane.accs {
                    let owner = self.family.choice_in(0, key.as_ref(), live);
                    let msg = MigrationMsg::State {
                        epoch,
                        from: self.index,
                        key: key.into_boxed(),
                        bytes: acc.encoded(),
                    };
                    self.bus.send(owner, msg);
                }
            }
            for &w in live {
                self.bus.send(w, MigrationMsg::Done { epoch, from: self.index });
            }
        } else if now_live {
            for d in self.plan.departers(epoch) {
                if !self.dones.contains(&(epoch, d)) {
                    self.waiting.insert((epoch, d));
                }
            }
        }
    }
}

impl<A: PartialAgg> Bolt for ElasticWorkerBolt<A> {
    fn execute(&mut self, tuple: Tuple, out: &mut Emitter<'_>) {
        self.absorb_bus(out);
        if let Some(marked) = marker_epoch(&tuple) {
            *self.markers.entry(marked).or_insert(0) += 1;
            // Seal strictly in epoch order; a fast sender's marker for a
            // later epoch waits until every earlier one is complete.
            while self.markers.get(&(self.epoch + 1)) == Some(&self.senders) {
                let next = self.epoch + 1;
                self.markers.remove(&next);
                self.enter_epoch(next, out);
            }
            return;
        }
        if self.waiting.is_empty() {
            self.fold(tuple);
        } else {
            self.pending.push(tuple);
        }
    }

    fn tick(&mut self, out: &mut Emitter<'_>) {
        self.absorb_bus(out);
        self.ticks += 1;
        // Hold the open pane while gated: migrated state must merge into it
        // before it can flush.
        if self.waiting.is_empty() {
            if let Some(pane) = self.window.advance_to(self.ticks) {
                self.emit_pane(pane, out);
            }
        }
    }

    fn finish(&mut self, out: &mut Emitter<'_>) {
        // Outstanding departers finished their inbound streams too (Eof
        // ordering), so their Done is at most a few scheduler slices away —
        // poll the bus, with a cap so a wiring bug fails loudly downstream
        // (conservation) instead of hanging shutdown.
        let start = Instant::now();
        loop {
            self.absorb_bus(out);
            if self.waiting.is_empty() || start.elapsed() > FINISH_WAIT_CAP {
                break;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        for t in std::mem::take(&mut self.pending) {
            self.fold(t);
        }
        if let Some(pane) = self.window.flush() {
            self.emit_pane(pane, out);
        }
    }

    fn state_size(&self) -> usize {
        self.window.entries() + self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulators::Sum;
    use pkg_elastic::Change;
    use pkg_engine::elastic::epoch_marker;

    fn plan_remove_1() -> Arc<MembershipPlan> {
        Arc::new(MembershipPlan::new(2).with_step(10, [Change::Remove(1)]))
    }

    #[test]
    fn departer_hands_state_to_the_survivor_and_posts_done() {
        let plan = plan_remove_1();
        let bus = MigrationBus::new(2);
        let mut departer = ElasticWorkerBolt::<Sum>::new(1, 1, Arc::clone(&plan), bus.clone(), 7);
        let mut emitted = 0u64;
        let mut out = Emitter::drop_sink(&mut emitted);
        departer.execute(Tuple::new(b"k".to_vec(), 5), &mut out);
        departer.execute(epoch_marker(1, 1), &mut out);
        assert_eq!(departer.epoch(), 1);
        let msgs = bus.drain(0);
        assert_eq!(msgs.len(), 2, "one State for the key, one Done");
        match &msgs[0] {
            MigrationMsg::State { epoch: 1, from: 1, key, bytes } => {
                assert_eq!(key.as_ref(), b"k");
                assert_eq!(Sum::decode(bytes).map(|a| a.emit()), Some(5));
            }
            other => panic!("expected State first, got {other:?}"),
        }
        assert_eq!(msgs[1], MigrationMsg::Done { epoch: 1, from: 1 });
        assert_eq!(departer.state_size(), 0, "nothing left behind");
    }

    #[test]
    fn survivor_gates_until_done_then_replays_buffer() {
        let plan = plan_remove_1();
        let bus = MigrationBus::new(2);
        let mut survivor = ElasticWorkerBolt::<Sum>::new(0, 1, Arc::clone(&plan), bus.clone(), 7);
        let mut emitted = 0u64;
        let mut out = Emitter::drop_sink(&mut emitted);
        survivor.execute(epoch_marker(1, 1), &mut out);
        assert!(survivor.gated(), "departer 1 has not posted Done yet");
        survivor.execute(Tuple::new(b"k".to_vec(), 2), &mut out);
        assert_eq!(survivor.window.entries(), 0, "tuple buffered, not folded");
        // The departer's hand-off arrives: state + done.
        let mut part = Sum::identity();
        part.insert(0, 5);
        bus.send(
            0,
            MigrationMsg::State { epoch: 1, from: 1, key: (*b"k").into(), bytes: part.encoded() },
        );
        bus.send(0, MigrationMsg::Done { epoch: 1, from: 1 });
        survivor.execute(Tuple::new(b"k".to_vec(), 1), &mut out);
        assert!(!survivor.gated());
        let pane = survivor.window.flush().expect("state merged and replayed");
        let acc = pane.accs.get(b"k".as_slice()).expect("key present");
        assert_eq!(acc.emit(), 5 + 2 + 1, "migrated 5 + buffered 2 + live 1");
    }

    #[test]
    fn done_arriving_before_the_marker_never_gates() {
        let plan = plan_remove_1();
        let bus = MigrationBus::new(2);
        let mut survivor = ElasticWorkerBolt::<Sum>::new(0, 1, plan, bus.clone(), 7);
        let mut emitted = 0u64;
        let mut out = Emitter::drop_sink(&mut emitted);
        bus.send(0, MigrationMsg::Done { epoch: 1, from: 1 });
        survivor.execute(Tuple::new(b"x".to_vec(), 1), &mut out);
        survivor.execute(epoch_marker(1, 1), &mut out);
        assert!(!survivor.gated(), "Done was already on the bus");
    }

    #[test]
    fn markers_seal_in_epoch_order_with_multiple_senders() {
        let plan = Arc::new(
            MembershipPlan::new(2)
                .with_step(10, [Change::Remove(1)])
                .with_step(20, [Change::Insert(1)]),
        );
        let bus = MigrationBus::new(2);
        let mut w = ElasticWorkerBolt::<Sum>::new(0, 2, plan, bus, 7);
        let mut emitted = 0u64;
        let mut out = Emitter::drop_sink(&mut emitted);
        // A fast sender races ahead to epoch 2; the slow one is mid-epoch 1.
        w.execute(epoch_marker(1, 1), &mut out);
        w.execute(epoch_marker(2, 1), &mut out);
        assert_eq!(w.epoch(), 0, "epoch 1 not sealed until both senders mark");
        w.execute(epoch_marker(1, 1), &mut out);
        assert_eq!(w.epoch(), 1, "epoch 1 sealed; epoch 2 still one marker short");
        w.execute(epoch_marker(2, 1), &mut out);
        assert_eq!(w.epoch(), 2);
    }
}
