//! Ready-made [`PartialAgg`] accumulators.
//!
//! Four exact monoids — [`Count`], [`Sum`], [`Max`], [`Mean`] — and two
//! sketch-backed ones — [`TopK`] (SpaceSaving with mergeable-summary
//! combination, §VI-C) and [`Distinct`] (a Ben-Haim/Tom-Tov histogram over
//! hashed keys). The exact ones satisfy the monoid laws bit-for-bit (up to
//! float rounding for `Mean`); the sketches are commutative and
//! bounded-error, and become deterministic under
//! [`canonical_merge`](crate::canonical_merge).

use pkg_metrics::Welford;

use crate::histogram_sketch::{BhHistogram, Bin};
use crate::partial::codec::{put_f64, put_i64, put_u64, Reader};
use crate::partial::PartialAgg;
use crate::spacesaving::{Counter, SpaceSaving};

/// Number of observations (`insert` ignores both arguments).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Count {
    n: u64,
}

impl Count {
    /// Observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }
}

impl PartialAgg for Count {
    const NAME: &'static str = "count";
    const EXACT: bool = true;

    fn identity() -> Self {
        Self::default()
    }

    fn insert(&mut self, _key_id: u64, _value: i64) {
        self.n += 1;
    }

    fn merge(&mut self, other: &Self) {
        self.n += other.n;
    }

    fn emit(&self) -> i64 {
        self.n as i64
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.n);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let n = r.u64()?;
        r.done().then_some(Self { n })
    }
}

/// Sum of tuple values — the word-count accumulator (tuples carry unit or
/// batched counts in `value`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sum {
    total: i64,
}

impl Sum {
    /// The running total.
    pub fn total(&self) -> i64 {
        self.total
    }
}

impl PartialAgg for Sum {
    const NAME: &'static str = "sum";
    const EXACT: bool = true;

    fn identity() -> Self {
        Self::default()
    }

    fn insert(&mut self, _key_id: u64, value: i64) {
        self.total += value;
    }

    fn merge(&mut self, other: &Self) {
        self.total += other.total;
    }

    fn emit(&self) -> i64 {
        self.total
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_i64(buf, self.total);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let total = r.i64()?;
        r.done().then_some(Self { total })
    }
}

/// Maximum of tuple values. Merging *running* (monotone) per-key counters —
/// the key-grouping aggregation mode of the Q4 word count, where each flush
/// re-states a key's running total — is max-combination.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Max {
    m: Option<i64>,
}

impl Max {
    /// The maximum observed, if any value was inserted.
    pub fn max(&self) -> Option<i64> {
        self.m
    }
}

impl PartialAgg for Max {
    const NAME: &'static str = "max";
    const EXACT: bool = true;

    fn identity() -> Self {
        Self::default()
    }

    fn insert(&mut self, _key_id: u64, value: i64) {
        self.m = Some(self.m.map_or(value, |m| m.max(value)));
    }

    fn merge(&mut self, other: &Self) {
        if let Some(o) = other.m {
            self.insert(0, o);
        }
    }

    /// The maximum, or 0 for an empty accumulator (counts are non-negative
    /// in every shipped pipeline).
    fn emit(&self) -> i64 {
        self.m.unwrap_or(0)
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        match self.m {
            Some(v) => {
                buf.push(1);
                put_i64(buf, v);
            }
            None => buf.push(0),
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let (&tag, rest) = bytes.split_first()?;
        let mut r = Reader::new(rest);
        let m = match tag {
            0 => None,
            1 => Some(r.i64()?),
            _ => return None,
        };
        r.done().then_some(Self { m })
    }
}

/// Mean (and variance) of tuple values via Welford's algorithm, merged with
/// Chan's parallel combination. Exact up to float rounding.
#[derive(Debug, Clone, Default)]
pub struct Mean {
    w: Welford,
}

impl Mean {
    /// The underlying Welford accumulator (mean / variance / min / max).
    pub fn stats(&self) -> &Welford {
        &self.w
    }
}

impl PartialAgg for Mean {
    const NAME: &'static str = "mean";
    const EXACT: bool = true;

    fn identity() -> Self {
        Self::default()
    }

    fn insert(&mut self, _key_id: u64, value: i64) {
        self.w.add(value as f64);
    }

    fn merge(&mut self, other: &Self) {
        self.w.merge(&other.w);
    }

    /// The mean, rounded to the nearest integer (0 when empty).
    fn emit(&self) -> i64 {
        self.w.mean().round() as i64
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        let (n, mean, m2, min, max) = self.w.to_parts();
        put_u64(buf, n);
        put_f64(buf, mean);
        put_f64(buf, m2);
        put_f64(buf, min);
        put_f64(buf, max);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let (n, mean, m2, min, max) = (r.u64()?, r.f64()?, r.f64()?, r.f64()?, r.f64()?);
        r.done().then_some(Self { w: Welford::from_parts(n, mean, m2, min, max) })
    }
}

/// Approximate top-k over key fingerprints: a [`SpaceSaving`] summary with
/// `K` counters. `insert` offers the tuple's `key_id` with `max(value, 1)`
/// as weight; `merge` is the Berinde et al. mergeable-summary combination,
/// so under PKG any item's merged error is the sum of **two** per-summary
/// terms, independent of the parallelism level (§VI-C).
///
/// Commutative but not exactly associative (truncation between merges);
/// the aggregator folds buffers of these with
/// [`canonical_merge`](crate::canonical_merge).
#[derive(Debug, Clone)]
pub struct TopK<const K: usize> {
    ss: SpaceSaving,
}

impl<const K: usize> TopK<K> {
    /// The underlying summary (top-k lists, per-item error bounds).
    pub fn summary(&self) -> &SpaceSaving {
        &self.ss
    }
}

impl<const K: usize> PartialAgg for TopK<K> {
    const NAME: &'static str = "topk";
    const EXACT: bool = false;

    fn identity() -> Self {
        Self { ss: SpaceSaving::new(K) }
    }

    fn insert(&mut self, key_id: u64, value: i64) {
        self.ss.offer(key_id, value.max(1) as u64);
    }

    fn merge(&mut self, other: &Self) {
        self.ss = self.ss.merge(&other.ss);
    }

    /// Total mass summarized (conserved under merge).
    fn emit(&self) -> i64 {
        self.ss.total() as i64
    }

    fn entries(&self) -> usize {
        self.ss.len()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.ss.total());
        // counters() is sorted (count desc, key asc): a canonical order.
        for c in self.ss.counters() {
            put_u64(buf, c.key);
            put_u64(buf, c.count);
            put_u64(buf, c.error);
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let total = r.u64()?;
        let mut counters = Vec::new();
        while !r.done() {
            let (key, count, error) = (r.u64()?, r.u64()?, r.u64()?);
            counters.push(Counter { key, count, error });
        }
        Some(Self { ss: SpaceSaving::from_parts(K, total, &counters)? })
    }
}

/// Distinct-key estimator backed by a [`BhHistogram`] with `B` bins over
/// key fingerprints mapped to `[0, 1)`.
///
/// Below capacity the estimate is **exact**: equal keys hash to the same
/// point and coalesce into one bin (also across workers under `merge`, so
/// PKG's two partials of a key do not double count). Once more than `B`
/// distinct keys arrive, neighboring bins merge and the estimate saturates
/// into a lower bound — hence "distinct-ish": a bounded-memory floor on the
/// key cardinality, not an unbiased estimator.
#[derive(Debug, Clone)]
pub struct Distinct<const B: usize> {
    hist: BhHistogram,
}

impl<const B: usize> Distinct<B> {
    /// The underlying histogram (for density inspection).
    pub fn histogram(&self) -> &BhHistogram {
        &self.hist
    }

    /// Map a key fingerprint to `[0, 1)` with full f64 precision. The id is
    /// re-mixed first so even raw small-integer ids spread uniformly
    /// (distinct ids must land on distinct points).
    fn normalize(key_id: u64) -> f64 {
        (pkg_hash::murmur3::fmix64(key_id) >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<const B: usize> PartialAgg for Distinct<B> {
    const NAME: &'static str = "distinct";
    const EXACT: bool = false;

    fn identity() -> Self {
        Self { hist: BhHistogram::new(B) }
    }

    fn insert(&mut self, key_id: u64, _value: i64) {
        self.hist.update(Self::normalize(key_id));
    }

    fn merge(&mut self, other: &Self) {
        self.hist.merge(&other.hist);
    }

    /// The distinct-key estimate: exact below `B`, saturating above.
    fn emit(&self) -> i64 {
        self.hist.bins().len() as i64
    }

    fn entries(&self) -> usize {
        self.hist.bins().len()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        for b in self.hist.bins() {
            put_f64(buf, b.p);
            put_f64(buf, b.m);
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let mut bins = Vec::new();
        while !r.done() {
            let (p, m) = (r.f64()?, r.f64()?);
            bins.push(Bin { p, m });
        }
        Some(Self { hist: BhHistogram::from_parts(B, &bins)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial::canonical_merge;

    fn roundtrip<A: PartialAgg>(a: &A) -> A {
        A::decode(&a.encoded()).expect("roundtrip decodes")
    }

    #[test]
    fn count_sum_max_mean_fold_and_merge() {
        let mut c = Count::identity();
        let mut s = Sum::identity();
        let mut m = Max::identity();
        let mut avg = Mean::identity();
        for v in [3i64, -1, 7, 7, 0] {
            c.insert(0, v);
            s.insert(0, v);
            m.insert(0, v);
            avg.insert(0, v);
        }
        assert_eq!(c.emit(), 5);
        assert_eq!(s.emit(), 16);
        assert_eq!(m.emit(), 7);
        assert_eq!(avg.emit(), 3); // 16/5 = 3.2 → 3
        let mut c2 = Count::identity();
        c2.merge(&c);
        c2.merge(&roundtrip(&c));
        assert_eq!(c2.emit(), 10);
    }

    #[test]
    fn max_identity_and_codec() {
        let empty = Max::identity();
        assert_eq!(empty.emit(), 0);
        assert_eq!(roundtrip(&empty).max(), None);
        let mut m = Max::identity();
        m.insert(0, -5);
        assert_eq!(m.emit(), -5);
        assert_eq!(roundtrip(&m).max(), Some(-5));
        let mut merged = Max::identity();
        merged.merge(&m);
        assert_eq!(merged.max(), Some(-5), "identity merge preserves negatives");
    }

    #[test]
    fn mean_codec_preserves_moments() {
        let mut a = Mean::identity();
        for v in 0..100 {
            a.insert(0, v);
        }
        let b = roundtrip(&a);
        assert_eq!(a.stats().mean(), b.stats().mean());
        assert_eq!(a.stats().variance(), b.stats().variance());
        assert_eq!(a.stats().count(), b.stats().count());
    }

    #[test]
    fn topk_tracks_heavy_items_through_codec() {
        let mut t = TopK::<8>::identity();
        for i in 0..1_000u64 {
            t.insert(i % 3, 1); // three heavy items
            if i % 10 == 0 {
                t.insert(100 + i, 1); // drizzle of singletons
            }
        }
        let rt = roundtrip(&t);
        assert_eq!(rt.emit(), t.emit());
        let top: Vec<u64> = rt.summary().top_k(3).into_iter().map(|c| c.key).collect();
        let mut sorted = top.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "top-3 = {top:?}");
    }

    #[test]
    fn topk_canonical_merge_is_order_insensitive() {
        let mut parts: Vec<TopK<6>> = (0..4).map(|_| TopK::identity()).collect();
        for i in 0..2_000u64 {
            parts[(i % 4) as usize].insert(i % 17, 1);
        }
        let forward = canonical_merge(&parts);
        parts.reverse();
        let backward = canonical_merge(&parts);
        assert_eq!(forward.summary().counters(), backward.summary().counters());
        assert_eq!(forward.emit(), 2_000);
    }

    #[test]
    fn distinct_is_exact_below_capacity_and_dedupes_across_merge() {
        let mut a = Distinct::<64>::identity();
        let mut b = Distinct::<64>::identity();
        for k in 0..40u64 {
            a.insert(k, 1);
            a.insert(k, 1); // duplicates must not inflate
            b.insert(k + 20, 1); // overlap 20..40 must not double count
        }
        assert_eq!(a.emit(), 40);
        assert_eq!(b.emit(), 40);
        a.merge(&b);
        assert_eq!(a.emit(), 60, "overlap dedupes in the merged sketch");
        assert_eq!(roundtrip(&a).emit(), 60);
    }

    #[test]
    fn distinct_saturates_at_capacity() {
        let mut d = Distinct::<16>::identity();
        for k in 0..10_000u64 {
            d.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15), 1);
        }
        assert_eq!(d.emit(), 16, "saturated sketch reports its floor");
        assert!(d.entries() <= 16);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Count::decode(&[1, 2, 3]).is_none());
        assert!(Max::decode(&[9]).is_none());
        assert!(TopK::<4>::decode(&[0; 12]).is_none());
        // A TopK payload with more counters than capacity must not decode.
        let mut big = TopK::<16>::identity();
        for k in 0..16u64 {
            big.insert(k, 1);
        }
        assert!(TopK::<4>::decode(&big.encoded()).is_none());
    }
}
