//! Tumbling and sliding window managers keyed by stream key.
//!
//! Both managers bucket observations into fixed-width *panes* along a
//! monotone logical clock (milliseconds of stream time in `pkg-sim`, tick
//! indices in the engine bolts). A [`TumblingWindow`] holds one open pane
//! and hands back each pane as it closes — the flush-and-merge cadence whose
//! period `T` the paper's Fig. 5 experiment sweeps. A [`SlidingWindow`]
//! keeps the last `P` panes resident and answers queries by merging a key's
//! per-pane partials, which is exactly where the associativity of
//! [`PartialAgg::merge`] pays off.
//!
//! Panes also track arrival metadata (`inserted`, the sum of observation
//! timestamps), so a flush can report *staleness* — how long the average
//! observation waited in the window buffer before reaching the aggregator —
//! one of the aggregation-overhead columns of `pkg-sim`'s report.

use std::collections::VecDeque;
use std::hash::Hash;

use pkg_hash::FxHashMap;

use crate::partial::PartialAgg;

/// A closed pane: the per-key partials accumulated over one window period.
#[derive(Debug)]
pub struct Pane<K, A> {
    /// Pane index (`ts / width`).
    pub index: u64,
    /// Inclusive start of the pane's time range.
    pub start: u64,
    /// Exclusive end of the pane's time range.
    pub end: u64,
    /// Per-key partial aggregates.
    pub accs: FxHashMap<K, A>,
    /// Observations folded into this pane.
    pub inserted: u64,
    /// Sum of observation timestamps (staleness bookkeeping).
    sum_ts: u128,
}

impl<K, A: PartialAgg> Pane<K, A> {
    fn new(index: u64, width: u64) -> Self {
        Self {
            index,
            start: index * width,
            end: (index + 1) * width,
            accs: FxHashMap::default(),
            inserted: 0,
            sum_ts: 0,
        }
    }

    fn insert(&mut self, key: K, key_id: u64, value: i64, ts: u64)
    where
        K: Eq + Hash,
    {
        self.accs.entry(key).or_insert_with(A::identity).insert(key_id, value);
        self.inserted += 1;
        self.sum_ts += ts as u128;
    }

    /// State entries held (Σ per-key accumulator entries).
    pub fn entries(&self) -> usize {
        self.accs.values().map(A::entries).sum()
    }

    /// Total time the pane's observations waited until a flush at
    /// `flush_ts`: `Σ (flush_ts − ts_i)`. Mean staleness is this divided by
    /// [`Self::inserted`].
    pub fn staleness_total(&self, flush_ts: u64) -> f64 {
        self.inserted as f64 * flush_ts as f64 - self.sum_ts as f64
    }
}

/// A tumbling (non-overlapping) window: one open pane; inserts that cross a
/// pane boundary close it.
#[derive(Debug)]
pub struct TumblingWindow<K, A> {
    width: u64,
    current: Option<Pane<K, A>>,
}

impl<K: Eq + Hash, A: PartialAgg> TumblingWindow<K, A> {
    /// A window with panes `width` time units wide (`width ≥ 1`).
    pub fn new(width: u64) -> Self {
        assert!(width >= 1, "pane width must be positive");
        Self { width, current: None }
    }

    /// Pane width.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Fold one observation; returns the previous pane when `ts` crosses
    /// into a new one. Late observations (`ts` before the open pane) fold
    /// into the open pane — the clock is assumed monotone per caller.
    pub fn insert(&mut self, key: K, key_id: u64, value: i64, ts: u64) -> Option<Pane<K, A>> {
        let idx = ts / self.width;
        let closed = match &self.current {
            Some(p) if p.index >= idx => None,
            _ => self.current.take(),
        };
        self.current
            .get_or_insert_with(|| Pane::new(idx, self.width))
            .insert(key, key_id, value, ts);
        closed.filter(|p| p.inserted > 0)
    }

    /// Fold an already-accumulated partial for `key` into the pane at `ts`
    /// — how migrated state (a departing worker's accumulator arriving over
    /// the migration bus) merges into its new owner's open window. Counts as
    /// one observation, so a pane holding only migrated state still flushes.
    /// Returns the previous pane when `ts` crosses into a new one, exactly
    /// like [`Self::insert`].
    pub fn merge_partial(&mut self, key: K, part: &A, ts: u64) -> Option<Pane<K, A>> {
        let idx = ts / self.width;
        let closed = match &self.current {
            Some(p) if p.index >= idx => None,
            _ => self.current.take(),
        };
        let pane = self.current.get_or_insert_with(|| Pane::new(idx, self.width));
        pane.accs.entry(key).or_insert_with(A::identity).merge(part);
        pane.inserted += 1;
        pane.sum_ts += ts as u128;
        closed.filter(|p| p.inserted > 0)
    }

    /// Close every pane ending at or before `ts` (periodic flush without a
    /// triggering insert).
    pub fn advance_to(&mut self, ts: u64) -> Option<Pane<K, A>> {
        match &self.current {
            Some(p) if p.end <= ts => self.current.take(),
            _ => None,
        }
    }

    /// Close the open pane unconditionally (end-of-stream flush).
    pub fn flush(&mut self) -> Option<Pane<K, A>> {
        self.current.take()
    }

    /// State entries currently buffered.
    pub fn entries(&self) -> usize {
        self.current.as_ref().map_or(0, Pane::entries)
    }

    /// Distinct keys currently buffered.
    pub fn keys(&self) -> usize {
        self.current.as_ref().map_or(0, |p| p.accs.len())
    }

    /// Index of the open pane, if one is buffered. Everything this window
    /// flushes in the future lands in this pane or a later one — callers
    /// tracking multiple windows use it as a finalization frontier.
    pub fn current_pane_index(&self) -> Option<u64> {
        self.current.as_ref().map(|p| p.index)
    }
}

/// A sliding window of `panes_per_window` panes, each `pane_width` wide;
/// queries merge a key's partials across the resident panes.
#[derive(Debug)]
pub struct SlidingWindow<K, A> {
    pane_width: u64,
    panes_per_window: usize,
    panes: VecDeque<Pane<K, A>>,
}

impl<K: Eq + Hash, A: PartialAgg> SlidingWindow<K, A> {
    /// A window covering `panes_per_window × pane_width` time units.
    pub fn new(pane_width: u64, panes_per_window: usize) -> Self {
        assert!(pane_width >= 1 && panes_per_window >= 1);
        Self { pane_width, panes_per_window, panes: VecDeque::new() }
    }

    /// Fold one observation; returns panes that slid out of the window.
    pub fn insert(&mut self, key: K, key_id: u64, value: i64, ts: u64) -> Vec<Pane<K, A>> {
        let idx = ts / self.pane_width;
        match self.panes.back() {
            Some(p) if p.index >= idx => {}
            _ => self.panes.push_back(Pane::new(idx, self.pane_width)),
        }
        self.panes.back_mut().expect("pane just ensured").insert(key, key_id, value, ts);
        let mut evicted = Vec::new();
        while let Some(front) = self.panes.front() {
            if front.index + self.panes_per_window as u64 <= idx {
                evicted.push(self.panes.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        evicted
    }

    /// The merged aggregate for `key` over the resident panes, if any pane
    /// saw it. Panes merge oldest-first (a deterministic order).
    pub fn query(&self, key: &K) -> Option<A> {
        let mut acc: Option<A> = None;
        for pane in &self.panes {
            if let Some(part) = pane.accs.get(key) {
                acc.get_or_insert_with(A::identity).merge(part);
            }
        }
        acc
    }

    /// Merge every resident pane into a per-key snapshot of the window.
    pub fn snapshot(&self) -> FxHashMap<K, A>
    where
        K: Clone,
    {
        let mut out: FxHashMap<K, A> = FxHashMap::default();
        for pane in &self.panes {
            for (k, part) in &pane.accs {
                out.entry(k.clone()).or_insert_with(A::identity).merge(part);
            }
        }
        out
    }

    /// Number of resident panes.
    pub fn panes(&self) -> usize {
        self.panes.len()
    }

    /// State entries across all resident panes.
    pub fn entries(&self) -> usize {
        self.panes.iter().map(Pane::entries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulators::{Mean, Sum};

    #[test]
    fn tumbling_panes_partition_the_stream() {
        let mut w: TumblingWindow<u64, Sum> = TumblingWindow::new(10);
        let mut closed = Vec::new();
        for ts in 0..35u64 {
            if let Some(p) = w.insert(ts % 3, ts % 3, 1, ts) {
                closed.push(p);
            }
        }
        closed.extend(w.flush());
        assert_eq!(closed.len(), 4, "35 ticks over width-10 panes");
        let total: i64 = closed.iter().flat_map(|p| p.accs.values()).map(PartialAgg::emit).sum();
        assert_eq!(total, 35, "panes partition the stream exactly");
        assert_eq!(closed[0].start, 0);
        assert_eq!(closed[0].end, 10);
        assert_eq!(closed[0].inserted, 10);
    }

    #[test]
    fn tumbling_advance_and_staleness() {
        let mut w: TumblingWindow<&str, Sum> = TumblingWindow::new(100);
        assert!(w.insert("a", 1, 5, 10).is_none());
        assert!(w.insert("a", 1, 5, 20).is_none());
        assert!(w.advance_to(50).is_none(), "pane not over yet");
        let p = w.advance_to(100).expect("pane closes at its end");
        // Two observations at ts 10 and 20 flushed at ts 100.
        assert_eq!(p.staleness_total(100), (100 - 10) as f64 + (100 - 20) as f64);
        assert_eq!(w.entries(), 0);
    }

    #[test]
    fn tumbling_merge_partial_counts_as_an_observation() {
        let mut w: TumblingWindow<&str, Sum> = TumblingWindow::new(10);
        let mut part = Sum::identity();
        part.insert(0, 40);
        part.insert(0, 2);
        // A pane holding only migrated state still closes as non-empty.
        assert!(w.merge_partial("a", &part, 3).is_none());
        let p = w.insert("a", 1, 1, 15).expect("migrated-state pane closes");
        assert_eq!(p.inserted, 1);
        assert_eq!(p.accs.get("a").map(PartialAgg::emit), Some(42));
    }

    #[test]
    fn tumbling_skips_empty_panes() {
        let mut w: TumblingWindow<u64, Sum> = TumblingWindow::new(1);
        assert!(w.insert(0, 0, 1, 0).is_none());
        // A jump over many empty panes closes only the populated one.
        let p = w.insert(0, 0, 1, 50).expect("old pane closes");
        assert_eq!(p.index, 0);
        assert_eq!(w.keys(), 1);
    }

    #[test]
    fn sliding_query_merges_resident_panes() {
        // 3 panes of width 10: window covers ts ∈ (idx-2..=idx) panes.
        let mut w: SlidingWindow<u64, Mean> = SlidingWindow::new(10, 3);
        for ts in 0..30u64 {
            assert!(w.insert(7, 7, ts as i64, ts).is_empty());
        }
        assert_eq!(w.panes(), 3);
        let q = w.query(&7).expect("key resident");
        assert_eq!(q.stats().count(), 30);
        assert!((q.stats().mean() - 14.5).abs() < 1e-9);
        // Advancing to pane 3 evicts pane 0 (ts 0..10).
        let evicted = w.insert(7, 7, 0, 30);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].index, 0);
        let q = w.query(&7).expect("key resident");
        assert_eq!(q.stats().count(), 21, "20 from panes 1–2 plus the new insert");
    }

    #[test]
    fn sliding_snapshot_covers_all_keys() {
        let mut w: SlidingWindow<u64, Sum> = SlidingWindow::new(5, 2);
        for ts in 0..10u64 {
            w.insert(ts % 4, ts % 4, 1, ts);
        }
        let snap = w.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.values().map(PartialAgg::emit).sum::<i64>(), 10);
        assert_eq!(w.entries(), 8, "4 keys × 2 resident panes");
    }
}
