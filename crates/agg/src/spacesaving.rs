//! The SPACESAVING algorithm for approximate heavy hitters, with mergeable
//! summaries.
//!
//! SPACESAVING [Metwally, Agrawal, El Abbadi — ICDT 2005] maintains `k`
//! counters. A monitored item increments its counter; an unmonitored item
//! replaces the minimum counter, inheriting its count as an overestimation
//! error. Guarantees (with `m` items seen): every counter overestimates by
//! at most `min_count ≤ m/k`, and any item with true frequency `> m/k` is
//! monitored.
//!
//! Berinde et al. [TODS 2010] show summaries are *mergeable* with additive
//! error, enabling the parallel pattern of §VI-C: each worker summarizes its
//! sub-stream and an aggregator merges. Under shuffle grouping an item's
//! error is the sum of up to `W` per-summary errors; under PKG it is the sum
//! of **two**, independent of the parallelism level.

use pkg_hash::FxHashMap;

/// One monitored item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter {
    /// The item.
    pub key: u64,
    /// Estimated count (upper bound on the true frequency).
    pub count: u64,
    /// Overestimation bound: `count − error ≤ f(key) ≤ count`.
    pub error: u64,
}

/// A SPACESAVING stream summary with at most `k` counters.
///
/// Operations are `O(log k)` via an indexed binary min-heap on counts (the
/// original paper's bucket list achieves `O(1)`; at the `k ≤ 10⁴` sizes used
/// here the heap is simpler and the difference immaterial — see DESIGN.md).
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    /// Heap of counter slots ordered by count (position 0 = minimum).
    heap: Vec<Counter>,
    /// key → heap position.
    pos: FxHashMap<u64, usize>,
    /// Total items observed.
    total: u64,
}

impl SpaceSaving {
    /// A summary with `k ≥ 1` counters.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one counter");
        Self { capacity: k, heap: Vec::with_capacity(k), pos: FxHashMap::default(), total: 0 }
    }

    /// Number of counters in use.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no items have been observed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Counter capacity `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest monitored count (the global overestimation bound); 0 when
    /// not yet full.
    pub fn min_count(&self) -> u64 {
        if self.heap.len() < self.capacity {
            0
        } else {
            self.heap.first().map_or(0, |c| c.count)
        }
    }

    /// Observe `weight` occurrences of `key`.
    pub fn offer(&mut self, key: u64, weight: u64) {
        self.total += weight;
        if let Some(&i) = self.pos.get(&key) {
            self.heap[i].count += weight;
            self.sift_down(i);
        } else if self.heap.len() < self.capacity {
            self.heap.push(Counter { key, count: weight, error: 0 });
            let i = self.heap.len() - 1;
            self.pos.insert(key, i);
            self.sift_up(i);
        } else {
            // Replace the minimum counter (heap root).
            let evicted = self.heap[0];
            self.pos.remove(&evicted.key);
            self.heap[0] = Counter { key, count: evicted.count + weight, error: evicted.count };
            self.pos.insert(key, 0);
            self.sift_down(0);
        }
    }

    /// Estimated count and error bound for `key`: returns `(count, error)`
    /// with `count − error ≤ f(key) ≤ count`. Unmonitored keys report
    /// `(min_count, min_count)`.
    pub fn estimate(&self, key: u64) -> (u64, u64) {
        match self.pos.get(&key) {
            Some(&i) => (self.heap[i].count, self.heap[i].error),
            None => (self.min_count(), self.min_count()),
        }
    }

    /// All monitored counters, sorted by decreasing estimated count.
    pub fn counters(&self) -> Vec<Counter> {
        let mut v = self.heap.clone();
        v.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        v
    }

    /// The top-`j` items by estimated count.
    pub fn top_k(&self, j: usize) -> Vec<Counter> {
        let mut v = self.counters();
        v.truncate(j);
        v
    }

    /// Items *guaranteed* to exceed frequency `phi · total` (their lower
    /// bound `count − error` clears the threshold).
    pub fn heavy_hitters(&self, phi: f64) -> Vec<Counter> {
        let threshold = (phi * self.total as f64).ceil() as u64;
        self.counters()
            .into_iter()
            .filter(|c| c.count.saturating_sub(c.error) >= threshold)
            .collect()
    }

    /// Merge two summaries (Berinde et al.): estimated counts add; keys
    /// monitored on one side only inherit the other side's `min_count` as
    /// additional count *and* error (the tightest sound bound). The result
    /// keeps the top `k` of the union by estimated count.
    pub fn merge(&self, other: &Self) -> Self {
        let mut entries: FxHashMap<u64, Counter> = FxHashMap::default();
        let (min_a, min_b) = (self.min_count(), other.min_count());
        for c in self.heap.iter() {
            let (b_count, b_err) = match other.pos.get(&c.key) {
                Some(&j) => {
                    let o = other.heap[j];
                    (o.count, o.error)
                }
                None => (min_b, min_b),
            };
            entries.insert(
                c.key,
                Counter { key: c.key, count: c.count + b_count, error: c.error + b_err },
            );
        }
        for c in other.heap.iter() {
            entries.entry(c.key).or_insert(Counter {
                key: c.key,
                count: c.count + min_a,
                error: c.error + min_a,
            });
        }
        let mut all: Vec<Counter> = entries.into_values().collect();
        all.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        all.truncate(self.capacity.max(other.capacity));

        let mut merged = SpaceSaving::new(self.capacity.max(other.capacity));
        merged.total = self.total + other.total;
        for c in all {
            merged.heap.push(c);
            let i = merged.heap.len() - 1;
            merged.pos.insert(c.key, i);
            merged.sift_up(i);
        }
        merged
    }

    /// Rebuild a summary from its parts (the [`crate::PartialAgg`] codec
    /// path). `counters` must hold distinct keys with `error ≤ count`;
    /// returns `None` when the parts violate those invariants or exceed
    /// `capacity`.
    pub fn from_parts(capacity: usize, total: u64, counters: &[Counter]) -> Option<Self> {
        if capacity < 1 || counters.len() > capacity {
            return None;
        }
        let mut ss = SpaceSaving::new(capacity);
        ss.total = total;
        for &c in counters {
            if c.error > c.count || ss.pos.contains_key(&c.key) {
                return None;
            }
            ss.heap.push(c);
            let i = ss.heap.len() - 1;
            ss.pos.insert(c.key, i);
            ss.sift_up(i);
        }
        Some(ss)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].count < self.heap[parent].count {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.heap[l].count < self.heap[smallest].count {
                smallest = l;
            }
            if r < self.heap.len() && self.heap[r].count < self.heap[smallest].count {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos.insert(self.heap[a].key, a);
        self.pos.insert(self.heap[b].key, b);
    }

    /// Verify the heap and index invariants (tests/debugging).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert_eq!(self.heap.len(), self.pos.len());
        for (i, c) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[&c.key], i, "index out of sync for key {}", c.key);
            if i > 0 {
                let parent = (i - 1) / 2;
                assert!(self.heap[parent].count <= c.count, "heap order violated at {i}");
            }
            assert!(c.error <= c.count, "error exceeds count");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(10);
        for k in 0..5u64 {
            for _ in 0..=k {
                ss.offer(k, 1);
            }
        }
        ss.check_invariants();
        for k in 0..5u64 {
            assert_eq!(ss.estimate(k), (k + 1, 0));
        }
        assert_eq!(ss.min_count(), 0);
    }

    #[test]
    fn error_bound_holds_under_eviction() {
        // Zipf-ish stream over 1000 keys with k=50 counters.
        let mut ss = SpaceSaving::new(50);
        let mut truth: std::collections::HashMap<u64, u64> = Default::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let m = 50_000u64;
        for _ in 0..m {
            let r: f64 = rng.random();
            // Heavy head: key ~ floor(1/r) capped.
            let key = ((1.0 / r.max(1e-9)) as u64).min(999);
            ss.offer(key, 1);
            *truth.entry(key).or_default() += 1;
        }
        ss.check_invariants();
        assert_eq!(ss.total(), m);
        // SpaceSaving guarantee: min_count ≤ m/k and every estimate brackets
        // the truth.
        assert!(ss.min_count() <= m / 50);
        for c in ss.counters() {
            let f = truth.get(&c.key).copied().unwrap_or(0);
            assert!(c.count >= f, "estimate must overestimate");
            assert!(c.count - c.error <= f, "lower bound must hold for key {}", c.key);
        }
    }

    #[test]
    fn top_items_are_found() {
        let mut ss = SpaceSaving::new(20);
        // Keys 0..5 are hot (1000 each), 2000 noise keys appear ~once.
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            for k in 0..5u64 {
                ss.offer(k, 1);
            }
            for _ in 0..2 {
                ss.offer(rng.random_range(100..100_000), 1);
            }
        }
        let top: Vec<u64> = ss.top_k(5).into_iter().map(|c| c.key).collect();
        let mut sorted = top.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "top-5 = {top:?}");
        // And they are *guaranteed* heavy hitters at phi = 10%.
        let hh: Vec<u64> = ss.heavy_hitters(0.10).into_iter().map(|c| c.key).collect();
        assert!(hh.len() == 5, "hh = {hh:?}");
    }

    #[test]
    fn merge_preserves_error_bounds() {
        let mut a = SpaceSaving::new(30);
        let mut b = SpaceSaving::new(30);
        let mut truth: std::collections::HashMap<u64, u64> = Default::default();
        let mut rng = SmallRng::seed_from_u64(3);
        for i in 0..40_000u64 {
            let r: f64 = rng.random();
            let key = ((1.0 / r.max(1e-9)) as u64).min(499);
            *truth.entry(key).or_default() += 1;
            // Split the stream over two summaries, PKG-style by parity.
            if i % 2 == 0 {
                a.offer(key, 1);
            } else {
                b.offer(key, 1);
            }
        }
        let merged = a.merge(&b);
        merged.check_invariants();
        assert_eq!(merged.total(), 40_000);
        for c in merged.counters() {
            let f = truth.get(&c.key).copied().unwrap_or(0);
            assert!(c.count >= f, "merged estimate must overestimate key {}", c.key);
            assert!(
                c.count.saturating_sub(c.error) <= f,
                "merged lower bound violated for key {}: [{}, {}] vs {}",
                c.key,
                c.count - c.error,
                c.count,
                f
            );
        }
    }

    #[test]
    fn merge_error_is_two_terms_not_w() {
        // §VI-C: the merged error bound of two summaries is min_a + min_b,
        // while W-way shuffle would sum W minimums.
        let mut parts: Vec<SpaceSaving> = (0..8).map(|_| SpaceSaving::new(10)).collect();
        let mut two: Vec<SpaceSaving> = (0..2).map(|_| SpaceSaving::new(10)).collect();
        let mut rng = SmallRng::seed_from_u64(4);
        for i in 0..20_000u64 {
            let key = rng.random_range(0..200u64);
            parts[(i % 8) as usize].offer(key, 1);
            two[(i % 2) as usize].offer(key, 1);
        }
        let merged_w: SpaceSaving =
            parts.iter().skip(1).fold(parts[0].clone(), |acc, s| acc.merge(s));
        let merged_2 = two[0].merge(&two[1]);
        // Same data; the 2-way merge carries a smaller worst-case error.
        let worst_w = merged_w.counters().iter().map(|c| c.error).max().unwrap_or(0);
        let worst_2 = merged_2.counters().iter().map(|c| c.error).max().unwrap_or(0);
        assert!(
            worst_2 <= worst_w,
            "2-way worst error {worst_2} should not exceed {w}-way {worst_w}",
            w = 8
        );
    }

    #[test]
    fn unmonitored_keys_report_min_count() {
        let mut ss = SpaceSaving::new(2);
        ss.offer(1, 5);
        ss.offer(2, 3);
        ss.offer(3, 1); // evicts key 2 (count 3) -> key 3: count 4, err 3
        let (c, e) = ss.estimate(2);
        assert_eq!(c, e, "unmonitored estimate is all error");
        assert!(c >= 3, "min_count covers the evicted key");
    }
}
