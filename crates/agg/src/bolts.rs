//! The generic two-phase aggregation bolts for `pkg-engine`.
//!
//! Phase one is a [`WindowedWorkerBolt`]: it folds its share of the stream
//! into per-key [`PartialAgg`] accumulators inside a tick-driven
//! [`TumblingWindow`], and on every pane close emits one tuple per key whose
//! payload is the *encoded partial state* — the aggregation messages whose
//! rate the paper's Fig. 5 trades against memory via the period `T`.
//!
//! Tick delivery is executor-neutral: the bolts count *logical* ticks, so
//! they work identically whether the engine realizes deadlines with
//! per-thread `recv_timeout` (thread-per-instance) or the pool executor's
//! central timer wheel. Both executors fire catch-up bursts after a stall
//! (several `tick` calls back to back); the window's logical clock makes
//! such bursts harmless — each overdue pane closes once, in order.
//!
//! Phase two is an [`AggregatorBolt`]: partials for the same key meet there
//! (route the edge with `Grouping::Key`, or `Grouping::Global` for
//! stream-global accumulators) and are combined with `PartialAgg::merge`.
//! Exact accumulators merge eagerly; sketches are buffered and folded with
//! [`canonical_merge`] at emission so the result is independent of thread
//! arrival order. The aggregator's [`Bolt::state_size`] reports its window
//! buffer — phase-two state is part of the Fig. 5(b) memory bill.
//!
//! A [`Collector`] closes the loop for tests, examples and drivers: a
//! terminal bolt that snapshots whatever reaches it behind an
//! `Arc<Mutex<…>>` handle the caller keeps.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use pkg_engine::bolt::{Bolt, Emitter};
use pkg_engine::tuple::{Tuple, TupleKey};
use pkg_hash::{FxHashMap, FxHashSet};

use crate::partial::{canonical_merge, PartialAgg};
use crate::window::TumblingWindow;

/// Key under which [`AggScope::Global`] workers accumulate and emit: the
/// empty byte string (allocation-free, routes consistently under `Key`
/// grouping).
pub const GLOBAL_KEY: &[u8] = b"";

/// What a [`WindowedWorkerBolt`] keys its accumulators by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggScope {
    /// One accumulator per distinct tuple key (word counts, per-key means).
    PerKey,
    /// One accumulator for the instance's whole sub-stream, fed the key
    /// fingerprints (SpaceSaving summaries, distinct sketches). Partials
    /// are emitted under [`GLOBAL_KEY`].
    Global,
}

/// Emulation of per-tuple CPU cost (the paper's 0.1–1 ms delay knob, Q4).
///
/// The owed time is batched above OS timer granularity and then handed to
/// [`Emitter::stall`], so the long-run service *rate* is exact while the
/// realization is executor-appropriate: the thread-per-instance executor
/// sleeps the instance's dedicated OS thread (the paper's
/// one-core-per-PEI model), and the pool executor ends the activation and
/// re-arms the task on the central timer wheel — emulated service time
/// never occupies a pool worker, so hundred-instance delay topologies
/// progress concurrently on a handful of threads.
#[derive(Debug)]
pub struct ServiceDelay {
    delay: Duration,
    owed: Duration,
}

/// Stall once the owed service time reaches this much (well above Linux
/// timer slack and the pool's ~1 ms timer granule, so the realized delay
/// tracks the request closely).
const OWED_SLEEP_THRESHOLD: Duration = Duration::from_millis(4);

impl ServiceDelay {
    /// A per-tuple delay of `delay` (zero = free).
    pub fn new(delay: Duration) -> Self {
        Self { delay, owed: Duration::ZERO }
    }

    /// Charge one tuple's worth of service time against `out`'s executor.
    pub fn charge(&mut self, out: &mut Emitter<'_>) {
        if self.delay.is_zero() {
            return;
        }
        self.owed += self.delay;
        if self.owed >= OWED_SLEEP_THRESHOLD {
            out.stall(self.owed);
            self.owed = Duration::ZERO;
        }
    }
}

/// Phase one: windowed per-key partial aggregation.
pub struct WindowedWorkerBolt<A: PartialAgg> {
    window: TumblingWindow<TupleKey, A>,
    scope: AggScope,
    /// Logical clock: engine ticks fired so far.
    ticks: u64,
    delay: ServiceDelay,
}

impl<A: PartialAgg> WindowedWorkerBolt<A> {
    /// A per-key worker flushing one pane per engine tick (configure the
    /// period with `tick_every` on the topology handle).
    pub fn per_key() -> Self {
        Self::with_scope(AggScope::PerKey)
    }

    /// A stream-global worker (one accumulator per instance).
    pub fn global() -> Self {
        Self::with_scope(AggScope::Global)
    }

    fn with_scope(scope: AggScope) -> Self {
        Self {
            window: TumblingWindow::new(1),
            scope,
            ticks: 0,
            delay: ServiceDelay::new(Duration::ZERO),
        }
    }

    /// Builder: widen panes to close every `n ≥ 1` ticks instead of every
    /// tick.
    pub fn panes_every_ticks(mut self, n: u64) -> Self {
        self.window = TumblingWindow::new(n.max(1));
        self
    }

    /// Builder: emulate per-tuple CPU cost (the Q4 delay knob).
    pub fn service_delay(mut self, delay: Duration) -> Self {
        self.delay = ServiceDelay::new(delay);
        self
    }

    fn emit_pane(&mut self, pane: crate::window::Pane<TupleKey, A>, out: &mut Emitter<'_>) {
        let mut buf = Vec::new();
        for (key, acc) in pane.accs {
            buf.clear();
            acc.encode(&mut buf);
            out.emit(Tuple::with_payload(key, acc.emit(), buf.as_slice()));
        }
    }
}

impl<A: PartialAgg> Bolt for WindowedWorkerBolt<A> {
    fn execute(&mut self, tuple: Tuple, out: &mut Emitter<'_>) {
        if pkg_ingress::hedge::is_tagged(&tuple.payload) {
            // Hedged head-key copy (`pkg_ingress::hedge`): relay it to the
            // aggregation stage untouched — and without charging service
            // time, which is the point of hedging past a stalled sibling.
            // The aggregator counts exactly one of the two copies.
            out.emit(tuple);
            return;
        }
        self.delay.charge(out);
        let key_id = tuple.key_id();
        let (key, value) = match self.scope {
            AggScope::PerKey => (tuple.key, tuple.value),
            AggScope::Global => (TupleKey::from_slice(GLOBAL_KEY), tuple.value),
        };
        // The logical clock only moves on ticks, so inserts never close a
        // pane mid-stream; `tick` drains instead.
        let closed = self.window.insert(key, key_id, value, self.ticks);
        debug_assert!(closed.is_none(), "pane closes only on ticks");
    }

    fn tick(&mut self, out: &mut Emitter<'_>) {
        self.ticks += 1;
        if let Some(pane) = self.window.advance_to(self.ticks) {
            self.emit_pane(pane, out);
        }
    }

    fn finish(&mut self, out: &mut Emitter<'_>) {
        if let Some(pane) = self.window.flush() {
            self.emit_pane(pane, out);
        }
    }

    fn state_size(&self) -> usize {
        self.window.entries()
    }
}

/// Per-key aggregator state: an eagerly-merged accumulator for raw inserts
/// and exact partials, plus a buffer of inexact partials awaiting a
/// canonical fold.
struct Slot<A> {
    local: Option<A>,
    buffered: Vec<A>,
}

impl<A: PartialAgg> Slot<A> {
    fn new() -> Self {
        Self { local: None, buffered: Vec::new() }
    }

    fn entries(&self) -> usize {
        self.local.as_ref().map_or(0, A::entries)
            + self.buffered.iter().map(A::entries).sum::<usize>()
    }

    /// Resolve into one accumulator; order-insensitive by construction.
    fn finalize(self) -> A {
        let mut parts = self.buffered;
        parts.extend(self.local);
        match parts.len() {
            0 => A::identity(),
            // The single-partial fast path skips the codec roundtrip, which
            // also keeps eagerly-merged float state (Mean) bit-exact.
            1 => parts.into_iter().next().expect("len checked"),
            _ => canonical_merge(&parts),
        }
    }
}

/// Phase two: merges partial aggregates per key.
pub struct AggregatorBolt<A: PartialAgg> {
    slots: FxHashMap<TupleKey, Slot<A>>,
    /// Emit-and-clear on every tick (windowed aggregation) instead of only
    /// at end of stream.
    windowed: bool,
    /// Payloads that failed to decode (wiring bugs; surfaced via
    /// `debug_assert` in debug builds, counted and skipped in release).
    decode_failures: u64,
    /// Hedge ids already observed; the second copy of a hedged tuple is
    /// dropped and counted in `pkg_ingress::hedge::audit`.
    hedge_seen: FxHashSet<u64>,
}

impl<A: PartialAgg> Default for AggregatorBolt<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: PartialAgg> AggregatorBolt<A> {
    /// An aggregator that holds merged state until end of stream, then
    /// emits one tuple per key — value [`PartialAgg::emit`], payload the
    /// encoded merged accumulator — in sorted key order.
    ///
    /// Memory note: exact accumulators merge eagerly, so this mode holds
    /// one accumulator per key regardless of stream length. Inexact
    /// (sketch) accumulators are *buffered* until emission to keep the
    /// canonical fold deterministic — with periodic upstream flushes that
    /// buffer grows by one partial per worker per pane, so unbounded
    /// streams over sketches should use [`Self::windowed`] (emit-and-clear
    /// per tick) instead.
    pub fn new() -> Self {
        Self {
            slots: FxHashMap::default(),
            windowed: false,
            decode_failures: 0,
            hedge_seen: FxHashSet::default(),
        }
    }

    /// Builder: also emit-and-clear on every tick (per-window aggregates).
    pub fn windowed(mut self) -> Self {
        self.windowed = true;
        self
    }

    /// Payloads that failed to decode so far.
    pub fn decode_failures(&self) -> u64 {
        self.decode_failures
    }

    fn emit_all(&mut self, out: &mut Emitter<'_>) {
        let mut slots: Vec<(TupleKey, Slot<A>)> = self.slots.drain().collect();
        slots.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (key, slot) in slots {
            let acc = slot.finalize();
            let payload = acc.encoded();
            out.emit(Tuple::with_payload(key, acc.emit(), payload));
        }
    }
}

impl<A: PartialAgg> Bolt for AggregatorBolt<A> {
    fn execute(&mut self, tuple: Tuple, _out: &mut Emitter<'_>) {
        let key_id = tuple.key_id();
        if let Some(id) = pkg_ingress::hedge::decode_tag(&tuple.payload) {
            if self.hedge_seen.insert(id) {
                // First copy to arrive wins: count it as one raw
                // observation of its key.
                let slot = self.slots.entry(tuple.key).or_insert_with(Slot::new);
                slot.local.get_or_insert_with(A::identity).insert(key_id, tuple.value);
            } else {
                pkg_ingress::hedge::audit::record_duplicate();
            }
            return;
        }
        let slot = self.slots.entry(tuple.key).or_insert_with(Slot::new);
        if tuple.payload.is_empty() {
            // A raw observation (single-phase inputs, e.g. running counters
            // flushed as plain values).
            slot.local.get_or_insert_with(A::identity).insert(key_id, tuple.value);
        } else {
            match A::decode(&tuple.payload) {
                Some(part) if A::EXACT => match &mut slot.local {
                    Some(local) => local.merge(&part),
                    None => slot.local = Some(part),
                },
                Some(part) => slot.buffered.push(part),
                None => {
                    debug_assert!(false, "undecodable {} payload", A::NAME);
                    self.decode_failures += 1;
                }
            }
        }
    }

    fn tick(&mut self, out: &mut Emitter<'_>) {
        if self.windowed {
            self.emit_all(out);
        }
    }

    fn finish(&mut self, out: &mut Emitter<'_>) {
        self.emit_all(out);
    }

    /// Window-buffer entries (merged state plus buffered partials) — the
    /// phase-two contribution to the Fig. 5(b) memory metric.
    fn state_size(&self) -> usize {
        self.slots.values().map(Slot::entries).sum()
    }
}

/// Shared handle to everything a [`CollectorBolt`] received.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    sink: Arc<Mutex<Vec<Tuple>>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bolt instance feeding this handle (pass to `Topology::add_bolt`).
    pub fn bolt(&self) -> Box<dyn Bolt> {
        Box::new(CollectorBolt { sink: Arc::clone(&self.sink) })
    }

    /// Snapshot of the collected tuples, sorted by key (then value) for
    /// deterministic comparison.
    pub fn tuples(&self) -> Vec<Tuple> {
        let mut v = self.sink.lock().expect("collector lock").clone();
        v.sort_by(|a, b| a.key.cmp(&b.key).then(a.value.cmp(&b.value)));
        v
    }

    /// Collected `(key, value)` pairs summed per key — final totals for
    /// count-like pipelines.
    pub fn totals(&self) -> Vec<(Box<[u8]>, i64)> {
        let mut map: FxHashMap<TupleKey, i64> = FxHashMap::default();
        for t in self.sink.lock().expect("collector lock").iter() {
            *map.entry(t.key.clone()).or_insert(0) += t.value;
        }
        let mut v: Vec<(Box<[u8]>, i64)> =
            map.into_iter().map(|(k, v)| (k.into_boxed(), v)).collect();
        v.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Decode the payload of every collected tuple as an `A` partial.
    pub fn decoded<A: PartialAgg>(&self) -> Vec<(Box<[u8]>, A)> {
        self.tuples()
            .into_iter()
            .filter(|t| !t.payload.is_empty())
            .filter_map(|t| A::decode(&t.payload).map(|a| (t.key.into_boxed(), a)))
            .collect()
    }
}

/// Terminal bolt pushing every input into its [`Collector`].
pub struct CollectorBolt {
    sink: Arc<Mutex<Vec<Tuple>>>,
}

impl Bolt for CollectorBolt {
    fn execute(&mut self, tuple: Tuple, _out: &mut Emitter<'_>) {
        self.sink.lock().expect("collector lock").push(tuple);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulators::{Sum, TopK};
    use pkg_engine::grouping::Grouping;
    use pkg_engine::runtime::Runtime;
    use pkg_engine::spout::spout_from_iter;
    use pkg_engine::topology::Topology;

    fn word_stream(n: u64, vocab: u64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(format!("w{}", i % vocab).into_bytes(), 1)).collect()
    }

    #[test]
    fn two_phase_sum_conserves_counts() {
        let collector = Collector::new();
        let mut topo = Topology::new();
        let src = topo.add_spout("src", 2, |_| spout_from_iter(word_stream(3_000, 11)));
        let worker = topo
            .add_bolt("worker", 4, |_| Box::new(WindowedWorkerBolt::<Sum>::per_key()))
            .input(src, Grouping::partial_key())
            .tick_every(Duration::from_millis(5))
            .id();
        let agg = topo
            .add_bolt("agg", 1, |_| Box::new(AggregatorBolt::<Sum>::new()))
            .input(worker, Grouping::Key)
            .id();
        let c = collector.clone();
        let _sink = topo.add_bolt("sink", 1, move |_| c.bolt()).input(agg, Grouping::Global);
        let stats = Runtime::new().run(topo);
        assert_eq!(stats.processed("worker"), 6_000);
        let totals = collector.totals();
        assert_eq!(totals.len(), 11);
        assert_eq!(totals.iter().map(|(_, v)| v).sum::<i64>(), 6_000);
        // 2 sources × 3000 tuples over 11 words, i % 11 uniform-ish.
        for (key, total) in &totals {
            assert!(*total >= 500, "word {:?} total {}", key, total);
        }
    }

    #[test]
    fn global_scope_merges_sketches_deterministically() {
        let run = || {
            let collector = Collector::new();
            let mut topo = Topology::new();
            let src = topo.add_spout("src", 1, |_| spout_from_iter(word_stream(2_000, 40)));
            let worker = topo
                .add_bolt("worker", 3, |_| Box::new(WindowedWorkerBolt::<TopK<16>>::global()))
                .input(src, Grouping::partial_key())
                .id();
            let agg = topo
                .add_bolt("agg", 1, |_| Box::new(AggregatorBolt::<TopK<16>>::new()))
                .input(worker, Grouping::Global)
                .id();
            let c = collector.clone();
            let _ = topo.add_bolt("sink", 1, move |_| c.bolt()).input(agg, Grouping::Global);
            Runtime::new().run(topo);
            let decoded = collector.decoded::<TopK<16>>();
            assert_eq!(decoded.len(), 1, "one global summary");
            assert_eq!(decoded[0].0.as_ref(), GLOBAL_KEY);
            decoded.into_iter().next().expect("one summary").1
        };
        let (a, b) = (run(), run());
        assert_eq!(a.emit(), 2_000, "summary mass is conserved");
        // Canonical folding makes the merged sketch run-to-run identical.
        assert_eq!(a.summary().counters(), b.summary().counters());
    }

    #[test]
    fn aggregator_accepts_raw_tuples_and_mixed_partials() {
        let mut agg = AggregatorBolt::<Sum>::new();
        let mut emitted = 0u64;
        let mut out = Emitter::drop_sink(&mut emitted);
        agg.execute(Tuple::new(b"k".to_vec(), 5), &mut out);
        agg.execute(Tuple::new(b"k".to_vec(), 7), &mut out);
        let mut partial = Sum::identity();
        partial.insert(0, 30);
        agg.execute(
            Tuple::with_payload(b"k".to_vec(), partial.emit(), partial.encoded()),
            &mut out,
        );
        assert_eq!(agg.state_size(), 1, "raw inserts and exact partials merge eagerly");
        let slot = agg.slots.remove(b"k".as_slice()).expect("slot exists");
        assert_eq!(slot.finalize().emit(), 42);
        assert_eq!(agg.decode_failures(), 0);
    }
}
