//! The fixed-size mergeable approximate histogram of Ben-Haim & Tom-Tov
//! ("A Streaming Parallel Decision Tree Algorithm", JMLR 11, 2010) — the
//! substrate of §VI-B's streaming parallel decision tree.
//!
//! A histogram is a set of at most `B` (centroid, count) bins. The *update*
//! procedure inserts a point as a unit bin and merges the two closest bins
//! when over capacity; *merge* unions two histograms and re-compacts; *sum*
//! interpolates the number of points `≤ x` (trapezoidal); *uniform* inverts
//! *sum* to produce candidate split thresholds.

/// One histogram bin: a centroid and the number of points it absorbs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Mean of the points merged into this bin.
    pub p: f64,
    /// Number of points.
    pub m: f64,
}

/// A Ben-Haim/Tom-Tov histogram with at most `b` bins.
#[derive(Debug, Clone)]
pub struct BhHistogram {
    bins: Vec<Bin>,
    capacity: usize,
    total: f64,
}

impl BhHistogram {
    /// An empty histogram with `b ≥ 2` bins.
    pub fn new(b: usize) -> Self {
        assert!(b >= 2, "need at least two bins");
        Self { bins: Vec::with_capacity(b + 1), capacity: b, total: 0.0 }
    }

    /// Bin capacity `B`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of points absorbed.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The current bins, sorted by centroid.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Rebuild a histogram from its parts (the [`crate::PartialAgg`] codec
    /// path). `bins` must be sorted by centroid with positive masses;
    /// returns `None` when the parts are malformed or exceed `capacity`.
    pub fn from_parts(capacity: usize, bins: &[Bin]) -> Option<Self> {
        if capacity < 2 || bins.len() > capacity {
            return None;
        }
        let mut total = 0.0;
        for (i, b) in bins.iter().enumerate() {
            if !b.p.is_finite() || b.m.is_nan() || b.m <= 0.0 || (i > 0 && bins[i - 1].p >= b.p) {
                return None;
            }
            total += b.m;
        }
        Some(Self { bins: bins.to_vec(), capacity, total })
    }

    /// Insert one point (the *update* procedure).
    pub fn update(&mut self, x: f64) {
        self.update_weighted(x, 1.0);
    }

    /// Insert a weighted point.
    pub fn update_weighted(&mut self, x: f64, w: f64) {
        assert!(x.is_finite() && w > 0.0);
        self.total += w;
        match self.bins.binary_search_by(|b| b.p.partial_cmp(&x).expect("finite centroids")) {
            Ok(i) => self.bins[i].m += w,
            Err(i) => {
                self.bins.insert(i, Bin { p: x, m: w });
                if self.bins.len() > self.capacity {
                    self.compact_once();
                }
            }
        }
    }

    /// Merge the closest adjacent pair.
    fn compact_once(&mut self) {
        debug_assert!(self.bins.len() >= 2);
        let mut best = 0;
        let mut best_gap = f64::INFINITY;
        for i in 0..self.bins.len() - 1 {
            let gap = self.bins[i + 1].p - self.bins[i].p;
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        let (a, b) = (self.bins[best], self.bins[best + 1]);
        let m = a.m + b.m;
        self.bins[best] = Bin { p: (a.p * a.m + b.p * b.m) / m, m };
        self.bins.remove(best + 1);
    }

    /// Merge another histogram into this one (the *merge* procedure);
    /// the result keeps this histogram's capacity.
    pub fn merge(&mut self, other: &Self) {
        let mut all: Vec<Bin> = self.bins.iter().chain(other.bins.iter()).copied().collect();
        all.sort_unstable_by(|a, b| a.p.partial_cmp(&b.p).expect("finite centroids"));
        // Coalesce exactly-equal centroids, then compact to capacity.
        let mut merged: Vec<Bin> = Vec::with_capacity(all.len());
        for bin in all {
            match merged.last_mut() {
                Some(last) if last.p == bin.p => last.m += bin.m,
                _ => merged.push(bin),
            }
        }
        self.bins = merged;
        self.total += other.total;
        while self.bins.len() > self.capacity {
            self.compact_once();
        }
    }

    /// Estimated number of points `≤ x` (the *sum* procedure).
    pub fn sum(&self, x: f64) -> f64 {
        if self.bins.is_empty() {
            return 0.0;
        }
        let first = self.bins[0];
        let last = self.bins[self.bins.len() - 1];
        if x < first.p {
            return 0.0;
        }
        if x >= last.p {
            return self.total;
        }
        // Locate the surrounding pair p_i ≤ x < p_{i+1}.
        let i = match self.bins.binary_search_by(|b| b.p.partial_cmp(&x).expect("finite")) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let (bi, bj) = (self.bins[i], self.bins[i + 1]);
        let z = (x - bi.p) / (bj.p - bi.p);
        let mx = bi.m + (bj.m - bi.m) * z;
        let mut s: f64 = self.bins[..i].iter().map(|b| b.m).sum();
        s += bi.m / 2.0;
        s += (bi.m + mx) / 2.0 * z;
        s
    }

    /// `j/b̃` quantile boundaries for `j = 1..b̃` (the *uniform* procedure):
    /// `b̃ − 1` candidate thresholds splitting the mass into `b̃` equal parts.
    pub fn uniform(&self, parts: usize) -> Vec<f64> {
        assert!(parts >= 2, "need at least two parts");
        if self.bins.len() < 2 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(parts - 1);
        // Precompute sums at centroids.
        let sums: Vec<f64> = self.bins.iter().map(|b| self.sum(b.p)).collect();
        for j in 1..parts {
            let target = self.total * j as f64 / parts as f64;
            // Find i with sums[i] ≤ target < sums[i+1].
            let i = match sums.partition_point(|&s| s <= target).checked_sub(1) {
                Some(i) if i + 1 < self.bins.len() => i,
                _ => continue, // target outside interior range
            };
            let d = target - sums[i];
            let (bi, bj) = (self.bins[i], self.bins[i + 1]);
            let a = bj.m - bi.m;
            let z = if a.abs() < 1e-12 {
                if bi.m <= 0.0 {
                    0.0
                } else {
                    d / bi.m
                }
            } else {
                // Solve a/2 z² + m_i z − d = 0 for z ∈ [0, 1].
                let disc = (bi.m * bi.m + 2.0 * a * d).max(0.0);
                (-bi.m + disc.sqrt()) / a
            };
            let z = z.clamp(0.0, 1.0);
            out.push(bi.p + z * (bj.p - bi.p));
        }
        out.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn small_input_is_exact() {
        let mut h = BhHistogram::new(10);
        for x in [1.0, 2.0, 2.0, 5.0] {
            h.update(x);
        }
        assert_eq!(h.bins().len(), 3);
        assert_eq!(h.total(), 4.0);
        assert_eq!(h.sum(5.0), 4.0);
        assert_eq!(h.sum(0.5), 0.0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut h = BhHistogram::new(8);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            h.update(rng.random::<f64>() * 100.0);
        }
        assert!(h.bins().len() <= 8);
        assert_eq!(h.total(), 10_000.0);
        // Bins stay sorted.
        for w in h.bins().windows(2) {
            assert!(w[0].p < w[1].p);
        }
    }

    #[test]
    fn sum_is_monotone_and_bounded() {
        let mut h = BhHistogram::new(16);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..5_000 {
            h.update(rng.random::<f64>() * 10.0 - 5.0);
        }
        let mut prev = -1.0;
        for i in -60..=60 {
            let x = i as f64 / 10.0;
            let s = h.sum(x);
            assert!(s >= prev - 1e-9, "sum not monotone at {x}");
            assert!((0.0..=h.total() + 1e-9).contains(&s));
            prev = s;
        }
    }

    #[test]
    fn quantiles_of_uniform_distribution() {
        let mut h = BhHistogram::new(64);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50_000 {
            h.update(rng.random::<f64>());
        }
        let qs = h.uniform(4); // quartiles
        assert_eq!(qs.len(), 3);
        for (q, expect) in qs.iter().zip([0.25, 0.5, 0.75]) {
            assert!((q - expect).abs() < 0.03, "quantile {q} vs {expect}");
        }
    }

    #[test]
    fn merge_approximates_union() {
        let mut a = BhHistogram::new(32);
        let mut b = BhHistogram::new(32);
        let mut whole = BhHistogram::new(32);
        let mut rng = SmallRng::seed_from_u64(4);
        for i in 0..20_000 {
            // Bimodal: two Gaussians-ish via sums of uniforms.
            let x: f64 = (0..4).map(|_| rng.random::<f64>()).sum::<f64>()
                + if i % 2 == 0 { 0.0 } else { 6.0 };
            if i % 3 == 0 {
                a.update(x)
            } else {
                b.update(x)
            }
            whole.update(x);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.total(), whole.total());
        for i in 0..=100 {
            let x = i as f64 / 10.0;
            let diff = (m.sum(x) - whole.sum(x)).abs();
            assert!(
                diff <= 0.05 * whole.total(),
                "merge diverges at {x}: {} vs {}",
                m.sum(x),
                whole.sum(x)
            );
        }
    }

    #[test]
    fn weighted_updates_accumulate() {
        let mut h = BhHistogram::new(4);
        h.update_weighted(1.0, 10.0);
        h.update_weighted(1.0, 5.0);
        assert_eq!(h.total(), 15.0);
        assert_eq!(h.bins().len(), 1);
        assert_eq!(h.bins()[0].m, 15.0);
    }

    #[test]
    #[should_panic(expected = "at least two bins")]
    fn one_bin_is_invalid() {
        let _ = BhHistogram::new(1);
    }
}
