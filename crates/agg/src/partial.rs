//! The [`PartialAgg`] trait: the algebra of the second aggregation phase.
//!
//! PKG splits every key over (at most) two workers, so any per-key state is
//! *partial* by construction and a second phase must combine the pieces
//! (§V-D of the paper measures exactly this overhead). An accumulator that
//! implements `PartialAgg` is a commutative monoid — [`identity`]
//! (`PartialAgg::identity`), [`insert`](PartialAgg::insert) to fold one
//! observation, and an associative, commutative [`merge`](PartialAgg::merge)
//! — plus [`encode`](PartialAgg::encode) / [`decode`](PartialAgg::decode) so
//! partial states can travel across an engine edge as tuple payloads.
//!
//! Exact accumulators (count, sum, max, mean) satisfy the monoid laws
//! bit-for-bit; sketch-backed ones (SpaceSaving top-k, BH-histogram
//! distinct) are commutative but only approximately associative, because
//! truncation between merges loses information. [`PartialAgg::EXACT`]
//! records which regime an accumulator lives in, and [`canonical_merge`]
//! restores determinism for the inexact ones by folding partials in a
//! canonical (byte-sorted) order — the aggregator bolts use it so a run's
//! result does not depend on thread arrival order.

/// A mergeable partial aggregate.
///
/// Laws (checked by `tests/agg_laws.rs`):
/// * identity: `merge(identity(), a) ≡ a`
/// * commutativity: `merge(a, b) ≡ merge(b, a)`
/// * associativity: exact accumulators satisfy
///   `merge(merge(a, b), c) ≡ merge(a, merge(b, c))`; sketches satisfy it up
///   to their approximation bounds (and exactly under [`canonical_merge`]).
/// * split/whole: for exact accumulators, inserting a stream split across
///   several partials and merging equals inserting the whole stream into
///   one.
/// * codec: `decode(encode(a)) ≡ a`.
pub trait PartialAgg: Send + Sized + 'static {
    /// Short label for reports and bench ids (`"count"`, `"topk"`, …).
    const NAME: &'static str;

    /// Whether `merge` is exactly associative (up to float rounding for
    /// [`Mean`](crate::accumulators::Mean)). The aggregator merges exact
    /// accumulators eagerly; inexact ones are buffered and folded with
    /// [`canonical_merge`] at emission time.
    const EXACT: bool;

    /// The monoid identity (an empty accumulator).
    fn identity() -> Self;

    /// Fold one observation: the routing-key fingerprint and the tuple
    /// value. Value-oriented accumulators (sum, mean, max) use `value`;
    /// item-oriented sketches (top-k, distinct) use `key_id`.
    fn insert(&mut self, key_id: u64, value: i64);

    /// Combine another partial into this one. Must be commutative.
    fn merge(&mut self, other: &Self);

    /// Scalar summary of the aggregate (count, sum, rounded mean, total
    /// mass, distinct estimate). Richer results stay accessible on the
    /// concrete type (e.g. [`TopK::summary`](crate::accumulators::TopK)).
    fn emit(&self) -> i64;

    /// State entries held (counters, sketch bins); feeds
    /// [`pkg_engine::Bolt::state_size`] and the Fig. 5(b) memory metric.
    fn entries(&self) -> usize {
        1
    }

    /// Serialize into `buf` (little-endian framing; see [`codec`]).
    ///
    /// The encoding must be canonical: equal aggregates encode to equal
    /// bytes, which is what makes [`canonical_merge`] order-insensitive.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Deserialize an accumulator encoded by [`encode`](Self::encode);
    /// `None` on malformed input.
    fn decode(bytes: &[u8]) -> Option<Self>;

    /// Convenience: encode into a fresh buffer.
    fn encoded(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Fold partials in a canonical order: sort by encoded bytes, then merge
/// left-to-right from the identity. For any [`PartialAgg`] this makes the
/// result a function of the *multiset* of partials, independent of arrival
/// order — which is what the aggregator bolts need for deterministic output
/// from the inherently racy engine.
pub fn canonical_merge<A: PartialAgg>(parts: &[A]) -> A {
    let mut encoded: Vec<Vec<u8>> = parts.iter().map(|p| p.encoded()).collect();
    encoded.sort_unstable();
    let mut acc = A::identity();
    for bytes in &encoded {
        let part = A::decode(bytes).expect("canonical_merge re-decodes its own encoding");
        acc.merge(&part);
    }
    acc
}

/// Little-endian framing helpers shared by the accumulator codecs.
pub mod codec {
    /// Append a `u64`.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`.
    pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` (IEEE-754 bits; canonical for non-NaN values).
    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Cursor over an encoded buffer.
    #[derive(Debug, Clone, Copy)]
    pub struct Reader<'a> {
        bytes: &'a [u8],
    }

    impl<'a> Reader<'a> {
        /// Read from the start of `bytes`.
        pub fn new(bytes: &'a [u8]) -> Self {
            Self { bytes }
        }

        /// Next `u64`, or `None` when the buffer is exhausted.
        pub fn u64(&mut self) -> Option<u64> {
            let (head, rest) = self.bytes.split_first_chunk::<8>()?;
            self.bytes = rest;
            Some(u64::from_le_bytes(*head))
        }

        /// Next `i64`.
        pub fn i64(&mut self) -> Option<i64> {
            self.u64().map(|v| v as i64)
        }

        /// Next `f64`.
        pub fn f64(&mut self) -> Option<f64> {
            self.u64().map(f64::from_bits)
        }

        /// `true` when every byte has been consumed (strict codecs reject
        /// trailing garbage).
        pub fn done(&self) -> bool {
            self.bytes.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::codec::{put_f64, put_i64, put_u64, Reader};

    #[test]
    fn codec_roundtrip() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        put_i64(&mut buf, -7);
        put_f64(&mut buf, 2.5);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u64(), Some(42));
        assert_eq!(r.i64(), Some(-7));
        assert_eq!(r.f64(), Some(2.5));
        assert!(r.done());
        assert_eq!(r.u64(), None);
    }

    #[test]
    fn reader_rejects_short_buffers() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u64(), None);
    }
}
