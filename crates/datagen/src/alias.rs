//! Walker's alias method for O(1) categorical sampling.
//!
//! The log-normal profiles draw one weight per key and then sample millions
//! of messages from the resulting categorical distribution; the alias method
//! makes each draw two table lookups regardless of the key count.

use rand::rngs::SmallRng;
use rand::Rng;

/// Precomputed alias table over `k` categories.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
    probabilities: Vec<f64>,
    p1: f64,
}

impl AliasTable {
    /// Build from non-negative weights (not necessarily normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let k = weights.len();
        let probabilities: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let p1 = probabilities.iter().cloned().fold(0.0, f64::max);

        // Standard two-worklist construction.
        let mut prob: Vec<f64> = probabilities.iter().map(|p| p * k as f64).collect();
        let mut alias = vec![0u32; k];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Whatever remains is 1.0 up to rounding.
        for s in small {
            prob[s as usize] = 1.0;
        }
        for l in large {
            prob[l as usize] = 1.0;
        }

        Self { prob, alias, probabilities, p1 }
    }

    /// Number of categories.
    pub fn k(&self) -> usize {
        self.prob.len()
    }

    /// Normalized probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Probability of the most likely category.
    pub fn p1(&self) -> f64 {
        self.p1
    }

    /// Draw a category in `0..k`.
    #[inline]
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i as u64
        } else {
            u64::from(self.alias[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 10]);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut counts = [0u64; 10];
        for _ in 0..n {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let p = c as f64 / n as f64;
            assert!((p - 0.1).abs() < 0.01, "p = {p}");
        }
    }

    #[test]
    fn skewed_weights_match_probabilities() {
        let weights = [80.0, 10.0, 5.0, 4.0, 1.0];
        let t = AliasTable::new(&weights);
        assert!((t.p1() - 0.8).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 200_000;
        let mut counts = [0u64; 5];
        for _ in 0..n {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / 100.0;
            let emp = counts[i] as f64 / n as f64;
            assert!((emp - expect).abs() < 0.01, "category {i}: {emp} vs {expect}");
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let t = AliasTable::new(&[3.0, 2.0, 1.0, 0.5]);
        assert!((t.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need at least one weight")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
