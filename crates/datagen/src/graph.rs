//! Directed scale-free graph edge streams (the LJ / SL1 / SL2 substitutes).
//!
//! Q3 of the paper streams the edges of social graphs: "The input keys for
//! the source PE is the source vertex id, while the key sent to the worker
//! PE is the destination vertex id … This schema projects the out-degree
//! distribution of the graph on sources, and the in-degree distribution on
//! workers, both of which are highly skewed" (§V-B).
//!
//! We generate edges with the directed preferential-attachment model of
//! Bollobás, Borgs, Chayes & Riordan (SODA 2003): each new edge is, with
//! probability `alpha`, from a *new* vertex to an existing one chosen
//! preferentially by in-degree; with probability `beta`, between two
//! existing vertices (source by out-degree, target by in-degree); and
//! otherwise from an existing vertex to a *new* one. Both degree
//! distributions are power laws, matching the qualitative property the
//! experiment needs. A `uniform_mix` fraction of preferential picks is
//! replaced by uniform picks (the δ-smoothing of the model), which bounds
//! `p1` away from pathological concentration.

use rand::rngs::SmallRng;
use rand::Rng;

/// Parameters of the directed preferential-attachment process.
#[derive(Debug, Clone, Copy)]
pub struct GraphParams {
    /// P(new source → preferential target); creates a vertex per edge.
    pub alpha: f64,
    /// P(preferential source → preferential target); no new vertex.
    pub beta: f64,
    /// Fraction of "preferential" picks that are made uniform instead
    /// (degree smoothing).
    pub uniform_mix: f64,
}

impl GraphParams {
    /// `gamma = 1 − alpha − beta`: P(preferential source → new target).
    pub fn gamma(&self) -> f64 {
        1.0 - self.alpha - self.beta
    }

    /// Expected vertices created per edge (`alpha + gamma`).
    pub fn vertices_per_edge(&self) -> f64 {
        self.alpha + self.gamma()
    }

    /// Validate the parameter simplex.
    pub fn validate(&self) {
        assert!(self.alpha >= 0.0 && self.beta >= 0.0, "probabilities must be non-negative");
        assert!(self.alpha + self.beta <= 1.0, "alpha + beta must be at most 1");
        assert!((0.0..=1.0).contains(&self.uniform_mix), "uniform_mix must be a probability");
        assert!(self.vertices_per_edge() > 0.0, "alpha + gamma must be positive");
    }
}

/// Incremental generator state: endpoint lists implement preferential
/// selection (a vertex appears in `in_endpoints` once per incoming edge, so
/// a uniform pick from the list is a degree-proportional pick).
#[derive(Debug, Clone)]
pub struct GraphState {
    params: GraphParams,
    in_endpoints: Vec<u32>,
    out_endpoints: Vec<u32>,
    nodes: u32,
}

impl GraphState {
    /// Fresh state with a two-vertex seed edge (emitted implicitly; the
    /// first generated edge already has valid attachment targets).
    pub fn new(params: &GraphParams) -> Self {
        params.validate();
        Self { params: *params, in_endpoints: vec![1], out_endpoints: vec![0], nodes: 2 }
    }

    /// Vertices created so far.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    #[inline]
    fn new_node(&mut self) -> u32 {
        let id = self.nodes;
        self.nodes += 1;
        id
    }

    #[inline]
    fn pick_by_in_degree(&self, rng: &mut SmallRng) -> u32 {
        if rng.random::<f64>() < self.params.uniform_mix || self.in_endpoints.is_empty() {
            rng.random_range(0..self.nodes)
        } else {
            self.in_endpoints[rng.random_range(0..self.in_endpoints.len())]
        }
    }

    #[inline]
    fn pick_by_out_degree(&self, rng: &mut SmallRng) -> u32 {
        if rng.random::<f64>() < self.params.uniform_mix || self.out_endpoints.is_empty() {
            rng.random_range(0..self.nodes)
        } else {
            self.out_endpoints[rng.random_range(0..self.out_endpoints.len())]
        }
    }

    /// Generate the next directed edge `(source, target)`.
    pub fn next_edge(&mut self, rng: &mut SmallRng) -> (u64, u64) {
        let r: f64 = rng.random();
        let (src, dst) = if r < self.params.alpha {
            let dst = self.pick_by_in_degree(rng);
            let src = self.new_node();
            (src, dst)
        } else if r < self.params.alpha + self.params.beta {
            (self.pick_by_out_degree(rng), self.pick_by_in_degree(rng))
        } else {
            let src = self.pick_by_out_degree(rng);
            let dst = self.new_node();
            (src, dst)
        };
        self.out_endpoints.push(src);
        self.in_endpoints.push(dst);
        (u64::from(src), u64::from(dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn lj_like() -> GraphParams {
        GraphParams { alpha: 0.05, beta: 0.929, uniform_mix: 0.4 }
    }

    #[test]
    fn vertex_growth_matches_alpha_plus_gamma() {
        let p = lj_like();
        let mut st = GraphState::new(&p);
        let mut rng = SmallRng::seed_from_u64(1);
        let m = 200_000;
        for _ in 0..m {
            st.next_edge(&mut rng);
        }
        let expected = p.vertices_per_edge() * m as f64;
        let actual = st.nodes() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.05,
            "nodes = {actual}, expected ≈ {expected}"
        );
    }

    #[test]
    fn in_degree_distribution_is_skewed() {
        let mut st = GraphState::new(&lj_like());
        let mut rng = SmallRng::seed_from_u64(2);
        let m = 300_000usize;
        let mut in_deg: HashMap<u64, u64> = HashMap::new();
        for _ in 0..m {
            let (_, dst) = st.next_edge(&mut rng);
            *in_deg.entry(dst).or_default() += 1;
        }
        let mut degs: Vec<u64> = in_deg.values().copied().collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top = degs[0] as f64;
        let mean = m as f64 / degs.len() as f64;
        // Preferential attachment: the head vertex collects far more than
        // the mean in-degree.
        assert!(top / mean > 20.0, "top/mean = {}", top / mean);
        // But p1 stays small (paper: LJ p1 = 0.29%); the smoothing mix keeps
        // the head from absorbing a constant fraction of all edges.
        assert!(top / m as f64 <= 0.02, "p1 = {}", top / m as f64);
    }

    #[test]
    fn out_degree_distribution_is_skewed() {
        let mut st = GraphState::new(&lj_like());
        let mut rng = SmallRng::seed_from_u64(3);
        let m = 300_000usize;
        let mut out_deg: HashMap<u64, u64> = HashMap::new();
        for _ in 0..m {
            let (src, _) = st.next_edge(&mut rng);
            *out_deg.entry(src).or_default() += 1;
        }
        let top = *out_deg.values().max().expect("non-empty") as f64;
        let mean = m as f64 / out_deg.len() as f64;
        assert!(top / mean > 20.0, "top/mean = {}", top / mean);
    }

    #[test]
    fn vertex_ids_are_dense() {
        let mut st = GraphState::new(&lj_like());
        let mut rng = SmallRng::seed_from_u64(4);
        let mut max_id = 0u64;
        for _ in 0..50_000 {
            let (s, d) = st.next_edge(&mut rng);
            max_id = max_id.max(s).max(d);
        }
        assert!(max_id < u64::from(st.nodes()), "ids exceed node counter");
    }

    #[test]
    #[should_panic(expected = "alpha + beta")]
    fn invalid_simplex_panics() {
        GraphParams { alpha: 0.8, beta: 0.9, uniform_mix: 0.0 }.validate();
    }
}
