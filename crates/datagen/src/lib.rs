//! Synthetic workload generators for the Partial Key Grouping reproduction.
//!
//! The paper evaluates on eight datasets (Table I): Wikipedia page visits,
//! Twitter words, Twitter cashtags (with popularity drift), two log-normal
//! synthetic streams with Orkut-fitted parameters, and three social graphs
//! (LiveJournal, two Slashdot snapshots). None of those raw datasets are
//! redistributable, so this crate synthesizes streams that match the
//! *published statistics* the balance behaviour depends on — number of
//! messages, number of keys, and the probability `p1` of the most frequent
//! key — using the generative models the paper itself names (Zipf for web
//! workloads, log-normal for social-network workloads, preferential
//! attachment for graphs). See `DESIGN.md` §4 for the substitution argument.
//!
//! Entry point: [`profiles::DatasetProfile`] — e.g.
//! [`profiles::DatasetProfile::wikipedia`] — which `build`s into a
//! [`stream::StreamSpec`] whose `iter(seed)` yields a deterministic
//! [`stream::Message`] stream.
//!
//! ```
//! use pkg_datagen::profiles::DatasetProfile;
//!
//! let spec = DatasetProfile::lognormal1().with_messages(10_000).build(42);
//! let msgs: Vec<_> = spec.iter(7).collect();
//! assert_eq!(msgs.len(), 10_000);
//! // Deterministic: same seed, same stream.
//! assert!(spec.iter(7).eq(msgs.iter().copied()));
//! ```

#![forbid(unsafe_code)]

pub mod alias;
pub mod drift;
pub mod graph;
pub mod lognormal;
pub mod profiles;
pub mod stream;
pub mod text;
pub mod zipf;

pub use drift::SpeedDrift;
pub use profiles::DatasetProfile;
pub use stream::{Message, StreamSpec};
