//! Dataset profiles matching Table I of the paper.
//!
//! | Dataset | Symbol | Messages | Keys  | p1(%) |
//! |---------|--------|----------|-------|-------|
//! | Wikipedia    | WP  | 22M   | 2.9M | 9.32 |
//! | Twitter      | TW  | 1.2G  | 31M  | 2.67 |
//! | Cashtags     | CT  | 690k  | 2.9k | 3.29 |
//! | Synthetic 1  | LN1 | 10M   | 16k  | 14.71 |
//! | Synthetic 2  | LN2 | 10M   | 1.1k | 7.01 |
//! | LiveJournal  | LJ  | 69M   | 4.9M | 0.29 |
//! | Slashdot0811 | SL1 | 905k  | 77k  | 3.28 |
//! | Slashdot0902 | SL2 | 948k  | 82k  | 3.11 |
//!
//! Default constructors return *scaled* profiles sized for a laptop-class
//! machine (the imbalance fractions studied are scale-free in the number of
//! messages — Theorem 4.1 gives `I = Θ(m/n)` — so scaling `m` and `K`
//! together preserves every qualitative result; `p1` is always preserved
//! exactly). `*_paper_scale()` constructors carry the full Table I sizes.
//! `SCALE` (see [`DatasetProfile::scale`]) adjusts sizes globally.

use crate::drift::DriftState;
use crate::graph::GraphParams;
use crate::lognormal;
use crate::stream::{Sampler, StreamSpec};
use crate::zipf::{fit_exponent, ZipfRejection, ZipfTable};
use std::sync::Arc;

/// Key-space size above which Zipf profiles switch from the CDF table to
/// the O(1)-memory rejection sampler.
const TABLE_LIMIT: u64 = 8_000_000;

/// Generative model of a profile.
#[derive(Debug, Clone)]
pub enum ProfileKind {
    /// Zipf with exponent fitted to the target `p1`.
    Zipf,
    /// Zipf plus epoch-based popularity drift (cashtags).
    ZipfDrift {
        /// Drift epoch length in simulated hours.
        period_hours: f64,
        /// Number of head ranks re-assigned per epoch.
        churn_top: usize,
    },
    /// Log-normal key weights with the given parameters.
    LogNormal {
        /// Location parameter µ.
        mu: f64,
        /// Scale parameter σ.
        sigma: f64,
        /// Seed of the weight draw. Fixed per profile (calibrated with
        /// `pkg-bench --bin calibrate` so the drawn `p1` matches Table I):
        /// the paper's dataset is one concrete draw, and pinning it makes
        /// the default datasets reproduce the paper's head probability
        /// regardless of the experiment seed.
        weight_seed: u64,
    },
    /// Directed preferential-attachment edge stream.
    Graph(GraphParams),
}

/// A buildable description of one of the paper's datasets.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Short symbol (WP, TW, …).
    pub name: String,
    /// Messages the stream will contain.
    pub messages: u64,
    /// Number of distinct keys (Zipf/log-normal) or expected vertex budget
    /// (graphs, where the process itself creates vertices).
    pub keys: u64,
    /// Target probability of the most frequent key (None where emergent).
    pub target_p1: Option<f64>,
    /// Simulated stream duration in hours (the x-axis of Fig. 3).
    pub duration_hours: f64,
    /// Generative model.
    pub kind: ProfileKind,
}

impl DatasetProfile {
    /// WP — Wikipedia page-visit log. Paper: 22M messages, 2.9M keys,
    /// p1 = 9.32%. Scaled default: 5M messages, 660k keys.
    pub fn wikipedia() -> Self {
        Self {
            name: "WP".into(),
            messages: 5_000_000,
            keys: 660_000,
            target_p1: Some(0.0932),
            duration_hours: 40.0,
            kind: ProfileKind::Zipf,
        }
    }

    /// WP at full Table I size.
    pub fn wikipedia_paper_scale() -> Self {
        Self { messages: 22_000_000, keys: 2_900_000, ..Self::wikipedia() }
    }

    /// TW — Twitter word stream. Paper: 1.2G messages, 31M keys,
    /// p1 = 2.67%. Scaled default: 8M messages, 207k keys (the paper's
    /// 38.7 messages/key ratio).
    pub fn twitter() -> Self {
        Self {
            name: "TW".into(),
            messages: 8_000_000,
            keys: 207_000,
            target_p1: Some(0.0267),
            duration_hours: 30.0,
            kind: ProfileKind::Zipf,
        }
    }

    /// TW at full Table I size (uses the O(1)-memory rejection sampler).
    pub fn twitter_paper_scale() -> Self {
        Self { messages: 1_200_000_000, keys: 31_000_000, ..Self::twitter() }
    }

    /// CT — Twitter cashtags with weekly popularity drift. Paper: 690k
    /// messages, 2.9k keys, p1 = 3.29%, ~600 hours.
    pub fn cashtags() -> Self {
        Self {
            name: "CT".into(),
            messages: 690_000,
            keys: 2_900,
            target_p1: Some(0.0329),
            duration_hours: 600.0,
            kind: ProfileKind::ZipfDrift { period_hours: 168.0, churn_top: 50 },
        }
    }

    /// LN1 — log-normal with Orkut-fitted µ=1.789, σ=2.366. Paper: 10M
    /// messages, 16k keys, p1 = 14.71%.
    pub fn lognormal1() -> Self {
        Self {
            name: "LN1".into(),
            messages: 10_000_000,
            keys: 16_000,
            target_p1: None,
            duration_hours: 10.0,
            kind: ProfileKind::LogNormal { mu: 1.789, sigma: 2.366, weight_seed: 123 },
        }
    }

    /// LN2 — log-normal with µ=2.245, σ=1.133. Paper: 10M messages,
    /// 1.1k keys, p1 = 7.01%.
    pub fn lognormal2() -> Self {
        Self {
            name: "LN2".into(),
            messages: 10_000_000,
            keys: 1_100,
            target_p1: None,
            duration_hours: 10.0,
            kind: ProfileKind::LogNormal { mu: 2.245, sigma: 1.133, weight_seed: 229 },
        }
    }

    /// LJ — LiveJournal-like directed graph stream. Paper: 69M edges,
    /// 4.9M vertices, p1 = 0.29%. Scaled default: 5M edges (~355k
    /// vertices at the paper's vertices/edge ratio).
    pub fn livejournal() -> Self {
        Self {
            name: "LJ".into(),
            messages: 5_000_000,
            keys: 355_000,
            target_p1: None,
            duration_hours: 24.0,
            kind: ProfileKind::Graph(GraphParams { alpha: 0.05, beta: 0.929, uniform_mix: 0.4 }),
        }
    }

    /// LJ at full Table I size.
    pub fn livejournal_paper_scale() -> Self {
        Self { messages: 69_000_000, keys: 4_900_000, ..Self::livejournal() }
    }

    /// SL1 — Slashdot0811-like graph. Paper: 905k edges, 77k vertices,
    /// p1 = 3.28%.
    pub fn slashdot1() -> Self {
        Self {
            name: "SL1".into(),
            messages: 905_000,
            keys: 77_000,
            target_p1: None,
            duration_hours: 24.0,
            kind: ProfileKind::Graph(GraphParams { alpha: 0.06, beta: 0.915, uniform_mix: 0.3 }),
        }
    }

    /// SL2 — Slashdot0902-like graph. Paper: 948k edges, 82k vertices,
    /// p1 = 3.11%.
    pub fn slashdot2() -> Self {
        Self {
            name: "SL2".into(),
            messages: 948_000,
            keys: 82_000,
            target_p1: None,
            duration_hours: 24.0,
            kind: ProfileKind::Graph(GraphParams { alpha: 0.06, beta: 0.914, uniform_mix: 0.3 }),
        }
    }

    /// A synthetic Zipf profile with an explicit exponent `s` — the `z`
    /// knob of the D-Choices sweeps ("When Two Choices Are not Enough"
    /// studies z up to 2.2, far past any Table I dataset). The target `p1`
    /// is derived as `1 / H_{K,s}`; building the profile fits the exponent
    /// back from it, recovering `s` to the fit tolerance. `s = 0` is the
    /// uniform distribution (the skew-free edge of the `fig_hetero` grid).
    pub fn zipf_exponent(keys: u64, s: f64, messages: u64) -> Self {
        assert!(keys >= 2 && s >= 0.0);
        Self {
            name: format!("Z{s:.1}"),
            messages,
            keys,
            target_p1: Some(1.0 / crate::zipf::harmonic(keys, s)),
            duration_hours: 10.0,
            kind: ProfileKind::Zipf,
        }
    }

    /// All five non-graph profiles of Fig. 2, in the paper's panel order.
    pub fn figure2_profiles() -> Vec<Self> {
        vec![
            Self::twitter(),
            Self::wikipedia(),
            Self::cashtags(),
            Self::lognormal1(),
            Self::lognormal2(),
        ]
    }

    /// Override the message count.
    pub fn with_messages(mut self, messages: u64) -> Self {
        self.messages = messages;
        self
    }

    /// Override the key count (Zipf/log-normal profiles).
    pub fn with_keys(mut self, keys: u64) -> Self {
        self.keys = keys;
        self
    }

    /// Scale messages and keys together by `factor` (≥ 0), preserving the
    /// messages-per-key ratio and `p1`. Key counts are floored at 2.
    pub fn scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite());
        self.messages = ((self.messages as f64 * factor) as u64).max(1);
        self.keys = ((self.keys as f64 * factor) as u64).max(2);
        self
    }

    /// Build the reusable stream specification (performs exponent fitting
    /// and table construction; deterministic in `seed`).
    pub fn build(&self, _seed: u64) -> StreamSpec {
        let duration_ms = (self.duration_hours * 3_600_000.0) as u64;
        let sampler = match &self.kind {
            ProfileKind::Zipf => {
                let p1 = self.target_p1.expect("Zipf profiles carry a target p1");
                if self.keys <= TABLE_LIMIT {
                    Sampler::ZipfTable(Arc::new(ZipfTable::with_p1(self.keys, p1)))
                } else {
                    let s = fit_exponent(self.keys, p1);
                    Sampler::ZipfRejection(ZipfRejection::new(self.keys, s))
                }
            }
            ProfileKind::ZipfDrift { period_hours, churn_top } => {
                let p1 = self.target_p1.expect("drift profiles carry a target p1");
                let period_ms = ((*period_hours) * 3_600_000.0) as u64;
                Sampler::Drift {
                    table: Arc::new(ZipfTable::with_p1(self.keys, p1)),
                    drift: DriftState::new(self.keys, period_ms.max(1), *churn_top),
                }
            }
            ProfileKind::LogNormal { mu, sigma, weight_seed } => Sampler::Alias(Arc::new(
                lognormal::alias_table(self.keys, *mu, *sigma, *weight_seed),
            )),
            ProfileKind::Graph(params) => Sampler::Graph(*params),
        };
        StreamSpec {
            name: self.name.clone(),
            messages: self.messages,
            key_space: match &self.kind {
                // The graph process creates vertices as it goes; the id
                // space is bounded by #edges + seed vertices.
                ProfileKind::Graph(_) => self.messages + 2,
                _ => self.keys,
            },
            duration_ms,
            sampler,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkg_hash::FxHashMap;

    /// Empirical (messages, keys, p1) of a built profile.
    fn empirical_stats(spec: &StreamSpec, seed: u64) -> (u64, usize, f64) {
        let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
        let mut m = 0u64;
        for msg in spec.iter(seed) {
            *counts.entry(msg.key).or_default() += 1;
            m += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        (m, counts.len(), max as f64 / m as f64)
    }

    #[test]
    fn wikipedia_profile_matches_target_p1() {
        let spec = DatasetProfile::wikipedia().with_messages(300_000).with_keys(10_000).build(1);
        let (m, _, p1) = empirical_stats(&spec, 2);
        assert_eq!(m, 300_000);
        assert!((p1 - 0.0932).abs() < 0.01, "p1 = {p1}");
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let spec = DatasetProfile::zipf_exponent(1_000, 0.0, 50_000).build(3);
        let (m, distinct, p1) = empirical_stats(&spec, 2);
        assert_eq!(m, 50_000);
        assert!(distinct > 950, "only {distinct} of 1000 keys seen");
        // Uniform: the head key holds ≈ 1/1000 of the stream, not more
        // than a few times that.
        assert!(p1 < 0.004, "p1 = {p1} is not uniform");
    }

    #[test]
    fn cashtags_profile_has_drift_and_target_p1() {
        let spec = DatasetProfile::cashtags().build(3);
        assert!((spec.p1().expect("drift p1 known") - 0.0329).abs() < 1e-6);
        let (m, k, p1) = empirical_stats(&spec, 4);
        assert_eq!(m, 690_000);
        assert!(k <= 2_900);
        // Drift spreads the head mass over several keys; the per-epoch skew
        // still matches, so the whole-stream p1 is below the target.
        assert!(p1 <= 0.04, "p1 = {p1}");
    }

    #[test]
    fn lognormal_profiles_are_in_the_papers_ballpark() {
        // Table I: LN1 p1 = 14.71%, LN2 p1 = 7.01%. The published numbers
        // are a single draw from the generative model; we accept the right
        // order of magnitude and the LN1 > LN2 ordering.
        let p1_ln1 = DatasetProfile::lognormal1().build(7).p1().expect("alias p1");
        let p1_ln2 = DatasetProfile::lognormal2().build(7).p1().expect("alias p1");
        assert!(p1_ln1 > 0.02 && p1_ln1 < 0.6, "LN1 p1 = {p1_ln1}");
        assert!(p1_ln2 > 0.005 && p1_ln2 < 0.3, "LN2 p1 = {p1_ln2}");
    }

    #[test]
    fn graph_profile_yields_inverted_edges() {
        let spec = DatasetProfile::slashdot1().with_messages(50_000).build(5);
        let mut distinct_src = std::collections::HashSet::new();
        for msg in spec.iter(6) {
            // source_key is the graph source vertex, key the destination.
            distinct_src.insert(msg.source_key);
        }
        assert!(distinct_src.len() > 1_000);
    }

    #[test]
    fn scale_preserves_ratio() {
        let p = DatasetProfile::wikipedia().scale(0.1);
        assert_eq!(p.messages, 500_000);
        assert_eq!(p.keys, 66_000);
    }

    #[test]
    fn zipf_exponent_profile_hits_the_requested_skew() {
        // z = 2.0 over 10k keys: p1 = 1/H ≈ 0.608/ζ(2)-ish for finite K.
        let spec = DatasetProfile::zipf_exponent(10_000, 2.0, 200_000).build(1);
        let expect = 1.0 / crate::zipf::harmonic(10_000, 2.0);
        let p1 = spec.p1().expect("zipf p1 known");
        assert!((p1 - expect).abs() < 1e-4, "p1 = {p1}, expect {expect}");
        let (m, _, emp_p1) = empirical_stats(&spec, 2);
        assert_eq!(m, 200_000);
        assert!((emp_p1 - expect).abs() < 0.02, "empirical p1 = {emp_p1}");
    }

    #[test]
    fn figure2_panel_order() {
        let names: Vec<String> =
            DatasetProfile::figure2_profiles().into_iter().map(|p| p.name).collect();
        assert_eq!(names, ["TW", "WP", "CT", "LN1", "LN2"]);
    }
}
