//! Popularity drift for the cashtag profile (Q3).
//!
//! "Popular cash tags change from week to week. This dataset allows to study
//! the effect of shift of skew in the key distribution" (§V-A). We keep the
//! *shape* of the rank distribution fixed (a fitted Zipf) and periodically
//! re-assign which concrete key occupies each head rank: every drift epoch,
//! each of the top `churn_top` ranks swaps its key with a uniformly random
//! rank. Head keys thus rise and fall over time exactly like trending ticker
//! symbols, while the instantaneous skew stays constant.

use rand::rngs::SmallRng;
use rand::Rng;

/// Evolving rank → key permutation.
#[derive(Debug, Clone)]
pub struct DriftState {
    permutation: Vec<u32>,
    period_ms: u64,
    churn_top: usize,
    next_epoch_ms: u64,
    epochs: u64,
}

impl DriftState {
    /// Identity permutation over `k` keys that churns its top `churn_top`
    /// ranks every `period_ms` of stream time.
    ///
    /// # Panics
    /// Panics if `k` exceeds `u32::MAX` or `period_ms == 0`.
    pub fn new(k: u64, period_ms: u64, churn_top: usize) -> Self {
        assert!(k <= u64::from(u32::MAX), "drift supports at most 2^32 keys");
        assert!(period_ms > 0, "drift period must be positive");
        Self {
            permutation: (0..k as u32).collect(),
            period_ms,
            churn_top: churn_top.min(k as usize),
            next_epoch_ms: period_ms,
            epochs: 0,
        }
    }

    /// Map a sampled rank to the key currently occupying it, advancing
    /// drift epochs up to `ts_ms` first.
    #[inline]
    pub fn map(&mut self, rank: u64, ts_ms: u64, rng: &mut SmallRng) -> u64 {
        while ts_ms >= self.next_epoch_ms {
            self.advance_epoch(rng);
        }
        u64::from(self.permutation[rank as usize])
    }

    fn advance_epoch(&mut self, rng: &mut SmallRng) {
        let k = self.permutation.len();
        for rank in 0..self.churn_top {
            let other = rng.random_range(0..k);
            self.permutation.swap(rank, other);
        }
        self.next_epoch_ms += self.period_ms;
        self.epochs += 1;
    }

    /// Number of epochs elapsed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Key currently occupying `rank` (read-only; no epoch advance).
    pub fn key_at_rank(&self, rank: u64) -> u64 {
        u64::from(self.permutation[rank as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identity_before_first_epoch() {
        let mut d = DriftState::new(100, 1_000, 10);
        let mut rng = SmallRng::seed_from_u64(1);
        for r in 0..100u64 {
            assert_eq!(d.map(r, 0, &mut rng), r);
        }
        assert_eq!(d.epochs(), 0);
    }

    #[test]
    fn epoch_advances_with_time() {
        let mut d = DriftState::new(1_000, 1_000, 100);
        let mut rng = SmallRng::seed_from_u64(2);
        let _ = d.map(0, 5_500, &mut rng); // crosses epochs at 1s..5s
        assert_eq!(d.epochs(), 5);
    }

    #[test]
    fn head_key_changes_after_drift() {
        let mut d = DriftState::new(10_000, 1_000, 50);
        let mut rng = SmallRng::seed_from_u64(3);
        let before = d.map(0, 0, &mut rng);
        let after = d.map(0, 10_000, &mut rng);
        // With 50 churned ranks among 10k keys, rank 0 keeps its key across
        // 10 epochs with probability < 1e-10 under this seed policy.
        assert_ne!(before, after);
    }

    #[test]
    fn permutation_stays_a_bijection() {
        let mut d = DriftState::new(500, 10, 100);
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = d.map(0, 10_000, &mut rng); // many epochs
        let mut seen = vec![false; 500];
        for r in 0..500u64 {
            let k = d.key_at_rank(r) as usize;
            assert!(!seen[k], "key {k} appears twice");
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
