//! Popularity drift for the cashtag profile (Q3).
//!
//! "Popular cash tags change from week to week. This dataset allows to study
//! the effect of shift of skew in the key distribution" (§V-A). We keep the
//! *shape* of the rank distribution fixed (a fitted Zipf) and periodically
//! re-assign which concrete key occupies each head rank: every drift epoch,
//! each of the top `churn_top` ranks swaps its key with a uniformly random
//! rank. Head keys thus rise and fall over time exactly like trending ticker
//! symbols, while the instantaneous skew stays constant.

use rand::rngs::SmallRng;
use rand::Rng;

/// Evolving rank → key permutation.
#[derive(Debug, Clone)]
pub struct DriftState {
    permutation: Vec<u32>,
    period_ms: u64,
    churn_top: usize,
    next_epoch_ms: u64,
    epochs: u64,
}

impl DriftState {
    /// Identity permutation over `k` keys that churns its top `churn_top`
    /// ranks every `period_ms` of stream time.
    ///
    /// # Panics
    /// Panics if `k` exceeds `u32::MAX` or `period_ms == 0`.
    pub fn new(k: u64, period_ms: u64, churn_top: usize) -> Self {
        assert!(k <= u64::from(u32::MAX), "drift supports at most 2^32 keys");
        assert!(period_ms > 0, "drift period must be positive");
        Self {
            permutation: (0..k as u32).collect(),
            period_ms,
            churn_top: churn_top.min(k as usize),
            next_epoch_ms: period_ms,
            epochs: 0,
        }
    }

    /// Map a sampled rank to the key currently occupying it, advancing
    /// drift epochs up to `ts_ms` first.
    #[inline]
    pub fn map(&mut self, rank: u64, ts_ms: u64, rng: &mut SmallRng) -> u64 {
        while ts_ms >= self.next_epoch_ms {
            self.advance_epoch(rng);
        }
        u64::from(self.permutation[rank as usize])
    }

    fn advance_epoch(&mut self, rng: &mut SmallRng) {
        let k = self.permutation.len();
        for rank in 0..self.churn_top {
            let other = rng.random_range(0..k);
            self.permutation.swap(rank, other);
        }
        self.next_epoch_ms += self.period_ms;
        self.epochs += 1;
    }

    /// Number of epochs elapsed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Key currently occupying `rank` (read-only; no epoch advance).
    pub fn key_at_rank(&self, rank: u64) -> u64 {
        u64::from(self.permutation[rank as usize])
    }
}

/// Piecewise-constant per-worker *speed* drift over stream time.
///
/// Where [`DriftState`] shifts the key distribution (Q3), `SpeedDrift`
/// shifts the *cluster*: each phase assigns every worker a relative speed
/// factor (1.0 = nominal), and a worker's emulated service time scales by
/// `1/speed`. This is the driver for the capacity-drift experiments
/// (`fig_drift`): a mid-run 4× slowdown of one worker is a two-phase
/// schedule `[1,1,…] → [0.25,1,…]`. Deterministic — no RNG — so both the
/// simulator and the engine replay the same schedule exactly.
#[derive(Debug, Clone)]
pub struct SpeedDrift {
    /// `(start_ms, per-worker speed factors)`, ascending by `start_ms`;
    /// the first phase starts at 0.
    phases: Vec<(u64, Vec<f64>)>,
}

impl SpeedDrift {
    /// A schedule opening with `initial` per-worker speed factors at t=0.
    ///
    /// # Panics
    /// Panics if `initial` is empty or any factor is non-finite or ≤ 0.
    pub fn new(initial: Vec<f64>) -> Self {
        assert!(!initial.is_empty(), "speed drift needs at least one worker");
        assert!(
            initial.iter().all(|s| s.is_finite() && *s > 0.0),
            "speed factors must be positive and finite"
        );
        Self { phases: vec![(0, initial)] }
    }

    /// Uniform nominal speed for `n` workers.
    pub fn uniform(n: usize) -> Self {
        Self::new(vec![1.0; n])
    }

    /// Append a phase: from `at_ms` on, the workers run at `speeds`.
    ///
    /// # Panics
    /// Panics if `at_ms` does not strictly ascend, `speeds.len()` differs
    /// from the worker count, or any factor is non-positive/non-finite.
    pub fn with_step(mut self, at_ms: u64, speeds: Vec<f64>) -> Self {
        let (last_ms, last) = &self.phases[self.phases.len() - 1];
        assert!(at_ms > *last_ms, "phase starts must strictly ascend");
        assert_eq!(speeds.len(), last.len(), "one speed factor per worker");
        assert!(
            speeds.iter().all(|s| s.is_finite() && *s > 0.0),
            "speed factors must be positive and finite"
        );
        self.phases.push((at_ms, speeds));
        self
    }

    /// Number of workers covered.
    pub fn n(&self) -> usize {
        self.phases[0].1.len()
    }

    /// Number of phases (≥ 1).
    pub fn phases(&self) -> usize {
        self.phases.len()
    }

    /// Index of the phase active at `ts_ms`.
    pub fn phase_at(&self, ts_ms: u64) -> usize {
        self.phases.iter().rposition(|(start, _)| *start <= ts_ms).unwrap_or(0)
    }

    /// Speed factor of worker `w` at `ts_ms`.
    pub fn speed(&self, w: usize, ts_ms: u64) -> f64 {
        self.phases[self.phase_at(ts_ms)].1.get(w).copied().unwrap_or(1.0)
    }

    /// The full speed vector of phase `i`.
    pub fn speeds_of_phase(&self, i: usize) -> &[f64] {
        &self.phases[i.min(self.phases.len() - 1)].1
    }

    /// Whether every phase runs every worker at the same speed (a uniform
    /// schedule must leave runs byte-identical to no schedule at all).
    pub fn is_uniform(&self) -> bool {
        self.phases.iter().all(|(_, speeds)| {
            speeds.windows(2).all(|p| (p[0] - p[1]).abs() <= f64::EPSILON * p[0].abs())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn speed_drift_phases_switch_at_their_start() {
        let d = SpeedDrift::uniform(4).with_step(500, vec![0.25, 1.0, 1.0, 1.0]);
        assert_eq!(d.phases(), 2);
        assert_eq!(d.phase_at(0), 0);
        assert_eq!(d.phase_at(499), 0);
        assert_eq!(d.phase_at(500), 1);
        assert_eq!(d.speed(0, 499), 1.0);
        assert_eq!(d.speed(0, 500), 0.25);
        assert_eq!(d.speed(1, 9_999), 1.0);
        assert!(!d.is_uniform());
    }

    #[test]
    fn uniform_schedule_is_flagged_uniform() {
        assert!(SpeedDrift::uniform(8).is_uniform());
        assert!(SpeedDrift::uniform(8).with_step(100, vec![2.0; 8]).is_uniform());
        assert!(!SpeedDrift::new(vec![1.0, 2.0]).is_uniform());
    }

    #[test]
    #[should_panic(expected = "strictly ascend")]
    fn phase_starts_must_ascend() {
        let _ = SpeedDrift::uniform(2).with_step(100, vec![1.0; 2]).with_step(100, vec![1.0; 2]);
    }

    #[test]
    fn identity_before_first_epoch() {
        let mut d = DriftState::new(100, 1_000, 10);
        let mut rng = SmallRng::seed_from_u64(1);
        for r in 0..100u64 {
            assert_eq!(d.map(r, 0, &mut rng), r);
        }
        assert_eq!(d.epochs(), 0);
    }

    #[test]
    fn epoch_advances_with_time() {
        let mut d = DriftState::new(1_000, 1_000, 100);
        let mut rng = SmallRng::seed_from_u64(2);
        let _ = d.map(0, 5_500, &mut rng); // crosses epochs at 1s..5s
        assert_eq!(d.epochs(), 5);
    }

    #[test]
    fn head_key_changes_after_drift() {
        let mut d = DriftState::new(10_000, 1_000, 50);
        let mut rng = SmallRng::seed_from_u64(3);
        let before = d.map(0, 0, &mut rng);
        let after = d.map(0, 10_000, &mut rng);
        // With 50 churned ranks among 10k keys, rank 0 keeps its key across
        // 10 epochs with probability < 1e-10 under this seed policy.
        assert_ne!(before, after);
    }

    #[test]
    fn permutation_stays_a_bijection() {
        let mut d = DriftState::new(500, 10, 100);
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = d.map(0, 10_000, &mut rng); // many epochs
        let mut seen = vec![false; 500];
        for r in 0..500u64 {
            let k = d.key_at_rank(r) as usize;
            assert!(!seen[k], "key {k} appears twice");
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
