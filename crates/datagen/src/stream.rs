//! Stream message model and the buildable stream specification.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::alias::AliasTable;
use crate::drift::DriftState;
use crate::graph::{GraphParams, GraphState};
use crate::zipf::{ZipfRejection, ZipfTable};

/// One stream message `⟨t, k, v⟩` (§II of the paper). The payload `v` is
/// irrelevant to partitioning and omitted; `source_key` carries the
/// *secondary* key used to assign messages to source PEIs in the Q3 graph
/// experiments (the source vertex of an edge). For non-graph streams it
/// equals `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Timestamp in simulated milliseconds since stream start.
    pub ts_ms: u64,
    /// Message key (`k`): what the worker-side partitioner routes on.
    pub key: u64,
    /// Secondary key for source assignment (graph: source vertex).
    pub source_key: u64,
}

/// The sampling backend of a built stream (cheap to clone; large tables are
/// shared via `Arc`).
#[derive(Debug, Clone)]
pub(crate) enum Sampler {
    /// Zipf via CDF table (small/medium key spaces).
    ZipfTable(Arc<ZipfTable>),
    /// Zipf via rejection-inversion (huge key spaces, O(1) memory).
    ZipfRejection(ZipfRejection),
    /// Categorical via alias table (log-normal profiles).
    Alias(Arc<AliasTable>),
    /// Zipf table behind a drifting rank→key permutation (cashtags).
    Drift { table: Arc<ZipfTable>, drift: DriftState },
    /// Directed preferential-attachment graph edges.
    Graph(GraphParams),
}

/// A fully parameterized, reusable stream description.
///
/// Building a spec performs the expensive one-time work (fitting the Zipf
/// exponent to the target `p1`, building CDF/alias tables); iterating it is
/// cheap and deterministic in the iteration seed, so experiment sweeps build
/// once and iterate many times.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    pub(crate) name: String,
    pub(crate) messages: u64,
    pub(crate) key_space: u64,
    pub(crate) duration_ms: u64,
    pub(crate) sampler: Sampler,
}

impl StreamSpec {
    /// Dataset name (e.g. `"WP"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of messages the stream will yield.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Upper bound on distinct key ids (the key space `K`; graphs: vertex
    /// id space).
    pub fn key_space(&self) -> u64 {
        self.key_space
    }

    /// Total simulated duration in milliseconds; message `i` is stamped
    /// `i * duration / messages`.
    pub fn duration_ms(&self) -> u64 {
        self.duration_ms
    }

    /// A deterministic iterator over the stream for the given seed.
    pub fn iter(&self, seed: u64) -> StreamIter {
        StreamIter {
            rng: SmallRng::seed_from_u64(seed ^ 0x5075_9f1a_3c1e_88d1),
            sampler: self.sampler.clone(),
            emitted: 0,
            messages: self.messages,
            duration_ms: self.duration_ms,
            graph_state: match &self.sampler {
                Sampler::Graph(p) => Some(GraphState::new(p)),
                _ => None,
            },
        }
    }

    /// Exact per-key probabilities when the backend knows them
    /// (Zipf table / alias / drift); `None` for rejection and graph
    /// backends. Used by the Off-Greedy baseline and by Table I.
    pub fn exact_probabilities(&self) -> Option<Vec<f64>> {
        match &self.sampler {
            Sampler::ZipfTable(t) => Some(t.probabilities()),
            Sampler::Drift { table, .. } => Some(table.probabilities()),
            Sampler::Alias(a) => Some(a.probabilities().to_vec()),
            Sampler::ZipfRejection(_) | Sampler::Graph(_) => None,
        }
    }

    /// Probability of the most frequent key, when known exactly.
    pub fn p1(&self) -> Option<f64> {
        match &self.sampler {
            Sampler::ZipfTable(t) => Some(t.p1()),
            Sampler::Drift { table, .. } => Some(table.p1()),
            Sampler::Alias(a) => Some(a.p1()),
            Sampler::ZipfRejection(z) => Some(z.p1()),
            Sampler::Graph(_) => None,
        }
    }
}

/// Iterator yielding the messages of a [`StreamSpec`].
#[derive(Debug, Clone)]
pub struct StreamIter {
    rng: SmallRng,
    sampler: Sampler,
    emitted: u64,
    messages: u64,
    duration_ms: u64,
    graph_state: Option<GraphState>,
}

impl Iterator for StreamIter {
    type Item = Message;

    #[inline]
    fn next(&mut self) -> Option<Message> {
        if self.emitted >= self.messages {
            return None;
        }
        let ts_ms = if self.messages <= 1 {
            0
        } else {
            // Spread timestamps uniformly over the simulated duration.
            (self.emitted as u128 * self.duration_ms as u128 / self.messages as u128) as u64
        };
        let (key, source_key) = match &mut self.sampler {
            Sampler::ZipfTable(t) => {
                let k = t.sample(&mut self.rng);
                (k, k)
            }
            Sampler::ZipfRejection(z) => {
                let k = z.sample(&mut self.rng);
                (k, k)
            }
            Sampler::Alias(a) => {
                let k = a.sample(&mut self.rng);
                (k, k)
            }
            Sampler::Drift { table, drift } => {
                let rank = table.sample(&mut self.rng);
                let k = drift.map(rank, ts_ms, &mut self.rng);
                (k, k)
            }
            Sampler::Graph(_) => {
                let state = self.graph_state.as_mut().expect("graph state present");
                let (src, dst) = state.next_edge(&mut self.rng);
                // The Q3 schema: "the source PE inverts the edge" — messages
                // are keyed by destination vertex at the workers and by
                // source vertex at the sources.
                (dst, src)
            }
        };
        self.emitted += 1;
        Some(Message { ts_ms, key, source_key })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = (self.messages - self.emitted) as usize;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for StreamIter {}

#[cfg(test)]
mod tests {
    use crate::profiles::DatasetProfile;

    #[test]
    fn timestamps_are_monotone_and_span_duration() {
        let spec = DatasetProfile::lognormal2().with_messages(1_000).build(1);
        let msgs: Vec<_> = spec.iter(2).collect();
        assert_eq!(msgs.len(), 1_000);
        for w in msgs.windows(2) {
            assert!(w[0].ts_ms <= w[1].ts_ms);
        }
        assert_eq!(msgs[0].ts_ms, 0);
        assert!(msgs.last().expect("non-empty").ts_ms < spec.duration_ms());
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let spec = DatasetProfile::lognormal1().with_messages(5_000).build(3);
        let a: Vec<_> = spec.iter(10).collect();
        let b: Vec<_> = spec.iter(10).collect();
        let c: Vec<_> = spec.iter(11).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn keys_stay_in_key_space() {
        let spec = DatasetProfile::cashtags().with_messages(20_000).build(4);
        for m in spec.iter(5) {
            assert!(m.key < spec.key_space(), "key {} out of range", m.key);
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let spec = DatasetProfile::lognormal2().with_messages(123).build(0);
        let mut it = spec.iter(0);
        assert_eq!(it.len(), 123);
        it.next();
        assert_eq!(it.len(), 122);
    }
}
