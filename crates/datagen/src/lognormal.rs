//! Log-normal key popularity (the paper's LN1/LN2 synthetic datasets).
//!
//! "We also generate two synthetic datasets with keys following a log-normal
//! distribution, a commonly used heavy-tailed skewed distribution. The
//! parameters of the distribution (µ1=1.789, σ1=2.366; µ2=2.245, σ2=1.133)
//! come from an analysis of Orkut" (§V-A). We draw one log-normal weight per
//! key, normalize, and sample messages from the resulting categorical
//! distribution via the alias method.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::alias::AliasTable;

/// Draw a standard normal via the Box–Muller transform.
///
/// (The `rand` crate deliberately ships only uniform sources; distributions
/// live in `rand_distr`, which is outside our dependency budget — and the
/// transform is four lines.)
#[inline]
pub fn standard_normal(rng: &mut SmallRng) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One sample of `LogNormal(mu, sigma)`.
#[inline]
pub fn log_normal(rng: &mut SmallRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Generate `k` log-normal key weights, sorted descending so that key id 0
/// is the most popular (rank order matches the Zipf backends).
pub fn weights(k: u64, mu: f64, sigma: f64, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1f83_d9ab_fb41_bd6b);
    let mut w: Vec<f64> = (0..k).map(|_| log_normal(&mut rng, mu, sigma)).collect();
    w.sort_unstable_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
    w
}

/// Build an alias table over log-normal key weights.
pub fn alias_table(k: u64, mu: f64, sigma: f64, seed: u64) -> AliasTable {
    AliasTable::new(&weights(k, mu, sigma, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn log_normal_median_is_exp_mu() {
        let mut rng = SmallRng::seed_from_u64(8);
        let (mu, sigma) = (2.0, 0.5);
        let mut xs: Vec<f64> = (0..100_001).map(|_| log_normal(&mut rng, mu, sigma)).collect();
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = xs[50_000];
        assert!(
            (median - mu.exp()).abs() / mu.exp() < 0.05,
            "median = {median}, expected ≈ {}",
            mu.exp()
        );
    }

    #[test]
    fn weights_are_sorted_and_positive() {
        let w = weights(1_000, 1.789, 2.366, 42);
        assert_eq!(w.len(), 1_000);
        assert!(w.iter().all(|&x| x > 0.0));
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn orkut_parameters_are_heavily_skewed() {
        // With σ = 2.366 the head key should dominate: p1 in the tens of
        // percent for 16k keys (the paper reports 14.71%).
        let t = alias_table(16_000, 1.789, 2.366, 1);
        assert!(t.p1() > 0.02, "p1 = {}", t.p1());
        // And the milder LN2 parameters give a lighter head.
        let t2 = alias_table(1_100, 2.245, 1.133, 1);
        assert!(t2.p1() < t.p1());
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(weights(100, 1.0, 1.0, 5), weights(100, 1.0, 1.0, 5));
        assert_ne!(weights(100, 1.0, 1.0, 5), weights(100, 1.0, 1.0, 6));
    }
}
