//! Pseudo-text generation for the word-count application (Q4).
//!
//! The engine experiments route on *word strings* (as the paper's Storm
//! deployment does), not on integer ids. [`word_for_rank`] maps a Zipf rank
//! to a deterministic, unique, pronounceable pseudo-word — rank 0 is the
//! "the" of the vocabulary — and [`SentenceGen`] emits sentences whose word
//! frequencies follow the fitted Zipf law.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::ZipfTable;

const CONSONANTS: [char; 14] =
    ['b', 'd', 'f', 'g', 'k', 'l', 'm', 'n', 'p', 'r', 's', 't', 'v', 'z'];
const VOWELS: [char; 5] = ['a', 'e', 'i', 'o', 'u'];

/// Longest pseudo-word in bytes: a `u64` rank is at most 11 base-70
/// syllables of 2 ASCII bytes each.
pub const MAX_WORD_LEN: usize = 22;

/// Deterministic unique pseudo-word for a vocabulary rank: the rank is
/// written in base 70 where each "digit" is a consonant-vowel syllable.
pub fn word_for_rank(rank: u64) -> String {
    let (buf, len) = word_bytes_for_rank(rank);
    String::from_utf8(buf[..len].to_vec()).expect("syllables are ASCII")
}

/// [`word_for_rank`] without the heap allocation: writes the syllables into
/// a stack buffer and returns `(buffer, length)`. Hot spouts use this to
/// build tuples whose keys stay inline (every word fits a `TupleKey`'s
/// inline capacity, so the emit path allocates nothing per message).
pub fn word_bytes_for_rank(rank: u64) -> ([u8; MAX_WORD_LEN], usize) {
    let base = (CONSONANTS.len() * VOWELS.len()) as u64; // 70 syllables
    let mut buf = [0u8; MAX_WORD_LEN];
    let mut len = 0;
    let mut r = rank;
    loop {
        let digit = (r % base) as usize;
        buf[len] = CONSONANTS[digit / VOWELS.len()] as u8;
        buf[len + 1] = VOWELS[digit % VOWELS.len()] as u8;
        len += 2;
        r /= base;
        if r == 0 {
            break;
        }
    }
    (buf, len)
}

/// Zipf-distributed sentence generator.
#[derive(Debug, Clone)]
pub struct SentenceGen {
    zipf: ZipfTable,
    rng: SmallRng,
    min_words: usize,
    max_words: usize,
}

impl SentenceGen {
    /// Vocabulary of `vocab` words with head probability `p1`, sentences of
    /// `min_words..=max_words` words.
    pub fn new(vocab: u64, p1: f64, min_words: usize, max_words: usize, seed: u64) -> Self {
        assert!(min_words >= 1 && max_words >= min_words);
        Self {
            zipf: ZipfTable::with_p1(vocab, p1),
            rng: SmallRng::seed_from_u64(seed ^ 0x243f_6a88_85a3_08d3),
            min_words,
            max_words,
        }
    }

    /// Draw one word.
    pub fn next_word(&mut self) -> String {
        word_for_rank(self.zipf.sample(&mut self.rng))
    }

    /// Draw a sentence (space-separated words).
    pub fn next_sentence(&mut self) -> String {
        let n = self.rng.random_range(self.min_words..=self.max_words);
        let mut s = String::new();
        for i in 0..n {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(&self.next_word());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_unique_per_rank() {
        let mut seen = HashSet::new();
        for r in 0..10_000u64 {
            assert!(seen.insert(word_for_rank(r)), "collision at rank {r}");
        }
    }

    #[test]
    fn words_are_short_for_small_ranks() {
        assert_eq!(word_for_rank(0).len(), 2);
        assert!(word_for_rank(69).len() == 2);
        assert!(word_for_rank(70).len() == 4);
    }

    #[test]
    fn word_bytes_match_the_string_form_and_fit_the_buffer() {
        for r in [0u64, 1, 69, 70, 4_899, 12_345_678, u64::MAX] {
            let (buf, len) = word_bytes_for_rank(r);
            assert!(len <= MAX_WORD_LEN);
            assert_eq!(&buf[..len], word_for_rank(r).as_bytes());
        }
    }

    #[test]
    fn sentences_respect_length_bounds() {
        let mut g = SentenceGen::new(1_000, 0.1, 3, 8, 1);
        for _ in 0..100 {
            let s = g.next_sentence();
            let n = s.split(' ').count();
            assert!((3..=8).contains(&n), "sentence had {n} words");
        }
    }

    #[test]
    fn head_word_dominates() {
        let mut g = SentenceGen::new(100, 0.3, 1, 1, 2);
        let head = word_for_rank(0);
        let hits = (0..10_000).filter(|_| g.next_sentence() == head).count();
        let p = hits as f64 / 10_000.0;
        assert!((p - 0.3).abs() < 0.03, "head frequency = {p}");
    }
}
