//! Zipf key distributions.
//!
//! The web workloads of the paper (Wikipedia page visits, Twitter words)
//! "follow a Zipf law where few words are extremely common while a large
//! majority are rare" (§II). Since the paper characterizes each dataset by
//! its key count `K` and head probability `p1` (Table I), we *fit* the Zipf
//! exponent `s` so that `p1 = 1 / H_{K,s}` matches the published value, then
//! sample ranks from `Zipf(K, s)`.
//!
//! Two samplers are provided:
//! * [`ZipfTable`] — inverse-CDF sampling over a precomputed table;
//!   O(log K) per sample, 8 bytes/key. Used for `K` up to a few million.
//! * [`ZipfRejection`] — Hörmann & Derflinger rejection-inversion;
//!   O(1) memory and amortized O(1) time, for the full-scale Twitter
//!   profile (`K = 31M`).
//!
//! Sampled values are 0-based ranks (0 = most frequent key).

use rand::rngs::SmallRng;
use rand::Rng;

/// Number of terms summed exactly by [`harmonic`] before switching to the
/// integral tail approximation.
const HARMONIC_EXACT_TERMS: u64 = 200_000;

/// Generalized harmonic number `H_{k,s} = Σ_{i=1..k} i^{-s}`.
///
/// The first 200k terms are summed exactly (small terms first, to minimize
/// floating-point error); beyond that the tail is the midpoint-rule
/// integral `∫ x^{-s} dx` over `[N+½, k+½]`, whose relative error at these
/// `N` is far below the `1e-6` tolerance of the exponent fit. This keeps
/// paper-scale fits (`k = 31M`) fast.
pub fn harmonic(k: u64, s: f64) -> f64 {
    let exact = k.min(HARMONIC_EXACT_TERMS);
    let mut sum = 0.0;
    let mut i = exact;
    while i >= 1 {
        sum += (i as f64).powf(-s);
        i -= 1;
    }
    if k > exact {
        let (a, b) = (exact as f64 + 0.5, k as f64 + 0.5);
        sum += if (s - 1.0).abs() < 1e-12 {
            (b / a).ln()
        } else {
            (b.powf(1.0 - s) - a.powf(1.0 - s)) / (1.0 - s)
        };
    }
    sum
}

/// Fit the Zipf exponent so that the most frequent of `k` keys has
/// probability `p1`, i.e. solve `1 / H_{k,s} = p1` for `s` by bisection.
///
/// # Panics
/// Panics if `p1` is not attainable for this `k` (must satisfy
/// `1/k < p1 < 1`).
pub fn fit_exponent(k: u64, p1: f64) -> f64 {
    assert!(k >= 2, "need at least two keys");
    assert!(p1 > 1.0 / k as f64 && p1 < 1.0, "p1 = {p1} not attainable with k = {k} keys");
    // p1(s) = 1/H_{k,s} is strictly increasing in s: at s=0, H=k (p1=1/k);
    // as s→∞, H→1 (p1→1).
    let (mut lo, mut hi) = (0.0f64, 16.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if 1.0 / harmonic(k, mid) < p1 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Inverse-CDF Zipf sampler over ranks `0..k`.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
    s: f64,
}

impl ZipfTable {
    /// Build the CDF table for `Zipf(k, s)`.
    pub fn new(k: u64, s: f64) -> Self {
        assert!(k >= 1);
        let h = harmonic(k, s);
        let mut cdf = Vec::with_capacity(k as usize);
        let mut acc = 0.0;
        for i in 1..=k {
            acc += (i as f64).powf(-s) / h;
            cdf.push(acc);
        }
        // Guard against accumulated rounding: the last entry must cover 1.0.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf, s }
    }

    /// Build by fitting the exponent to a target head probability. A `p1`
    /// at (or float-rounding-below) the uniform floor `1/k` degenerates to
    /// the exponent-0 uniform distribution, matching the `z = 0` edge of
    /// the heterogeneous-cluster sweeps.
    pub fn with_p1(k: u64, p1: f64) -> Self {
        if p1 <= (1.0 + 1e-9) / k as f64 {
            return Self::new(k, 0.0);
        }
        Self::new(k, fit_exponent(k, p1))
    }

    /// The exponent in use.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Number of keys.
    pub fn k(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Probability of rank 0 (the head key).
    pub fn p1(&self) -> f64 {
        self.cdf[0]
    }

    /// Exact per-rank probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        let mut probs = Vec::with_capacity(self.cdf.len());
        let mut prev = 0.0;
        for &c in &self.cdf {
            probs.push(c - prev);
            prev = c;
        }
        probs
    }

    /// Sample a rank in `0..k`.
    #[inline]
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c <= u) as u64
    }
}

/// Rejection-inversion sampler for `Zipf(k, s)` (Hörmann & Derflinger 1996),
/// after the Apache Commons Math `RejectionInversionZipfSampler`.
///
/// Returns 0-based ranks. Memory is O(1); useful when the CDF table would
/// not fit (full-scale Twitter: 31M keys).
#[derive(Debug, Clone, Copy)]
pub struct ZipfRejection {
    k: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

impl ZipfRejection {
    /// Create a sampler for `Zipf(k, s)` with `s > 0`.
    pub fn new(k: u64, s: f64) -> Self {
        assert!(k >= 1);
        assert!(s > 0.0, "rejection-inversion requires a positive exponent");
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(k as f64 + 0.5, s);
        let threshold = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Self { k, s, h_x1, h_n, threshold }
    }

    /// The exponent in use.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Probability of the head key.
    pub fn p1(&self) -> f64 {
        1.0 / harmonic(self.k, self.s)
    }

    /// Sample a rank in `0..k`.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        loop {
            let u: f64 = self.h_n + rng.random::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k64 = (x + 0.5) as u64;
            let k64 = k64.clamp(1, self.k);
            if k64 as f64 - x <= self.threshold
                || u >= h_integral(k64 as f64 + 0.5, self.s) - h(k64 as f64, self.s)
            {
                return k64 - 1; // to 0-based rank
            }
        }
    }
}

/// `H(x) = ∫ x^-s dx`, the antiderivative used by rejection-inversion,
/// normalized so that `H(1) = 0`: `(x^{1-s} − 1)/(1−s)` (or `ln x` at s=1).
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^-s`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // Clamp guard against rounding below the domain of the inverse.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `log1p(x)/x`, continuous at 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `expm1(x)/x`, continuous at 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn harmonic_known_values() {
        assert!((harmonic(1, 1.0) - 1.0).abs() < 1e-12);
        assert!((harmonic(3, 1.0) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
        assert!((harmonic(4, 0.0) - 4.0).abs() < 1e-12);
        assert!((harmonic(10, 2.0) - 1.549_767_731_166_540_7).abs() < 1e-12);
    }

    #[test]
    fn fit_exponent_hits_target_p1() {
        for (k, p1) in [(2_900u64, 0.0329), (16_000, 0.1471), (290_000, 0.0932)] {
            let s = fit_exponent(k, p1);
            let achieved = 1.0 / harmonic(k, s);
            assert!((achieved - p1).abs() / p1 < 1e-6, "k={k} target={p1} achieved={achieved}");
        }
    }

    #[test]
    #[should_panic(expected = "not attainable")]
    fn unattainable_p1_panics() {
        // p1 below uniform 1/k is impossible.
        let _ = fit_exponent(10, 0.05);
    }

    #[test]
    fn table_head_probability_is_p1() {
        let t = ZipfTable::with_p1(1_000, 0.10);
        assert!((t.p1() - 0.10).abs() < 1e-6);
        let probs = t.probabilities();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Monotone non-increasing.
        for w in probs.windows(2) {
            assert!(w[0] >= w[1] - 1e-15);
        }
    }

    #[test]
    fn table_empirical_matches_exact() {
        let t = ZipfTable::new(100, 1.1);
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = vec![0u64; 100];
        for _ in 0..n {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        let probs = t.probabilities();
        // Head keys should match within a few percent.
        for rank in 0..5 {
            let emp = counts[rank] as f64 / n as f64;
            let exact = probs[rank];
            assert!(
                (emp - exact).abs() / exact < 0.05,
                "rank {rank}: empirical {emp} vs exact {exact}"
            );
        }
    }

    #[test]
    fn rejection_matches_table_distribution() {
        let k = 1_000u64;
        let s = 1.2;
        let table = ZipfTable::new(k, s);
        let rej = ZipfRejection::new(k, s);
        let mut rng_a = SmallRng::seed_from_u64(1);
        let mut rng_b = SmallRng::seed_from_u64(2);
        let n = 300_000;
        let mut ca = vec![0u64; k as usize];
        let mut cb = vec![0u64; k as usize];
        for _ in 0..n {
            ca[table.sample(&mut rng_a) as usize] += 1;
            cb[rej.sample(&mut rng_b) as usize] += 1;
        }
        // Compare head mass and total-variation distance between the two
        // empirical distributions.
        let tv: f64 = ca
            .iter()
            .zip(&cb)
            .map(|(&a, &b)| ((a as f64 - b as f64) / n as f64).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.02, "total variation too high: {tv}");
        for rank in 0..3 {
            let ea = ca[rank] as f64 / n as f64;
            let eb = cb[rank] as f64 / n as f64;
            assert!((ea - eb).abs() / ea < 0.05, "rank {rank}: {ea} vs {eb}");
        }
    }

    #[test]
    fn rejection_covers_full_range_without_out_of_bounds() {
        let rej = ZipfRejection::new(50, 0.8);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen_max = 0;
        for _ in 0..100_000 {
            let r = rej.sample(&mut rng);
            assert!(r < 50);
            seen_max = seen_max.max(r);
        }
        // With s=0.8 and 100k draws every rank is hit with overwhelming prob.
        assert_eq!(seen_max, 49);
    }

    #[test]
    fn single_key_degenerate_cases() {
        let t = ZipfTable::new(1, 1.5);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.p1(), 1.0);
    }
}
