//! Load-shedding policies: what happens to a tuple the ingress layer
//! refuses to admit.
//!
//! The engine decides *when* to shed (token bucket empty, in-flight limit
//! hit, downstream depth over the watermark); the policy decides *what
//! happens to the refused tuple*. [`HardDrop`] discards it — cheapest,
//! loses information. The *degrade* policy (in `pkg-agg`, which owns the
//! sketch types) absorbs the tuple into a Space-Saving summary and returns
//! the surviving heavy-hitter counts through [`ShedPolicy::drain`] at
//! end-of-stream, so aggregate answers keep sketch-level accuracy for the
//! head of the distribution even though individual tuples were refused.

/// What a [`ShedPolicy`] did with a refused tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The tuple is gone; its contribution is lost.
    Dropped,
    /// The tuple was folded into a degraded (sketch-accuracy) summary that
    /// [`ShedPolicy::drain`] will surface at end-of-stream.
    Absorbed,
}

/// A policy consulted once per refused tuple.
///
/// Implementations must be deterministic in their input sequence: the
/// ingress layer guarantees reproducible *decision* sequences (see
/// `pkg-ingress::bucket`), and a policy must not break that downstream.
pub trait ShedPolicy: Send {
    /// Handle one refused tuple (key bytes, the engine's hashed key id,
    /// and the tuple's value).
    fn shed(&mut self, key: &[u8], key_id: u64, value: i64) -> Shed;

    /// Surface whatever the policy retained, as `(key, value)` pairs to be
    /// re-injected into the stream at end-of-stream. Called once, after
    /// the source is exhausted; the default retains nothing.
    fn drain(&mut self) -> Vec<(Vec<u8>, i64)> {
        Vec::new()
    }
}

/// The baseline policy: every refused tuple is discarded.
#[derive(Debug, Default, Clone, Copy)]
pub struct HardDrop;

impl ShedPolicy for HardDrop {
    fn shed(&mut self, _key: &[u8], _key_id: u64, _value: i64) -> Shed {
        Shed::Dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_drop_drops_and_drains_nothing() {
        let mut p = HardDrop;
        assert_eq!(p.shed(b"k", 1, 7), Shed::Dropped);
        assert!(p.drain().is_empty());
    }
}
