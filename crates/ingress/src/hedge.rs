//! The hedged-dispatch wire protocol: tagging duplicated head-key tuples
//! so the aggregation stage can deduplicate them exactly.
//!
//! When the engine hedges a W-Choices head tuple (its chosen instance is
//! stalled past the latency budget), it re-issues a copy to the next
//! candidate. Both copies carry the same *hedge tag* in the otherwise
//! unused tuple payload: a reserved NUL-prefixed marker (the same
//! reserved-key convention as `pkg_engine::EPOCH_MARKER_KEY` — real
//! payloads in this codebase are either empty or a `PartialAgg` codec
//! frame, neither of which starts with NUL) followed by a little-endian
//! `u64` id unique per hedge. The aggregator treats the first copy it sees
//! as the observation and drops the second, counting it in [`audit`] so
//! drivers can assert exact conservation: duplicates dropped == hedges
//! issued.

/// Payload prefix marking a hedged tuple copy.
pub const HEDGE_TAG: &[u8] = b"\x00pkg-ingress:hedge";

/// Encode a hedge tag carrying `id` (the payload for both copies).
pub fn encode_tag(id: u64) -> Box<[u8]> {
    let mut buf = Vec::with_capacity(HEDGE_TAG.len() + 8);
    buf.extend_from_slice(HEDGE_TAG);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.into_boxed_slice()
}

/// `true` when `payload` is a hedge tag.
pub fn is_tagged(payload: &[u8]) -> bool {
    payload.len() == HEDGE_TAG.len() + 8 && payload.starts_with(HEDGE_TAG)
}

/// Decode the hedge id from a tagged payload; `None` for anything else.
pub fn decode_tag(payload: &[u8]) -> Option<u64> {
    if !is_tagged(payload) {
        return None;
    }
    let mut id = [0u8; 8];
    id.copy_from_slice(&payload[HEDGE_TAG.len()..]);
    Some(u64::from_le_bytes(id))
}

/// Process-wide hedge-duplicate audit, in the style of
/// `pkg_engine::tuple::audit`: the deduplicating aggregator lives in
/// `pkg-agg` while hedge issue counts live in engine `InstanceStats`, so a
/// crate-neutral counter is the only place both sides can meet for the
/// conservation check (duplicates dropped == hedges issued).
pub mod audit {
    use std::sync::atomic::{AtomicU64, Ordering};

    // ordering: Relaxed — statistics only (see module doc); the counter is
    // read after the run joins every worker, which synchronizes.
    static DUPLICATES: AtomicU64 = AtomicU64::new(0);

    /// Record one deduplicated (dropped) hedge copy.
    pub fn record_duplicate() {
        // ordering: Relaxed — statistics only (see module doc).
        DUPLICATES.fetch_add(1, Ordering::Relaxed);
    }

    /// Total hedge duplicates dropped process-wide. Snapshot before a run
    /// and subtract to scope the count to that run.
    pub fn duplicates() -> u64 {
        // ordering: Relaxed — statistics only (see module doc).
        DUPLICATES.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrips() {
        for id in [0u64, 1, u64::MAX, 0x0123_4567_89ab_cdef] {
            let tag = encode_tag(id);
            assert!(is_tagged(&tag));
            assert_eq!(decode_tag(&tag), Some(id));
        }
    }

    #[test]
    fn ordinary_payloads_are_not_tags() {
        assert!(!is_tagged(b""));
        assert!(!is_tagged(b"plain payload"));
        assert_eq!(decode_tag(HEDGE_TAG), None, "tag without an id is not a tag");
        let mut long = encode_tag(7).to_vec();
        long.push(0);
        assert_eq!(decode_tag(&long), None, "length is part of the frame");
    }

    #[test]
    fn duplicate_audit_counts() {
        let before = audit::duplicates();
        audit::record_duplicate();
        audit::record_duplicate();
        assert!(audit::duplicates() - before >= 2);
    }
}
