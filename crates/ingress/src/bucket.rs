//! Deterministic token-bucket admission control.
//!
//! The bucket holds up to `burst` tokens and refills at `rate_per_sec`
//! tokens per second of *observed clock*, where the clock is whatever the
//! caller passes to [`TokenBucket::admit`] — wall nanoseconds for a live
//! deployment, or a logical arrival clock for reproducible experiments.
//! All arithmetic is integer (nano-token fixed point), so the admit/deny
//! decision sequence is a pure function of `(rate_per_sec, burst)` and the
//! clock sequence: two buckets fed the same timestamps agree decision by
//! decision, on any host, under any executor.

/// Fixed-point scale: one token = `1e9` nano-tokens, so a refill of
/// `rate_per_sec` tokens/s is exactly `rate_per_sec` nano-tokens per
/// elapsed nanosecond — no division, no rounding drift.
const NANO: u128 = 1_000_000_000;

/// A token bucket admitting at most `burst` tuples instantaneously and
/// `rate_per_sec` tuples per second sustained.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: u64,
    burst: u64,
    /// Available credit in nano-tokens, capped at `burst * NANO`.
    nano_tokens: u128,
    /// Clock value at the last refill; the first `admit` call primes it.
    last_ns: u64,
    primed: bool,
}

impl TokenBucket {
    /// A bucket that starts full (`burst` tokens, minimum 1).
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        let burst = burst.max(1);
        Self {
            rate_per_sec,
            burst,
            nano_tokens: u128::from(burst) * NANO,
            last_ns: 0,
            primed: false,
        }
    }

    /// Sustained refill rate in tokens per second.
    pub fn rate_per_sec(&self) -> u64 {
        self.rate_per_sec
    }

    /// Maximum instantaneous capacity in tokens.
    pub fn burst(&self) -> u64 {
        self.burst
    }

    /// Observe the clock at `now_ns` and try to take one token. Clock
    /// regressions contribute zero elapsed time (the bucket never refunds),
    /// so an out-of-order timestamp cannot inflate the admitted rate.
    pub fn admit(&mut self, now_ns: u64) -> bool {
        if !self.primed {
            self.primed = true;
            self.last_ns = now_ns;
        }
        let elapsed = now_ns.saturating_sub(self.last_ns);
        if elapsed > 0 {
            self.last_ns = now_ns;
            let cap = u128::from(self.burst) * NANO;
            self.nano_tokens =
                (self.nano_tokens + u128::from(elapsed) * u128::from(self.rate_per_sec)).min(cap);
        }
        if self.nano_tokens >= NANO {
            self.nano_tokens -= NANO;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_admitted_then_denied() {
        let mut b = TokenBucket::new(1, 4);
        for _ in 0..4 {
            assert!(b.admit(0));
        }
        assert!(!b.admit(0), "empty bucket must deny at the same instant");
    }

    #[test]
    fn refills_at_the_configured_rate() {
        // 1000 tokens/s = one token per millisecond.
        let mut b = TokenBucket::new(1000, 1);
        assert!(b.admit(0));
        assert!(!b.admit(999_999), "999,999 ns is one nano-token short");
        assert!(b.admit(1_000_000));
        assert!(!b.admit(1_000_000));
    }

    #[test]
    fn credit_caps_at_burst() {
        let mut b = TokenBucket::new(1_000_000, 2);
        assert!(b.admit(0));
        // A huge idle gap refills to exactly `burst`, not beyond.
        for _ in 0..2 {
            assert!(b.admit(u64::MAX / 2));
        }
        assert!(!b.admit(u64::MAX / 2));
    }

    #[test]
    fn clock_regression_contributes_nothing() {
        let mut b = TokenBucket::new(1000, 1);
        assert!(b.admit(5_000_000));
        assert!(!b.admit(4_000_000), "going backwards must not refill");
        assert!(!b.admit(5_999_999), "last_ns stays at the high-water mark");
        assert!(b.admit(6_000_000));
    }

    #[test]
    fn decision_sequence_is_reproducible() {
        let clocks: Vec<u64> = (0..200).map(|i| i * 137_911 % 50_000_000).collect();
        let run =
            |mut b: TokenBucket| -> Vec<bool> { clocks.iter().map(|&t| b.admit(t)).collect() };
        let a = run(TokenBucket::new(700, 3));
        let b = run(TokenBucket::new(700, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn paced_arrivals_admit_every_other_tuple_at_2x_overload() {
        // Arrivals every 0.5 ms against a 1000/s bucket with burst 1:
        // exactly one admit per millisecond after the initial token.
        let mut b = TokenBucket::new(1000, 1);
        let decisions: Vec<bool> = (0..10).map(|i| b.admit(i * 500_000)).collect();
        assert_eq!(decisions.iter().filter(|&&d| d).count(), 5);
    }
}
