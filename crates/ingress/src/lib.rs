//! Ingress middleware primitives for overload survival.
//!
//! Heavy traffic means sustained input above capacity; without an ingress
//! layer a saturated topology just parks its producers until the spout
//! drains. This crate holds the *mechanisms* — deterministic token-bucket
//! admission ([`TokenBucket`]), a pluggable load-shedding policy
//! ([`ShedPolicy`] with the [`HardDrop`] baseline), and the hedged-dispatch
//! wire protocol ([`hedge`]) — modeled on tower's `tower-limit` /
//! `tower-load-shed` / `tower-hedge` middleware stack. The *wiring* (where
//! depth watermarks come from, which tuples get hedged) lives in
//! `pkg-engine`'s ingress module; the *degrade* policy that absorbs shed
//! tuples into a sketch lives in `pkg-agg` (it needs the sketch types).
//! This crate depends on nothing, so both can depend on it.
//!
//! Everything here is deterministic by construction: the token bucket is a
//! pure function of its (rate, burst) parameters and the observed clock
//! sequence, so replaying a run with a logical clock reproduces the exact
//! admit/shed decision sequence regardless of executor or host speed.

#![forbid(unsafe_code)]

pub mod bucket;
pub mod hedge;
pub mod shed;

pub use bucket::TokenBucket;
pub use shed::{HardDrop, Shed, ShedPolicy};
