//! A fast, non-cryptographic hasher for internal hash maps.
//!
//! This is the `FxHash` algorithm used by the Rust compiler: a simple
//! multiply-xor-rotate mix processing one word at a time. The routing tables
//! of the static-PoTC and greedy baselines perform a map lookup per message,
//! and the word-count application keeps multi-million-entry counter maps, so
//! the default SipHash is a measurable cost there. HashDoS resistance is
//! irrelevant for these internal, trusted-key maps.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash word-at-a-time hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_nearby_values() {
        let hashes: Vec<u64> = (0u64..1000).map(|v| hash_of(&v)).collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), hashes.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn byte_write_matches_chunked_words() {
        // 9 bytes exercises the partial-chunk path.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        h.write_u64(9);
        let b = h.finish();
        assert_eq!(a, b);
    }
}
