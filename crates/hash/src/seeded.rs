//! Seeded hash families: the `H_1 .. H_d : K -> [n]` of the paper's
//! chromatic balls-and-bins model (§IV).
//!
//! A [`HashFamily`] is constructed from the number of choices `d` and an
//! experiment seed; member `i` is Murmur3 seeded with a distinct per-member
//! seed derived by mixing the experiment seed with the member index. Members
//! are therefore independent in the sense required by the analysis (they are
//! drawn from a universal family), and the whole experiment is reproducible
//! from the single seed.

use crate::murmur3::{fmix64, murmur3_64, murmur3_64_u64};

/// A key that can be hashed by a seeded hash function.
///
/// Partitioners are generic over `StreamKey` so the same code routes raw
/// `u64` key identifiers (used by the simulator for speed) and byte-string
/// keys such as words or URLs (used by the engine and applications).
pub trait StreamKey {
    /// Hash the key with a Murmur3 function of the given seed.
    fn hash_seeded(&self, seed: u64) -> u64;

    /// A stable 64-bit identity for the key, used by partitioners that keep
    /// per-key routing state (static PoTC, the greedy baselines). For byte
    /// keys this is a Murmur3 fingerprint; 64-bit collisions are negligible
    /// at the paper's scale (≤ 31M keys) and merely merge two keys' routing
    /// entries if they ever occur.
    fn key_id(&self) -> u64;
}

impl StreamKey for u64 {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        murmur3_64_u64(*self, seed)
    }

    #[inline]
    fn key_id(&self) -> u64 {
        *self
    }
}

impl StreamKey for [u8] {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        murmur3_64(self, seed)
    }

    #[inline]
    fn key_id(&self) -> u64 {
        murmur3_64(self, KEY_ID_SEED)
    }
}

impl StreamKey for str {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        murmur3_64(self.as_bytes(), seed)
    }

    #[inline]
    fn key_id(&self) -> u64 {
        murmur3_64(self.as_bytes(), KEY_ID_SEED)
    }
}

impl StreamKey for &str {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        murmur3_64(self.as_bytes(), seed)
    }

    #[inline]
    fn key_id(&self) -> u64 {
        murmur3_64(self.as_bytes(), KEY_ID_SEED)
    }
}

impl StreamKey for Vec<u8> {
    #[inline]
    fn hash_seeded(&self, seed: u64) -> u64 {
        murmur3_64(self, seed)
    }

    #[inline]
    fn key_id(&self) -> u64 {
        murmur3_64(self, KEY_ID_SEED)
    }
}

/// Fixed seed used to fingerprint byte keys into [`StreamKey::key_id`]s.
const KEY_ID_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Maximum number of choices supported without heap allocation.
///
/// The paper restricts its study to `d = 2` ("using more than two choices
/// only brings constant factor improvements"), but the ablation experiments
/// sweep `d` up to this bound; larger `d` degenerates into shuffle grouping.
pub const MAX_CHOICES: usize = 16;

/// The seed of member `index` of the (conceptually unbounded) hash sequence
/// derived from `experiment_seed`.
///
/// [`HashFamily`] materializes the first `d` members of this sequence;
/// partitioners that extend a key's candidate set adaptively (the
/// D-Choices/W-Choices schemes in `pkg-core::choice`) walk the same sequence
/// past `MAX_CHOICES`, so their first two candidates coincide with plain
/// PKG's and extra candidates are reproducible from the experiment seed
/// alone.
#[inline]
pub fn member_seed(experiment_seed: u64, index: u64) -> u64 {
    // fmix64 decorrelates consecutive indices into well-spread seeds.
    fmix64(experiment_seed ^ fmix64(index.wrapping_add(0x517c_c1b7_2722_0a95)))
}

/// A family of `d` independent seeded hash functions mapping keys to
/// `[0, n)` — the candidate workers of the power-of-`d`-choices scheme.
#[derive(Debug, Clone)]
pub struct HashFamily {
    seeds: Vec<u64>,
}

impl HashFamily {
    /// Create a family of `d` hash functions derived from `experiment_seed`.
    ///
    /// # Panics
    /// Panics if `d == 0` or `d > MAX_CHOICES`.
    pub fn new(d: usize, experiment_seed: u64) -> Self {
        assert!(d >= 1, "a hash family needs at least one member");
        assert!(d <= MAX_CHOICES, "at most {MAX_CHOICES} choices supported");
        let seeds = (0..d as u64).map(|i| member_seed(experiment_seed, i)).collect();
        Self { seeds }
    }

    /// Number of members (choices) in the family.
    #[inline]
    pub fn d(&self) -> usize {
        self.seeds.len()
    }

    /// The `i`-th hash of `key`, reduced to `[0, n)`.
    #[inline]
    pub fn choice<K: StreamKey + ?Sized>(&self, i: usize, key: &K, n: usize) -> usize {
        debug_assert!(n > 0);
        (key.hash_seeded(self.seeds[i]) % n as u64) as usize
    }

    /// All `d` candidate workers for `key` among `n` workers.
    ///
    /// Note that candidates may collide (two hash functions can pick the same
    /// worker); the paper's model allows this — a key with colliding choices
    /// simply behaves like a key-grouped key.
    #[inline]
    pub fn choices<K: StreamKey + ?Sized>(&self, key: &K, n: usize) -> Vec<usize> {
        self.seeds.iter().map(|&s| (key.hash_seeded(s) % n as u64) as usize).collect()
    }

    /// Write all candidates into `out` (no allocation); returns the filled
    /// prefix. `out` must have length ≥ `d`.
    #[inline]
    pub fn choices_into<'a, K: StreamKey + ?Sized>(
        &self,
        key: &K,
        n: usize,
        out: &'a mut [usize],
    ) -> &'a [usize] {
        let d = self.seeds.len();
        debug_assert!(out.len() >= d);
        for (slot, &s) in out.iter_mut().zip(self.seeds.iter()) {
            *slot = (key.hash_seeded(s) % n as u64) as usize;
        }
        &out[..d]
    }

    /// The `i`-th hash of `key`, reduced onto a *membership subset*: the
    /// result is an element of `live`, not a raw index in `[0, n)`.
    ///
    /// When `live` is exactly `[0, n)` this computes `hash % n` — the same
    /// value as [`Self::choice`] — so elastic routing over a full live set
    /// is byte-identical to fixed-`W` routing. A surviving member keeps its
    /// identity across membership changes (ids are positions in the fixed
    /// id space); only the modulus changes with `live.len()`.
    #[inline]
    pub fn choice_in<K: StreamKey + ?Sized>(&self, i: usize, key: &K, live: &[usize]) -> usize {
        debug_assert!(!live.is_empty());
        live[(key.hash_seeded(self.seeds[i]) % live.len() as u64) as usize]
    }

    /// All `d` candidates for `key` drawn from the membership subset
    /// `live` (see [`Self::choice_in`]).
    #[inline]
    pub fn choices_in<K: StreamKey + ?Sized>(&self, key: &K, live: &[usize]) -> Vec<usize> {
        self.seeds
            .iter()
            .map(|&s| live[(key.hash_seeded(s) % live.len() as u64) as usize])
            .collect()
    }

    /// The seeds of the family members (exposed for tests and diagnostics).
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_in_full_set_matches_choice() {
        let fam = HashFamily::new(3, 11);
        let live: Vec<usize> = (0..17).collect();
        for key in 0..500u64 {
            for i in 0..3 {
                assert_eq!(fam.choice_in(i, &key, &live), fam.choice(i, &key, 17));
            }
        }
    }

    #[test]
    fn choice_in_lands_only_on_live_members() {
        let fam = HashFamily::new(2, 5);
        let live = [1usize, 4, 9, 12];
        for key in 0..500u64 {
            for w in fam.choices_in(&key, &live) {
                assert!(live.contains(&w));
            }
        }
    }

    #[test]
    fn family_members_are_distinct_functions() {
        let fam = HashFamily::new(4, 7);
        let h: Vec<u64> = fam.seeds().iter().map(|&s| 12345u64.hash_seeded(s)).collect();
        for i in 0..h.len() {
            for j in (i + 1)..h.len() {
                assert_ne!(h[i], h[j], "members {i} and {j} agree on a key");
            }
        }
    }

    #[test]
    fn choices_are_deterministic_and_in_range() {
        let fam = HashFamily::new(2, 42);
        for key in 0u64..1000 {
            let c = fam.choices(&key, 10);
            assert_eq!(c, fam.choices(&key, 10));
            assert!(c.iter().all(|&w| w < 10));
        }
    }

    #[test]
    fn choices_into_matches_choices() {
        let fam = HashFamily::new(3, 9);
        let mut buf = [0usize; MAX_CHOICES];
        for key in 0u64..100 {
            assert_eq!(fam.choices_into(&key, 7, &mut buf), fam.choices(&key, 7).as_slice());
        }
    }

    #[test]
    fn str_and_bytes_keys_agree() {
        let fam = HashFamily::new(2, 1);
        assert_eq!(fam.choices("word", 9), fam.choices("word".as_bytes(), 9));
        assert_eq!("word".key_id(), "word".as_bytes().key_id());
    }

    #[test]
    fn different_experiment_seeds_give_different_families() {
        let a = HashFamily::new(2, 1);
        let b = HashFamily::new(2, 2);
        // With 1000 keys over 100 workers the probability that every key maps
        // identically under independent families is essentially zero.
        let differs = (0u64..1000).any(|k| a.choices(&k, 100) != b.choices(&k, 100));
        assert!(differs);
    }

    #[test]
    fn two_choices_cover_most_workers() {
        // Sanity check of the §IV discussion: with n workers and many keys the
        // union of candidate sets covers ≈ (1 - 1/e^2) of the bins for d = 2.
        let fam = HashFamily::new(2, 3);
        let n = 100;
        let mut used = vec![false; n];
        for key in 0u64..(n as u64) {
            for w in fam.choices(&key, n) {
                used[w] = true;
            }
        }
        let covered = used.iter().filter(|&&u| u).count();
        // E[covered] = n(1 - (1 - 1/n)^{2n}) ≈ 86.5; allow wide slack.
        assert!((70..=97).contains(&covered), "covered = {covered}");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_choices_panics() {
        let _ = HashFamily::new(0, 0);
    }

    #[test]
    fn member_seed_extends_family_seeds() {
        // The unbounded sequence and the materialized family agree on every
        // shared index — the property adaptive schemes rely on.
        let fam = HashFamily::new(MAX_CHOICES, 77);
        for (i, &s) in fam.seeds().iter().enumerate() {
            assert_eq!(s, member_seed(77, i as u64));
        }
        // And the sequence keeps going past MAX_CHOICES with distinct seeds.
        let far: Vec<u64> = (0..100).map(|i| member_seed(77, i)).collect();
        let mut dedup = far.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), far.len(), "sequence members collide");
    }
}
