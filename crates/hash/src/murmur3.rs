//! MurmurHash3, implemented from scratch.
//!
//! Two variants of Austin Appleby's public-domain MurmurHash3 are provided:
//!
//! * [`murmur3_128`] — the x64 128-bit variant (`MurmurHash3_x64_128`). This
//!   is the variant the PKG paper refers to as "a 64-bit Murmur hash
//!   function": implementations on the JVM (e.g. Guava, as used by the
//!   reference Storm implementation) take the low 64 bits of the 128-bit
//!   digest. [`murmur3_64`] does exactly that.
//! * [`murmur3_32`] — the x86 32-bit variant, useful for compact
//!   fingerprints and as an extra member of hash families.
//!
//! Both are verified against reference test vectors in the unit tests below.

/// Low 64 bits of [`murmur3_128`]; the "64-bit Murmur hash" of the paper.
#[inline]
pub fn murmur3_64(data: &[u8], seed: u64) -> u64 {
    murmur3_128(data, seed).0
}

/// MurmurHash3 x64 128-bit digest of `data` with the given `seed`,
/// returned as `(low, high)` 64-bit halves.
pub fn murmur3_128(data: &[u8], seed: u64) -> (u64, u64) {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    let len = data.len();
    let n_blocks = len / 16;
    let mut h1 = seed;
    let mut h2 = seed;

    for block in data.chunks_exact(16) {
        let mut k1 = u64::from_le_bytes(block[..8].try_into().expect("8-byte block half"));
        let mut k2 = u64::from_le_bytes(block[8..].try_into().expect("8-byte block half"));

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    // Tail: the final 0..=15 bytes.
    let tail = &data[n_blocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for (i, &b) in tail.iter().enumerate().take(8) {
        k1 ^= u64::from(b) << (8 * i);
    }
    for (i, &b) in tail.iter().enumerate().skip(8) {
        k2 ^= u64::from(b) << (8 * (i - 8));
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// MurmurHash3 x86 32-bit digest of `data` with the given `seed`.
pub fn murmur3_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;

    let len = data.len();
    let mut h = seed;

    for block in data.chunks_exact(4) {
        let mut k = u32::from_le_bytes(block.try_into().expect("4-byte block"));
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
        h = h.rotate_left(13);
        h = h.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    let tail = &data[len - len % 4..];
    let mut k: u32 = 0;
    for (i, &b) in tail.iter().enumerate() {
        k ^= u32::from(b) << (8 * i);
    }
    if !tail.is_empty() {
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
    }

    h ^= len as u32;
    fmix32(h)
}

/// 64-bit finalization mix: forces avalanche of all bits of a 64-bit block.
#[inline]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// 32-bit finalization mix.
#[inline]
pub fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// Hash a `u64` directly (little-endian bytes) with the x64 128 variant,
/// specialized to avoid the generic tail loop. Equivalent to
/// `murmur3_64(&v.to_le_bytes(), seed)` but measurably faster on the
/// routing hot path, where every message hashes a `u64` key id `d` times.
#[inline]
pub fn murmur3_64_u64(v: u64, seed: u64) -> u64 {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;
    let mut h1 = seed;
    let mut h2 = seed;
    // Tail of exactly 8 bytes: only k1 is populated.
    let mut k1 = v;
    k1 = k1.wrapping_mul(C1);
    k1 = k1.rotate_left(31);
    k1 = k1.wrapping_mul(C2);
    h1 ^= k1;
    h1 ^= 8u64;
    h2 ^= 8u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1.wrapping_add(h2)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the canonical C++ implementation
    // (MurmurHash3.cpp / SMHasher), cross-checked against Python `mmh3`.
    #[test]
    fn x64_128_reference_vectors() {
        // mmh3.hash64(b"", seed=0, signed=False) -> (0, 0)
        assert_eq!(murmur3_128(b"", 0), (0, 0));
        // mmh3.hash64("foo") == (-2129773440516405919, 9128664383759220103)
        assert_eq!(
            murmur3_128(b"foo", 0),
            ((-2_129_773_440_516_405_919_i64) as u64, 9_128_664_383_759_220_103)
        );
        assert_eq!(murmur3_128(b"hello", 0), (0xcbd8_a7b3_41bd_9b02, 0x5b1e_906a_48ae_1d19));
        assert_eq!(murmur3_128(b"hello, world", 0), (0x342f_ac62_3a5e_bc8e, 0x4cdc_bc07_9642_414d));
        assert_eq!(
            murmur3_128(b"19 Jan 2038 at 3:14:07 AM", 0),
            (0xb89e_5988_b737_affc, 0x664f_c295_0231_b2cb)
        );
        assert_eq!(
            murmur3_128(b"The quick brown fox jumps over the lazy dog.", 0),
            (0xcd99_481f_9ee9_02c9, 0x695d_a1a3_8987_b6e7)
        );
    }

    #[test]
    fn x64_128_with_seed() {
        assert_eq!(murmur3_128(b"hello", 1), (0xa78d_dff5_adae_8d10, 0x1289_00ef_2090_0135));
        // Seeded digests must differ from unseeded ones.
        assert_ne!(murmur3_128(b"hello", 1), murmur3_128(b"hello", 0));
    }

    #[test]
    fn u64_fast_path_reference_vectors() {
        // Vectors from an independent reference implementation.
        assert_eq!(murmur3_64_u64(0, 0), 0x28df_63b7_cc57_c3cb);
        assert_eq!(murmur3_64_u64(1, 0), 0x0044_03b7_fb05_c44a);
        assert_eq!(murmur3_64_u64(42, 7), 0xc871_2ab4_da49_0dbc);
        assert_eq!(murmur3_64_u64(u64::MAX, 123), 0xcfc7_e4ec_904a_043f);
        assert_eq!(murmur3_64_u64(0xdead_beef, u64::MAX), 0xbc5e_43d0_59be_110e);
    }

    #[test]
    fn x86_32_reference_vectors() {
        // From the SMHasher verification values / mmh3.hash(..., signed=False).
        assert_eq!(murmur3_32(b"", 0), 0);
        assert_eq!(murmur3_32(b"", 1), 0x514e_28b7);
        assert_eq!(murmur3_32(b"", 0xffff_ffff), 0x81f1_6f39);
        assert_eq!(murmur3_32(b"hello", 0), 0x248b_fa47);
        assert_eq!(murmur3_32(b"hello, world", 0), 0x149b_bb7f);
        assert_eq!(murmur3_32(b"The quick brown fox jumps over the lazy dog.", 0), 0xd5c4_8bfc);
        assert_eq!(murmur3_32(b"aaaa", 0x9747_b28c), 0x5a97_808a);
        assert_eq!(murmur3_32(b"aaa", 0x9747_b28c), 0x283e_0130);
        assert_eq!(murmur3_32(b"aa", 0x9747_b28c), 0x5d21_1726);
        assert_eq!(murmur3_32(b"a", 0x9747_b28c), 0x7fa0_9ea6);
    }

    #[test]
    fn u64_fast_path_matches_byte_path() {
        for (v, seed) in [(0u64, 0u64), (1, 0), (42, 7), (u64::MAX, 123), (0xdead_beef, u64::MAX)] {
            assert_eq!(
                murmur3_64_u64(v, seed),
                murmur3_64(&v.to_le_bytes(), seed),
                "v={v} seed={seed}"
            );
        }
    }

    #[test]
    fn tail_lengths_all_covered() {
        // Exercise every tail length 0..=16 around the 16-byte block size.
        let data: Vec<u8> = (0u8..48).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            let h = murmur3_128(&data[..len], 99);
            assert!(seen.insert(h), "digest collision at prefix length {len}");
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // Chi-square sanity check: hash 100k integers into 64 buckets.
        const BUCKETS: usize = 64;
        const N: usize = 100_000;
        let mut counts = [0usize; BUCKETS];
        for i in 0..N {
            let h = murmur3_64_u64(i as u64, 0);
            counts[(h % BUCKETS as u64) as usize] += 1;
        }
        let expected = (N / BUCKETS) as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 63 degrees of freedom; 99.9th percentile is ~103. Be generous.
        assert!(chi2 < 120.0, "chi-square too high: {chi2}");
    }
}
