//! Hashing substrate for the Partial Key Grouping reproduction.
//!
//! The PKG paper routes messages with "a 64-bit Murmur hash function to
//! minimize the probability of collision" and needs a *family* of `d`
//! independent hash functions for the power-of-`d`-choices scheme
//! (`H_1 .. H_d : K -> [n]`, §IV of the paper). This crate provides:
//!
//! * [`murmur3`] — a from-scratch implementation of MurmurHash3
//!   (the x64 128-bit variant, of which we expose the low 64 bits, plus the
//!   32-bit variant), verified against the reference test vectors.
//! * [`seeded`] — [`seeded::HashFamily`], `d` independent seeded hash
//!   functions over arbitrary keys, and the [`seeded::StreamKey`] trait that
//!   lets partitioners hash `u64` key identifiers, strings and byte slices
//!   uniformly.
//! * [`fx`] — a fast non-cryptographic hasher (the `FxHash` algorithm used by
//!   rustc) for *internal* hash maps on the hot path, where SipHash's HashDoS
//!   protection is unnecessary; plus [`fx::FxHashMap`]/[`fx::FxHashSet`]
//!   aliases.
//!
//! # Example
//!
//! ```
//! use pkg_hash::seeded::HashFamily;
//!
//! let family = HashFamily::new(2, 42); // d = 2 choices, experiment seed 42
//! let candidates = family.choices(&"barcelona", 10); // workers 0..10
//! assert_eq!(candidates.len(), 2);
//! assert!(candidates.iter().all(|&w| w < 10));
//! // Routing is deterministic: the same key always gets the same candidates.
//! assert_eq!(candidates, family.choices(&"barcelona", 10));
//! ```

#![forbid(unsafe_code)]

pub mod fx;
pub mod murmur3;
pub mod seeded;

pub use fx::{FxHashMap, FxHashSet, FxHasher};
pub use murmur3::{murmur3_128, murmur3_32, murmur3_64};
pub use seeded::{member_seed, HashFamily, StreamKey};
