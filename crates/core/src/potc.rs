//! Static PoTC — power of two choices *without* key splitting.
//!
//! "A naïve application of PoTC to key grouping requires the system to store
//! a bit of information for each key seen, to keep track of which of the two
//! choices needs to be used thereafter. This variant is referred to as
//! static PoTC" (§III-A). It preserves key-grouping semantics (one worker
//! per key) but needs a per-key routing table — exactly the cost the paper
//! argues is impractical — and, as Table II shows, it balances far worse
//! than PKG because a key's placement is frozen at first sight, before its
//! popularity is known.

use pkg_hash::{FxHashMap, HashFamily};
use pkg_metrics::Capacities;

use crate::estimator::Estimate;
use crate::partitioner::{check_membership, family, Partitioner};

/// Routing-table PoTC (the "PoTC" row of Table II).
#[derive(Debug, Clone)]
pub struct StaticPotc {
    family: HashFamily,
    n: usize,
    estimate: Estimate,
    /// Per-worker capacity weights: first-sight placement compares
    /// `L_i/c_i` when attached.
    capacities: Option<Capacities>,
    /// Live membership subset of `0..n` (pkg-elastic); `None` is the
    /// untouched fixed-`W` fast path.
    live: Option<Vec<usize>>,
    table: FxHashMap<u64, u32>,
}

impl StaticPotc {
    /// Static PoTC over `n` workers; the first occurrence of a key picks the
    /// less-loaded of its two candidates according to `estimate`.
    pub fn new(n: usize, estimate: Estimate, seed: u64) -> Self {
        assert!(n > 0, "need at least one worker");
        assert_eq!(estimate.n(), n, "estimate must cover all workers");
        Self {
            family: family(2, seed),
            n,
            estimate,
            capacities: None,
            live: None,
            table: FxHashMap::default(),
        }
    }

    /// Route by capacity-normalized load `L_i/c_i` using these per-worker
    /// weights (`None` = homogeneous; uniform weights collapse upstream).
    pub fn with_capacities(mut self, capacities: Option<Capacities>) -> Self {
        if let Some(c) = &capacities {
            assert_eq!(c.len(), self.n, "one capacity per worker");
        }
        self.capacities = capacities;
        self
    }

    /// Number of routing-table entries (the state the paper objects to:
    /// one per distinct key seen).
    pub fn table_entries(&self) -> usize {
        self.table.len()
    }
}

impl Partitioner for StaticPotc {
    #[inline]
    fn route(&mut self, key: u64, ts_ms: u64) -> usize {
        let w = match self.table.get(&key) {
            Some(&w) => w as usize,
            None => {
                let (c0, c1) = match &self.live {
                    None => {
                        (self.family.choice(0, &key, self.n), self.family.choice(1, &key, self.n))
                    }
                    Some(live) => {
                        (self.family.choice_in(0, &key, live), self.family.choice_in(1, &key, live))
                    }
                };
                let (l0, l1) = (self.estimate.load(c0, ts_ms), self.estimate.load(c1, ts_ms));
                let w = if pkg_metrics::prefers(self.capacities.as_ref(), l1, c1, l0, c0) {
                    c1
                } else {
                    c0
                };
                self.table.insert(key, w as u32);
                w
            }
        };
        self.estimate.record(w);
        w
    }

    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        "StaticPoTC".into()
    }

    fn candidates(&self, key: u64) -> Vec<usize> {
        match &self.live {
            None => self.family.choices(&key, self.n),
            // Under a membership subset a pinned key has exactly one
            // possible destination; unpinned keys draw from the live set.
            Some(live) => match self.table.get(&key) {
                Some(&w) => vec![w as usize],
                None => self.family.choices_in(&key, live),
            },
        }
    }

    fn resizable(&self) -> bool {
        true
    }

    /// Evicts routing-table entries pinned to dead workers — those keys are
    /// re-placed (among their live candidates) on next sight, which is the
    /// table-based analogue of key migration.
    fn apply_membership(&mut self, live: &[usize]) {
        check_membership(live, self.n);
        self.table.retain(|_, w| live.binary_search(&(*w as usize)).is_ok());
        self.live = Some(live.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_sticks_to_first_choice() {
        let mut p = StaticPotc::new(10, Estimate::local(10), 1);
        let w = p.route(42, 0);
        for t in 1..100 {
            assert_eq!(p.route(42, t), w, "static PoTC must never move a key");
        }
        assert_eq!(p.table_entries(), 1);
    }

    #[test]
    fn chooses_less_loaded_candidate_at_first_sight() {
        let mut p = StaticPotc::new(4, Estimate::local(4), 2);
        let key = 7u64;
        let cands = p.candidates(key);
        if cands[0] == cands[1] {
            return;
        }
        // Pre-load the first candidate through other traffic.
        let mut preloaded = 0;
        for k in 1000..50_000u64 {
            if p.route(k, 0) == cands[0] {
                preloaded += 1;
            }
            if preloaded > 1000 {
                break;
            }
        }
        let l0 = match p.estimate {
            Estimate::Local(ref v) => v[cands[0]],
            _ => unreachable!(),
        };
        let l1 = match p.estimate {
            Estimate::Local(ref v) => v[cands[1]],
            _ => unreachable!(),
        };
        let w = p.route(key, 0);
        let expected = if l1 < l0 { cands[1] } else { cands[0] };
        assert_eq!(w, expected);
    }

    #[test]
    fn hot_key_still_overloads_one_worker() {
        // The defining weakness vs PKG: a single hot key cannot be split.
        let mut p = StaticPotc::new(10, Estimate::local(10), 3);
        let mut loads = [0u64; 10];
        for t in 0..10_000 {
            loads[p.route(0, t)] += 1;
        }
        assert_eq!(loads.iter().filter(|&&l| l > 0).count(), 1);
    }

    #[test]
    fn membership_evicts_keys_pinned_to_dead_workers() {
        let mut p = StaticPotc::new(6, Estimate::local(6), 9);
        for k in 0..300u64 {
            p.route(k, 0);
        }
        let before = p.table_entries();
        let live = [0usize, 2, 4];
        p.apply_membership(&live);
        assert!(p.table_entries() < before, "some keys were pinned to dead workers");
        for k in 0..600u64 {
            let w = p.route(k, 1);
            assert!(live.contains(&w), "key {k} routed to dead worker {w}");
            assert_eq!(p.candidates(k), vec![w], "pinned key has one destination");
        }
    }

    #[test]
    fn table_grows_with_distinct_keys_only() {
        let mut p = StaticPotc::new(8, Estimate::local(8), 4);
        for t in 0..1_000 {
            p.route(t % 50, t);
        }
        assert_eq!(p.table_entries(), 50);
    }
}
