//! The [`Partitioner`] trait and buildable scheme specifications.

use pkg_hash::HashFamily;

use crate::choice::{AdaptiveChoices, ChoiceConfig, ChoiceStrategy, DEFAULT_EPSILON};
use crate::estimator::{EstimateKind, SharedLoads};
use crate::greedy::{KeyFrequencies, OfflineGreedy, OnlineGreedy};
use crate::key_grouping::KeyGrouping;
use crate::pkg::PartialKeyGrouping;
use crate::potc::StaticPotc;
use crate::shuffle::ShuffleGrouping;

/// A stream partitioning function `P_t : K → [n]` (§II of the paper).
///
/// `route` may depend on the partitioner's mutable state (load estimates,
/// routing tables, round-robin counters) and on the stream time `ts_ms`
/// (probing estimators); decisions are irrevocable.
pub trait Partitioner: Send {
    /// Route a message with key `key` arriving at stream time `ts_ms`;
    /// returns the worker index in `[0, n)`.
    fn route(&mut self, key: u64, ts_ms: u64) -> usize;

    /// Route a whole batch of keys arriving at stream time `ts_ms`,
    /// appending one worker index per key to `out` (cleared first).
    ///
    /// Decisions are made per key **in stream order** with exactly the same
    /// state updates as [`Self::route`] — batching amortizes the dispatch,
    /// never changes a choice. The theory is indifferent: between two
    /// argmin evaluations the load vector moves by at most the batch size,
    /// so the greedy process is unchanged (pinned by the `route_batch`
    /// property test for every [`SchemeSpec`]).
    fn route_batch(&mut self, keys: &[u64], ts_ms: u64, out: &mut Vec<usize>) {
        out.clear();
        out.reserve(keys.len());
        out.extend(keys.iter().map(|&k| self.route(k, ts_ms)));
    }

    /// Number of downstream workers.
    fn n(&self) -> usize;

    /// Human-readable name for experiment output.
    fn name(&self) -> String;

    /// The workers that may ever receive this key (used by applications for
    /// query routing: PKG probes exactly two workers, KG one, SG all).
    fn candidates(&self, key: u64) -> Vec<usize> {
        let _ = key;
        (0..self.n()).collect()
    }

    /// Whether this partitioner supports runtime membership changes via
    /// [`Self::apply_membership`]. Schemes whose assignment is frozen up
    /// front (Off-Greedy) stay `false`.
    fn resizable(&self) -> bool {
        false
    }

    /// Restrict routing to the live subset `live` of the fixed id space
    /// `0..n` (pkg-elastic's stable-id invariant: `n` never changes, only
    /// which indices are live). Hash-based schemes rebuild their candidate
    /// derivation over `live`; table-based schemes additionally evict
    /// entries pointing at dead workers. Applying the full set `0..n` must
    /// route byte-identically to a never-resized partitioner.
    ///
    /// # Panics
    /// The default implementation panics: the scheme does not support
    /// membership changes. Implementations panic on an invalid `live` set
    /// (empty, unsorted, duplicate, or out-of-range indices).
    fn apply_membership(&mut self, live: &[usize]) {
        let _ = live;
        panic!("{} does not support membership changes", self.name());
    }
}

/// Validate a membership set against the fixed id space `0..n`: non-empty,
/// strictly increasing, all indices below `n`. Shared by every
/// [`Partitioner::apply_membership`] implementation.
pub(crate) fn check_membership(live: &[usize], n: usize) {
    assert!(!live.is_empty(), "membership must keep at least one worker live");
    for pair in live.windows(2) {
        assert!(pair[0] < pair[1], "membership must be sorted and duplicate-free");
    }
    assert!(live[live.len() - 1] < n, "membership index out of the fixed id space 0..{n}");
}

/// A buildable description of a partitioning scheme, used by experiment
/// sweeps. One spec is instantiated once *per source* (each source gets its
/// own partitioner state — that is what makes local estimation "local"),
/// but all instances share the hash-function seeds, so every source agrees
/// on each key's candidate workers.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeSpec {
    /// Hash-based key grouping ("H" in the figures; the KG baseline).
    KeyGrouping,
    /// Round-robin shuffle grouping (SG).
    ShuffleGrouping,
    /// Partial key grouping: the Greedy-`d` process with key splitting.
    Pkg {
        /// Number of hash choices (the paper studies and recommends 2).
        d: usize,
        /// Load estimation strategy.
        estimate: EstimateKind,
    },
    /// Power of two choices *without* key splitting (routing-table PoTC).
    StaticPotc {
        /// Load estimation strategy used when a key is first routed.
        estimate: EstimateKind,
    },
    /// On-Greedy: each new key goes to the currently least-loaded worker.
    OnGreedy {
        /// Load estimation strategy consulted on first sight of a key.
        estimate: EstimateKind,
    },
    /// Off-Greedy: offline LPT assignment from full key frequencies.
    OffGreedy,
    /// D-Choices (journal follow-up): head keys — estimated frequency past
    /// `θ = 2(1+ε)/W` — get `⌈p̂·W/(1+ε)⌉` candidates from their hash
    /// sequence; tail keys route like plain PKG.
    DChoices {
        /// Load estimation strategy.
        estimate: EstimateKind,
        /// Relative imbalance target `ε`.
        epsilon: f64,
    },
    /// W-Choices (journal follow-up): head keys may go to *all* workers;
    /// tail keys route like plain PKG.
    WChoices {
        /// Load estimation strategy.
        estimate: EstimateKind,
        /// Relative imbalance target `ε`.
        epsilon: f64,
    },
}

impl SchemeSpec {
    /// PKG with two choices and the given estimation strategy — the paper's
    /// recommended configuration.
    pub fn pkg(estimate: EstimateKind) -> Self {
        SchemeSpec::Pkg { d: 2, estimate }
    }

    /// D-Choices with the default imbalance target.
    pub fn d_choices(estimate: EstimateKind) -> Self {
        SchemeSpec::DChoices { estimate, epsilon: DEFAULT_EPSILON }
    }

    /// W-Choices with the default imbalance target.
    pub fn w_choices(estimate: EstimateKind) -> Self {
        SchemeSpec::WChoices { estimate, epsilon: DEFAULT_EPSILON }
    }

    /// Whether this scheme needs the full key-frequency histogram
    /// (only Off-Greedy does; sweeps precompute it on demand).
    pub fn needs_frequencies(&self) -> bool {
        matches!(self, SchemeSpec::OffGreedy)
    }

    /// Short label for experiment tables ("H", "PKG", "PoTC", …).
    pub fn label(&self) -> String {
        match self {
            SchemeSpec::KeyGrouping => "H".into(),
            SchemeSpec::ShuffleGrouping => "SG".into(),
            SchemeSpec::Pkg { d: 2, estimate } => format!("PKG-{}", estimate.label()),
            SchemeSpec::Pkg { d, estimate } => format!("PKG{}-{}", d, estimate.label()),
            SchemeSpec::StaticPotc { .. } => "PoTC".into(),
            SchemeSpec::OnGreedy { .. } => "On-Greedy".into(),
            SchemeSpec::OffGreedy => "Off-Greedy".into(),
            SchemeSpec::DChoices { estimate, .. } => format!("DC-{}", estimate.label()),
            SchemeSpec::WChoices { estimate, .. } => format!("WC-{}", estimate.label()),
        }
    }

    /// Instantiate a partitioner for one source.
    ///
    /// * `n` — number of workers;
    /// * `seed` — experiment seed (hash functions derive from it, so all
    ///   sources built with the same seed agree on candidates);
    /// * `source_index` — used to stagger shuffle grouping's round-robin
    ///   start so parallel sources do not move in lockstep;
    /// * `shared` — the true loads (read by Global/Probing estimates). On a
    ///   heterogeneous cluster ([`SharedLoads::with_capacities`]) every
    ///   load-consulting scheme routes by capacity-normalized load; with
    ///   uniform (or no) weights routing is byte-identical to the
    ///   capacity-free schemes;
    /// * `freqs` — key frequencies, required iff [`Self::needs_frequencies`].
    pub fn build(
        &self,
        n: usize,
        seed: u64,
        source_index: usize,
        shared: &SharedLoads,
        freqs: Option<&KeyFrequencies>,
    ) -> Box<dyn Partitioner> {
        let caps = shared.capacities().cloned();
        match self {
            SchemeSpec::KeyGrouping => Box::new(KeyGrouping::new(n, seed)),
            SchemeSpec::ShuffleGrouping => Box::new(ShuffleGrouping::with_offset(n, source_index)),
            SchemeSpec::Pkg { d, estimate } => Box::new(
                PartialKeyGrouping::new(n, *d, estimate.build(n, shared), seed)
                    .with_capacities(caps),
            ),
            SchemeSpec::StaticPotc { estimate } => {
                Box::new(StaticPotc::new(n, estimate.build(n, shared), seed).with_capacities(caps))
            }
            SchemeSpec::OnGreedy { estimate } => Box::new(
                OnlineGreedy::new(n, estimate.build(n, shared), seed).with_capacities(caps),
            ),
            SchemeSpec::OffGreedy => {
                let freqs = freqs.expect("Off-Greedy requires key frequencies");
                Box::new(OfflineGreedy::weighted(n, freqs, seed, caps.as_ref()))
            }
            SchemeSpec::DChoices { estimate, epsilon } => Box::new(
                AdaptiveChoices::new(
                    n,
                    ChoiceStrategy::DChoices,
                    ChoiceConfig::new(*epsilon),
                    estimate.build(n, shared),
                    seed,
                )
                .with_capacities(caps),
            ),
            SchemeSpec::WChoices { estimate, epsilon } => Box::new(
                AdaptiveChoices::new(
                    n,
                    ChoiceStrategy::WChoices,
                    ChoiceConfig::new(*epsilon),
                    estimate.build(n, shared),
                    seed,
                )
                .with_capacities(caps),
            ),
        }
    }
}

/// Shared helper: a `HashFamily` with the conventions used by every
/// partitioner in this crate (`d` members derived from the experiment seed).
pub(crate) fn family(d: usize, seed: u64) -> HashFamily {
    HashFamily::new(d, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(SchemeSpec::KeyGrouping.label(), "H");
        assert_eq!(SchemeSpec::pkg(EstimateKind::Local).label(), "PKG-L");
        assert_eq!(SchemeSpec::Pkg { d: 5, estimate: EstimateKind::Global }.label(), "PKG5-G");
        assert_eq!(SchemeSpec::OffGreedy.label(), "Off-Greedy");
        assert_eq!(SchemeSpec::d_choices(EstimateKind::Local).label(), "DC-L");
        assert_eq!(SchemeSpec::w_choices(EstimateKind::Global).label(), "WC-G");
    }

    #[test]
    fn build_produces_working_partitioners() {
        let shared = SharedLoads::new(4);
        for spec in [
            SchemeSpec::KeyGrouping,
            SchemeSpec::ShuffleGrouping,
            SchemeSpec::pkg(EstimateKind::Local),
            SchemeSpec::pkg(EstimateKind::Global),
            SchemeSpec::StaticPotc { estimate: EstimateKind::Global },
            SchemeSpec::OnGreedy { estimate: EstimateKind::Global },
            SchemeSpec::d_choices(EstimateKind::Local),
            SchemeSpec::w_choices(EstimateKind::Local),
        ] {
            let mut p = spec.build(4, 7, 0, &shared, None);
            for k in 0..100u64 {
                let w = p.route(k, 0);
                assert!(w < 4, "{} routed out of range", spec.label());
            }
        }
    }

    #[test]
    fn sources_agree_on_candidates() {
        let shared = SharedLoads::new(10);
        let a = SchemeSpec::pkg(EstimateKind::Local).build(10, 3, 0, &shared, None);
        let b = SchemeSpec::pkg(EstimateKind::Local).build(10, 3, 1, &shared, None);
        for k in 0..200u64 {
            assert_eq!(a.candidates(k), b.candidates(k));
        }
    }

    #[test]
    #[should_panic(expected = "requires key frequencies")]
    fn off_greedy_without_frequencies_panics() {
        let shared = SharedLoads::new(2);
        let _ = SchemeSpec::OffGreedy.build(2, 0, 0, &shared, None);
    }
}
