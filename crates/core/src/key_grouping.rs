//! Hash-based key grouping — the single-choice baseline ("H").
//!
//! "The current solution used by all DSPEs to partition a stream with key
//! grouping corresponds to the single-choice paradigm. The system has access
//! to a single hash function `H1(k)`. The partitioning of keys into
//! sub-streams is determined by `P_t(k) = H1(k) mod W`" (§III). We use the
//! 64-bit Murmur hash, as the paper's experiments do.

use pkg_hash::HashFamily;

use crate::partitioner::{check_membership, family, Partitioner};

/// Single-choice hash partitioner (`KG`).
#[derive(Debug, Clone)]
pub struct KeyGrouping {
    family: HashFamily,
    n: usize,
    /// Live membership subset of `0..n` (pkg-elastic); `None` is the
    /// untouched fixed-`W` fast path.
    live: Option<Vec<usize>>,
}

impl KeyGrouping {
    /// Key grouping over `n` workers with hash functions derived from
    /// `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one worker");
        Self { family: family(1, seed), n, live: None }
    }

    #[inline]
    fn pick(&self, key: u64) -> usize {
        match &self.live {
            None => self.family.choice(0, &key, self.n),
            Some(live) => self.family.choice_in(0, &key, live),
        }
    }
}

impl Partitioner for KeyGrouping {
    #[inline]
    fn route(&mut self, key: u64, _ts_ms: u64) -> usize {
        self.pick(key)
    }

    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        "KeyGrouping".into()
    }

    fn candidates(&self, key: u64) -> Vec<usize> {
        vec![self.pick(key)]
    }

    fn resizable(&self) -> bool {
        true
    }

    fn apply_membership(&mut self, live: &[usize]) {
        check_membership(live, self.n);
        self.live = Some(live.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_worker_always() {
        let mut kg = KeyGrouping::new(7, 1);
        let w = kg.route(99, 0);
        for t in 1..1000 {
            assert_eq!(kg.route(99, t), w);
        }
        assert_eq!(kg.candidates(99), vec![w]);
    }

    #[test]
    fn statelessness_across_instances() {
        // Two sources with the same seed route identically — KG needs no
        // coordination (the property the paper starts from).
        let mut a = KeyGrouping::new(16, 9);
        let mut b = KeyGrouping::new(16, 9);
        for k in 0..500u64 {
            assert_eq!(a.route(k, 0), b.route(k, 0));
        }
    }

    #[test]
    fn spreads_keys_roughly_uniformly() {
        let mut kg = KeyGrouping::new(10, 2);
        let mut counts = [0u64; 10];
        for k in 0..100_000u64 {
            counts[kg.route(k, 0)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count = {c}");
        }
    }

    #[test]
    fn membership_reroutes_onto_live_set_only() {
        let mut kg = KeyGrouping::new(8, 5);
        let live = [1usize, 4, 6];
        kg.apply_membership(&live);
        for k in 0..500u64 {
            assert!(live.contains(&kg.route(k, 0)));
        }
        // Full set restores fixed-W routing bit for bit.
        let mut fresh = KeyGrouping::new(8, 5);
        kg.apply_membership(&(0..8).collect::<Vec<_>>());
        for k in 0..500u64 {
            assert_eq!(kg.route(k, 0), fresh.route(k, 0));
        }
    }

    #[test]
    fn skewed_stream_overloads_head_worker() {
        // The motivating pathology: a key with probability p1 pins p1·m
        // messages on one worker regardless of n.
        let mut kg = KeyGrouping::new(100, 3);
        let mut loads = [0u64; 100];
        for i in 0..10_000u64 {
            let key = if i % 10 == 0 { 0 } else { i }; // p1 = 10%
            loads[kg.route(key, 0)] += 1;
        }
        let max = *loads.iter().max().expect("non-empty");
        assert!(max >= 1_000, "head worker load = {max}");
    }
}
