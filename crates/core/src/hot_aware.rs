//! Hot-key-aware PKG — the extension the paper's conclusion asks for.
//!
//! §IV shows PKG's limit: once the number of workers exceeds `O(1/p1)`, the
//! two candidates of the hottest key saturate and imbalance grows linearly
//! in `m` *no matter what* two-choice scheme is used (Table II's W = 50/100
//! columns). The paper's conclusion poses the question of going further;
//! the authors' follow-up work ("when two choices are not enough") answers
//! it by giving only the few *head* keys more than two choices. This module
//! implements that idea:
//!
//! * Each source keeps a tiny frequency estimate of its hottest keys (an
//!   aged count map — purely local, no coordination, constant memory).
//! * A key whose estimated frequency exceeds `hot_threshold` of the
//!   source's traffic is routed among `d_hot` candidates (`d_hot = n`
//!   reproduces "W-Choices": hot keys may go anywhere); all other keys use
//!   plain PKG with `d = 2`.
//!
//! The memory/aggregation overhead stays bounded: only `O(1/hot_threshold)`
//! keys can ever be hot, so the extra replication is a constant number of
//! workers regardless of the key-space size.

use pkg_hash::seeded::MAX_CHOICES;
use pkg_hash::{FxHashMap, HashFamily};

use crate::estimator::Estimate;
use crate::partitioner::{family, Partitioner};

/// PKG with extra choices for locally-detected hot keys.
#[derive(Debug, Clone)]
pub struct HotAwarePkg {
    family: HashFamily,
    n: usize,
    estimate: Estimate,
    /// Keys with estimated frequency ≥ this fraction of the source's
    /// traffic get `d_hot` choices.
    hot_threshold: f64,
    /// Number of choices for hot keys (`n` = W-Choices, smaller = D-Choices).
    d_hot: usize,
    freq: FreqEstimator,
    buf: [usize; MAX_CHOICES],
}

impl HotAwarePkg {
    /// Hot-aware PKG over `n` workers.
    ///
    /// `d_hot` is clamped to `n`; hot keys with `d_hot ≥ n` are routed by
    /// global argmin over all workers (true W-Choices). `hot_threshold`
    /// must be in `(0, 1]`; the paper-relevant regime is around
    /// `1/(2n) … 1/n` (a key hotter than that cannot be balanced by two
    /// workers).
    pub fn new(n: usize, estimate: Estimate, hot_threshold: f64, d_hot: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one worker");
        assert_eq!(estimate.n(), n, "estimate must cover all workers");
        assert!(hot_threshold > 0.0 && hot_threshold <= 1.0, "threshold must be in (0,1]");
        assert!(d_hot >= 2, "hot keys need at least the two standard choices");
        Self {
            family: family(2, seed),
            n,
            estimate,
            hot_threshold,
            d_hot: d_hot.min(n),
            freq: FreqEstimator::new(64.max(2 * (1.0 / hot_threshold).ceil() as usize)),
            buf: [0; MAX_CHOICES],
        }
    }

    /// The candidates used for *hot* keys: the first `d_hot` members of an
    /// extended hash family (or all workers when `d_hot == n`).
    fn hot_candidates(&mut self, key: u64) -> &[usize] {
        if self.d_hot >= self.n {
            // W-Choices: all workers are candidates; no hashing needed.
            return &[];
        }
        // Derive extra candidates from the base family seeds by re-hashing
        // with the choice index folded in; the first two coincide with the
        // standard candidates so cold→hot transitions only *add* workers.
        self.buf[0] = self.family.choice(0, &key, self.n);
        self.buf[1] = self.family.choice(1, &key, self.n);
        for (i, slot) in self.buf.iter_mut().enumerate().take(self.d_hot.min(MAX_CHOICES)).skip(2) {
            let h = pkg_hash::murmur3::murmur3_64_u64(
                key,
                self.family.seeds()[i % 2] ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            *slot = (h % self.n as u64) as usize;
        }
        &self.buf[..self.d_hot.min(MAX_CHOICES)]
    }

    /// Number of keys currently tracked as potentially hot.
    pub fn tracked_keys(&self) -> usize {
        self.freq.counts.len()
    }
}

impl Partitioner for HotAwarePkg {
    fn route(&mut self, key: u64, ts_ms: u64) -> usize {
        let is_hot = self.freq.observe_and_check(key, self.hot_threshold);
        let w = if is_hot {
            if self.d_hot >= self.n {
                // Global argmin (W-Choices).
                let mut best = 0;
                let mut best_load = self.estimate.load(0, ts_ms);
                for c in 1..self.n {
                    let l = self.estimate.load(c, ts_ms);
                    if l < best_load {
                        best = c;
                        best_load = l;
                    }
                }
                best
            } else {
                let cands: Vec<usize> = self.hot_candidates(key).to_vec();
                let mut best = cands[0];
                let mut best_load = self.estimate.load(best, ts_ms);
                for &c in &cands[1..] {
                    let l = self.estimate.load(c, ts_ms);
                    if l < best_load {
                        best = c;
                        best_load = l;
                    }
                }
                best
            }
        } else {
            let c0 = self.family.choice(0, &key, self.n);
            let c1 = self.family.choice(1, &key, self.n);
            if self.estimate.load(c1, ts_ms) < self.estimate.load(c0, ts_ms) {
                c1
            } else {
                c0
            }
        };
        self.estimate.record(w);
        w
    }

    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        if self.d_hot >= self.n {
            format!("W-Choices(θ={})", self.hot_threshold)
        } else {
            format!("D-Choices(d={},θ={})", self.d_hot, self.hot_threshold)
        }
    }

    fn candidates(&self, key: u64) -> Vec<usize> {
        // Conservative: a key *may* have been hot at some point, so report
        // the full hot candidate set if it is currently tracked hot.
        if self.freq.is_hot(key, self.hot_threshold) {
            if self.d_hot >= self.n {
                (0..self.n).collect()
            } else {
                let mut me = self.clone();
                let mut v = me.hot_candidates(key).to_vec();
                v.sort_unstable();
                v.dedup();
                v
            }
        } else {
            self.family.choices(&key, self.n)
        }
    }
}

/// A constant-memory frequency estimator: an aged count map. When the map
/// exceeds its capacity, all counts are halved and zeros evicted — hot keys
/// survive aging, cold ones wash out (a simplified lossy counting).
#[derive(Debug, Clone)]
struct FreqEstimator {
    counts: FxHashMap<u64, u64>,
    capacity: usize,
    /// Aged mass (halved together with the counts).
    total: u64,
    /// Monotone observation count (drives the warm-up criterion only).
    seen: u64,
}

impl FreqEstimator {
    fn new(capacity: usize) -> Self {
        Self { counts: FxHashMap::default(), capacity, total: 0, seen: 0 }
    }

    /// Count one occurrence and report whether the key is hot.
    ///
    /// Nothing is hot during the warm-up window (until ~8/θ observations):
    /// with a tiny sample every first occurrence would trivially clear the
    /// threshold, and misclassifying cold keys as hot costs replication.
    #[inline]
    fn observe_and_check(&mut self, key: u64, threshold: f64) -> bool {
        self.total += 1;
        self.seen += 1;
        let c = {
            let e = self.counts.entry(key).or_insert(0);
            *e += 1;
            *e
        };
        if self.counts.len() > self.capacity {
            self.age();
        }
        self.warmed_up(threshold) && (c as f64) >= threshold * self.total as f64
    }

    /// Enough observations for the threshold to be meaningful.
    #[inline]
    fn warmed_up(&self, threshold: f64) -> bool {
        self.seen as f64 * threshold >= 8.0
    }

    fn is_hot(&self, key: u64, threshold: f64) -> bool {
        if !self.warmed_up(threshold) {
            return false;
        }
        match self.counts.get(&key) {
            Some(&c) => (c as f64) >= threshold * self.total as f64,
            None => false,
        }
    }

    fn age(&mut self) {
        for v in self.counts.values_mut() {
            *v /= 2;
        }
        self.counts.retain(|_, v| *v > 0);
        self.total /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkg_metrics::imbalance;

    /// A stream where one key carries `hot_share` of the traffic and the
    /// rest is spread over many cold keys.
    fn skewed_loads(p: &mut dyn Partitioner, n: usize, m: u64, hot_share: f64) -> Vec<u64> {
        let mut loads = vec![0u64; n];
        let hot_every = (1.0 / hot_share) as u64;
        for i in 0..m {
            let key = if i % hot_every == 0 { 0 } else { i + 1 };
            loads[p.route(key, i)] += 1;
        }
        loads
    }

    #[test]
    fn beats_plain_pkg_past_the_two_choice_limit() {
        // One key with 20% of traffic on 50 workers: 2 workers can hold at
        // most 2/50 = 4% each balanced... the hot key alone forces ~10%
        // onto its two candidates under plain PKG; W-Choices spreads it.
        let n = 50;
        let m = 200_000;
        let mut plain = crate::pkg::PartialKeyGrouping::new(n, 2, Estimate::local(n), 7);
        let mut hot = HotAwarePkg::new(n, Estimate::local(n), 0.01, n, 7);
        let i_plain = imbalance(&skewed_loads(&mut plain, n, m, 0.2));
        let i_hot = imbalance(&skewed_loads(&mut hot, n, m, 0.2));
        assert!(i_hot < i_plain / 4.0, "hot-aware {i_hot} must be far below plain PKG {i_plain}");
    }

    #[test]
    fn cold_keys_still_use_two_candidates() {
        let n = 20;
        let mut p = HotAwarePkg::new(n, Estimate::local(n), 0.05, n, 1);
        // A uniform stream: no key ever crosses the threshold, so every
        // key stays within its two hash candidates.
        let fam = family(2, 1);
        for i in 0..10_000u64 {
            let key = i % 2_000;
            let w = p.route(key, i);
            let c0 = fam.choice(0, &key, n);
            let c1 = fam.choice(1, &key, n);
            assert!(w == c0 || w == c1, "cold key escaped its candidates");
        }
    }

    #[test]
    fn tracked_keys_stay_bounded() {
        let n = 10;
        let mut p = HotAwarePkg::new(n, Estimate::local(n), 0.01, n, 3);
        for i in 0..100_000u64 {
            p.route(i, i); // all-distinct keys: worst case for the tracker
        }
        assert!(p.tracked_keys() <= 2 * 200 + 1, "tracker grew to {}", p.tracked_keys());
    }

    #[test]
    fn d_choices_uses_at_most_d_workers_for_hot_keys() {
        let n = 40;
        let d_hot = 6;
        let mut p = HotAwarePkg::new(n, Estimate::local(n), 0.05, d_hot, 5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..50_000u64 {
            // 30% hot key 0.
            let key = if i % 10 < 3 { 0 } else { i + 1 };
            let w = p.route(key, i);
            if key == 0 {
                seen.insert(w);
            }
        }
        assert!(seen.len() <= d_hot, "hot key touched {} workers, d_hot = {d_hot}", seen.len());
        assert!(seen.len() > 2, "hot key should use more than two workers");
    }

    #[test]
    fn w_choices_imbalance_near_shuffle_on_extreme_skew() {
        // 50% single-key skew on many workers: only W-Choices keeps the
        // fraction near zero.
        let n = 30;
        let m = 100_000;
        let mut p = HotAwarePkg::new(n, Estimate::local(n), 0.02, n, 9);
        let loads = skewed_loads(&mut p, n, m, 0.5);
        let frac = imbalance(&loads) / m as f64;
        assert!(frac < 0.01, "fraction = {frac}");
    }
}
