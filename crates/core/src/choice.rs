//! Adaptive candidate counts: the D-Choices and W-Choices schemes of the
//! journal follow-up ("When Two Choices Are not Enough: Balancing at Scale
//! in Distributed Stream Processing", Nasir et al., ICDE 2016).
//!
//! §IV of the source paper proves the two-choice limit: once the worker
//! count `W` exceeds `O(1/p1)`, the hottest key's two candidates saturate
//! and imbalance grows linearly in the stream length *no matter what*
//! two-choice scheme is used. The follow-up's answer is to give only the
//! few **head** keys more candidates:
//!
//! * A key is *head* when its estimated frequency `p̂` (from the per-source
//!   [`HeadTracker`]) reaches the threshold `θ = 2(1+ε)/W` — the largest
//!   frequency two workers can absorb while keeping each within `(1+ε)/W`
//!   of the stream, `ε` being the relative imbalance target.
//! * **Tail** keys route exactly like plain PKG: greedy-2 over the key's
//!   two hash candidates. When no key ever crosses `θ`, the scheme *is*
//!   PKG, byte for byte.
//! * **D-Choices** gives a head key of frequency `p̂` the smallest `d`
//!   satisfying the per-worker bound `p̂/d ≤ (1+ε)/W`, i.e.
//!   `d(p̂) = ⌈p̂·W/(1+ε)⌉` (clamped to `[2, W]`) — monotone non-decreasing
//!   in `p̂` and exactly 2 at `θ`, so classification is continuous.
//! * **W-Choices** gives head keys all `W` workers (`d = W`).
//!
//! Candidates are drawn from the key's *hash sequence*
//! `H_i(k) = murmur3(k, member_seed(seed, i)) mod W`: the same derivation
//! (and therefore the same first two members) as PKG's [`HashFamily`], so
//! candidate sets are prefix-nested — raising `d` only ever *adds* workers —
//! and reproducible across sources and executors from the experiment seed
//! alone.
//!
//! [`HashFamily`]: pkg_hash::HashFamily

use pkg_hash::{member_seed, StreamKey};
use pkg_metrics::Capacities;

use crate::estimator::Estimate;
use crate::head_tracker::HeadTracker;
use crate::partitioner::{check_membership, Partitioner};

/// Default relative imbalance target `ε` (per-worker load within
/// `(1+ε)/W` of the stream). The sweeps of `fig_dchoices` gate the achieved
/// imbalance fraction well below this.
pub const DEFAULT_EPSILON: f64 = 0.1;

/// Which adaptive scheme a partitioner runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceStrategy {
    /// Head keys get `d(p̂) = ⌈p̂·W/(1+ε)⌉` candidates.
    DChoices,
    /// Head keys get all `W` workers.
    WChoices,
}

/// The candidate-count rule shared by both schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChoiceConfig {
    /// Relative imbalance target `ε ≥ 0`.
    pub epsilon: f64,
}

impl ChoiceConfig {
    /// A config with imbalance target `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "epsilon must be finite and ≥ 0");
        Self { epsilon }
    }

    /// Head threshold `θ = 2(1+ε)/n`: the largest key frequency two workers
    /// can absorb within the target.
    pub fn theta(&self, n: usize) -> f64 {
        2.0 * (1.0 + self.epsilon) / n as f64
    }

    /// D-Choices candidate count for an estimated frequency `p`: the
    /// smallest `d` with `p/d ≤ (1+ε)/n`, clamped to `[2, n]`. Monotone
    /// non-decreasing in `p` and exactly 2 at `p = θ` (the relative
    /// tolerance below absorbs the float rounding of `θ·n/(1+ε)`, which
    /// otherwise lands a hair above 2 for some `(n, ε)` and would make
    /// head classification discontinuous at the threshold).
    pub fn d_for(&self, p: f64, n: usize) -> usize {
        let exact = p * n as f64 / (1.0 + self.epsilon);
        let d = (exact * (1.0 - 1e-12)).ceil() as usize;
        d.max(2).min(n.max(1))
    }
}

impl Default for ChoiceConfig {
    fn default() -> Self {
        Self::new(DEFAULT_EPSILON)
    }
}

/// The adaptive partitioner: PKG for the tail, more choices for the head.
#[derive(Debug, Clone)]
pub struct AdaptiveChoices {
    n: usize,
    strategy: ChoiceStrategy,
    config: ChoiceConfig,
    /// Cached `config.theta(n)`.
    theta: f64,
    estimate: Estimate,
    tracker: HeadTracker,
    /// Per-worker capacity weights: every argmin (tail greedy-2, head
    /// sequence, W-Choices global) compares `L_i/c_i` when attached.
    capacities: Option<Capacities>,
    /// Live membership subset of `0..n` (pkg-elastic); `None` is the
    /// untouched fixed-`W` fast path. When set, `theta` and `d_for` are
    /// computed over the live count and candidates land only on live
    /// workers.
    live: Option<Vec<usize>>,
    /// Member seeds of the key hash sequence, `seeds[0..2]` identical to
    /// PKG's two-choice family under the same experiment seed.
    seeds: Vec<u64>,
}

impl AdaptiveChoices {
    /// An adaptive partitioner over `n` workers.
    pub fn new(
        n: usize,
        strategy: ChoiceStrategy,
        config: ChoiceConfig,
        estimate: Estimate,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "need at least one worker");
        assert_eq!(estimate.n(), n, "estimate must cover all workers");
        let theta = config.theta(n);
        Self {
            n,
            strategy,
            config,
            theta,
            estimate,
            tracker: HeadTracker::for_threshold(theta.min(1.0)),
            capacities: None,
            live: None,
            seeds: (0..n as u64).map(|i| member_seed(seed, i)).collect(),
        }
    }

    /// Route by capacity-normalized load `L_i/c_i` using these per-worker
    /// weights (`None` = homogeneous; uniform weights collapse upstream).
    pub fn with_capacities(mut self, capacities: Option<Capacities>) -> Self {
        if let Some(c) = &capacities {
            assert_eq!(c.len(), self.n, "one capacity per worker");
        }
        self.capacities = capacities;
        self
    }

    /// D-Choices with the given imbalance target.
    pub fn d_choices(n: usize, estimate: Estimate, epsilon: f64, seed: u64) -> Self {
        Self::new(n, ChoiceStrategy::DChoices, ChoiceConfig::new(epsilon), estimate, seed)
    }

    /// W-Choices with the given imbalance target.
    pub fn w_choices(n: usize, estimate: Estimate, epsilon: f64, seed: u64) -> Self {
        Self::new(n, ChoiceStrategy::WChoices, ChoiceConfig::new(epsilon), estimate, seed)
    }

    /// The head threshold `θ` in effect.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The candidate-count rule in effect.
    pub fn config(&self) -> &ChoiceConfig {
        &self.config
    }

    /// Read access to the head tracker (tests/diagnostics).
    pub fn tracker(&self) -> &HeadTracker {
        &self.tracker
    }

    /// Whether the *next* message of `key` routes as a head key. Uses the
    /// same prediction as [`Partitioner::route`], so it must be consulted
    /// *before* routing that message (`route` observes the key and can flip
    /// the prediction for the one after).
    pub fn is_head(&self, key: u64) -> bool {
        self.next_head_d(key).is_some()
    }

    /// Number of workers the scheme currently routes over: the live count
    /// under a membership subset, `n` otherwise.
    #[inline]
    fn w_count(&self) -> usize {
        self.live.as_ref().map_or(self.n, Vec::len)
    }

    /// Member `i` of `key`'s hash sequence, reduced onto the current
    /// membership (all of `[0, n)` when never resized).
    #[inline]
    fn choice(&self, i: usize, key: u64) -> usize {
        match &self.live {
            None => (key.hash_seeded(self.seeds[i]) % self.n as u64) as usize,
            Some(live) => live[(key.hash_seeded(self.seeds[i]) % live.len() as u64) as usize],
        }
    }

    /// How the *next* message of `key` will route: `None` for a tail key
    /// (the plain two-choice path), `Some(d)` for a head key (`d = w`
    /// meaning all live workers).
    fn next_head_d(&self, key: u64) -> Option<usize> {
        if !self.tracker.next_is_head(key, self.theta) {
            return None;
        }
        let w = self.w_count();
        Some(match self.strategy {
            ChoiceStrategy::WChoices => w,
            ChoiceStrategy::DChoices => self.config.d_for(self.tracker.next_frequency(key), w),
        })
    }

    /// Least-loaded worker among the first `d` members of `key`'s hash
    /// sequence; ties break toward the earlier member (deterministic, same
    /// rule as PKG).
    #[inline]
    fn argmin_sequence(&mut self, key: u64, d: usize, ts_ms: u64) -> usize {
        let mut best = self.choice(0, key);
        let mut best_load = self.estimate.load(best, ts_ms);
        for i in 1..d {
            let c = self.choice(i, key);
            let l = self.estimate.load(c, ts_ms);
            if pkg_metrics::prefers(self.capacities.as_ref(), l, c, best_load, best) {
                best = c;
                best_load = l;
            }
        }
        best
    }

    /// Least-loaded live worker (W-Choices head path); ties break toward
    /// the lower index.
    #[inline]
    fn argmin_all(&mut self, ts_ms: u64) -> usize {
        let m = self.w_count();
        let mut best = self.live.as_ref().map_or(0, |live| live[0]);
        let mut best_load = self.estimate.load(best, ts_ms);
        for i in 1..m {
            let c = match &self.live {
                None => i,
                Some(live) => live[i],
            };
            let l = self.estimate.load(c, ts_ms);
            if pkg_metrics::prefers(self.capacities.as_ref(), l, c, best_load, best) {
                best = c;
                best_load = l;
            }
        }
        best
    }
}

impl Partitioner for AdaptiveChoices {
    fn route(&mut self, key: u64, ts_ms: u64) -> usize {
        let head_d = self.next_head_d(key);
        self.tracker.observe(key);
        let w_count = self.w_count();
        let w = match head_d {
            // Tail: exactly PKG's greedy-2 over the first two sequence
            // members (ties toward the earlier member), so on streams with
            // no head keys the scheme is byte-identical to PKG.
            None => self.argmin_sequence(key, 2.min(w_count), ts_ms),
            Some(d) if d >= w_count => self.argmin_all(ts_ms),
            Some(d) => self.argmin_sequence(key, d, ts_ms),
        };
        self.estimate.record(w);
        w
    }

    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        match self.strategy {
            ChoiceStrategy::DChoices => format!("D-Choices(ε={})", self.config.epsilon),
            ChoiceStrategy::WChoices => format!("W-Choices(ε={})", self.config.epsilon),
        }
    }

    /// The workers the key's *next* message may go to: the first `d`
    /// members of its hash sequence (all workers for a W-Choices head).
    /// Computed with the same prediction the router uses, so
    /// `candidates(k)` immediately followed by `route(k, _)` always
    /// contains the routed worker.
    fn candidates(&self, key: u64) -> Vec<usize> {
        let w_count = self.w_count();
        match self.next_head_d(key) {
            None => (0..2.min(w_count)).map(|i| self.choice(i, key)).collect(),
            Some(d) if d >= w_count => match &self.live {
                None => (0..self.n).collect(),
                Some(live) => live.clone(),
            },
            Some(d) => (0..d).map(|i| self.choice(i, key)).collect(),
        }
    }

    fn resizable(&self) -> bool {
        true
    }

    /// Re-derives the head threshold `θ = 2(1+ε)/|live|` and the candidate
    /// rule over the live count. The head tracker is kept: it was sized for
    /// `θ_n ≤ θ_live` (live sets only shrink below `n`), so it already
    /// tracks every key that can be head under the new membership.
    fn apply_membership(&mut self, live: &[usize]) {
        check_membership(live, self.n);
        self.theta = self.config.theta(live.len());
        self.live = Some(live.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pkg::PartialKeyGrouping;
    use pkg_metrics::imbalance;

    fn skewed_loads(p: &mut dyn Partitioner, n: usize, m: u64, hot_share: f64) -> Vec<u64> {
        let mut loads = vec![0u64; n];
        let hot_every = (1.0 / hot_share) as u64;
        for i in 0..m {
            let key = if i % hot_every == 0 { 0 } else { i + 1 };
            loads[p.route(key, i)] += 1;
        }
        loads
    }

    #[test]
    fn d_for_is_monotone_and_two_at_theta() {
        let cfg = ChoiceConfig::new(0.1);
        let n = 100;
        assert_eq!(cfg.d_for(cfg.theta(n), n), 2);
        let mut prev = 0;
        for i in 0..=100 {
            let d = cfg.d_for(i as f64 / 100.0, n);
            assert!(d >= prev, "d_for not monotone at p={}", i as f64 / 100.0);
            assert!((2..=n).contains(&d));
            prev = d;
        }
        assert_eq!(cfg.d_for(1.0, n), n.min((100.0f64 / 1.1).ceil() as usize));
    }

    #[test]
    fn tail_routing_is_byte_identical_to_pkg() {
        let n = 16;
        let seed = 9;
        let mut dc = AdaptiveChoices::d_choices(n, Estimate::local(n), 0.1, seed);
        let mut wc = AdaptiveChoices::w_choices(n, Estimate::local(n), 0.1, seed);
        let mut pkg = PartialKeyGrouping::new(n, 2, Estimate::local(n), seed);
        // Cycling uniform keys: none can reach θ = 2.2/16, so all three
        // partitioners make the same decision on every single message.
        for t in 0..20_000u64 {
            let key = t % (4 * n as u64);
            let expect = pkg.route(key, t);
            assert_eq!(dc.route(key, t), expect, "D-Choices diverged at t={t}");
            assert_eq!(wc.route(key, t), expect, "W-Choices diverged at t={t}");
        }
    }

    #[test]
    fn head_key_spreads_past_two_candidates() {
        let n = 50;
        let mut dc = AdaptiveChoices::d_choices(n, Estimate::local(n), 0.1, 3);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..100_000u64 {
            let key = if i % 5 == 0 { 7 } else { i + 1_000 };
            let w = dc.route(key, i);
            if key == 7 {
                seen.insert(w);
            }
        }
        // p̂ ≈ 0.2 → d ≈ ⌈0.2·50/1.1⌉ = 10 candidates (minus collisions).
        assert!(seen.len() > 2, "head key stuck on {} workers", seen.len());
        assert!(seen.len() <= 10, "head key on {} workers, d bound is 10", seen.len());
    }

    #[test]
    fn beats_plain_pkg_past_the_two_choice_limit() {
        let n = 50;
        let m = 200_000;
        let mut pkg = PartialKeyGrouping::new(n, 2, Estimate::local(n), 7);
        let mut dc = AdaptiveChoices::d_choices(n, Estimate::local(n), 0.1, 7);
        let mut wc = AdaptiveChoices::w_choices(n, Estimate::local(n), 0.1, 7);
        let i_pkg = imbalance(&skewed_loads(&mut pkg, n, m, 0.2));
        let i_dc = imbalance(&skewed_loads(&mut dc, n, m, 0.2));
        let i_wc = imbalance(&skewed_loads(&mut wc, n, m, 0.2));
        assert!(i_dc < i_pkg / 4.0, "D-Choices {i_dc} not ≪ PKG {i_pkg}");
        assert!(i_wc < i_pkg / 4.0, "W-Choices {i_wc} not ≪ PKG {i_pkg}");
    }

    #[test]
    fn d_choices_replication_below_w_choices() {
        let n = 40;
        let m = 100_000;
        let run = |mut p: AdaptiveChoices| {
            let mut workers_of_hot = std::collections::BTreeSet::new();
            for i in 0..m {
                let key = if i % 3 == 0 { 0 } else { i + 1 };
                let w = p.route(key, i);
                if key == 0 {
                    workers_of_hot.insert(w);
                }
            }
            workers_of_hot.len()
        };
        let dc = run(AdaptiveChoices::d_choices(n, Estimate::local(n), 0.1, 5));
        let wc = run(AdaptiveChoices::w_choices(n, Estimate::local(n), 0.1, 5));
        assert!(dc < wc, "D-Choices hot-key spread {dc} not below W-Choices {wc}");
        assert_eq!(wc, n, "a 33% key under W-Choices reaches every worker");
    }

    #[test]
    fn candidates_predict_routing() {
        let n = 30;
        let mut p = AdaptiveChoices::d_choices(n, Estimate::local(n), 0.1, 11);
        for i in 0..50_000u64 {
            let key = if i % 4 == 0 { 1 } else { i };
            let cands = p.candidates(key);
            let w = p.route(key, i);
            assert!(cands.contains(&w), "route {w} escaped candidates {cands:?} at t={i}");
        }
    }

    #[test]
    fn candidate_prefixes_are_nested() {
        let p = AdaptiveChoices::d_choices(20, Estimate::local(20), 0.1, 2);
        for key in 0..50u64 {
            let full: Vec<usize> = (0..20).map(|i| p.choice(i, key)).collect();
            for d in 2..20 {
                assert_eq!(&full[..d], &(0..d).map(|i| p.choice(i, key)).collect::<Vec<_>>()[..]);
            }
        }
    }

    #[test]
    fn full_membership_is_byte_identical() {
        let n = 20;
        let mut a = AdaptiveChoices::d_choices(n, Estimate::local(n), 0.1, 13);
        let mut b = AdaptiveChoices::d_choices(n, Estimate::local(n), 0.1, 13);
        b.apply_membership(&(0..n).collect::<Vec<_>>());
        for i in 0..30_000u64 {
            let key = if i % 4 == 0 { 1 } else { i };
            assert_eq!(a.route(key, i), b.route(key, i), "diverged at t={i}");
        }
    }

    #[test]
    fn membership_confines_head_and_tail_to_live_workers() {
        let n = 30;
        for p in [
            AdaptiveChoices::d_choices(n, Estimate::local(n), 0.1, 17),
            AdaptiveChoices::w_choices(n, Estimate::local(n), 0.1, 17),
        ] {
            let mut p = p;
            let live: Vec<usize> = (0..n).step_by(3).collect();
            p.apply_membership(&live);
            // θ is re-derived over the live count.
            assert!((p.theta() - 2.2 / live.len() as f64).abs() < 1e-12);
            for i in 0..50_000u64 {
                let key = if i % 4 == 0 { 1 } else { i };
                let cands = p.candidates(key);
                let w = p.route(key, i);
                assert!(live.contains(&w), "routed to dead worker {w}");
                assert!(cands.contains(&w));
                assert!(cands.iter().all(|c| live.contains(c)));
            }
        }
    }

    #[test]
    fn single_worker_degenerates() {
        let mut p = AdaptiveChoices::w_choices(1, Estimate::local(1), 0.1, 0);
        for i in 0..100u64 {
            assert_eq!(p.route(i % 3, i), 0);
        }
    }

    #[test]
    #[should_panic(expected = "estimate must cover")]
    fn mismatched_estimate_panics() {
        let _ = AdaptiveChoices::d_choices(4, Estimate::local(3), 0.1, 0);
    }
}
