//! Load estimation strategies (Q2 of the evaluation).
//!
//! PoTC needs to know worker loads to pick the less-loaded candidate. In a
//! distributed engine that knowledge is not free; the paper's second
//! contribution is that **local** estimation suffices: "each source
//! independently maintains a local load-estimate vector with one element per
//! worker … as long as each source keeps its own portion of load balanced,
//! then the overall load on the workers will also be balanced" (§III-B,
//! correctness from `L_i(t) = Σ_j L_i^j(t)`).
//!
//! Three strategies are modeled:
//! * [`Estimate::Global`] — "G": read the true shared loads (an oracle; in a
//!   real deployment this would require constant worker→source feedback).
//! * [`Estimate::Local`] — "L": the paper's proposal; a plain per-source
//!   vector counting only this source's own traffic.
//! * [`Estimate::Probing`] — "LP": local, but re-synchronized to the true
//!   loads every `period_ms` of stream time (the paper shows this buys
//!   nothing over plain L — our ablation reproduces that).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pkg_metrics::{Capacities, CapacityEstimator, LoadMetricKind};

use crate::signals::SharedSignals;

/// The true worker loads, shared between the simulation (which maintains
/// them) and any estimators that are allowed to read them.
///
/// On a heterogeneous cluster the loads additionally carry per-worker
/// capacity weights ([`SharedLoads::with_capacities`]); scheme builders
/// read them back via [`SharedLoads::capacities`] so every source routes by
/// capacity-normalized load. Uniform weights collapse to `None` and the
/// schemes keep their exact capacity-free code paths.
/// The load *signal* a scheme minimizes is pluggable
/// ([`SharedLoads::with_signals`]): when signal state is attached,
/// [`SharedLoads::signal`] combines the tuple count with pending/latency
/// observations per the active [`LoadMetricKind`]. The default
/// configuration attaches nothing and keeps the raw count — byte-identical
/// to the pre-signal structure.
#[derive(Debug, Clone, Default)]
pub struct SharedLoads {
    loads: Arc<Vec<AtomicU64>>,
    capacities: Option<Capacities>,
    signals: Option<Arc<SharedSignals>>,
}

impl SharedLoads {
    /// Zeroed shared loads for `n` workers (homogeneous cluster).
    pub fn new(n: usize) -> Self {
        Self {
            loads: Arc::new((0..n).map(|_| AtomicU64::new(0)).collect()),
            capacities: None,
            signals: None,
        }
    }

    /// Attach per-worker capacity weights (one per worker; uniform weights
    /// collapse — see [`Capacities::heterogeneous`]).
    ///
    /// # Panics
    /// Panics if `capacities.len() != self.n()` or any weight is
    /// non-finite or ≤ 0.
    pub fn with_capacities(mut self, capacities: &[f64]) -> Self {
        assert_eq!(capacities.len(), self.n(), "one capacity per worker");
        self.capacities = Capacities::heterogeneous(capacities);
        self
    }

    /// Attach pluggable load-signal state (metric + optional online
    /// capacity estimator). The default configuration (`TupleCount`, no
    /// estimator) attaches nothing — see [`SharedSignals::attach`].
    pub fn with_signals(
        mut self,
        kind: LoadMetricKind,
        estimator: Option<Arc<CapacityEstimator>>,
    ) -> Self {
        self.signals = SharedSignals::attach(self.n(), kind, estimator);
        self
    }

    /// The attached signal state, if any.
    pub fn signals(&self) -> Option<&Arc<SharedSignals>> {
        self.signals.as_ref()
    }

    /// Label of the active load metric (`"count"` when no signals are
    /// attached).
    pub fn metric_label(&self) -> &'static str {
        match &self.signals {
            Some(s) => s.kind().label(),
            None => "count",
        }
    }

    /// The capacity weights (`None` for a homogeneous cluster).
    pub fn capacities(&self) -> Option<&Capacities> {
        self.capacities.as_ref()
    }

    /// Number of workers.
    pub fn n(&self) -> usize {
        self.loads.len()
    }

    /// Add one message to worker `w`'s true load.
    #[inline]
    pub fn record(&self, w: usize) {
        // ordering: Relaxed — independent per-worker tallies; readers only
        // need eventual counts (sweep results are joined before reading)
        self.loads[w].fetch_add(1, Ordering::Relaxed);
    }

    /// Read worker `w`'s true load.
    #[inline]
    pub fn load(&self, w: usize) -> u64 {
        // ordering: Relaxed — monotone counter read; no cross-load ordering
        self.loads[w].load(Ordering::Relaxed)
    }

    /// The load *signal* of worker `w` under the active metric — the raw
    /// count when no signals are attached.
    #[inline]
    pub fn signal(&self, w: usize) -> u64 {
        let count = self.load(w);
        match &self.signals {
            Some(s) => s.signal(w, count),
            None => count,
        }
    }

    /// Snapshot all loads.
    pub fn snapshot(&self) -> Vec<u64> {
        // ordering: Relaxed — snapshot is advisory (imbalance metrics), and
        // exact snapshots are taken after the generating threads joined
        self.loads.iter().map(|l| l.load(Ordering::Relaxed)).collect()
    }
}

/// Which estimation strategy to build (used by scheme specifications).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimateKind {
    /// Per-source local estimation ("L") — the paper's technique.
    Local,
    /// Global oracle ("G").
    Global,
    /// Local with periodic probing every `period_ms` ("LP").
    Probing {
        /// Probe interval in simulated milliseconds.
        period_ms: u64,
    },
}

impl EstimateKind {
    /// Instantiate for `n` workers against the given true loads.
    ///
    /// When `shared` carries attached load signals, *every* kind builds a
    /// [`Estimate::Global`]: pending counters and latency EWMAs are shared
    /// feedback by nature — a per-source local count cannot represent them
    /// — so adaptive metrics imply the oracle ("G") estimation mode. The
    /// default (no signals) path dispatches exactly as before.
    pub fn build(&self, n: usize, shared: &SharedLoads) -> Estimate {
        if shared.signals().is_some() {
            return Estimate::global(shared.clone());
        }
        match *self {
            EstimateKind::Local => Estimate::local(n),
            EstimateKind::Global => Estimate::global(shared.clone()),
            EstimateKind::Probing { period_ms } => Estimate::probing(shared.clone(), period_ms),
        }
    }

    /// Short label used in experiment output ("L", "G", "P1"…).
    pub fn label(&self) -> String {
        match *self {
            EstimateKind::Local => "L".into(),
            EstimateKind::Global => "G".into(),
            EstimateKind::Probing { period_ms } => {
                format!("P{}", period_ms / 60_000) // minutes, like the paper's L5P1
            }
        }
    }
}

/// A live load estimate held by one source's partitioner.
#[derive(Debug, Clone)]
pub enum Estimate {
    /// Own-traffic-only counters.
    Local(Vec<u64>),
    /// Handle to the true loads.
    Global(SharedLoads),
    /// Own counters, periodically reset to the true loads.
    Probing {
        /// Local estimate vector.
        local: Vec<u64>,
        /// The true loads to probe.
        shared: SharedLoads,
        /// Probe interval (simulated ms).
        period_ms: u64,
        /// Next probe deadline (simulated ms).
        next_probe_ms: u64,
    },
}

impl Estimate {
    /// Fresh local estimate over `n` workers.
    pub fn local(n: usize) -> Self {
        Estimate::Local(vec![0; n])
    }

    /// Oracle estimate reading the true loads.
    pub fn global(shared: SharedLoads) -> Self {
        Estimate::Global(shared)
    }

    /// Local estimate probing the true loads every `period_ms`.
    pub fn probing(shared: SharedLoads, period_ms: u64) -> Self {
        assert!(period_ms > 0, "probe period must be positive");
        let n = shared.n();
        Estimate::Probing { local: vec![0; n], shared, period_ms, next_probe_ms: period_ms }
    }

    /// Number of workers covered.
    pub fn n(&self) -> usize {
        match self {
            Estimate::Local(v) => v.len(),
            Estimate::Global(s) => s.n(),
            Estimate::Probing { local, .. } => local.len(),
        }
    }

    /// Estimated load of worker `w` at stream time `ts_ms`.
    ///
    /// Probing estimates refresh themselves from the true loads when the
    /// probe deadline has passed.
    #[inline]
    pub fn load(&mut self, w: usize, ts_ms: u64) -> u64 {
        match self {
            Estimate::Local(v) => v[w],
            // The shared signal degenerates to the raw load whenever no
            // signal state is attached — today's oracle, byte-identical.
            Estimate::Global(s) => s.signal(w),
            Estimate::Probing { local, shared, period_ms, next_probe_ms } => {
                if ts_ms >= *next_probe_ms {
                    for (l, w_id) in local.iter_mut().zip(0..) {
                        *l = shared.load(w_id);
                    }
                    // Skip ahead past any idle gap.
                    let periods = (ts_ms - *next_probe_ms) / *period_ms + 1;
                    *next_probe_ms += periods * *period_ms;
                }
                local[w]
            }
        }
    }

    /// Account one message routed to worker `w` by *this source*.
    ///
    /// Global estimates do nothing here: the true loads are maintained by
    /// the simulation/engine itself, exactly once per message.
    #[inline]
    pub fn record(&mut self, w: usize) {
        match self {
            Estimate::Local(v) => v[w] += 1,
            Estimate::Global(_) => {}
            Estimate::Probing { local, .. } => local[w] += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_counts_own_traffic_only() {
        let shared = SharedLoads::new(3);
        let mut e = Estimate::local(3);
        e.record(1);
        e.record(1);
        shared.record(2); // someone else's traffic
        assert_eq!(e.load(1, 0), 2);
        assert_eq!(e.load(2, 0), 0, "local estimate must not see shared loads");
    }

    #[test]
    fn global_reads_shared_truth() {
        let shared = SharedLoads::new(2);
        let mut e = Estimate::global(shared.clone());
        shared.record(0);
        shared.record(0);
        assert_eq!(e.load(0, 0), 2);
        e.record(0); // no-op by design
        assert_eq!(e.load(0, 0), 2);
    }

    #[test]
    fn probing_refreshes_at_deadline() {
        let shared = SharedLoads::new(2);
        let mut e = Estimate::probing(shared.clone(), 1_000);
        shared.record(0);
        shared.record(0);
        shared.record(0);
        // Before the first deadline: sees only its own (zero) traffic.
        assert_eq!(e.load(0, 999), 0);
        // At the deadline: synchronized with the truth.
        assert_eq!(e.load(0, 1_000), 3);
        // Own recordings accumulate on top until the next probe.
        e.record(0);
        assert_eq!(e.load(0, 1_500), 4);
    }

    #[test]
    fn probing_skips_idle_gaps() {
        let shared = SharedLoads::new(1);
        let mut e = Estimate::probing(shared.clone(), 100);
        shared.record(0);
        // Far past many periods: a single probe lands us on the truth and
        // the next deadline is strictly in the future.
        assert_eq!(e.load(0, 10_050), 1);
        shared.record(0);
        assert_eq!(e.load(0, 10_060), 1, "no re-probe before next deadline");
        assert_eq!(e.load(0, 10_100), 2);
    }

    #[test]
    fn shared_loads_snapshot() {
        let s = SharedLoads::new(3);
        s.record(0);
        s.record(2);
        s.record(2);
        assert_eq!(s.snapshot(), vec![1, 0, 2]);
    }

    #[test]
    fn shared_loads_carry_capacities() {
        let s = SharedLoads::new(3).with_capacities(&[4.0, 1.0, 1.0]);
        let caps = s.capacities().expect("heterogeneous weights kept");
        assert!((caps.weight(0) / caps.weight(1) - 4.0).abs() < 1e-12);
        // Clones share the weights (sources must agree on them).
        assert_eq!(s.clone().capacities(), Some(caps));
        // Uniform weights collapse — the homogeneous fast path stays.
        assert!(SharedLoads::new(3).with_capacities(&[2.0, 2.0, 2.0]).capacities().is_none());
        assert!(SharedLoads::new(2).capacities().is_none());
    }

    #[test]
    fn default_signals_collapse_and_signal_is_the_load() {
        let s = SharedLoads::new(3).with_signals(LoadMetricKind::TupleCount, None);
        assert!(s.signals().is_none(), "TupleCount + no estimator must attach nothing");
        assert_eq!(s.metric_label(), "count");
        s.record(1);
        assert_eq!(s.signal(1), s.load(1));
        // The default path still builds per-kind estimates.
        assert!(matches!(EstimateKind::Local.build(3, &s), Estimate::Local(_)));
    }

    #[test]
    fn attached_signals_force_global_estimation() {
        let s = SharedLoads::new(3).with_signals(LoadMetricKind::PendingRequests, None);
        assert!(s.signals().is_some());
        assert_eq!(s.metric_label(), "pending");
        for kind in
            [EstimateKind::Local, EstimateKind::Global, EstimateKind::Probing { period_ms: 1_000 }]
        {
            assert!(
                matches!(kind.build(3, &s), Estimate::Global(_)),
                "adaptive signals are shared feedback: {kind:?} must go global"
            );
        }
    }

    #[test]
    fn global_estimate_reads_the_pluggable_signal() {
        let s = SharedLoads::new(2).with_signals(LoadMetricKind::PendingRequests, None);
        let sig = s.signals().expect("attached").clone();
        let mut e = Estimate::global(s.clone());
        s.record(0); // counts don't move the pending metric
        assert_eq!(e.load(0, 0), 0);
        sig.dispatch(0);
        sig.dispatch(0);
        assert_eq!(e.load(0, 0), 2);
        sig.complete(0, 0);
        assert_eq!(e.load(0, 0), 1);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(EstimateKind::Local.label(), "L");
        assert_eq!(EstimateKind::Global.label(), "G");
        assert_eq!(EstimateKind::Probing { period_ms: 60_000 }.label(), "P1");
    }
}
