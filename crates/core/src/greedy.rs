//! The greedy baselines of Q1 (Table II).
//!
//! * [`OnlineGreedy`] ("On-Greedy"): an online algorithm that assigns each
//!   *new* key to the least-loaded worker over **all** `n` workers (not just
//!   two hash candidates) and pins it there. It preserves key-grouping
//!   semantics at the cost of a full routing table and global choice.
//! * [`OfflineGreedy`] ("Off-Greedy"): the offline yardstick — it "sorts the
//!   keys by decreasing frequency and executes On-Greedy" (§V-B), i.e. the
//!   classic LPT assignment given the whole key histogram in advance. It is
//!   an unfair comparison for online algorithms; remarkably, Table II shows
//!   PKG beating it, because key splitting can do what no single-worker
//!   assignment can.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pkg_hash::{FxHashMap, HashFamily};
use pkg_metrics::Capacities;

use crate::estimator::Estimate;
use crate::partitioner::{check_membership, family, Partitioner};

/// A key-frequency histogram (key id → occurrence count), the input to
/// Off-Greedy.
#[derive(Debug, Clone, Default)]
pub struct KeyFrequencies {
    counts: FxHashMap<u64, u64>,
}

impl KeyFrequencies {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of keys.
    pub fn from_keys<I: IntoIterator<Item = u64>>(keys: I) -> Self {
        let mut h = Self::new();
        for k in keys {
            h.add(k);
        }
        h
    }

    /// Count one occurrence of `key`.
    #[inline]
    pub fn add(&mut self, key: u64) {
        *self.counts.entry(key).or_default() += 1;
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total occurrences.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Keys sorted by decreasing frequency (ties by key id, for
    /// determinism).
    pub fn sorted_desc(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// On-Greedy: new keys go to the globally least-loaded worker and stick.
#[derive(Debug, Clone)]
pub struct OnlineGreedy {
    n: usize,
    estimate: Estimate,
    table: FxHashMap<u64, u32>,
    /// Per-worker capacity weights: new keys go to the least
    /// capacity-normalized worker when attached.
    capacities: Option<Capacities>,
    /// Live membership subset of `0..n` (pkg-elastic); `None` is the
    /// untouched fixed-`W` fast path.
    live: Option<Vec<usize>>,
    /// Fallback hash for deterministic tie-breaking order of workers.
    _family: HashFamily,
}

impl OnlineGreedy {
    /// On-Greedy over `n` workers consulting `estimate` on first sight.
    pub fn new(n: usize, estimate: Estimate, seed: u64) -> Self {
        assert!(n > 0, "need at least one worker");
        assert_eq!(estimate.n(), n, "estimate must cover all workers");
        Self {
            n,
            estimate,
            table: FxHashMap::default(),
            capacities: None,
            live: None,
            _family: family(1, seed),
        }
    }

    /// Route by capacity-normalized load `L_i/c_i` using these per-worker
    /// weights (`None` = homogeneous; uniform weights collapse upstream).
    pub fn with_capacities(mut self, capacities: Option<Capacities>) -> Self {
        if let Some(c) = &capacities {
            assert_eq!(c.len(), self.n, "one capacity per worker");
        }
        self.capacities = capacities;
        self
    }

    /// Number of routing-table entries.
    pub fn table_entries(&self) -> usize {
        self.table.len()
    }
}

impl Partitioner for OnlineGreedy {
    #[inline]
    fn route(&mut self, key: u64, ts_ms: u64) -> usize {
        let w = match self.table.get(&key) {
            Some(&w) => w as usize,
            None => {
                // Argmin over the live set (all of 0..n when never resized);
                // ties break toward the earlier live member.
                let m = self.live.as_ref().map_or(self.n, Vec::len);
                let mut best = self.live.as_ref().map_or(0, |live| live[0]);
                let mut best_load = self.estimate.load(best, ts_ms);
                for i in 1..m {
                    let w = match &self.live {
                        None => i,
                        Some(live) => live[i],
                    };
                    let l = self.estimate.load(w, ts_ms);
                    if pkg_metrics::prefers(self.capacities.as_ref(), l, w, best_load, best) {
                        best = w;
                        best_load = l;
                    }
                }
                self.table.insert(key, best as u32);
                best
            }
        };
        self.estimate.record(w);
        w
    }

    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        "OnlineGreedy".into()
    }

    fn resizable(&self) -> bool {
        true
    }

    /// Evicts routing-table entries pinned to dead workers — those keys are
    /// re-placed on the least-loaded live worker at next sight.
    fn apply_membership(&mut self, live: &[usize]) {
        check_membership(live, self.n);
        self.table.retain(|_, w| live.binary_search(&(*w as usize)).is_ok());
        self.live = Some(live.to_vec());
    }
}

/// Off-Greedy: LPT assignment of keys to workers from a full histogram.
#[derive(Debug, Clone)]
pub struct OfflineGreedy {
    n: usize,
    table: FxHashMap<u64, u32>,
    fallback: HashFamily,
}

impl OfflineGreedy {
    /// Assign all keys of `freqs` by decreasing frequency, each to the
    /// worker with the smallest accumulated expected load. Keys absent from
    /// the histogram (possible when a scheme is evaluated on a different
    /// sample than it was fitted on) fall back to hashing.
    pub fn new(n: usize, freqs: &KeyFrequencies, seed: u64) -> Self {
        assert!(n > 0, "need at least one worker");
        let mut table = FxHashMap::default();
        table.reserve(freqs.distinct());
        // Min-heap of (accumulated load, worker).
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> =
            (0..n as u32).map(|w| Reverse((0u64, w))).collect();
        for (key, count) in freqs.sorted_desc() {
            let Reverse((load, w)) = heap.pop().expect("n ≥ 1 workers in heap");
            table.insert(key, w);
            heap.push(Reverse((load + count, w)));
        }
        Self { n, table, fallback: family(1, seed) }
    }

    /// Heterogeneous LPT: each key (by decreasing frequency) goes to the
    /// worker minimizing the *completion time* `(load + count)/c_w` — the
    /// classic LPT rule on uniform machines. `capacities: None` is exactly
    /// [`Self::new`].
    pub fn weighted(
        n: usize,
        freqs: &KeyFrequencies,
        seed: u64,
        capacities: Option<&Capacities>,
    ) -> Self {
        let Some(caps) = capacities else {
            return Self::new(n, freqs, seed);
        };
        assert!(n > 0, "need at least one worker");
        assert_eq!(caps.len(), n, "one capacity per worker");
        let mut table = FxHashMap::default();
        table.reserve(freqs.distinct());
        let mut loads = vec![0u64; n];
        for (key, count) in freqs.sorted_desc() {
            // Linear argmin (ties toward the lower index): the float keys
            // rule out the integer min-heap of the homogeneous path.
            let mut best = 0usize;
            let mut best_cost = (loads[0] + count) as f64 / caps.weight(0);
            for (w, &load) in loads.iter().enumerate().skip(1) {
                let cost = (load + count) as f64 / caps.weight(w);
                if cost < best_cost {
                    best = w;
                    best_cost = cost;
                }
            }
            table.insert(key, best as u32);
            loads[best] += count;
        }
        Self { n, table, fallback: family(1, seed) }
    }

    /// The planned (expected) per-worker loads of the assignment.
    pub fn planned_loads(&self, freqs: &KeyFrequencies) -> Vec<u64> {
        let mut loads = vec![0u64; self.n];
        for (key, count) in freqs.sorted_desc() {
            if let Some(&w) = self.table.get(&key) {
                loads[w as usize] += count;
            }
        }
        loads
    }
}

impl Partitioner for OfflineGreedy {
    #[inline]
    fn route(&mut self, key: u64, _ts_ms: u64) -> usize {
        match self.table.get(&key) {
            Some(&w) => w as usize,
            None => self.fallback.choice(0, &key, self.n),
        }
    }

    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        "OfflineGreedy".into()
    }

    fn candidates(&self, key: u64) -> Vec<usize> {
        match self.table.get(&key) {
            Some(&w) => vec![w as usize],
            None => vec![self.fallback.choice(0, &key, self.n)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_sorted_desc() {
        let f = KeyFrequencies::from_keys([1, 2, 2, 3, 3, 3]);
        assert_eq!(f.distinct(), 3);
        assert_eq!(f.total(), 6);
        assert_eq!(f.sorted_desc(), vec![(3, 3), (2, 2), (1, 1)]);
    }

    #[test]
    fn online_greedy_pins_keys() {
        let mut g = OnlineGreedy::new(5, Estimate::local(5), 1);
        let w = g.route(9, 0);
        for t in 1..50 {
            assert_eq!(g.route(9, t), w);
        }
        assert_eq!(g.table_entries(), 1);
    }

    #[test]
    fn online_greedy_spreads_new_keys_to_least_loaded() {
        let mut g = OnlineGreedy::new(3, Estimate::local(3), 2);
        // Keys 0,1,2 land on three distinct workers (each new key sees the
        // previous ones' load).
        let w0 = g.route(0, 0);
        let w1 = g.route(1, 0);
        let w2 = g.route(2, 0);
        let mut ws = [w0, w1, w2];
        ws.sort_unstable();
        assert_eq!(ws, [0, 1, 2]);
    }

    #[test]
    fn online_greedy_membership_evicts_and_reroutes() {
        let mut g = OnlineGreedy::new(4, Estimate::local(4), 3);
        for k in 0..200u64 {
            g.route(k, 0);
        }
        let before = g.table_entries();
        let live = [1usize, 3];
        g.apply_membership(&live);
        assert!(g.table_entries() < before);
        for k in 0..400u64 {
            assert!(live.contains(&g.route(k, 1)));
        }
    }

    #[test]
    fn offline_greedy_membership_is_unsupported() {
        let f = KeyFrequencies::from_keys([1, 2, 3]);
        let g = OfflineGreedy::new(4, &f, 0);
        assert!(!g.resizable());
    }

    #[test]
    #[should_panic(expected = "does not support membership changes")]
    fn offline_greedy_apply_membership_panics() {
        let f = KeyFrequencies::from_keys([1, 2, 3]);
        let mut g = OfflineGreedy::new(4, &f, 0);
        g.apply_membership(&[0, 1]);
    }

    #[test]
    fn offline_greedy_is_optimal_on_equal_frequencies() {
        // 6 keys × 10 occurrences over 3 workers → perfectly balanced.
        let f = KeyFrequencies::from_keys((0..6).flat_map(|k| std::iter::repeat_n(k, 10)));
        let g = OfflineGreedy::new(3, &f, 0);
        let loads = g.planned_loads(&f);
        assert_eq!(loads, vec![20, 20, 20]);
    }

    #[test]
    fn offline_greedy_lpt_classic_case() {
        // Frequencies 5,4,3,3,3 over 2 workers. LPT assigns 5→A, 4→B, 3→B,
        // 3→A, 3→B giving 8/10 (the optimum 9/9 shows LPT's 7/6 bound —
        // Off-Greedy is greedy, not optimal, exactly as in the paper).
        let mut f = KeyFrequencies::new();
        for (k, c) in [(0u64, 5u64), (1, 4), (2, 3), (3, 3), (4, 3)] {
            for _ in 0..c {
                f.add(k);
            }
        }
        let g = OfflineGreedy::new(2, &f, 0);
        let mut loads = g.planned_loads(&f);
        loads.sort_unstable();
        assert_eq!(loads, vec![8, 10]);
    }

    #[test]
    fn online_greedy_weighted_fills_fast_worker_first() {
        // Worker 0 is 3×: with per-key unit loads, normalized loads are
        // L_0/[1.8] vs L_{1,2}/[0.6] — the first three new keys land 0, 0, 1
        // (after two keys worker 0 sits at 2/1.8 > 0/0.6).
        let caps = Capacities::heterogeneous(&[3.0, 1.0, 1.0]);
        let mut g = OnlineGreedy::new(3, Estimate::local(3), 2).with_capacities(caps);
        let mut loads = [0u64; 3];
        for key in 0..40u64 {
            loads[g.route(key, 0)] += 1;
        }
        // 3× capacity absorbs ~3/5 of the 40 unit keys.
        assert!((loads[0] as i64 - 24).unsigned_abs() <= 2, "loads = {loads:?}");
        assert!(loads[1] > 0 && loads[2] > 0);
    }

    #[test]
    fn offline_greedy_weighted_matches_unweighted_without_capacities() {
        let f = KeyFrequencies::from_keys((0..30u64).flat_map(|k| std::iter::repeat_n(k, 3)));
        let a = OfflineGreedy::new(4, &f, 1);
        let b = OfflineGreedy::weighted(4, &f, 1, None);
        for k in 0..30u64 {
            assert_eq!(a.candidates(k), b.candidates(k));
        }
    }

    #[test]
    fn offline_greedy_weighted_loads_track_capacity() {
        use pkg_metrics::weighted_imbalance;
        // 120 unit keys over capacities 2:1:1 → planned loads ≈ 60/30/30.
        let caps = Capacities::heterogeneous(&[2.0, 1.0, 1.0]).expect("het");
        let f = KeyFrequencies::from_keys(0..120u64);
        let g = OfflineGreedy::weighted(3, &f, 0, Some(&caps));
        let loads = g.planned_loads(&f);
        assert_eq!(loads.iter().sum::<u64>(), 120);
        assert_eq!(loads[0], 60, "2× worker takes half the mass: {loads:?}");
        assert!(weighted_imbalance(&loads, Some(&caps)) < 1.0);
    }

    #[test]
    fn offline_greedy_unknown_key_falls_back_to_hash() {
        let f = KeyFrequencies::from_keys([1, 2, 3]);
        let mut g = OfflineGreedy::new(4, &f, 7);
        let w = g.route(999, 0);
        assert!(w < 4);
        assert_eq!(g.route(999, 1), w, "fallback must be deterministic");
    }

    #[test]
    fn offline_beats_hashing_on_skew() {
        use crate::key_grouping::KeyGrouping;
        use pkg_metrics::imbalance;
        // Zipf-ish: key k has frequency ~ 1000/(k+1).
        let mut f = KeyFrequencies::new();
        let mut stream = Vec::new();
        for k in 0..100u64 {
            for _ in 0..(1000 / (k + 1)) {
                f.add(k);
                stream.push(k);
            }
        }
        let n = 10;
        let mut off = OfflineGreedy::new(n, &f, 3);
        let mut kg = KeyGrouping::new(n, 3);
        let mut l_off = vec![0u64; n];
        let mut l_kg = vec![0u64; n];
        for &k in &stream {
            l_off[off.route(k, 0)] += 1;
            l_kg[kg.route(k, 0)] += 1;
        }
        assert!(imbalance(&l_off) < imbalance(&l_kg));
    }
}
