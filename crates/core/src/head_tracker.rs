//! Streaming head-key detection: a Space-Saving-style top-key frequency
//! estimator.
//!
//! The D-Choices/W-Choices schemes of the journal follow-up ("When Two
//! Choices Are not Enough", Nasir et al., ICDE 2016) must distinguish the
//! few *head* keys — too frequent for two workers to absorb — from the long
//! tail, online, per source, in constant memory. This module implements the
//! estimator they assume: a [Space-Saving] summary of `capacity` counters
//! over 64-bit key identifiers.
//!
//! It is deliberately independent of `pkg-agg`'s `SpaceSaving` sketch (which
//! carries per-counter error bounds, merge support and a codec for the
//! aggregation phase): `pkg-core` stays dependency-free, and routing needs
//! only the overestimated count, whose guarantee is what makes head
//! classification *provably* conservative:
//!
//! * `count(k) ≥ occ(k)` — a genuinely hot key is never missed;
//! * `count(k) ≤ occ(k) + total/capacity` — a key is overestimated by at
//!   most the summary's minimum, so with `capacity ≥ 8/θ` and the warm-up
//!   rule below, a key whose true frequency stays under `3θ/4` can never be
//!   classified head. That determinism is what lets D-Choices degenerate to
//!   *byte-identical* PKG routing on uniform streams (pinned by
//!   `tests/property_tests.rs`).
//!
//! **Warm-up:** nothing is head until `total · θ ≥ WARMUP_MASS`. With a
//! tiny sample every first occurrence would trivially clear any relative
//! threshold, and misclassifying cold keys as hot costs replication.
//!
//! [Space-Saving]: Metwally, Agrawal, El Abbadi — "Efficient computation of
//! frequent and top-k elements in data streams", ICDT 2005.

use std::collections::BTreeMap;

use pkg_hash::{FxHashMap, FxHashSet};

/// Observations of estimated-frequency mass a key must be able to amass
/// before head classification switches on (`total ≥ WARMUP_MASS / θ`).
const WARMUP_MASS: f64 = 8.0;

/// A Space-Saving summary estimating the stream's top key frequencies.
#[derive(Debug, Clone)]
pub struct HeadTracker {
    /// Authoritative counts (the Space-Saving overestimates).
    counts: FxHashMap<u64, u64>,
    /// Inverted index `count → keys at that count`; `first_key_value` is the
    /// summary minimum, giving O(log capacity) eviction.
    buckets: BTreeMap<u64, FxHashSet<u64>>,
    capacity: usize,
    total: u64,
}

impl HeadTracker {
    /// A tracker with the given counter budget (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "tracker needs at least one counter");
        Self { counts: FxHashMap::default(), buckets: BTreeMap::new(), capacity, total: 0 }
    }

    /// A tracker sized for head threshold `θ`: `capacity = ⌈8/θ⌉` counters
    /// (at least 64), so overestimation stays below `θ/8` of the stream.
    pub fn for_threshold(theta: f64) -> Self {
        assert!(theta > 0.0 && theta <= 1.0, "threshold must be in (0,1]");
        Self::new(64.max((WARMUP_MASS / theta).ceil() as usize))
    }

    /// Count one occurrence of `key`; returns its updated count estimate.
    pub fn observe(&mut self, key: u64) -> u64 {
        self.total += 1;
        if let Some(c) = self.counts.get_mut(&key) {
            let old = *c;
            *c += 1;
            let new = *c;
            self.move_bucket(key, old, new);
            return new;
        }
        let count = if self.counts.len() < self.capacity {
            1
        } else {
            // Summary full: evict one minimum-count key and inherit its
            // count plus one (the Space-Saving replacement rule).
            let (&min, keys) = self.buckets.iter_mut().next().expect("full summary has buckets");
            let victim = *keys.iter().next().expect("buckets are never empty");
            keys.remove(&victim);
            if keys.is_empty() {
                self.buckets.remove(&min);
            }
            self.counts.remove(&victim);
            min + 1
        };
        self.counts.insert(key, count);
        self.buckets.entry(count).or_default().insert(key);
        count
    }

    fn move_bucket(&mut self, key: u64, old: u64, new: u64) {
        let bucket = self.buckets.get_mut(&old).expect("tracked key has a bucket");
        bucket.remove(&key);
        if bucket.is_empty() {
            self.buckets.remove(&old);
        }
        self.buckets.entry(new).or_default().insert(key);
    }

    /// Estimated count of `key` (its Space-Saving overestimate; 0 if
    /// untracked — the key's true count is then below the summary minimum
    /// plus one, i.e. certifiably tail).
    #[inline]
    pub fn count(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Estimated frequency of `key` in the observed stream (0 before any
    /// observation).
    #[inline]
    pub fn frequency(&self, key: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(key) as f64 / self.total as f64
        }
    }

    /// Whether enough mass has been observed for threshold `theta` to be
    /// meaningful (see module docs).
    #[inline]
    pub fn warmed_up(&self, theta: f64) -> bool {
        self.total as f64 * theta >= WARMUP_MASS
    }

    /// Estimated frequency `key` would have *after one more occurrence* —
    /// what [`observe`](Self::observe)-then-classify will see. Routing uses
    /// this so a key's reported candidate set is always a superset of where
    /// its next message can go.
    #[inline]
    pub fn next_frequency(&self, key: u64) -> f64 {
        let next_count = if self.counts.contains_key(&key) {
            self.count(key) + 1
        } else if self.counts.len() < self.capacity {
            1
        } else {
            self.buckets.keys().next().copied().unwrap_or(0) + 1
        };
        next_count as f64 / (self.total + 1) as f64
    }

    /// Whether the *next* occurrence of `key` will classify as head at
    /// threshold `theta`.
    #[inline]
    pub fn next_is_head(&self, key: u64, theta: f64) -> bool {
        (self.total + 1) as f64 * theta >= WARMUP_MASS && self.next_frequency(key) >= theta
    }

    /// Total observations so far.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of keys currently tracked (≤ capacity).
    pub fn tracked(&self) -> usize {
        self.counts.len()
    }

    /// Counter budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_exactly_below_capacity() {
        let mut t = HeadTracker::new(16);
        for i in 0..10u64 {
            for _ in 0..=i {
                t.observe(i);
            }
        }
        for i in 0..10u64 {
            assert_eq!(t.count(i), i + 1);
        }
        assert_eq!(t.total(), 55);
        assert_eq!(t.tracked(), 10);
    }

    #[test]
    fn overestimates_but_never_underestimates() {
        // 4 counters, 20 distinct keys, one genuinely hot.
        let mut t = HeadTracker::new(4);
        let mut occ = std::collections::HashMap::new();
        for i in 0..2_000u64 {
            let key = if i % 3 == 0 { 0 } else { 1 + (i % 19) };
            t.observe(key);
            *occ.entry(key).or_insert(0u64) += 1;
        }
        assert!(t.tracked() <= 4);
        // The Space-Saving guarantees on every tracked key.
        let min = t.buckets.keys().next().copied().expect("non-empty");
        assert!(min <= t.total() / 4, "min {} > total/capacity", min);
        assert!(t.count(0) >= occ[&0], "hot key underestimated");
        for (&k, &o) in &occ {
            if t.count(k) > 0 {
                assert!(t.count(k) <= o + min, "key {k} overestimated past occ+min");
            }
        }
    }

    #[test]
    fn hot_key_frequency_converges() {
        let mut t = HeadTracker::for_threshold(0.05);
        for i in 0..50_000u64 {
            let key = if i % 5 == 0 { 42 } else { i };
            t.observe(key);
        }
        let f = t.frequency(42);
        assert!((f - 0.2).abs() < 0.02, "estimated hot frequency {f}");
        assert!(t.warmed_up(0.05));
    }

    #[test]
    fn uniform_keys_never_classify_head_after_warmup() {
        // The determinism the PKG-degeneration property rests on: cycling
        // uniform keys stay below θ at every single step.
        let theta = 0.05;
        let mut t = HeadTracker::for_threshold(theta);
        for i in 0..100_000u64 {
            let key = i % 500;
            assert!(!t.next_is_head(key, theta), "uniform key {key} classified head at t={i}");
            t.observe(key);
        }
    }

    #[test]
    fn next_frequency_predicts_observe() {
        let mut t = HeadTracker::new(8);
        for i in 0..5_000u64 {
            let key = i % 21;
            let predicted = t.next_frequency(key);
            let c = t.observe(key);
            let actual = c as f64 / t.total() as f64;
            assert!((predicted - actual).abs() < 1e-12, "prediction drifted at {i}");
        }
    }

    #[test]
    fn capacity_is_respected_under_all_distinct_keys() {
        let mut t = HeadTracker::new(32);
        for i in 0..10_000u64 {
            t.observe(i);
        }
        assert_eq!(t.tracked(), 32);
        assert_eq!(t.total(), 10_000);
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_capacity_panics() {
        let _ = HeadTracker::new(0);
    }
}
