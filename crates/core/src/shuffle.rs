//! Shuffle grouping — round-robin routing ("SG").
//!
//! "SG routes messages independently, typically in a round-robin fashion.
//! SG provides excellent load balance by assigning an almost equal number of
//! messages to each PEI. However, no guarantee is made on the partitioning
//! of the key space" (§II-A). Its imbalance is at most one message per
//! source; its cost is `O(W·K)` state for stateful operators.

use crate::partitioner::{check_membership, Partitioner};

/// Round-robin partitioner (`SG`).
#[derive(Debug, Clone)]
pub struct ShuffleGrouping {
    n: usize,
    next: usize,
    /// Live membership subset of `0..n` (pkg-elastic); `None` is the
    /// untouched fixed-`W` fast path. When set, `next` cycles over
    /// positions *within* the live set.
    live: Option<Vec<usize>>,
}

impl ShuffleGrouping {
    /// Shuffle grouping over `n` workers starting at worker 0.
    pub fn new(n: usize) -> Self {
        Self::with_offset(n, 0)
    }

    /// Start the cycle at `offset` (sources are staggered so that parallel
    /// sources do not hit the same worker simultaneously).
    pub fn with_offset(n: usize, offset: usize) -> Self {
        assert!(n > 0, "need at least one worker");
        Self { n, next: offset % n, live: None }
    }
}

impl Partitioner for ShuffleGrouping {
    #[inline]
    fn route(&mut self, _key: u64, _ts_ms: u64) -> usize {
        let len = self.live.as_ref().map_or(self.n, Vec::len);
        let w = match &self.live {
            None => self.next,
            Some(live) => live[self.next],
        };
        self.next += 1;
        if self.next == len {
            self.next = 0;
        }
        w
    }

    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        "ShuffleGrouping".into()
    }

    fn candidates(&self, _key: u64) -> Vec<usize> {
        match &self.live {
            None => (0..self.n).collect(),
            Some(live) => live.clone(),
        }
    }

    fn resizable(&self) -> bool {
        true
    }

    fn apply_membership(&mut self, live: &[usize]) {
        check_membership(live, self.n);
        // Keep the stagger but land inside the new cycle length.
        self.next %= live.len();
        self.live = Some(live.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_through_all_workers() {
        let mut sg = ShuffleGrouping::new(4);
        let seq: Vec<usize> = (0..8).map(|i| sg.route(i, 0)).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn imbalance_is_at_most_one() {
        let mut sg = ShuffleGrouping::new(7);
        let mut loads = [0u64; 7];
        for i in 0..1_000 {
            loads[sg.route(i, 0)] += 1;
        }
        let max = *loads.iter().max().expect("non-empty");
        let min = *loads.iter().min().expect("non-empty");
        assert!(max - min <= 1);
    }

    #[test]
    fn offset_staggers_sources() {
        let mut a = ShuffleGrouping::with_offset(5, 0);
        let mut b = ShuffleGrouping::with_offset(5, 2);
        assert_eq!(a.route(0, 0), 0);
        assert_eq!(b.route(0, 0), 2);
    }

    #[test]
    fn candidates_are_all_workers() {
        let sg = ShuffleGrouping::new(3);
        assert_eq!(sg.candidates(42), vec![0, 1, 2]);
    }

    #[test]
    fn membership_round_robins_over_live_workers_only() {
        let mut sg = ShuffleGrouping::new(6);
        assert_eq!(sg.route(0, 0), 0);
        sg.apply_membership(&[1, 3, 5]);
        assert_eq!(sg.candidates(0), vec![1, 3, 5]);
        let seq: Vec<usize> = (0..6).map(|i| sg.route(i, 0)).collect();
        // next was 1 when membership applied → cycle resumes at position 1.
        assert_eq!(seq, vec![3, 5, 1, 3, 5, 1]);
        // Imbalance within the live set stays ≤ 1 per cycle.
        let mut loads = [0u64; 6];
        for i in 0..900 {
            loads[sg.route(i, 0)] += 1;
        }
        assert_eq!(loads[0] + loads[2] + loads[4], 0);
        assert_eq!(loads[1], loads[3]);
        assert_eq!(loads[3], loads[5]);
    }
}
