//! # Partial Key Grouping — core partitioners
//!
//! This crate implements the paper's contribution and every baseline it is
//! evaluated against:
//!
//! | Type | Paper name | Section |
//! |------|-----------|---------|
//! | [`KeyGrouping`] | KG / Hashing ("H") | §II-A, Table II |
//! | [`ShuffleGrouping`] | SG | §II-A |
//! | [`PartialKeyGrouping`] | PKG (PoTC + key splitting), the Greedy-`d` process | §III, §IV |
//! | [`StaticPotc`] | PoTC without key splitting | §III-A, Table II |
//! | [`OnlineGreedy`] | On-Greedy | §V (Q1) |
//! | [`OfflineGreedy`] | Off-Greedy | §V (Q1) |
//! | [`AdaptiveChoices`] | D-Choices / W-Choices (journal follow-up) | `choice` module docs |
//!
//! and the three load-estimation strategies of Q2 as [`estimator::Estimate`]:
//! global oracle ("G"), per-source local estimation ("L", the paper's
//! proposal), and local estimation with periodic probing ("LP").
//!
//! All partitioners implement the [`Partitioner`] trait over 64-bit key
//! identifiers (byte-string keys are fingerprinted via
//! [`pkg_hash::StreamKey::key_id`]; the engine crate does this at its edge).
//!
//! ## Quick start
//!
//! ```
//! use pkg_core::{Partitioner, PartialKeyGrouping, estimator::Estimate};
//!
//! let workers = 8;
//! // PKG with d = 2 choices and local load estimation — the paper's setup.
//! let mut pkg = PartialKeyGrouping::new(workers, 2, Estimate::local(workers), 42);
//! let w = pkg.route(12345, 0);
//! assert!(w < workers);
//! // A key's messages may go to *both* of its two candidates (key
//! // splitting), but never anywhere else:
//! let cands = pkg.candidates(12345);
//! for t in 0..100 {
//!     assert!(cands.contains(&pkg.route(12345, t)));
//! }
//! ```

#![forbid(unsafe_code)]

pub mod choice;
pub mod estimator;
pub mod greedy;
pub mod head_tracker;
pub mod hot_aware;
pub mod key_grouping;
pub mod partitioner;
pub mod pkg;
pub mod potc;
pub mod replication;
pub mod shuffle;
pub mod signals;

pub use choice::{AdaptiveChoices, ChoiceConfig, ChoiceStrategy, DEFAULT_EPSILON};
pub use estimator::{Estimate, EstimateKind, SharedLoads};
pub use greedy::{KeyFrequencies, OfflineGreedy, OnlineGreedy};
pub use head_tracker::HeadTracker;
pub use hot_aware::HotAwarePkg;
pub use key_grouping::KeyGrouping;
pub use partitioner::{Partitioner, SchemeSpec};
pub use pkg::PartialKeyGrouping;
pub use potc::StaticPotc;
pub use replication::ReplicationTracker;
pub use shuffle::ShuffleGrouping;
pub use signals::SharedSignals;
