//! Key-replication accounting — the memory-overhead axis of the paper.
//!
//! §III's example: with `K` distinct keys, key grouping keeps `K` counters,
//! PKG at most `2K` ("the memory to store its state is just a constant
//! factor higher"), and shuffle grouping up to `W·K` ("the memory usage of
//! the application grows linearly with the parallelism level"). This tracker
//! measures exactly that quantity — the number of distinct (key, worker)
//! pairs — for any partitioner. Keys start on an inline 128-bit mask
//! (covering the source paper's `W ≤ 100` grids with no allocation) and
//! promote to a heap bitset the first time a wider worker index appears —
//! the W-Choices sweeps of `fig_dchoices` go up to `W = 500`.

use pkg_hash::FxHashMap;

/// Which workers one key has reached.
#[derive(Debug, Clone)]
enum WorkerSet {
    /// Inline bitmask for worker indices < 128 (the common case).
    Small(u128),
    /// Heap bitset for wider worker grids; grows on demand.
    Large(Vec<u64>),
}

impl WorkerSet {
    #[inline]
    fn set(&mut self, w: usize) {
        match self {
            WorkerSet::Small(mask) if w < 128 => *mask |= 1u128 << w,
            WorkerSet::Small(mask) => {
                let mut words = vec![0u64; w / 64 + 1];
                words[0] = *mask as u64;
                words[1] = (*mask >> 64) as u64;
                words[w / 64] |= 1u64 << (w % 64);
                *self = WorkerSet::Large(words);
            }
            WorkerSet::Large(words) => {
                if words.len() <= w / 64 {
                    words.resize(w / 64 + 1, 0);
                }
                words[w / 64] |= 1u64 << (w % 64);
            }
        }
    }

    #[inline]
    fn count(&self) -> u32 {
        match self {
            WorkerSet::Small(mask) => mask.count_ones(),
            WorkerSet::Large(words) => words.iter().map(|w| w.count_ones()).sum(),
        }
    }
}

/// Tracks which workers have seen each key.
#[derive(Debug, Clone, Default)]
pub struct ReplicationTracker {
    seen: FxHashMap<u64, WorkerSet>,
}

impl ReplicationTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `key` was routed to worker `w` (any worker count).
    #[inline]
    pub fn record(&mut self, key: u64, w: usize) {
        self.seen.entry(key).or_insert(WorkerSet::Small(0)).set(w);
    }

    /// Number of distinct keys observed.
    pub fn distinct_keys(&self) -> usize {
        self.seen.len()
    }

    /// Total distinct (key, worker) pairs — the "counters" a stateful
    /// word-count-like operator would hold.
    pub fn total_pairs(&self) -> u64 {
        self.seen.values().map(|m| u64::from(m.count())).sum()
    }

    /// Mean number of workers per key (1.0 for KG, ≤ 2.0 for PKG, up to `W`
    /// for SG).
    pub fn avg_replication(&self) -> f64 {
        if self.seen.is_empty() {
            0.0
        } else {
            self.total_pairs() as f64 / self.seen.len() as f64
        }
    }

    /// Maximum number of workers any single key reached.
    pub fn max_replication(&self) -> u32 {
        self.seen.values().map(WorkerSet::count).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::Estimate;
    use crate::key_grouping::KeyGrouping;
    use crate::partitioner::Partitioner;
    use crate::pkg::PartialKeyGrouping;
    use crate::shuffle::ShuffleGrouping;

    #[test]
    fn counts_pairs_once() {
        let mut t = ReplicationTracker::new();
        t.record(1, 0);
        t.record(1, 0);
        t.record(1, 3);
        t.record(2, 5);
        assert_eq!(t.distinct_keys(), 2);
        assert_eq!(t.total_pairs(), 3);
        assert!((t.avg_replication() - 1.5).abs() < 1e-12);
        assert_eq!(t.max_replication(), 2);
    }

    #[test]
    fn replication_ordering_kg_pkg_sg() {
        // The §III memory claim, measured: KG = 1, PKG ≤ 2, SG → W.
        let n = 10;
        // 501 is coprime with n = 10, so round-robin's stride rotates each
        // key across all workers over the repetitions (with a multiple of n
        // the strides would align and hide SG's replication).
        let keys = 501u64;
        let reps = 40u64; // each key appears 40 times
        let mut kg = KeyGrouping::new(n, 1);
        let mut pkg = PartialKeyGrouping::new(n, 2, Estimate::local(n), 1);
        let mut sg = ShuffleGrouping::new(n);
        let (mut tk, mut tp, mut ts) =
            (ReplicationTracker::new(), ReplicationTracker::new(), ReplicationTracker::new());
        for r in 0..reps {
            for k in 0..keys {
                tk.record(k, kg.route(k, r));
                tp.record(k, pkg.route(k, r));
                ts.record(k, sg.route(k, r));
            }
        }
        assert_eq!(tk.avg_replication(), 1.0);
        assert!(tp.avg_replication() <= 2.0);
        assert!(tp.max_replication() <= 2);
        // With 40 repetitions over 10 workers, round-robin touches them all.
        assert!(ts.avg_replication() > 9.0);
    }

    #[test]
    fn wide_worker_grids_promote_and_count_exactly() {
        // Crossing the 128-worker boundary promotes the inline mask to the
        // heap bitset without losing any already-recorded worker.
        let mut t = ReplicationTracker::new();
        for w in [0usize, 63, 64, 127] {
            t.record(7, w);
        }
        assert_eq!(t.max_replication(), 4);
        t.record(7, 128);
        t.record(7, 499);
        t.record(7, 499); // idempotent
        assert_eq!(t.max_replication(), 6);
        assert_eq!(t.total_pairs(), 6);
        // A fresh key born wide also works.
        t.record(8, 400);
        assert_eq!(t.distinct_keys(), 2);
        assert_eq!(t.total_pairs(), 7);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let t = ReplicationTracker::new();
        assert_eq!(t.avg_replication(), 0.0);
        assert_eq!(t.max_replication(), 0);
        assert_eq!(t.total_pairs(), 0);
    }
}
