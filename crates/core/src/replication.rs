//! Key-replication accounting — the memory-overhead axis of the paper.
//!
//! §III's example: with `K` distinct keys, key grouping keeps `K` counters,
//! PKG at most `2K` ("the memory to store its state is just a constant
//! factor higher"), and shuffle grouping up to `W·K` ("the memory usage of
//! the application grows linearly with the parallelism level"). This tracker
//! measures exactly that quantity — the number of distinct (key, worker)
//! pairs — for any partitioner, using one bitmask per key (experiments use
//! at most 128 workers).

use pkg_hash::FxHashMap;

/// Tracks which workers have seen each key.
#[derive(Debug, Clone, Default)]
pub struct ReplicationTracker {
    seen: FxHashMap<u64, u128>,
}

/// Maximum worker count supported by the bitmask representation.
pub const MAX_TRACKED_WORKERS: usize = 128;

impl ReplicationTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `key` was routed to worker `w`.
    ///
    /// # Panics
    /// Panics if `w ≥ 128`.
    #[inline]
    pub fn record(&mut self, key: u64, w: usize) {
        assert!(w < MAX_TRACKED_WORKERS, "replication tracker supports < 128 workers");
        *self.seen.entry(key).or_insert(0) |= 1u128 << w;
    }

    /// Number of distinct keys observed.
    pub fn distinct_keys(&self) -> usize {
        self.seen.len()
    }

    /// Total distinct (key, worker) pairs — the "counters" a stateful
    /// word-count-like operator would hold.
    pub fn total_pairs(&self) -> u64 {
        self.seen.values().map(|m| u64::from(m.count_ones())).sum()
    }

    /// Mean number of workers per key (1.0 for KG, ≤ 2.0 for PKG, up to `W`
    /// for SG).
    pub fn avg_replication(&self) -> f64 {
        if self.seen.is_empty() {
            0.0
        } else {
            self.total_pairs() as f64 / self.seen.len() as f64
        }
    }

    /// Maximum number of workers any single key reached.
    pub fn max_replication(&self) -> u32 {
        self.seen.values().map(|m| m.count_ones()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::Estimate;
    use crate::key_grouping::KeyGrouping;
    use crate::partitioner::Partitioner;
    use crate::pkg::PartialKeyGrouping;
    use crate::shuffle::ShuffleGrouping;

    #[test]
    fn counts_pairs_once() {
        let mut t = ReplicationTracker::new();
        t.record(1, 0);
        t.record(1, 0);
        t.record(1, 3);
        t.record(2, 5);
        assert_eq!(t.distinct_keys(), 2);
        assert_eq!(t.total_pairs(), 3);
        assert!((t.avg_replication() - 1.5).abs() < 1e-12);
        assert_eq!(t.max_replication(), 2);
    }

    #[test]
    fn replication_ordering_kg_pkg_sg() {
        // The §III memory claim, measured: KG = 1, PKG ≤ 2, SG → W.
        let n = 10;
        // 501 is coprime with n = 10, so round-robin's stride rotates each
        // key across all workers over the repetitions (with a multiple of n
        // the strides would align and hide SG's replication).
        let keys = 501u64;
        let reps = 40u64; // each key appears 40 times
        let mut kg = KeyGrouping::new(n, 1);
        let mut pkg = PartialKeyGrouping::new(n, 2, Estimate::local(n), 1);
        let mut sg = ShuffleGrouping::new(n);
        let (mut tk, mut tp, mut ts) =
            (ReplicationTracker::new(), ReplicationTracker::new(), ReplicationTracker::new());
        for r in 0..reps {
            for k in 0..keys {
                tk.record(k, kg.route(k, r));
                tp.record(k, pkg.route(k, r));
                ts.record(k, sg.route(k, r));
            }
        }
        assert_eq!(tk.avg_replication(), 1.0);
        assert!(tp.avg_replication() <= 2.0);
        assert!(tp.max_replication() <= 2);
        // With 40 repetitions over 10 workers, round-robin touches them all.
        assert!(ts.avg_replication() > 9.0);
    }

    #[test]
    #[should_panic(expected = "supports < 128")]
    fn worker_129_panics() {
        let mut t = ReplicationTracker::new();
        t.record(0, 128);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let t = ReplicationTracker::new();
        assert_eq!(t.avg_replication(), 0.0);
        assert_eq!(t.max_replication(), 0);
        assert_eq!(t.total_pairs(), 0);
    }
}
