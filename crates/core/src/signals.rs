//! Shared load-*signal* state behind [`crate::SharedLoads`].
//!
//! The paper's load is a tuple count; [`pkg_metrics::LoadMetric`] makes the
//! minimized quantity pluggable, and this module holds the extra shared
//! state the non-default metrics need: per-worker in-flight (pending)
//! counters, per-worker Peak-EWMA service-latency estimates, the global
//! latency peak (the pessimistic prior for workers never observed), and an
//! optional online [`CapacityEstimator`] that rescales every signal by the
//! worker's *measured* relative speed.
//!
//! ## The collapse rule
//!
//! [`SharedSignals::attach`] returns `None` for the default configuration
//! (`TupleCount` metric, no estimator). A `SharedLoads` without signals is
//! byte-for-byte the pre-existing structure — no pending counters, no
//! floats, no extra atomics on the routing path — which is what pins
//! "`TupleCount` + static capacities routes identically to today".
//!
//! ## Writer discipline
//!
//! `dispatch` is called by routing threads (senders); `complete`/`observe`
//! by the owning worker. The EWMA cell of worker `w` is written only from
//! `w`'s completions — under the engine executors each instance's
//! completions are processed serially, so the read-modify-write in
//! `observe` has a single writer and Relaxed suffices; racing readers see
//! a slightly stale (monotone-decaying) value, which only delays
//! adaptation by one sample.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pkg_metrics::{peak_ewma_step, CapacityEstimator, LoadMetricKind, LoadObservation};

/// Shared per-worker signal state for the non-default load metrics.
#[derive(Debug)]
pub struct SharedSignals {
    kind: LoadMetricKind,
    /// In-flight tuples per worker (dispatched − completed).
    pending: Vec<AtomicU64>,
    /// Peak-EWMA of observed service latency per worker, ns (0 = never
    /// observed).
    ewma_ns: Vec<AtomicU64>,
    /// Global maximum EWMA ever reached, ns (the unobserved-worker prior).
    peak_ns: AtomicU64,
    /// EWMA decay window, in observations.
    window: u32,
    /// Online capacity re-estimation (None = static capacities only).
    estimator: Option<Arc<CapacityEstimator>>,
}

impl SharedSignals {
    /// Signal state for `n` workers, or `None` for the default
    /// configuration (`TupleCount`, no estimator) — the collapse rule.
    pub fn attach(
        n: usize,
        kind: LoadMetricKind,
        estimator: Option<Arc<CapacityEstimator>>,
    ) -> Option<Arc<Self>> {
        if kind == LoadMetricKind::TupleCount && estimator.is_none() {
            return None;
        }
        Some(Arc::new(Self {
            kind,
            pending: (0..n).map(|_| AtomicU64::new(0)).collect(),
            ewma_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            peak_ns: AtomicU64::new(0),
            window: kind.window(),
            estimator,
        }))
    }

    /// The active metric selector.
    pub fn kind(&self) -> LoadMetricKind {
        self.kind
    }

    /// The attached capacity estimator, if any.
    pub fn estimator(&self) -> Option<&Arc<CapacityEstimator>> {
        self.estimator.as_ref()
    }

    /// Number of workers covered.
    pub fn n(&self) -> usize {
        self.pending.len()
    }

    /// A tuple was dispatched toward worker `w` (not yet completed).
    #[inline]
    pub fn dispatch(&self, w: usize) {
        if let Some(p) = self.pending.get(w) {
            // ordering: Relaxed — independent per-worker tally; the signal
            // read is advisory (routing hints, not synchronization).
            p.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Worker `w` completed one tuple; `service_ns` is its observed service
    /// time (0 = completion known but duration unmeasured — the pending
    /// counter still balances, the latency estimate is untouched).
    #[inline]
    pub fn complete(&self, w: usize, service_ns: u64) {
        if let Some(p) = self.pending.get(w) {
            // Saturating decrement: completions the signals never saw
            // dispatched (e.g. pre-attach traffic) must not underflow.
            // ordering: Relaxed — per-worker tally, see `dispatch`.
            let mut cur = p.load(Ordering::Relaxed);
            while cur > 0 {
                // ordering: Relaxed — single-location CAS; no other memory
                // is published by a pending decrement.
                match p.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
        }
        if service_ns > 0 {
            self.observe(w, service_ns);
        }
    }

    /// Feed one observed service time for worker `w` into the latency
    /// estimate (and the capacity estimator, when attached).
    pub fn observe(&self, w: usize, service_ns: u64) {
        if let Some(cell) = self.ewma_ns.get(w) {
            // Single-writer read-modify-write: only worker `w`'s own
            // completion path writes this cell (see module docs).
            // ordering: Relaxed — racing readers may see the pre-update
            // value; the signal is advisory.
            let prev = cell.load(Ordering::Relaxed);
            let next = peak_ewma_step(prev, service_ns, self.window);
            // ordering: Relaxed — see above.
            cell.store(next, Ordering::Relaxed);
            // ordering: Relaxed — monotone max; readers only need *some*
            // recent peak as the unobserved-worker prior.
            self.peak_ns.fetch_max(next, Ordering::Relaxed);
        }
        if let Some(e) = &self.estimator {
            e.observe(w, service_ns);
        }
    }

    /// The signal the partitioners minimize for worker `w`, given the
    /// worker's routed-tuple count (maintained by [`crate::SharedLoads`]).
    #[inline]
    pub fn signal(&self, w: usize, count: u64) -> u64 {
        let obs = LoadObservation {
            count,
            // ordering: Relaxed — advisory reads, see `dispatch`.
            pending: self.pending.get(w).map_or(0, |p| p.load(Ordering::Relaxed)),
            // ordering: Relaxed — see `observe`.
            peak_ewma_ns: self.ewma_ns.get(w).map_or(0, |c| c.load(Ordering::Relaxed)),
            // ordering: Relaxed — see `observe`.
            fallback_ns: self.peak_ns.load(Ordering::Relaxed),
        };
        let raw = self.kind.metric().signal(obs);
        match &self.estimator {
            Some(e) => e.scale(w, raw),
            None => raw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_collapses_to_none() {
        assert!(SharedSignals::attach(4, LoadMetricKind::TupleCount, None).is_none());
        assert!(SharedSignals::attach(4, LoadMetricKind::peak_ewma(), None).is_some());
        assert!(SharedSignals::attach(4, LoadMetricKind::PendingRequests, None).is_some());
        let est = Arc::new(CapacityEstimator::new(4, 64));
        assert!(SharedSignals::attach(4, LoadMetricKind::TupleCount, Some(est)).is_some());
    }

    #[test]
    fn pending_tracks_dispatch_minus_complete_and_never_underflows() {
        let s = SharedSignals::attach(2, LoadMetricKind::PendingRequests, None)
            .expect("non-default metric attaches");
        s.dispatch(0);
        s.dispatch(0);
        s.dispatch(1);
        assert_eq!(s.signal(0, 99), 2, "pending metric ignores the count");
        s.complete(0, 0);
        assert_eq!(s.signal(0, 99), 1);
        s.complete(0, 0);
        s.complete(0, 0); // one more completion than dispatches
        assert_eq!(s.signal(0, 99), 0, "saturates at zero");
    }

    #[test]
    fn peak_ewma_signal_prefers_the_fast_worker() {
        let s = SharedSignals::attach(2, LoadMetricKind::peak_ewma(), None)
            .expect("non-default metric attaches");
        // No latency observed anywhere: signal is the raw count.
        assert_eq!(s.signal(0, 7), 7);
        for _ in 0..8 {
            s.observe(0, 40_000); // slow
            s.observe(1, 10_000); // fast
        }
        assert!(
            s.signal(0, 10) > s.signal(1, 10),
            "equal counts, the slow worker must signal higher"
        );
    }

    #[test]
    fn uniform_latency_is_an_exact_constant_multiple_of_count() {
        let s = SharedSignals::attach(3, LoadMetricKind::peak_ewma(), None)
            .expect("non-default metric attaches");
        for w in 0..3 {
            for _ in 0..4 {
                s.observe(w, 5_000);
            }
        }
        for count in [0u64, 1, 9, 120] {
            for w in 0..3 {
                assert_eq!(s.signal(w, count), 5_000 * count, "exact multiple preserves argmins");
            }
        }
    }

    #[test]
    fn estimator_rescales_the_signal() {
        let est = Arc::new(CapacityEstimator::new(2, 16));
        let s = SharedSignals::attach(2, LoadMetricKind::TupleCount, Some(Arc::clone(&est)))
            .expect("estimator forces signals on");
        for i in 0..16u64 {
            let w = (i % 2) as usize;
            s.observe(w, if w == 0 { 40_000 } else { 10_000 });
        }
        assert_eq!(est.rotations(), 1);
        assert!(
            s.signal(0, 100) > s.signal(1, 100),
            "slow worker's count is inflated by the estimator"
        );
    }
}
