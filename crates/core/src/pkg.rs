//! PARTIAL KEY GROUPING — the paper's contribution (§III).
//!
//! PKG combines the power of two choices with two techniques that make it
//! practical in a distributed streaming setting:
//!
//! * **Key splitting** (§III-A): rather than fixing each key to one of its
//!   two hash candidates (which would require a routing table and
//!   coordination among sources), *every* message independently goes to the
//!   currently less-loaded candidate. A key's state is split over at most
//!   two workers — hence "partial" key grouping.
//! * **Local load estimation** (§III-B): the load consulted is whatever the
//!   [`Estimate`] provides — each source's own traffic by default.
//!
//! Formally this is the *Greedy-d* process of §IV: on the `t`-th message
//! with key `k`, route to `argmin_{i ∈ {H1(k)..Hd(k)}} L_i(t)`. With `d = 1`
//! it degenerates to key grouping, with `d ≫ n ln n` to shuffle grouping;
//! the paper proves `I(m) = O(m/n)` for `d ≥ 2` versus
//! `O(m/n · ln n / ln ln n)` for `d = 1` (Theorem 4.1).

use pkg_hash::seeded::MAX_CHOICES;
use pkg_hash::HashFamily;
use pkg_metrics::Capacities;

use crate::estimator::Estimate;
use crate::partitioner::{check_membership, family, Partitioner};

/// The Greedy-`d` partitioner with key splitting (PKG when `d = 2`).
#[derive(Debug, Clone)]
pub struct PartialKeyGrouping {
    family: HashFamily,
    n: usize,
    estimate: Estimate,
    /// Per-worker capacity weights on heterogeneous clusters: the greedy
    /// choice compares `L_i/c_i` instead of `L_i` ("Load Balancing for
    /// Skewed Streams on Heterogeneous Clusters"). `None` — including
    /// collapsed uniform weights — keeps the exact integer comparison.
    capacities: Option<Capacities>,
    /// Live membership subset of `0..n` (pkg-elastic). `None` is the
    /// untouched fixed-`W` fast path — byte-identical to the pre-elastic
    /// code by construction.
    live: Option<Vec<usize>>,
    buf: [usize; MAX_CHOICES],
}

impl PartialKeyGrouping {
    /// PKG over `n` workers with `d` choices (`1 ≤ d ≤ 16`; the paper
    /// recommends 2) and the given load-estimation strategy.
    pub fn new(n: usize, d: usize, estimate: Estimate, seed: u64) -> Self {
        assert!(n > 0, "need at least one worker");
        assert_eq!(estimate.n(), n, "estimate must cover all workers");
        Self {
            family: family(d, seed),
            n,
            estimate,
            capacities: None,
            live: None,
            buf: [0; MAX_CHOICES],
        }
    }

    /// Route by capacity-normalized load `L_i/c_i` using these per-worker
    /// weights (`None` = homogeneous; uniform weights collapse upstream).
    pub fn with_capacities(mut self, capacities: Option<Capacities>) -> Self {
        if let Some(c) = &capacities {
            assert_eq!(c.len(), self.n, "one capacity per worker");
        }
        self.capacities = capacities;
        self
    }

    /// Number of choices `d`.
    pub fn d(&self) -> usize {
        self.family.d()
    }

    /// Read access to the live load estimate (for tests/diagnostics).
    pub fn estimate(&self) -> &Estimate {
        &self.estimate
    }
}

impl Partitioner for PartialKeyGrouping {
    #[inline]
    fn route(&mut self, key: u64, ts_ms: u64) -> usize {
        let d = self.family.d();
        // Compute the d candidates without allocating; under a membership
        // subset the same hash members are reduced onto the live set.
        match &self.live {
            None => {
                for i in 0..d {
                    self.buf[i] = self.family.choice(i, &key, self.n);
                }
            }
            Some(live) => {
                for i in 0..d {
                    self.buf[i] = self.family.choice_in(i, &key, live);
                }
            }
        }
        // Pick the candidate with the smallest estimated (capacity-
        // normalized, when weights are attached) load; ties break toward
        // the earlier hash function (deterministic).
        let mut best = self.buf[0];
        let mut best_load = self.estimate.load(best, ts_ms);
        for &c in &self.buf[1..d] {
            let l = self.estimate.load(c, ts_ms);
            if pkg_metrics::prefers(self.capacities.as_ref(), l, c, best_load, best) {
                best = c;
                best_load = l;
            }
        }
        self.estimate.record(best);
        best
    }

    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        format!("PartialKeyGrouping(d={})", self.family.d())
    }

    fn candidates(&self, key: u64) -> Vec<usize> {
        match &self.live {
            None => self.family.choices(&key, self.n),
            Some(live) => self.family.choices_in(&key, live),
        }
    }

    fn resizable(&self) -> bool {
        true
    }

    fn apply_membership(&mut self, live: &[usize]) {
        check_membership(live, self.n);
        self.live = Some(live.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkg(n: usize, d: usize, seed: u64) -> PartialKeyGrouping {
        PartialKeyGrouping::new(n, d, Estimate::local(n), seed)
    }

    #[test]
    fn routes_only_to_candidates() {
        let mut p = pkg(10, 2, 1);
        for key in 0..200u64 {
            let cands = p.candidates(key);
            for t in 0..20 {
                let w = p.route(key, t);
                assert!(cands.contains(&w), "key {key} escaped its candidates");
            }
        }
    }

    #[test]
    fn key_splitting_uses_both_candidates() {
        // A single hot key must alternate between its two candidates —
        // that is the whole point of key splitting.
        let mut p = pkg(10, 2, 2);
        let key = 7u64;
        let cands = p.candidates(key);
        if cands[0] == cands[1] {
            return; // hash collision: nothing to alternate between
        }
        let mut hits = [0u64; 10];
        for t in 0..1000 {
            hits[p.route(key, t)] += 1;
        }
        assert_eq!(hits[cands[0]] + hits[cands[1]], 1000);
        assert!((hits[cands[0]] as i64 - hits[cands[1]] as i64).abs() <= 1);
    }

    #[test]
    fn d1_equals_key_grouping() {
        use crate::key_grouping::KeyGrouping;
        let mut p = pkg(16, 1, 5);
        let mut kg = KeyGrouping::new(16, 5);
        for key in 0..500u64 {
            assert_eq!(p.route(key, 0), kg.route(key, 0));
        }
    }

    #[test]
    fn balances_skewed_stream_far_better_than_hashing() {
        use crate::key_grouping::KeyGrouping;
        use pkg_metrics::imbalance;

        let n = 10;
        let m = 100_000u64;
        // Zipf-ish synthetic skew: key = i mod 1+i%97 gives heavy repetition
        // of small keys; simpler: 30% of messages carry key 0.
        let mut p = pkg(n, 2, 3);
        let mut kg = KeyGrouping::new(n, 3);
        let mut loads_pkg = vec![0u64; n];
        let mut loads_kg = vec![0u64; n];
        for i in 0..m {
            let key = if i % 10 < 3 { 0 } else { i };
            loads_pkg[p.route(key, i)] += 1;
            loads_kg[kg.route(key, i)] += 1;
        }
        let i_pkg = imbalance(&loads_pkg);
        let i_kg = imbalance(&loads_kg);
        // KG piles the hot key (30% of m) on one worker: I ≈ 0.3m − m/n.
        // PKG splits it over two: I ≈ max(0.15m, m/n) − m/n, at least 3x less.
        assert!(i_pkg < i_kg / 3.0, "PKG imbalance {i_pkg} not ≪ KG imbalance {i_kg}");
    }

    #[test]
    fn more_choices_never_hurt_balance_on_uniform_keys() {
        use pkg_metrics::imbalance;
        let n = 50;
        let m = 200_000u64;
        let mut frac_by_d = Vec::new();
        for d in [1usize, 2, 4] {
            let mut p = pkg(n, d, 11);
            let mut loads = vec![0u64; n];
            for i in 0..m {
                loads[p.route(i % 5_000, i)] += 1; // 5k uniform keys
            }
            frac_by_d.push(imbalance(&loads));
        }
        // d = 2 is a dramatic improvement over d = 1; d = 4 is at most a
        // constant-factor refinement (§III: "more than two choices only
        // brings constant factor improvements").
        assert!(frac_by_d[1] < frac_by_d[0] / 2.0, "{frac_by_d:?}");
        assert!(frac_by_d[2] <= frac_by_d[1] * 1.5 + 2.0, "{frac_by_d:?}");
    }

    #[test]
    fn global_estimate_coordinates_multiple_sources() {
        use crate::estimator::SharedLoads;
        use pkg_metrics::imbalance;

        let n = 8;
        let shared = SharedLoads::new(n);
        let mut sources: Vec<PartialKeyGrouping> = (0..4)
            .map(|_| PartialKeyGrouping::new(n, 2, Estimate::global(shared.clone()), 9))
            .collect();
        let mut loads = vec![0u64; n];
        for i in 0..40_000u64 {
            let s = (i % 4) as usize;
            let w = sources[s].route(i % 100, i);
            shared.record(w);
            loads[w] += 1;
        }
        assert!(imbalance(&loads) < 40_000.0 / n as f64 * 0.1);
    }

    #[test]
    #[should_panic(expected = "estimate must cover")]
    fn mismatched_estimate_size_panics() {
        let _ = PartialKeyGrouping::new(4, 2, Estimate::local(3), 0);
    }

    #[test]
    fn full_membership_is_byte_identical() {
        let mut a = pkg(12, 2, 8);
        let mut b = pkg(12, 2, 8);
        b.apply_membership(&(0..12).collect::<Vec<_>>());
        assert!(b.resizable());
        for t in 0..5_000u64 {
            let key = t % 200;
            assert_eq!(a.route(key, t), b.route(key, t), "diverged at t={t}");
            assert_eq!(a.candidates(key), b.candidates(key));
        }
    }

    #[test]
    fn subset_membership_routes_only_to_live_workers() {
        let mut p = pkg(10, 2, 4);
        let live = [0usize, 3, 5, 8];
        p.apply_membership(&live);
        for t in 0..2_000u64 {
            let key = t % 97;
            let cands = p.candidates(key);
            let w = p.route(key, t);
            assert!(live.contains(&w), "routed to dead worker {w}");
            assert!(cands.contains(&w));
            assert!(cands.iter().all(|c| live.contains(c)));
        }
    }

    #[test]
    #[should_panic(expected = "sorted and duplicate-free")]
    fn unsorted_membership_panics() {
        let mut p = pkg(4, 2, 0);
        p.apply_membership(&[2, 1]);
    }

    #[test]
    fn weighted_routing_splits_hot_key_by_capacity() {
        use pkg_metrics::Capacities;
        let n = 10;
        let probe = pkg(n, 2, 6);
        let key = (0..100u64)
            .find(|&k| {
                let c = probe.candidates(k);
                c[0] != c[1]
            })
            .expect("some key has distinct candidates");
        let cands = probe.candidates(key);
        // The first candidate is a 4× worker, everything else 1×.
        let mut weights = vec![1.0; n];
        weights[cands[0]] = 4.0;
        let mut p = pkg(n, 2, 6).with_capacities(Capacities::heterogeneous(&weights));
        let mut hits = vec![0u64; n];
        for t in 0..10_000u64 {
            hits[p.route(key, t)] += 1;
        }
        assert_eq!(hits[cands[0]] + hits[cands[1]], 10_000);
        // Greedy on normalized load keeps L_fast/4 ≈ L_slow/1, i.e. the 4×
        // candidate absorbs ~4/5 of the hot key's messages.
        let share = hits[cands[0]] as f64 / 10_000.0;
        assert!((share - 0.8).abs() < 0.02, "fast-candidate share = {share}");
    }
}
