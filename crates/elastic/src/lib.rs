//! # pkg-elastic — runtime worker membership
//!
//! The paper fixes the worker set `W` at construction; a production cluster
//! scales with traffic. This crate is the membership-change layer the rest
//! of the workspace threads through: a scripted sequence of
//! [`Change::Insert`]/[`Change::Remove`] events (modeled on tower-discover's
//! `Change` stream) grouped into **epochs**. Epoch 0 is the full initial
//! worker set; each subsequent epoch applies one batch of changes when a
//! router's tuple count crosses the step's threshold.
//!
//! Two invariants make elasticity cheap downstream:
//!
//! * **Stable id space.** Workers are identified by their index in
//!   `0..capacity` forever; a membership change only toggles which indices
//!   are *live*. Load vectors, estimators and channels are allocated at
//!   `capacity` once and never reshaped, and a surviving member `i` keeps
//!   its hash seed `pkg_hash::member_seed(seed, i)` across epochs, so its
//!   hash sequence — and therefore every tail key's candidate pair — is
//!   stable for the members that remain.
//! * **Identity degeneration.** An empty plan (or a live set equal to
//!   `0..capacity`) must route byte-identically to today's fixed-`W` code;
//!   the `Resizable` implementations in `pkg-core` are pinned to this by
//!   property tests.
//!
//! ```
//! use pkg_elastic::{Change, MembershipPlan};
//!
//! // 4 workers; halve at 1000 tuples, restore at 2000.
//! let plan = MembershipPlan::new(4)
//!     .with_step(1000, [Change::Remove(2), Change::Remove(3)])
//!     .with_step(2000, [Change::Insert(2), Change::Insert(3)]);
//! assert_eq!(plan.epochs(), 3);
//! assert_eq!(plan.live(1), &[0, 1]);
//! assert_eq!(plan.departers(1), vec![2, 3]);
//! assert_eq!(plan.epoch_at(1500), 1);
//! ```

#![forbid(unsafe_code)]

use std::fmt;

/// One membership event, tower-discover style: a worker index joins or
/// leaves the live set. Indices are stable across the plan's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Change {
    /// Worker `i` (re)joins the live set.
    Insert(usize),
    /// Worker `i` leaves the live set; its keyed state migrates to the
    /// surviving owners.
    Remove(usize),
}

impl fmt::Display for Change {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Change::Insert(i) => write!(f, "+{i}"),
            Change::Remove(i) => write!(f, "-{i}"),
        }
    }
}

/// The live worker set of one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    epoch: u32,
    live: Vec<usize>,
}

impl Membership {
    /// The epoch number (0 = initial full set).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The live worker indices, sorted ascending.
    pub fn live(&self) -> &[usize] {
        &self.live
    }

    /// Number of live workers.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the live set is empty (never true for plan epochs).
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Is worker `i` live in this epoch?
    pub fn contains(&self, i: usize) -> bool {
        self.live.binary_search(&i).is_ok()
    }
}

/// One scripted step: at `at` routed tuples, apply `changes`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Step {
    at: u64,
    changes: Vec<Change>,
    /// Live set *after* this step, sorted (precomputed at build time).
    live: Vec<usize>,
}

/// A scripted join/leave schedule over a fixed id space `0..capacity`.
///
/// Epoch `e` (for `e ≥ 1`) comes into force when a router has routed
/// `step(e).at` tuples; epoch 0 is the initial full set. Validation is
/// eager: thresholds strictly increase, removals hit live workers, inserts
/// hit dead ones, and no epoch's live set is empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipPlan {
    capacity: usize,
    /// Epoch 0's live set: all of `0..capacity`.
    initial: Vec<usize>,
    steps: Vec<Step>,
}

impl MembershipPlan {
    /// A static plan over `capacity` workers (no membership changes — the
    /// fixed-`W` world).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "need at least one worker");
        Self { capacity, initial: (0..capacity).collect(), steps: Vec::new() }
    }

    /// Append a step applying `changes` once `at` tuples have been routed.
    ///
    /// # Panics
    /// On a non-increasing threshold, an out-of-range index, a removal of a
    /// dead worker, an insert of a live worker, or an empty resulting live
    /// set.
    #[must_use]
    pub fn with_step<I: IntoIterator<Item = Change>>(mut self, at: u64, changes: I) -> Self {
        if let Some(prev) = self.steps.last() {
            assert!(at > prev.at, "step thresholds must strictly increase ({at} <= {})", prev.at);
        }
        let mut live =
            self.steps.last().map_or_else(|| (0..self.capacity).collect(), |s| s.live.clone());
        let changes: Vec<Change> = changes.into_iter().collect();
        assert!(!changes.is_empty(), "a step must change something");
        for &c in &changes {
            match c {
                Change::Insert(i) => {
                    assert!(i < self.capacity, "insert of worker {i} >= capacity");
                    let pos = live.binary_search(&i);
                    assert!(pos.is_err(), "insert of already-live worker {i}");
                    live.insert(pos.unwrap_err(), i);
                }
                Change::Remove(i) => {
                    assert!(i < self.capacity, "remove of worker {i} >= capacity");
                    let pos = live
                        .binary_search(&i)
                        .unwrap_or_else(|_| panic!("remove of non-live worker {i}"));
                    live.remove(pos);
                }
            }
        }
        assert!(!live.is_empty(), "a step may not empty the live set");
        self.steps.push(Step { at, changes, live });
        self
    }

    /// The fixed id-space size; every live set is a subset of
    /// `0..capacity`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of epochs (steps + 1; a static plan has exactly one).
    pub fn epochs(&self) -> u32 {
        self.steps.len() as u32 + 1
    }

    /// Whether the plan never changes membership.
    pub fn is_static(&self) -> bool {
        self.steps.is_empty()
    }

    /// The live worker indices of `epoch`, sorted ascending.
    ///
    /// # Panics
    /// If `epoch >= self.epochs()`.
    pub fn live(&self, epoch: u32) -> &[usize] {
        assert!(epoch < self.epochs(), "epoch {epoch} out of range");
        match epoch {
            0 => &self.initial,
            e => &self.steps[e as usize - 1].live,
        }
    }

    /// The live set of `epoch` as an owned [`Membership`].
    pub fn membership(&self, epoch: u32) -> Membership {
        Membership { epoch, live: self.live(epoch).to_vec() }
    }

    /// The tuple-count threshold at which `epoch` comes into force
    /// (`epoch ≥ 1`).
    pub fn threshold(&self, epoch: u32) -> u64 {
        assert!(epoch >= 1 && epoch < self.epochs(), "epoch {epoch} has no threshold");
        self.steps[epoch as usize - 1].at
    }

    /// The changes applied entering `epoch` (`epoch ≥ 1`).
    pub fn changes(&self, epoch: u32) -> &[Change] {
        assert!(epoch >= 1 && epoch < self.epochs(), "epoch {epoch} has no changes");
        &self.steps[epoch as usize - 1].changes
    }

    /// Workers live in `epoch - 1` but not in `epoch` — the instances whose
    /// state must migrate when `epoch` seals.
    pub fn departers(&self, epoch: u32) -> Vec<usize> {
        self.changes(epoch)
            .iter()
            .filter_map(|c| match c {
                Change::Remove(i) => Some(*i),
                Change::Insert(_) => None,
            })
            .collect()
    }

    /// Workers live in `epoch` but not in `epoch - 1`.
    pub fn joiners(&self, epoch: u32) -> Vec<usize> {
        self.changes(epoch)
            .iter()
            .filter_map(|c| match c {
                Change::Insert(i) => Some(*i),
                Change::Remove(_) => None,
            })
            .collect()
    }

    /// The epoch in force after `count` tuples have been routed (epoch `e`
    /// applies from `threshold(e)` inclusive).
    pub fn epoch_at(&self, count: u64) -> u32 {
        let mut e = 0u32;
        for (i, s) in self.steps.iter().enumerate() {
            if count >= s.at {
                e = i as u32 + 1;
            } else {
                break;
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halve_double() -> MembershipPlan {
        MembershipPlan::new(4)
            .with_step(1000, [Change::Remove(2), Change::Remove(3)])
            .with_step(2000, [Change::Insert(2), Change::Insert(3)])
    }

    #[test]
    fn static_plan_has_one_full_epoch() {
        let p = MembershipPlan::new(5);
        assert!(p.is_static());
        assert_eq!(p.epochs(), 1);
        assert_eq!(p.membership(0).live(), &[0, 1, 2, 3, 4]);
        assert_eq!(p.epoch_at(u64::MAX), 0);
    }

    #[test]
    fn halve_then_double_live_sets() {
        let p = halve_double();
        assert_eq!(p.epochs(), 3);
        assert_eq!(p.membership(0).live(), &[0, 1, 2, 3]);
        assert_eq!(p.live(1), &[0, 1]);
        assert_eq!(p.live(2), &[0, 1, 2, 3]);
        assert_eq!(p.departers(1), vec![2, 3]);
        assert_eq!(p.joiners(1), Vec::<usize>::new());
        assert_eq!(p.departers(2), Vec::<usize>::new());
        assert_eq!(p.joiners(2), vec![2, 3]);
    }

    #[test]
    fn epoch_at_uses_inclusive_thresholds() {
        let p = halve_double();
        assert_eq!(p.epoch_at(0), 0);
        assert_eq!(p.epoch_at(999), 0);
        assert_eq!(p.epoch_at(1000), 1);
        assert_eq!(p.epoch_at(1999), 1);
        assert_eq!(p.epoch_at(2000), 2);
        assert_eq!(p.epoch_at(5000), 2);
    }

    #[test]
    fn membership_contains_is_by_index() {
        let p = halve_double();
        let m = p.membership(1);
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.len(), 2);
        assert!(m.contains(0) && m.contains(1));
        assert!(!m.contains(2) && !m.contains(3));
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn thresholds_must_increase() {
        let _ = MembershipPlan::new(3)
            .with_step(10, [Change::Remove(2)])
            .with_step(10, [Change::Insert(2)]);
    }

    #[test]
    #[should_panic(expected = "non-live worker")]
    fn removing_a_dead_worker_panics() {
        let _ = MembershipPlan::new(3).with_step(10, [Change::Remove(2), Change::Remove(2)]);
    }

    #[test]
    #[should_panic(expected = "already-live worker")]
    fn inserting_a_live_worker_panics() {
        let _ = MembershipPlan::new(3).with_step(10, [Change::Insert(1)]);
    }

    #[test]
    #[should_panic(expected = "empty the live set")]
    fn emptying_the_live_set_panics() {
        let _ = MembershipPlan::new(1).with_step(10, [Change::Remove(0)]);
    }

    #[test]
    #[should_panic(expected = ">= capacity")]
    fn out_of_range_index_panics() {
        let _ = MembershipPlan::new(3).with_step(10, [Change::Remove(7)]);
    }

    #[test]
    fn display_formats_changes() {
        assert_eq!(Change::Insert(3).to_string(), "+3");
        assert_eq!(Change::Remove(0).to_string(), "-0");
    }
}
