//! `pkg-lint` — repo-invariant static analysis for the workspace.
//!
//! A dependency-free, token-level scanner (comments and string/char
//! literals are blanked before matching, `#[cfg(test)]`/`#[test]`-gated
//! regions are skipped) that enforces the concurrency-hygiene rules the
//! model-checked suite relies on. Scope: the shipped code under `crates/`,
//! `vendor/`, and `src/` — integration tests, examples, and benches are
//! deliberately out of scope.
//!
//! | rule      | scope                         | invariant                                     |
//! |-----------|-------------------------------|-----------------------------------------------|
//! | `facade`  | engine `pool.rs`, `timer.rs`, | no `std::sync` / `std::thread::sleep` /       |
//! |           | `elastic.rs`, `ring.rs`,      | `std::time::Instant` outside `crate::sync` —  |
//! |           | `ingress.rs`;                 | what makes the code model-checkable at all    |
//! |           | crossbeam `deque.rs`          |                                               |
//! | `ordering`| whole workspace               | every memory-ordering token (`SeqCst`, …)     |
//! |           |                               | carries a `// ordering:` justification within |
//! |           |                               | 3 lines                                       |
//! | `panic`   | `pkg-engine` and              | no `.unwrap()` / `.expect(` — engine errors   |
//! |           | `pkg-ingress` non-test code   | surface as typed panics with context          |
//! | `unsafe`  | every crate root              | `#![forbid(unsafe_code)]` present             |
//!
//! Exit status: 0 when clean, 1 with one diagnostic line per violation.
//! Usage: `cargo run -p pkg-lint [workspace-root]`.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files the `panic` rule skips: the facade maps poisoning to a panic by
/// design, and the model suite is test-only code compiled as a child of
/// `pool` (the scanner cannot see the `#[cfg(all(test, …))]` gate, which
/// lives at the `mod` declaration in `pool.rs`).
const PANIC_RULE_EXEMPT: [&str; 2] =
    ["crates/engine/src/sync.rs", "crates/engine/src/pool_model.rs"];

/// Files the `facade` rule covers. The ring and the work-stealing deque
/// joined with the pool's raw-speed hot path: both are model-checked, so
/// both must reach `std` only through their crate's cfg-switched facade
/// (`crate::sync` in the engine, `crate::atomic` in vendored crossbeam).
/// The engine's ingress wiring shares types with the pool (depth gauges
/// flow into shed decisions), so it is held to the same facade; likewise
/// the load-signal wiring (`load.rs`), whose shared state is read and fed
/// inside pool activations.
const FACADE_FILES: [&str; 7] = [
    "crates/engine/src/elastic.rs",
    "crates/engine/src/ingress.rs",
    "crates/engine/src/load.rs",
    "crates/engine/src/pool.rs",
    "crates/engine/src/ring.rs",
    "crates/engine/src/timer.rs",
    "vendor/crossbeam/src/deque.rs",
];

/// Tokens banned by the `facade` rule. `std::thread::scope` stays legal
/// (pool spawn-and-join structure is not a sync primitive), as does
/// `std::time::Duration` (a value type, not a clock).
const FACADE_BANNED: [&str; 3] = ["std::sync", "std::thread::sleep", "std::time::Instant"];

/// Memory-ordering tokens that demand a `// ordering:` justification.
const ORDERING_TOKENS: [&str; 5] = ["SeqCst", "Relaxed", "Acquire", "Release", "AcqRel"];

/// How many raw lines above an ordering token the justification may sit.
const ORDERING_WINDOW: usize = 3;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => workspace_root(),
    };
    let mut files = Vec::new();
    for top in ["crates", "vendor", "src"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();
    let mut violations = Vec::new();
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            violations.push(format!("{}: unreadable", path.display()));
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        violations.extend(lint_file(&rel, &src));
    }
    if violations.is_empty() {
        println!("pkg-lint: clean ({} files)", files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("pkg-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The workspace root, resolved from this crate's own manifest directory so
/// the binary works from any cwd.
fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.ancestors().nth(2).unwrap_or(manifest).to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Run every applicable rule over one file.
fn lint_file(rel: &str, src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let code = blank_code(src);
    let raw: Vec<&str> = src.lines().collect();
    let in_test = test_lines(&code);

    if FACADE_FILES.contains(&rel) {
        rule_facade(rel, &code, &in_test, &mut out);
    }
    rule_ordering(rel, &code, &raw, &in_test, &mut out);
    if (rel.starts_with("crates/engine/src/") || rel.starts_with("crates/ingress/src/"))
        && !PANIC_RULE_EXEMPT.contains(&rel)
    {
        rule_panic(rel, &code, &in_test, &mut out);
    }
    if is_crate_root(rel) && !src.contains("#![forbid(unsafe_code)]") {
        out.push(format!("{rel}:1: [unsafe] crate root is missing #![forbid(unsafe_code)]"));
    }
    out
}

fn is_crate_root(rel: &str) -> bool {
    rel.ends_with("/src/lib.rs") || rel == "src/lib.rs" || rel == "crates/lint/src/main.rs"
}

fn rule_facade(rel: &str, code: &[String], in_test: &[bool], out: &mut Vec<String>) {
    for (i, line) in code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        for banned in FACADE_BANNED {
            if line.contains(banned) {
                out.push(format!(
                    "{rel}:{}: [facade] `{banned}` bypasses the crate::sync facade \
                     (the module must stay model-checkable)",
                    i + 1
                ));
            }
        }
    }
}

fn rule_ordering(
    rel: &str,
    code: &[String],
    raw: &[&str],
    in_test: &[bool],
    out: &mut Vec<String>,
) {
    let mut in_use = false;
    for (i, line) in code.iter().enumerate() {
        let trimmed = line.trim();
        if !in_use && is_use_decl(trimmed) {
            in_use = true;
        }
        let was_use = in_use;
        if in_use && trimmed.contains(';') {
            in_use = false;
        }
        if in_test[i] || was_use {
            continue;
        }
        for token in ORDERING_TOKENS {
            if has_word(line, token) {
                let lo = i.saturating_sub(ORDERING_WINDOW);
                let justified = raw[lo..=i].iter().any(|r| r.contains("ordering:"));
                if !justified {
                    out.push(format!(
                        "{rel}:{}: [ordering] `{token}` without a `// ordering:` \
                         justification within {ORDERING_WINDOW} lines",
                        i + 1
                    ));
                }
            }
        }
    }
}

fn rule_panic(rel: &str, code: &[String], in_test: &[bool], out: &mut Vec<String>) {
    for (i, line) in code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        for needle in [".unwrap()", ".expect("] {
            if line.contains(needle) {
                out.push(format!(
                    "{rel}:{}: [panic] `{needle}` in engine non-test code \
                     (panic with a diagnostic message instead)",
                    i + 1
                ));
            }
        }
    }
}

/// Is this trimmed code line the start of a `use` declaration (possibly
/// behind a visibility modifier)?
fn is_use_decl(trimmed: &str) -> bool {
    let rest = if let Some(r) = trimmed.strip_prefix("pub") {
        if let Some(paren) = r.strip_prefix('(') {
            match paren.split_once(')') {
                Some((_, tail)) => tail.trim_start(),
                None => return false,
            }
        } else {
            r.trim_start()
        }
    } else {
        trimmed
    };
    rest.starts_with("use ")
}

/// Whole-word containment: `needle` bounded by non-identifier characters.
fn has_word(line: &str, needle: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let pre = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post = end == bytes.len() || !is_ident_byte(bytes[end]);
        if pre && post {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blank comments and string/char literals out of `src`, preserving line
/// structure and column alignment, so rules match code tokens only.
fn blank_code(src: &str) -> Vec<String> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut i = 0;
    let mut prev_ident = false;
    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                out.push(std::mem::take(&mut cur));
                prev_ident = false;
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < n && chars[i] != '\n' {
                    cur.push(' ');
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                cur.push_str("  ");
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        out.push(std::mem::take(&mut cur));
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        cur.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        cur.push_str("  ");
                        i += 2;
                    } else {
                        cur.push(' ');
                        i += 1;
                    }
                }
                prev_ident = false;
            }
            '"' => {
                i = blank_string_body(&chars, i + 1, &mut cur, &mut out);
                prev_ident = false;
            }
            'r' | 'b' if !prev_ident => {
                if let Some(next) = blank_literal_prefix(&chars, i, &mut cur, &mut out) {
                    i = next;
                    prev_ident = false;
                } else {
                    cur.push(c);
                    prev_ident = true;
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime: 'x' / '\..' are literals, a
                // lone quote followed by an identifier is a lifetime.
                if chars.get(i + 1) == Some(&'\\') {
                    cur.push(' ');
                    i += 1;
                    while i < n && chars[i] != '\'' {
                        cur.push(' ');
                        i += 1;
                    }
                    if i < n {
                        cur.push(' ');
                        i += 1;
                    }
                } else if chars.get(i + 2) == Some(&'\'') {
                    cur.push_str("   ");
                    i += 3;
                } else {
                    cur.push('\'');
                    i += 1;
                }
                prev_ident = false;
            }
            _ => {
                cur.push(c);
                prev_ident = is_ident_byte(c as u8) || !c.is_ascii();
                i += 1;
            }
        }
    }
    out.push(cur);
    out
}

/// Blank a (possibly raw / byte) literal starting at `chars[i]` (`r` or
/// `b`); returns the index after the literal, or `None` when `chars[i]` is
/// just an identifier character.
fn blank_literal_prefix(
    chars: &[char],
    i: usize,
    cur: &mut String,
    out: &mut Vec<String>,
) -> Option<usize> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            // Byte char literal b'x' / b'\..'.
            cur.push_str("  ");
            j += 1;
            if chars.get(j) == Some(&'\\') {
                cur.push(' ');
                j += 1;
            }
            while j < chars.len() && chars[j] != '\'' {
                cur.push(' ');
                j += 1;
            }
            if j < chars.len() {
                cur.push(' ');
                j += 1;
            }
            return Some(j);
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    for _ in i..=j {
        cur.push(' ');
    }
    j += 1;
    if hashes == 0 && i + 1 == j - 1 && chars[i] == 'b' {
        // b"..." — plain string with escapes.
        return Some(blank_string_body(chars, j, cur, out));
    }
    if hashes == 0 && chars[i] == 'r' || hashes > 0 {
        // Raw string: ends at `"` followed by `hashes` hashes, no escapes.
        while j < chars.len() {
            if chars[j] == '\n' {
                out.push(std::mem::take(cur));
                j += 1;
            } else if chars[j] == '"'
                && chars[j + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
            {
                for _ in 0..=hashes {
                    cur.push(' ');
                }
                return Some(j + 1 + hashes);
            } else {
                cur.push(' ');
                j += 1;
            }
        }
        return Some(j);
    }
    Some(blank_string_body(chars, j, cur, out))
}

/// Blank a normal string body (escapes honored) starting just after the
/// opening quote; returns the index after the closing quote.
fn blank_string_body(
    chars: &[char],
    mut i: usize,
    cur: &mut String,
    out: &mut Vec<String>,
) -> usize {
    cur.push(' ');
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                cur.push(' ');
                i += 1;
                if i < chars.len() {
                    if chars[i] == '\n' {
                        out.push(std::mem::take(cur));
                    } else {
                        cur.push(' ');
                    }
                    i += 1;
                }
            }
            '"' => {
                cur.push(' ');
                return i + 1;
            }
            '\n' => {
                out.push(std::mem::take(cur));
                i += 1;
            }
            _ => {
                cur.push(' ');
                i += 1;
            }
        }
    }
    i
}

/// Mark lines that live inside `#[test]`- or `#[cfg(test)]`-gated items, by
/// tracking attributes and brace depth over the blanked code.
fn test_lines(code: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut depth = 0i64;
    let mut skip_stack: Vec<i64> = Vec::new();
    let mut in_attr = false;
    let mut attr_buf = String::new();
    let mut attr_depth = 0i64;
    let mut pending_test = false;
    for (ln, line) in code.iter().enumerate() {
        if !skip_stack.is_empty() {
            flags[ln] = true;
        }
        let cs: Vec<char> = line.chars().collect();
        let mut k = 0;
        while k < cs.len() {
            let c = cs[k];
            if in_attr {
                match c {
                    '[' => {
                        attr_depth += 1;
                        attr_buf.push(c);
                    }
                    ']' => {
                        attr_depth -= 1;
                        if attr_depth == 0 {
                            in_attr = false;
                            if attr_buf.contains("test") {
                                pending_test = true;
                            }
                            attr_buf.clear();
                        } else {
                            attr_buf.push(c);
                        }
                    }
                    _ => attr_buf.push(c),
                }
                k += 1;
                continue;
            }
            match c {
                '#' => {
                    let mut j = k + 1;
                    if cs.get(j) == Some(&'!') {
                        j += 1;
                    }
                    if cs.get(j) == Some(&'[') {
                        in_attr = true;
                        attr_depth = 1;
                        k = j + 1;
                        continue;
                    }
                }
                '{' => {
                    if pending_test {
                        skip_stack.push(depth);
                        pending_test = false;
                        flags[ln] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if skip_stack.last() == Some(&depth) {
                        skip_stack.pop();
                        flags[ln] = true;
                    }
                }
                // `#[cfg(test)] mod x;` — a bodiless gated item ends here.
                ';' if skip_stack.is_empty() => pending_test = false,
                _ => {}
            }
            k += 1;
        }
        if !skip_stack.is_empty() {
            flags[ln] = true;
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<String> {
        lint_file(rel, src)
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let code = blank_code("let x = \"std::sync\"; // std::sync\nlet y = 'a';");
        assert!(!code[0].contains("std::sync"), "{:?}", code[0]);
        assert!(code[0].contains("let x ="));
        assert!(!code[1].contains('a'));
    }

    #[test]
    fn raw_strings_and_byte_literals_are_blanked() {
        let code = blank_code("let s = r#\"SeqCst \"inner\" \"#; let b = b\"Relaxed\";\nSeqCst");
        assert!(!code[0].contains("SeqCst"), "{:?}", code[0]);
        assert!(!code[0].contains("Relaxed"), "{:?}", code[0]);
        assert_eq!(code[1], "SeqCst");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let code = blank_code("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(code[0].contains("fn f<'a>"), "{:?}", code[0]);
    }

    #[test]
    fn test_gated_regions_are_skipped() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap() }\n}\nfn c() {}\n";
        let code = blank_code(src);
        let flags = test_lines(&code);
        assert_eq!(flags, vec![false, false, true, true, true, false, false]);
    }

    #[test]
    fn seeded_facade_violation_is_caught() {
        let src = "use std::sync::Mutex;\nfn f() {}\n";
        let v = lint("crates/engine/src/pool.rs", src);
        assert!(v.iter().any(|v| v.contains("[facade]") && v.contains("pool.rs:1")), "{v:?}");
    }

    #[test]
    fn facade_rule_only_covers_the_facade_files() {
        let src = "use std::sync::Mutex;\nfn f() {}\n";
        let v = lint("crates/engine/src/sync.rs", src);
        assert!(!v.iter().any(|v| v.contains("[facade]")), "{v:?}");
    }

    #[test]
    fn seeded_unjustified_ordering_is_caught() {
        let src = "fn f(a: &AtomicU8) {\n    a.store(1, Ordering::SeqCst);\n}\n";
        let v = lint("crates/core/src/x.rs", src);
        assert!(v.iter().any(|v| v.contains("[ordering]") && v.contains("x.rs:2")), "{v:?}");
    }

    #[test]
    fn justified_ordering_passes() {
        let src = "fn f(a: &AtomicU8) {\n    // ordering: SeqCst — test fixture\n    a.store(1, Ordering::SeqCst);\n}\n";
        assert_eq!(lint("crates/core/src/x.rs", src), Vec::<String>::new());
    }

    #[test]
    fn use_declarations_do_not_need_ordering_comments() {
        let src = "use std::sync::atomic::Ordering::SeqCst;\npub(crate) use std::sync::atomic::{\n    Ordering::Relaxed,\n};\n";
        assert_eq!(lint("crates/core/src/x.rs", src), Vec::<String>::new());
    }

    #[test]
    fn seeded_unwrap_in_engine_is_caught() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let v = lint("crates/engine/src/runtime.rs", src);
        assert!(v.iter().any(|v| v.contains("[panic]")), "{v:?}");
        // The same code outside pkg-engine is fine.
        assert!(lint("crates/sim/src/runner.rs", src).is_empty());
        // …and inside engine test code too.
        let gated = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
        assert!(lint("crates/engine/src/runtime.rs", &gated).is_empty());
    }

    #[test]
    fn seeded_unwrap_in_ingress_is_caught() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let v = lint("crates/ingress/src/bucket.rs", src);
        assert!(v.iter().any(|v| v.contains("[panic]")), "{v:?}");
    }

    #[test]
    fn engine_ingress_is_a_facade_file() {
        let src = "use std::sync::Mutex;\nfn f() {}\n";
        let v = lint("crates/engine/src/ingress.rs", src);
        assert!(v.iter().any(|v| v.contains("[facade]")), "{v:?}");
    }

    #[test]
    fn engine_load_signals_are_facade_and_panic_covered() {
        let src = "use std::sync::Arc;\nfn f() {}\n";
        let v = lint("crates/engine/src/load.rs", src);
        assert!(v.iter().any(|v| v.contains("[facade]")), "{v:?}");
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let v = lint("crates/engine/src/load.rs", src);
        assert!(v.iter().any(|v| v.contains("[panic]")), "{v:?}");
    }

    #[test]
    fn missing_forbid_unsafe_is_caught() {
        let v = lint("crates/core/src/lib.rs", "fn f() {}\n");
        assert!(v.iter().any(|v| v.contains("[unsafe]")), "{v:?}");
        assert!(lint("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\nfn f() {}\n").is_empty());
    }

    /// The tree this binary ships in must itself be clean — the same scan
    /// CI runs, as a plain test.
    #[test]
    fn repo_is_clean() {
        let root = workspace_root();
        let mut files = Vec::new();
        for top in ["crates", "vendor", "src"] {
            collect_rs_files(&root.join(top), &mut files);
        }
        assert!(files.len() > 20, "workspace scan found too few files");
        let mut violations = Vec::new();
        for path in &files {
            let src = std::fs::read_to_string(path).expect("readable source");
            let rel = path
                .strip_prefix(&root)
                .expect("file under root")
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            violations.extend(lint_file(&rel, &src));
        }
        assert!(violations.is_empty(), "workspace must lint clean:\n{}", violations.join("\n"));
    }
}
