//! **Theorems 4.1 / 4.2** — empirical check of the imbalance bounds.
//!
//! Theorem 4.1: with `n` bins, `m ≥ n²` balls and maximum key probability
//! `p1 ≤ 1/(5n)`, the Greedy-d process has
//! `I(m) = O(m/n · ln n / ln ln n)` for `d = 1` and `I(m) = O(m/n)` for
//! `d ≥ 2`, with matching lower bounds (Theorem 4.2, via the uniform
//! distribution over `5n` keys).
//!
//! This driver runs the lower-bound construction (uniform over `5n` keys,
//! `m = 40·n²` balls) across `n`, and reports the normalized imbalance
//! `I(m)·n/m`. For `d ≥ 2` that ratio should stay ~constant in `n`; for
//! `d = 1` it should grow like `ln n / ln ln n`.

use pkg_bench::{seed, threads, TextTable};
use pkg_core::{EstimateKind, SchemeSpec};
use pkg_datagen::profiles::ProfileKind;
use pkg_datagen::DatasetProfile;
use pkg_sim::sweep::{run_parallel, Job};
use pkg_sim::SimConfig;

fn main() {
    let ns: [usize; 5] = [8, 16, 32, 64, 128];
    let ds: [usize; 3] = [1, 2, 3];

    let mut jobs = Vec::new();
    let mut meta = Vec::new();
    for &n in &ns {
        let keys = 5 * n as u64;
        let m = 40 * (n as u64) * (n as u64);
        // Uniform distribution over 5n keys = Zipf with exponent 0; the
        // profile machinery needs a p1 target, so fit p1 = 1/keys + ε.
        let profile = DatasetProfile {
            name: format!("U{n}"),
            messages: m,
            keys,
            target_p1: Some(1.0 / keys as f64 * 1.0001),
            duration_hours: 1.0,
            kind: ProfileKind::Zipf,
        };
        let spec = profile.build(seed());
        for &d in &ds {
            meta.push((n, d, m));
            jobs.push(Job {
                spec: spec.clone(),
                cfg: SimConfig::new(n, 1, SchemeSpec::Pkg { d, estimate: EstimateKind::Global })
                    .with_seed(seed()),
            });
        }
    }
    let reports = run_parallel(jobs, threads());

    let mut out = String::from(
        "# Theorem 4.1/4.2: normalized imbalance I(m)*n/m on the uniform(5n) lower-bound construction, m = 40n^2\n",
    );
    let mut table = TextTable::new();
    table.row(["n", "m", "d=1: I*n/m", "d=2: I*n/m", "d=3: I*n/m", "ln n/ln ln n"]);
    for (i, &n) in ns.iter().enumerate() {
        let m = meta[i * ds.len()].2;
        let mut row = vec![format!("{n}"), format!("{m}")];
        for di in 0..ds.len() {
            let r = &reports[i * ds.len() + di];
            row.push(format!("{:.3}", r.final_imbalance * n as f64 / m as f64));
        }
        let lnn = (n as f64).ln();
        row.push(format!("{:.3}", lnn / lnn.ln()));
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str("\n# expectation: the d=1 column grows with n (tracking ln n/ln ln n);\n");
    out.push_str("# the d>=2 columns stay bounded by a constant.\n");
    pkg_bench::emit("theory_bounds.tsv", &out);
}
