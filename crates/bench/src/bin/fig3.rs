//! **Figure 3** — Fraction of imbalance through time for different datasets,
//! techniques, and number of workers, with `S = 5` sources.
//!
//! Panels: TW and WP over ~30–40 simulated hours, CT over ~600 hours;
//! columns W = 10 and W = 50. Series: `G` (global oracle), `L5` (local
//! estimation, 5 sources), `L5P1` (local + probing the true loads every
//! simulated minute).
//!
//! What must reproduce: G and L5 track each other closely (local estimation
//! is as good as the oracle — the paper measures only 47% Jaccard overlap in
//! their *choices* yet indistinguishable imbalance); probing (L5P1) brings
//! no improvement; for WP at W = 50 every technique collapses to the same
//! high imbalance (past the O(1/p1) limit); CT shows drift-induced spikes
//! that all techniques absorb.

use pkg_bench::{scaled, seed, threads};
use pkg_core::{EstimateKind, SchemeSpec};
use pkg_datagen::DatasetProfile;
use pkg_sim::sweep::{run_parallel, Job};
use pkg_sim::SimConfig;

fn main() {
    let sources = 5;
    let techniques: Vec<(&str, SchemeSpec)> = vec![
        ("G", SchemeSpec::pkg(EstimateKind::Global)),
        ("L5", SchemeSpec::pkg(EstimateKind::Local)),
        ("L5P1", SchemeSpec::Pkg { d: 2, estimate: EstimateKind::Probing { period_ms: 60_000 } }),
    ];
    let datasets = [
        scaled(DatasetProfile::twitter()),
        scaled(DatasetProfile::wikipedia()),
        scaled(DatasetProfile::cashtags()),
    ];
    let workers = [10usize, 50];

    let mut jobs = Vec::new();
    let mut meta = Vec::new();
    for profile in &datasets {
        let spec = profile.build(seed());
        for &w in &workers {
            for (label, scheme) in &techniques {
                meta.push((profile.name.clone(), w, label.to_string()));
                jobs.push(Job {
                    spec: spec.clone(),
                    cfg: SimConfig::new(w, sources, scheme.clone())
                        .with_seed(seed())
                        .with_snapshots(400),
                });
            }
        }
    }
    let reports = run_parallel(jobs, threads());

    let mut out = String::from(
        "# Figure 3: fraction of imbalance through time; long format: dataset\ttechnique\tworkers\thours\tfraction\n",
    );
    out.push_str(&format!("# scale={} seed={} sources={}\n", pkg_bench::scale(), seed(), sources));
    out.push_str("dataset\ttechnique\tworkers\thours\tfraction\n");
    for ((ds, w, label), r) in meta.iter().zip(&reports) {
        for &(hours, frac) in r.series.points() {
            out.push_str(&format!("{ds}\t{label}\t{w}\t{hours:.3}\t{frac:.4e}\n"));
        }
    }
    // Compact summary for the terminal: mean fraction per series.
    let mut summary = String::from("\n# summary: mean fraction over time\n");
    for ((ds, w, label), r) in meta.iter().zip(&reports) {
        summary.push_str(&format!(
            "# {ds} W={w} {label}: mean={:.3e} final={:.3e}\n",
            r.series.mean_value(),
            r.final_fraction
        ));
    }
    out.push_str(&summary);
    pkg_bench::emit("fig3.tsv", &out);
}
