//! **Ablation: beyond two choices** — the extension answering the paper's
//! closing question ("Is it possible to achieve good load balance \[when\]
//! the number of workers surpasses the O(1/p1) limit?").
//!
//! Table II shows every scheme collapsing at W = 50/100 on WP: the hottest
//! key alone overloads any *pair* of workers. [`pkg_core::HotAwarePkg`]
//! gives only the locally-detected head keys more choices (`d_hot = W` is
//! "W-Choices"). This driver reruns the WP column sweep with plain PKG,
//! D-Choices (d_hot = 5) and W-Choices, and reports both the imbalance and
//! the replication cost — showing the collapse disappears for a constant
//! extra replication.

use pkg_bench::{scaled, seed, TextTable, WORKER_GRID};
use pkg_core::{Estimate, HotAwarePkg, PartialKeyGrouping, Partitioner, ReplicationTracker};
use pkg_datagen::DatasetProfile;
use pkg_metrics::imbalance;

fn run(p: &mut dyn Partitioner, spec: &pkg_datagen::StreamSpec, seed: u64) -> (f64, f64, u32) {
    let mut loads = vec![0u64; p.n()];
    let mut rep = ReplicationTracker::new();
    let mut m = 0u64;
    for msg in spec.iter(seed) {
        let w = p.route(msg.key, msg.ts_ms);
        loads[w] += 1;
        rep.record(msg.key, w);
        m += 1;
    }
    (imbalance(&loads) / m as f64, rep.avg_replication(), rep.max_replication())
}

fn main() {
    let profile = scaled(DatasetProfile::wikipedia()).scale(0.4);
    let spec = profile.build(seed());
    let mut out =
        String::from("# Ablation: plain PKG vs hot-aware D-Choices/W-Choices on WP as W grows\n");
    out.push_str(&format!(
        "# scale={} seed={} messages={}\n",
        pkg_bench::scale(),
        seed(),
        spec.messages()
    ));
    let mut table = TextTable::new();
    table.row(["scheme", "W", "imbalance_fraction", "avg_replication", "max_replication"]);
    for &w in &WORKER_GRID {
        let theta = 0.2 / w as f64; // keys hotter than 1/(5W) get extra choices
        let mut schemes: Vec<(String, Box<dyn Partitioner>)> = vec![
            ("PKG".into(), Box::new(PartialKeyGrouping::new(w, 2, Estimate::local(w), seed()))),
            (
                "D-Choices(5)".into(),
                Box::new(HotAwarePkg::new(w, Estimate::local(w), theta, 5, seed())),
            ),
            (
                "W-Choices".into(),
                Box::new(HotAwarePkg::new(w, Estimate::local(w), theta, w.max(2), seed())),
            ),
        ];
        for (name, p) in schemes.iter_mut() {
            let (frac, avg_rep, max_rep) = run(p.as_mut(), &spec, seed());
            table.row([
                name.clone(),
                format!("{w}"),
                format!("{frac:.3e}"),
                format!("{avg_rep:.3}"),
                format!("{max_rep}"),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str("\n# expectation: plain PKG collapses once W > 2/p1 ≈ 21; the hot-aware\n");
    out.push_str("# variants keep the fraction low with avg replication still ≈ 1-2\n");
    out.push_str("# (only the few head keys fan out wider).\n");
    pkg_bench::emit("ablation_hot.tsv", &out);
}
