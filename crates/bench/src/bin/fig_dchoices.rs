//! **D-Choices / W-Choices sweep** — the journal follow-up's adaptive
//! schemes against plain PKG, across the skew × scale grid where two
//! choices provably stop working.
//!
//! §IV of the source paper: once `W > O(1/p1)` the hottest key's two
//! candidates saturate and PKG's imbalance grows linearly in the stream.
//! "When Two Choices Are not Enough" (Nasir et al., ICDE 2016) fixes this
//! by widening only the *head* keys: D-Choices gives a head key of
//! estimated frequency `p̂` the smallest `d` with `p̂/d ≤ (1+ε)/W`;
//! W-Choices gives it all `W` workers. This driver sweeps Zipf exponent
//! `z ∈ {1.4, 1.8, 2.0, 2.2}` × workers `W ∈ {50, 100, 500}` (10k keys,
//! `S = 5` sources, local estimation) and records average/final imbalance
//! fractions plus key replication for PKG, D-Choices and W-Choices.
//!
//! Exits non-zero unless every gate holds:
//!
//! 1. **Dominance** — D-Choices average imbalance ≤ PKG's at *every* grid
//!    point (they are byte-identical when no key crosses the head
//!    threshold, so equality is the worst case).
//! 2. **Bounded imbalance where PKG blows up** — at `z = 2.0, W = 100`
//!    (PKG's two candidates hold ≈ 30% of the stream) the D-Choices
//!    average imbalance over the final message count
//!    (`avg_imbalance_over_final`, the quantity this gate was calibrated
//!    against; the paper's per-snapshot `avg_fraction` is additionally
//!    reported in the table) stays ≤ `PKG_DCHOICES_EPS` (default 0.01),
//!    while PKG's exceeds it.
//! 3. **Replication economy** — D-Choices average key replication is
//!    strictly below W-Choices' at every point (the whole point of
//!    adapting `d` instead of using all workers).
//! 4. **PKG degeneration** — on a uniform stream D-Choices and W-Choices
//!    route *byte-identically* to PKG, decision by decision.
//!
//! `--smoke` shrinks the grid to `z = 2.0 × W ∈ {50, 100}` with a shorter
//! stream and keeps every gate — fast and deterministic, run in CI.

use std::fmt::Write as _;

use pkg_bench::{scaled, seed, threads, TextTable};
use pkg_core::{EstimateKind, SchemeSpec, SharedLoads};
use pkg_datagen::DatasetProfile;
use pkg_sim::sweep::{run_parallel, Job};
use pkg_sim::{SimConfig, SimReport};

/// Messages per grid point before `PKG_SCALE` (smoke: fixed 60k).
const MESSAGES: u64 = 200_000;
/// Distinct keys of the synthetic Zipf streams.
const KEYS: u64 = 10_000;
/// Source PEIs (each with its own head tracker and load estimate).
const SOURCES: usize = 5;

fn eps_gate() -> f64 {
    std::env::var("PKG_DCHOICES_EPS").ok().and_then(|s| s.parse().ok()).unwrap_or(0.01)
}

struct Point {
    z: f64,
    w: usize,
    pkg: SimReport,
    dc: SimReport,
    wc: SimReport,
}

fn rep_avg(r: &SimReport) -> f64 {
    r.replication.as_ref().expect("replication tracked").avg
}

fn rep_max(r: &SimReport) -> u32 {
    r.replication.as_ref().expect("replication tracked").max
}

fn sweep(zs: &[f64], ws: &[usize], messages: u64) -> Vec<Point> {
    let schemes = [
        SchemeSpec::pkg(EstimateKind::Local),
        SchemeSpec::d_choices(EstimateKind::Local),
        SchemeSpec::w_choices(EstimateKind::Local),
    ];
    let mut jobs = Vec::new();
    for &z in zs {
        let spec = scaled(DatasetProfile::zipf_exponent(KEYS, z, messages)).build(seed());
        for &w in ws {
            for scheme in &schemes {
                jobs.push(Job {
                    spec: spec.clone(),
                    cfg: SimConfig::new(w, SOURCES, scheme.clone())
                        .with_seed(seed())
                        .with_replication(),
                });
            }
        }
    }
    let reports = run_parallel(jobs, threads());
    let mut points = Vec::new();
    let mut it = reports.into_iter();
    for &z in zs {
        for &w in ws {
            let (pkg, dc, wc) = (
                it.next().expect("report per job"),
                it.next().expect("report per job"),
                it.next().expect("report per job"),
            );
            points.push(Point { z, w, pkg, dc, wc });
        }
    }
    points
}

/// Gate 4: byte-identical PKG degeneration on a uniform stream.
fn uniform_parity(out: &mut String) -> bool {
    let n = 50;
    let shared = SharedLoads::new(n);
    let mut pkg = SchemeSpec::pkg(EstimateKind::Local).build(n, seed(), 0, &shared, None);
    let mut dc = SchemeSpec::d_choices(EstimateKind::Local).build(n, seed(), 0, &shared, None);
    let mut wc = SchemeSpec::w_choices(EstimateKind::Local).build(n, seed(), 0, &shared, None);
    let mut ok = true;
    for i in 0..200_000u64 {
        // 5000 cycling keys: every frequency is 0.02% ≪ θ = 2(1+ε)/50.
        let key = i % 5_000;
        let expect = pkg.route(key, i);
        if dc.route(key, i) != expect || wc.route(key, i) != expect {
            ok = false;
            let _ = writeln!(out, "VIOLATION: adaptive route diverged from PKG at t={i}");
            break;
        }
    }
    let _ = writeln!(
        out,
        "check: D/W-Choices byte-identical to PKG on uniform keys .. {}",
        if ok { "OK" } else { "FAIL" }
    );
    ok
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (zs, ws, messages): (Vec<f64>, Vec<usize>, u64) = if smoke {
        (vec![2.0], vec![50, 100], 60_000)
    } else {
        (vec![1.4, 1.8, 2.0, 2.2], vec![50, 100, 500], MESSAGES)
    };
    let eps = eps_gate();

    let mut out = String::from(
        "# fig_dchoices: D-Choices/W-Choices vs PKG across Zipf skew z and workers W\n",
    );
    let _ = writeln!(
        out,
        "# keys={KEYS} sources={SOURCES} seed={} eps_gate={eps}{}",
        seed(),
        if smoke { " (smoke)" } else { "" },
    );

    let points = sweep(&zs, &ws, messages);

    let mut table = TextTable::new();
    table.row(["z", "W", "scheme", "avg_frac", "avg_imb/m", "final_frac", "rep_avg", "rep_max"]);
    let mut tsv = String::from(SimReport::tsv_header());
    tsv.push('\n');
    for p in &points {
        for r in [&p.pkg, &p.dc, &p.wc] {
            table.row([
                format!("{:.1}", p.z),
                p.w.to_string(),
                r.scheme.clone(),
                format!("{:.5}", r.avg_fraction),
                format!("{:.5}", r.avg_imbalance_over_final),
                format!("{:.5}", r.final_fraction),
                format!("{:.3}", rep_avg(r)),
                rep_max(r).to_string(),
            ]);
            tsv.push_str(&r.tsv_row());
            tsv.push('\n');
        }
    }
    out.push_str(&table.render());

    let mut ok = true;

    // Gate 1: dominance at every grid point.
    let mut dominance = true;
    for p in &points {
        if p.dc.avg_imbalance > p.pkg.avg_imbalance + 1e-6 {
            dominance = false;
            let _ = writeln!(
                out,
                "VIOLATION: D-Choices imbalance {} > PKG {} at z={} W={}",
                p.dc.avg_imbalance, p.pkg.avg_imbalance, p.z, p.w
            );
        }
    }
    let _ = writeln!(
        out,
        "check: D-Choices imbalance ≤ PKG at every grid point .. {}",
        if dominance { "OK" } else { "FAIL" }
    );
    ok &= dominance;

    // Gate 2: bounded imbalance at the point where PKG provably blows up.
    let blowup = points
        .iter()
        .find(|p| (p.z - 2.0).abs() < 1e-9 && p.w == 100)
        .expect("grid contains z=2.0, W=100");
    let bounded =
        blowup.dc.avg_imbalance_over_final <= eps && blowup.pkg.avg_imbalance_over_final > eps;
    let _ = writeln!(
        out,
        "check: at z=2.0 W=100, D-Choices avg_imbalance/m {:.5} ≤ {eps} < PKG {:.5} .. {}",
        blowup.dc.avg_imbalance_over_final,
        blowup.pkg.avg_imbalance_over_final,
        if bounded { "OK" } else { "FAIL" }
    );
    ok &= bounded;

    // Gate 3: replication economy at every grid point.
    let mut economy = true;
    for p in &points {
        if rep_avg(&p.dc) >= rep_avg(&p.wc) {
            economy = false;
            let _ = writeln!(
                out,
                "VIOLATION: D-Choices replication {} ≥ W-Choices {} at z={} W={}",
                rep_avg(&p.dc),
                rep_avg(&p.wc),
                p.z,
                p.w
            );
        }
    }
    let _ = writeln!(
        out,
        "check: D-Choices avg replication < W-Choices at every grid point .. {}",
        if economy { "OK" } else { "FAIL" }
    );
    ok &= economy;

    // Gate 4: PKG degeneration on uniform input.
    ok &= uniform_parity(&mut out);

    out.push('\n');
    out.push_str(&tsv);
    pkg_bench::emit("fig_dchoices.tsv", &out);
    if !ok {
        eprintln!("fig_dchoices: checks FAILED");
        std::process::exit(1);
    }
}
