//! **Elastic reconfiguration** — runtime worker membership with key-space
//! migration, exercised end to end and gated hard.
//!
//! The paper fixes the worker set for the lifetime of a run; `pkg-elastic`
//! lifts that: a [`MembershipPlan`] scripts join/leave steps at message
//! thresholds, the partitioners confine routing to the live set, and the
//! engine migrates a departing instance's window state to the survivors
//! over the migration bus (see `pkg_engine::elastic` /
//! `pkg_agg::ElasticWorkerBolt`). This driver **halves then doubles** the
//! live worker set mid-stream and exits non-zero unless every gate holds:
//!
//! 1. **Tuple conservation** (engine) — every spout tuple is processed
//!    exactly once: Σ worker `processed` equals spout emissions plus the
//!    in-band epoch markers (`S × W` per membership step), and every
//!    migration-bus message posted is drained.
//! 2. **Byte-identity to a static-W oracle** (engine) — the merged
//!    second-phase output (key, value, payload triples; birth timestamps
//!    excluded) of the elastic run equals a plain fixed-W PKG run of the
//!    same stream: migration neither loses, duplicates, nor corrupts
//!    state.
//! 3. **Bounded re-convergence** (sim) — after each membership change the
//!    imbalance fraction measured over tumbling windows of recent traffic
//!    returns inside the pre-change band (2× epoch 0's trailing-window
//!    fraction, floored at 1%) within the epoch, and the moment it does is
//!    reported.
//!
//! Threshold semantics differ by arm, deliberately: the simulator applies
//! membership steps on the *global* routed-message count (all sources
//! switch atomically), while the engine is distributed — each sender
//! crosses a threshold on its *own* routed count and announces it with an
//! in-band marker, so epochs overlap and the migration protocol has real
//! in-flight traffic to preserve.
//!
//! `--smoke` shrinks both arms and keeps every gate; CI runs it under both
//! `PKG_ENGINE_EXECUTOR` values.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use pkg_agg::{AggregatorBolt, Collector, ElasticWorkerBolt, Sum, WindowedWorkerBolt};
use pkg_bench::{seed, TextTable};
use pkg_core::{EstimateKind, SchemeSpec};
use pkg_datagen::DatasetProfile;
use pkg_elastic::{Change, MembershipPlan};
use pkg_engine::prelude::*;
use pkg_engine::MigrationBus;
use pkg_sim::{run as sim_run, SimConfig};

/// Fixed id space: the full worker set.
const W: usize = 6;
/// Spout/source parallelism.
const S: usize = 4;
/// The live set is halved by removing the upper indices, then restored.
const HALF: [Change; 3] = [Change::Remove(3), Change::Remove(4), Change::Remove(5)];
const BACK: [Change; 3] = [Change::Insert(3), Change::Insert(4), Change::Insert(5)];

/// Halve the live set at `at1`, double it back at `at2` (thresholds are
/// per-sender counts in the engine arm, global counts in the sim arm).
fn plan(at1: u64, at2: u64) -> MembershipPlan {
    MembershipPlan::new(W).with_step(at1, HALF).with_step(at2, BACK)
}

/// A skewed word stream for source `s`: ~20% of traffic on one hot key,
/// the rest cycling a 997-word tail (disjoint offsets per source).
fn stream(s: usize, n: u64) -> Vec<Tuple> {
    (0..n)
        .map(|j| {
            let key = if j % 5 == 0 {
                b"k-hot".to_vec()
            } else {
                format!("k{}", 1 + (j * S as u64 + s as u64) % 997).into_bytes()
            };
            Tuple::new(key, 1)
        })
        .collect()
}

/// The byte-identity comparison shape: (key, value, payload), with the
/// wall-clock `born_ns` excluded.
type Triple = (Box<[u8]>, i64, Box<[u8]>);

/// Collected aggregator output as [`Triple`]s.
fn triples(c: &Collector) -> Vec<Triple> {
    c.tuples().into_iter().map(|t| (t.key.into_boxed(), t.value, t.payload)).collect()
}

/// Run the two-phase word count over `per_source` tuples per spout; elastic
/// arm when a plan is given, static-W PKG oracle otherwise. Returns the
/// collected output, the run stats, and the migration bus (elastic arm).
fn engine_run(
    per_source: u64,
    the_plan: Option<MembershipPlan>,
) -> (Collector, pkg_engine::RunStats, Option<MigrationBus>) {
    let collector = Collector::new();
    let mut topo = Topology::new();
    let src = topo
        .add_spout("src", S, move |s| pkg_engine::spout::spout_from_iter(stream(s, per_source)));
    let bus = the_plan.as_ref().map(|_| MigrationBus::new(W));
    let worker = match &the_plan {
        Some(p) => {
            let plan = Arc::new(p.clone());
            let bus = bus.clone().expect("bus built with the plan");
            let worker_seed = seed();
            topo.add_bolt("worker", W, move |i| {
                Box::new(
                    ElasticWorkerBolt::<Sum>::new(
                        i,
                        S,
                        Arc::clone(&plan),
                        bus.clone(),
                        worker_seed,
                    )
                    .panes_every_ticks(2),
                )
            })
            .input(src, Grouping::elastic(p.clone()))
        }
        None => topo
            .add_bolt("worker", W, |_| {
                Box::new(WindowedWorkerBolt::<Sum>::per_key().panes_every_ticks(2))
            })
            .input(src, Grouping::partial_key()),
    }
    .tick_every(Duration::from_millis(2))
    .id();
    let agg = topo
        .add_bolt("agg", 1, |_| Box::new(AggregatorBolt::<Sum>::new()))
        .input(worker, Grouping::Key)
        .id();
    let c = collector.clone();
    let _sink = topo.add_bolt("sink", 1, move |_| c.bolt()).input(agg, Grouping::Global);

    let mut options = RuntimeOptions { seed: seed(), ..RuntimeOptions::default() };
    if let ExecutorMode::Pool { workers, .. } = &mut options.executor {
        // The gated finish polls the migration bus on a pool worker thread;
        // keep enough workers that departers always have one to run on.
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        *workers = (*workers).max(cores.max(4));
    }
    let stats = Runtime::with_options(options).run(topo);
    (collector, stats, bus)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let per_source: u64 = if smoke { 5_000 } else { 30_000 };
    let sim_messages: u64 = if smoke { 45_000 } else { 120_000 };

    let mut out = String::from(
        "# fig_elastic: halve-then-double worker membership with key-space migration\n",
    );
    let _ = writeln!(
        out,
        "# W={W} S={S} seed={} engine_per_source={per_source} sim_messages={sim_messages}{}",
        seed(),
        if smoke { " (smoke)" } else { "" },
    );
    let mut ok = true;

    // ---- Engine arm: migration protocol under real concurrency ----------
    let engine_plan = plan(per_source / 3, 2 * per_source / 3);
    let epochs = u64::from(engine_plan.epochs());
    let (elastic, elastic_stats, bus) = engine_run(per_source, Some(engine_plan));
    let (oracle, oracle_stats, _) = engine_run(per_source, None);
    let bus = bus.expect("elastic arm has a bus");

    // Gate 1: exact tuple conservation. Workers see every spout tuple plus
    // one marker per sender per membership step, and the bus drains fully.
    let spout_total = S as u64 * per_source;
    let markers = S as u64 * (epochs - 1) * W as u64;
    let (sent, received) = bus.totals();
    let conserved = elastic_stats.processed("worker") == spout_total + markers
        && oracle_stats.processed("worker") == spout_total
        && sent == received
        && sent > 0;
    let _ = writeln!(
        out,
        "check: conservation — worker processed {} == {spout_total} tuples + {markers} markers; \
         bus sent {sent} == received {received} .. {}",
        elastic_stats.processed("worker"),
        if conserved { "OK" } else { "FAIL" }
    );
    ok &= conserved;

    // Gate 2: byte-identity of the merged output to the static-W oracle.
    let (et, ot) = (triples(&elastic), triples(&oracle));
    let identical = et == ot && !et.is_empty();
    let _ = writeln!(
        out,
        "check: elastic merged output byte-identical to static-W oracle \
         ({} keys) .. {}",
        et.len(),
        if identical { "OK" } else { "FAIL" }
    );
    if !identical {
        for (a, b) in et.iter().zip(&ot).filter(|(a, b)| a != b).take(5) {
            let _ = writeln!(out, "  diverged: elastic {a:?} vs oracle {b:?}");
        }
    }
    ok &= identical;

    // ---- Sim arm: re-convergence measurement over the same schedule ------
    // The paper's LN2 profile: skewed enough that the rejoin catch-up
    // transient is visible, mild enough that both the halved and the full
    // live set balance to a small structural fraction — so the band gate
    // measures the *transient*, not residual skew.
    let spec = DatasetProfile::lognormal2().with_messages(sim_messages).build(seed());
    // Thresholds at m/6 and m/3: after the rejoin the greedy scheme floods
    // the returning workers until their load estimates reach parity — a
    // transient of roughly twice the halved epoch's length — so the final
    // epoch needs comfortably more room than that.
    let cfg = SimConfig::new(W, S, SchemeSpec::pkg(EstimateKind::Local))
        .with_seed(seed())
        .with_membership_plan(plan(sim_messages / 6, sim_messages / 3));
    let report = sim_run(&spec, &cfg);
    let stats = report.epochs.as_ref().expect("membership plan produces epoch stats");

    let mut table = TextTable::new();
    table.row(["epoch", "live", "messages", "final_frac", "band", "converged_after"]);
    for e in stats {
        table.row([
            e.epoch.to_string(),
            format!("{:?}", e.live),
            e.messages.to_string(),
            format!("{:.4}", e.final_fraction),
            format!("{:.4}", e.band),
            e.converged_after.map_or("-".into(), |m| m.to_string()),
        ]);
    }
    out.push_str(&table.render());

    // Gate 3: every post-change epoch re-enters the pre-change band within
    // the epoch, and ends inside it.
    let conserved_sim = report.load_sum(0..report.workers) == sim_messages
        && stats.len() == 3
        && stats.iter().map(|e| e.messages).sum::<u64>() == sim_messages;
    let reconverged = conserved_sim
        && stats[1..].iter().all(|e| e.converged_after.is_some() && e.final_fraction <= e.band);
    let _ = writeln!(
        out,
        "check: imbalance re-converges into the pre-change band after every \
         membership change .. {}",
        if reconverged { "OK" } else { "FAIL" }
    );
    ok &= reconverged;

    pkg_bench::emit("fig_elastic.tsv", &out);
    if !ok {
        eprintln!("fig_elastic: checks FAILED");
        std::process::exit(1);
    }
}
