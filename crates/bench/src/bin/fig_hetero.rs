//! **Heterogeneous-worker sweep** — capacity-weighted PKG against
//! capacity-blind PKG on mixed hardware, the paper's cloud-deployment
//! caveat made measurable.
//!
//! PKG (§III) assumes identical workers: the greedy choice compares raw
//! loads, so on a cluster where half the machines are 2× or 4× faster it
//! equalizes *message counts* and turns the slowest machines into the
//! bottleneck. The follow-up "Load Balancing for Skewed Streams on
//! Heterogeneous Clusters" (Nasir et al., 2017) picks the argmin of
//! *capacity-normalized* load `L_i/c_i` instead; the journal version frames
//! imbalance relative to what each worker can absorb, which is the
//! `weighted_imbalance` metric (`max_i(L_i/c_i) − m/W`, weights normalized
//! to mean 1) both arms are judged by here.
//!
//! Grid: capacity ratio `r ∈ {1:1, 2:1, 4:1}` × `W ∈ {10, 50}` × Zipf
//! exponent `z ∈ {0.0, 2.0}` (uniform and heavily skewed; 10k keys,
//! `S = 4` sources, local estimation). A ratio `r:1` is a *graded* cluster:
//! capacities ramp linearly from `r` (worker 0) down to `1` (worker W−1),
//! the mixed-VM shape of a real cloud deployment — and, because every
//! worker's speed differs, a hot key's two hash candidates never share a
//! capacity, so capacity-aware splitting strictly improves the head term
//! even past the two-choice saturation limit of §IV (where a two-class
//! half-fast/half-slow cluster would leave PKG's hot-key split unchanged
//! whenever both candidates land in the same class). Per point the driver
//! runs **weighted** PKG (routing sees the capacities) and **blind** PKG
//! (today's scheme; the report still measures weighted imbalance).
//!
//! Exits non-zero unless every gate holds:
//!
//! 1. **Heterogeneous dominance** — at every skewed-capacity point (2:1,
//!    4:1) the weighted arm's average *normalized* imbalance is strictly
//!    below the blind arm's.
//! 2. **Uniform degeneration** — at every 1:1 point the weighted arm is
//!    *byte-identical* to a capacity-free run of the same config
//!    (per-worker loads and every imbalance column), i.e. `fig2`-style
//!    numbers reproduce exactly.
//! 3. **Fair-share routing** — at 4:1 on the uniform stream the weighted
//!    arm's fast-half:slow-half load split matches the halves' capacity
//!    ratio within 5% in both directions (capacity-proportional
//!    water-filling; the blind arm stays near 1:1), and on every 4:1
//!    point the weighted arm shifts strictly more mass to the fast half
//!    than the blind arm does.
//! 4. **Engine capacity scaling** — a two-instance stall topology with a
//!    quarter-speed instance charges exactly 4× the service time on that
//!    instance (deterministic in the requested durations, under whichever
//!    executor `PKG_ENGINE_EXECUTOR` selects — CI runs both).
//!
//! `--smoke` shrinks the grid to `r ∈ {1:1, 4:1} × W = 10` with a shorter
//! stream and keeps every gate — fast and deterministic, run in CI.

use std::fmt::Write as _;
use std::time::Duration;

use pkg_bench::{scaled, seed, threads, TextTable};
use pkg_core::{EstimateKind, SchemeSpec};
use pkg_datagen::DatasetProfile;
use pkg_engine::prelude::*;
use pkg_sim::sweep::{run_parallel, Job};
use pkg_sim::{SimConfig, SimReport};

/// Messages per grid point before `PKG_SCALE` (smoke: fixed 60k).
const MESSAGES: u64 = 200_000;
/// Distinct keys of the synthetic Zipf streams.
const KEYS: u64 = 10_000;
/// Source PEIs (each with its own load estimate).
const SOURCES: usize = 4;

/// A graded cluster: capacities ramp linearly from `ratio` (worker 0) down
/// to 1.0 (worker `W−1`), so the fastest:slowest ratio is `ratio:1` and no
/// two workers share a speed (see the module docs for why that matters
/// past the two-choice saturation limit). `ratio = 1` is the homogeneous
/// cluster.
fn capacity_vector(workers: usize, ratio: f64) -> Vec<f64> {
    (0..workers)
        .map(|i| 1.0 + (ratio - 1.0) * (workers - 1 - i) as f64 / (workers - 1).max(1) as f64)
        .collect()
}

struct Point {
    ratio: f64,
    w: usize,
    z: f64,
    /// Capacity-aware routing.
    weighted: SimReport,
    /// Raw-load routing measured under the same weighted metric.
    blind: SimReport,
    /// Capacity-free run (only for 1:1 points: the exact-degeneration
    /// oracle).
    plain: Option<SimReport>,
}

fn sweep(ratios: &[f64], ws: &[usize], zs: &[f64], messages: u64) -> Vec<Point> {
    let scheme = SchemeSpec::pkg(EstimateKind::Local);
    let mut jobs = Vec::new();
    let mut shape = Vec::new();
    for &z in zs {
        let spec = scaled(DatasetProfile::zipf_exponent(KEYS, z, messages)).build(seed());
        for &w in ws {
            for &ratio in ratios {
                let caps = capacity_vector(w, ratio);
                let base = SimConfig::new(w, SOURCES, scheme.clone()).with_seed(seed());
                jobs.push(Job { spec: spec.clone(), cfg: base.clone().with_capacities(&caps) });
                jobs.push(Job {
                    spec: spec.clone(),
                    cfg: base.clone().with_capacities(&caps).with_capacity_blind_routing(),
                });
                let uniform = ratio == 1.0;
                if uniform {
                    jobs.push(Job { spec: spec.clone(), cfg: base });
                }
                shape.push((ratio, w, z, uniform));
            }
        }
    }
    let reports = run_parallel(jobs, threads());
    let mut it = reports.into_iter();
    let mut points = Vec::new();
    for (ratio, w, z, uniform) in shape {
        let weighted = it.next().expect("report per job");
        let blind = it.next().expect("report per job");
        let plain = uniform.then(|| it.next().expect("report per job"));
        points.push(Point { ratio, w, z, weighted, blind, plain });
    }
    points
}

/// Gate 4: the engine charges capacity-scaled service time exactly.
fn engine_capacity_check(out: &mut String) -> bool {
    let tuples = 64u64;
    let per_tuple = Duration::from_millis(1);
    struct StallBolt(Duration);
    impl Bolt for StallBolt {
        fn execute(&mut self, _t: Tuple, out: &mut Emitter<'_>) {
            out.stall(self.0);
        }
    }
    let mut topo = Topology::new();
    let s = topo.add_spout("src", 1, move |_| {
        let mut i = 0u64;
        spout_from_fn(move || {
            i += 1;
            (i <= tuples).then(|| Tuple::new(i.to_le_bytes().to_vec(), 1))
        })
    });
    let _ = topo
        .add_bolt("stall", 2, move |_| Box::new(StallBolt(per_tuple)))
        .input(s, Grouping::Shuffle);
    let stats = Runtime::with_options(RuntimeOptions {
        seed: seed(),
        capacities: InstanceCapacities::uniform().with("stall", &[1.0, 0.25]),
        ..RuntimeOptions::default()
    })
    .run(topo);
    let stalled = stats.stalled_ns("stall");
    let per_instance = tuples / 2 * per_tuple.as_nanos() as u64;
    let ok = stats.processed("stall") == tuples
        && stalled[0] == per_instance
        && stalled[1] == 4 * per_instance;
    let _ = writeln!(
        out,
        "check: engine charges 4x service time on the quarter-speed instance \
         (stalled_ns = {stalled:?}) .. {}",
        if ok { "OK" } else { "FAIL" }
    );
    ok
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (ratios, ws, zs, messages): (Vec<f64>, Vec<usize>, Vec<f64>, u64) = if smoke {
        (vec![1.0, 4.0], vec![10], vec![0.0, 2.0], 60_000)
    } else {
        (vec![1.0, 2.0, 4.0], vec![10, 50], vec![0.0, 2.0], MESSAGES)
    };

    let mut out = String::from(
        "# fig_hetero: capacity-weighted vs capacity-blind PKG on heterogeneous workers\n",
    );
    let _ = writeln!(
        out,
        "# keys={KEYS} sources={SOURCES} seed={} metric=weighted_imbalance (max L_i/c_i - m/W){}",
        seed(),
        if smoke { " (smoke)" } else { "" },
    );

    let points = sweep(&ratios, &ws, &zs, messages);

    let mut table = TextTable::new();
    table.row(["ratio", "W", "z", "arm", "avg_wimb", "avg_wfrac", "final_wfrac", "fast/slow"]);
    let mut tsv = String::from(SimReport::tsv_header());
    tsv.push('\n');
    for p in &points {
        for (arm, r) in [("weighted", &p.weighted), ("blind", &p.blind)] {
            let fast = r.load_sum(0..p.w / 2);
            let slow = r.load_sum(p.w / 2..p.w);
            table.row([
                format!("{}:1", p.ratio),
                p.w.to_string(),
                format!("{:.1}", p.z),
                arm.into(),
                format!("{:.1}", r.avg_weighted_imbalance),
                format!("{:.2e}", r.avg_weighted_fraction),
                format!("{:.2e}", r.final_weighted_fraction),
                format!("{:.2}", fast as f64 / slow.max(1) as f64),
            ]);
            tsv.push_str(&r.tsv_row());
            tsv.push('\n');
        }
    }
    out.push_str(&table.render());

    let mut ok = true;

    // Gate 1: weighted routing strictly beats blind routing (on the
    // normalized metric) at every heterogeneous grid point.
    let mut dominance = true;
    for p in points.iter().filter(|p| p.ratio > 1.0) {
        if p.weighted.avg_weighted_imbalance >= p.blind.avg_weighted_imbalance {
            dominance = false;
            let _ = writeln!(
                out,
                "VIOLATION: weighted imbalance {} !< blind {} at r={} W={} z={}",
                p.weighted.avg_weighted_imbalance,
                p.blind.avg_weighted_imbalance,
                p.ratio,
                p.w,
                p.z
            );
        }
    }
    let _ = writeln!(
        out,
        "check: weighted-PKG normalized imbalance < blind PKG at every skewed-capacity point .. {}",
        if dominance { "OK" } else { "FAIL" }
    );
    ok &= dominance;

    // Gate 2: uniform capacities reproduce the capacity-free run exactly.
    let mut degeneration = true;
    for p in points.iter().filter(|p| p.ratio == 1.0) {
        let plain = p.plain.as_ref().expect("1:1 points carry the capacity-free oracle");
        for (arm, r) in [("weighted", &p.weighted), ("blind", &p.blind)] {
            let exact = r.worker_loads == plain.worker_loads
                && r.avg_imbalance == plain.avg_imbalance
                && r.avg_fraction == plain.avg_fraction
                && r.avg_weighted_imbalance == plain.avg_imbalance
                && r.final_weighted_fraction == plain.final_fraction;
            if !exact {
                degeneration = false;
                let _ = writeln!(
                    out,
                    "VIOLATION: {arm} arm diverged from the capacity-free run at W={} z={}",
                    p.w, p.z
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "check: 1:1 capacities reproduce capacity-free numbers byte-identically .. {}",
        if degeneration { "OK" } else { "FAIL" }
    );
    ok &= degeneration;

    // Gate 3: fair-share routing at 4:1 — the weighted arm water-fills by
    // capacity while the blind arm equalizes raw loads.
    let mut fair = true;
    for p in points.iter().filter(|p| p.ratio == 4.0) {
        let split = |r: &SimReport| {
            let fast = r.load_sum(0..p.w / 2);
            let slow = r.load_sum(p.w / 2..p.w);
            fast as f64 / slow.max(1) as f64
        };
        let (wf, bf) = (split(&p.weighted), split(&p.blind));
        // The weighted arm always shifts strictly more mass fast-ward; on
        // the uniform stream it reaches capacity proportionality — the
        // fast-half:slow-half load ratio matches the halves' capacity
        // ratio within 5% in BOTH directions (an over-shift would mean
        // the weighting is applied twice; a saturating head key caps the
        // shift on the skewed stream, so only strict improvement is gated
        // there).
        let caps = capacity_vector(p.w, p.ratio);
        let ideal = caps[..p.w / 2].iter().sum::<f64>() / caps[p.w / 2..].iter().sum::<f64>();
        let proportional = if p.z == 0.0 { wf >= ideal * 0.95 && wf <= ideal * 1.05 } else { true };
        if !proportional || wf <= bf {
            fair = false;
            let _ = writeln!(
                out,
                "VIOLATION: weighted fast/slow load ratio {wf:.2} \
                 (blind {bf:.2}, capacity ratio {ideal:.2}) at W={} z={}",
                p.w, p.z
            );
        }
    }
    let _ = writeln!(
        out,
        "check: at 4:1 the weighted arm routes more mass to the fast half \
         (capacity-proportional at z=0) .. {}",
        if fair { "OK" } else { "FAIL" }
    );
    ok &= fair;

    // Gate 4: engine-side capacity scaling.
    ok &= engine_capacity_check(&mut out);

    out.push('\n');
    out.push_str(&tsv);
    pkg_bench::emit("fig_hetero.tsv", &out);
    if !ok {
        eprintln!("fig_hetero: checks FAILED");
        std::process::exit(1);
    }
}
