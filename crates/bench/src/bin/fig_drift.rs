//! **Mid-run speed-drift experiment** — the adaptive load-signal stack
//! (Peak-EWMA latency signal + online capacity re-estimation) against
//! today's count-greedy PKG when a worker slows down *during* the run.
//!
//! The paper's schemes minimize tuple counts, which is the right signal
//! exactly when every worker is equally fast and stays that way. On real
//! clusters speed drifts mid-run — a co-tenant VM, a thermal throttle, a
//! failing disk — and a count-balanced assignment quietly turns the slowed
//! worker into the bottleneck. The pluggable [`pkg_metrics::LoadMetricKind`]
//! stack routes on *observed service latency* instead and re-derives
//! capacity weights from completed work on a sliding window, so the router
//! tracks the cluster it has, not the one it was configured for.
//!
//! Two legs, shared gates:
//!
//! * **Simulator** — 8 workers, worker 0 drops to quarter speed halfway
//!   through the stream ([`pkg_datagen::SpeedDrift`]). The static arm is
//!   plain PKG (tuple-count signal); the adaptive arm is the same scheme
//!   with `peak_ewma` + estimator. Score: capacity-weighted imbalance of
//!   the post-change phase against the TRUE post-change speeds.
//! * **Engine** — the same shape as a live topology: four stalling
//!   instances behind PKG, instance 0 switching to 4× per-tuple service
//!   time after a warm-up, under whichever executor `PKG_ENGINE_EXECUTOR`
//!   selects (CI runs both).
//!
//! Exits non-zero unless every gate holds:
//!
//! 1. **Adaptive dominance (sim)** — the adaptive arm's post-change
//!    weighted imbalance is strictly below the static arm's, and the
//!    estimator completed at least one window.
//! 2. **Uniform identity (sim)** — with *uniform* speeds the adaptive
//!    stack routes byte-identically to the tuple-count baseline (same
//!    per-worker loads, same imbalance columns): the signal plugs in
//!    without perturbing the paper's numbers.
//! 3. **Adaptive dominance (engine)** — under the mid-run slowdown the
//!    adaptive run beats the static run on weighted imbalance against the
//!    post-change capacities, and sheds load from the slowed instance.
//! 4. **Collapse identity (engine)** — `TupleCount` with no estimator is
//!    the degenerate configuration: per-instance loads are byte-identical
//!    to a run with no load options at all.
//!
//! `--smoke` shrinks the stream/tuple volume and keeps every gate.

use std::fmt::Write as _;
use std::time::Duration;

use pkg_bench::{scaled, seed, TextTable};
use pkg_core::{EstimateKind, SchemeSpec};
use pkg_datagen::{DatasetProfile, SpeedDrift};
use pkg_engine::prelude::*;
use pkg_metrics::{weighted_imbalance, Capacities, LoadMetricKind};
use pkg_sim::{run, ServiceProfile, SimConfig, SimReport};

/// Simulated workers.
const WORKERS: usize = 8;
/// Source PEIs.
const SOURCES: usize = 4;
/// Messages before `PKG_SCALE` (smoke: fixed 60k).
const MESSAGES: u64 = 200_000;
/// Baseline per-tuple service time fed to the simulator's profile, ns.
const BASE_SERVICE_NS: u64 = 50_000;
/// The drift: the slowed worker runs at quarter speed.
const SLOW_FACTOR: f64 = 0.25;

fn spec(messages: u64) -> pkg_datagen::StreamSpec {
    scaled(DatasetProfile::lognormal2().with_messages(messages)).build(seed())
}

/// Gates 1–2: the simulator leg.
fn sim_leg(messages: u64, out: &mut String, tsv: &mut String) -> bool {
    let spec = spec(messages);
    let mut slowed = vec![1.0; WORKERS];
    slowed[0] = SLOW_FACTOR;
    let drift = SpeedDrift::uniform(WORKERS).with_step(spec.duration_ms() / 2, slowed);
    let profile = ServiceProfile::new(BASE_SERVICE_NS, drift);

    let static_arm = run(
        &spec,
        &SimConfig::new(WORKERS, SOURCES, SchemeSpec::pkg(EstimateKind::Local))
            .with_seed(seed())
            .with_service_profile(profile.clone()),
    );
    let adaptive = run(
        &spec,
        &SimConfig::new(WORKERS, SOURCES, SchemeSpec::pkg(EstimateKind::Local))
            .with_seed(seed())
            .with_load_metric(LoadMetricKind::peak_ewma())
            .with_estimator(2_048)
            .with_service_profile(profile),
    );

    let mut table = TextTable::new();
    table.row(["arm", "metric", "phase", "messages", "wimbalance", "slow_worker_load"]);
    for (arm, r) in [("static", &static_arm), ("adaptive", &adaptive)] {
        let d = r.drift.as_ref().expect("service profile produces drift stats");
        for p in &d.phases {
            table.row([
                arm.into(),
                r.load_metric.clone(),
                p.phase.to_string(),
                p.messages.to_string(),
                format!("{:.1}", p.weighted_imbalance()),
                p.loads[0].to_string(),
            ]);
        }
        tsv.push_str(&r.tsv_row());
        tsv.push('\n');
    }
    out.push_str(&table.render());

    let mut ok = true;

    // Gate 1: post-change dominance on the true post-change speeds.
    let sd = static_arm.drift.as_ref().expect("profile set");
    let ad = adaptive.drift.as_ref().expect("profile set");
    let (s1, a1) = (&sd.phases[1], &ad.phases[1]);
    let dominance = s1.messages > messages / 10
        && a1.messages > messages / 10
        && a1.weighted_imbalance() < s1.weighted_imbalance()
        && a1.loads[0] < s1.loads[0]
        && ad.estimator_rotations >= 1;
    let _ = writeln!(
        out,
        "check: adaptive post-change weighted imbalance {:.1} < static {:.1} \
         (estimator rotations: {}, final weights: {:?}) .. {}",
        a1.weighted_imbalance(),
        s1.weighted_imbalance(),
        ad.estimator_rotations,
        ad.estimator_weights.iter().map(|w| (w * 100.0).round() / 100.0).collect::<Vec<_>>(),
        if dominance { "OK" } else { "FAIL" }
    );
    ok &= dominance;

    // Gate 2: uniform speeds — the adaptive stack is a routing no-op.
    // Attached signals share one global load vector, so the honest
    // baseline is tuple-count routing over *global* estimates; with
    // uniform observed latency the peak-ewma signal is an exact positive
    // multiple of the count and every argmin (and every tie) agrees.
    let baseline = run(
        &spec,
        &SimConfig::new(WORKERS, SOURCES, SchemeSpec::pkg(EstimateKind::Global)).with_seed(seed()),
    );
    let uniform_adaptive = run(
        &spec,
        &SimConfig::new(WORKERS, SOURCES, SchemeSpec::pkg(EstimateKind::Global))
            .with_seed(seed())
            .with_load_metric(LoadMetricKind::peak_ewma())
            .with_estimator(2_048)
            .with_service_profile(ServiceProfile::new(
                BASE_SERVICE_NS,
                SpeedDrift::uniform(WORKERS),
            )),
    );
    let identical = uniform_adaptive.worker_loads == baseline.worker_loads
        && uniform_adaptive.avg_imbalance == baseline.avg_imbalance
        && uniform_adaptive.avg_fraction == baseline.avg_fraction
        && uniform_adaptive.final_imbalance == baseline.final_imbalance;
    let _ = writeln!(
        out,
        "check: uniform-speed peak-ewma routing is byte-identical to tuple-count .. {}",
        if identical { "OK" } else { "FAIL" }
    );
    ok &= identical;
    for r in [&baseline, &uniform_adaptive] {
        tsv.push_str(&r.tsv_row());
        tsv.push('\n');
    }
    ok
}

/// A stalling bolt for the engine leg: instance 0 switches to `4×` the
/// per-tuple service time after its warm-up threshold — the mid-run
/// slowdown, engine edition.
struct DriftBolt {
    base: Duration,
    slow_after: Option<u64>,
    seen: u64,
}

impl Bolt for DriftBolt {
    fn execute(&mut self, _t: Tuple, out: &mut Emitter<'_>) {
        self.seen += 1;
        let slowed = matches!(self.slow_after, Some(at) if self.seen > at);
        out.stall(if slowed { self.base * 4 } else { self.base });
    }
}

/// Gates 3–4: the engine leg, under whichever executor
/// `PKG_ENGINE_EXECUTOR` selects.
fn engine_leg(tuples: u64, out: &mut String) -> bool {
    let instances = 4usize;
    // Instance 0 slows after a quarter of its fair share: most of the run
    // happens under the drifted speeds.
    let slow_after = tuples / (instances as u64) / 4;
    let build = |drift: bool| {
        let mut t = Topology::new();
        let s = t.add_spout("src", 1, move |_| {
            let mut i = 0u64;
            spout_from_fn(move || {
                i += 1;
                (i <= tuples).then(|| Tuple::new(format!("k{}", i % 997).into_bytes(), 1))
            })
        });
        let _ = t
            .add_bolt("stall", instances, move |i| {
                Box::new(DriftBolt {
                    base: Duration::from_micros(50),
                    slow_after: (drift && i == 0).then_some(slow_after),
                    seen: 0,
                })
            })
            .input(s, Grouping::partial_key());
        t
    };
    let run_engine = |drift: bool, load: Option<LoadSignalOptions>| {
        Runtime::with_options(RuntimeOptions {
            channel_capacity: 16,
            seed: seed(),
            load,
            ..RuntimeOptions::default()
        })
        .run(build(drift))
    };

    let mut ok = true;

    // Gate 3: adaptive dominance under the mid-run slowdown, scored as
    // weighted imbalance of the final loads against the post-change
    // capacities (the honest score for "did routing track the drift").
    let static_arm = run_engine(true, None);
    let adaptive = run_engine(true, Some(LoadSignalOptions::adaptive()));
    let mut speeds = vec![1.0; instances];
    speeds[0] = SLOW_FACTOR;
    let caps = Capacities::heterogeneous(&speeds);
    let wimb =
        |stats: &pkg_engine::RunStats| weighted_imbalance(&stats.loads("stall"), caps.as_ref());
    let (sw, aw) = (wimb(&static_arm), wimb(&adaptive));
    let (sl, al) = (static_arm.loads("stall"), adaptive.loads("stall"));
    let conserved = sl.iter().sum::<u64>() == tuples && al.iter().sum::<u64>() == tuples;
    let dominance = conserved && aw < sw && al[0] < sl[0];
    let _ = writeln!(
        out,
        "check: engine adaptive weighted imbalance {aw:.1} < static {sw:.1} \
         (slowed-instance loads {} vs {}) .. {}",
        al[0],
        sl[0],
        if dominance { "OK" } else { "FAIL" }
    );
    ok &= dominance;

    // Gate 4: the degenerate configuration collapses to the exact
    // baseline routing.
    let base = run_engine(false, None);
    let collapsed = run_engine(false, Some(LoadSignalOptions::metric(LoadMetricKind::TupleCount)));
    let identical = collapsed.loads("stall") == base.loads("stall");
    let _ = writeln!(
        out,
        "check: TupleCount-without-estimator engine routing is byte-identical \
         to no load options .. {}",
        if identical { "OK" } else { "FAIL" }
    );
    ok &= identical;
    ok
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (messages, tuples) = if smoke { (60_000, 3_000) } else { (MESSAGES, 8_000) };

    let mut out = String::from(
        "# fig_drift: Peak-EWMA + online capacity re-estimation vs count-greedy \
         PKG under mid-run speed drift\n",
    );
    let _ = writeln!(
        out,
        "# workers={WORKERS} sources={SOURCES} slow_factor={SLOW_FACTOR} seed={}{}",
        seed(),
        if smoke { " (smoke)" } else { "" },
    );
    let mut tsv = String::from(SimReport::tsv_header());
    tsv.push('\n');

    let mut ok = sim_leg(messages, &mut out, &mut tsv);
    ok &= engine_leg(tuples, &mut out);

    out.push('\n');
    out.push_str(&tsv);
    pkg_bench::emit("fig_drift.tsv", &out);
    if !ok {
        eprintln!("fig_drift: checks FAILED");
        std::process::exit(1);
    }
}
