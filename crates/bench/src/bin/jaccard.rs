//! **Q2 detail: choice overlap between G and L** — "interestingly, even
//! though both G and L achieve very good load balance, their choices are
//! quite different. In an experiment measuring the agreement on the
//! destination of each message, G and L have only 47% Jaccard overlap.
//! Hence, L reaches a local minimum which is very close in value to the one
//! obtained by G, although different." (§V-B, Q2)
//!
//! This driver routes the *same* stream through PKG-with-oracle and
//! PKG-with-local-estimation in lockstep and reports, per dataset:
//! the per-message agreement rate, the Jaccard overlap of the
//! (key → worker-set) assignments, and both final imbalances — reproducing
//! the claim that the two schemes balance equally despite disagreeing on
//! destinations about half the time.

use pkg_bench::{scaled, seed, TextTable};
use pkg_core::{Estimate, PartialKeyGrouping, Partitioner, SharedLoads};
use pkg_datagen::DatasetProfile;
use pkg_hash::{FxHashMap, FxHashSet};
use pkg_metrics::imbalance;

fn main() {
    let datasets = [
        scaled(DatasetProfile::wikipedia()).scale(0.4),
        scaled(DatasetProfile::twitter()).scale(0.4),
        scaled(DatasetProfile::cashtags()),
    ];
    let (workers, sources) = (10usize, 5usize);

    let mut out = String::from("# Q2: agreement between PKG-G and PKG-L on message destinations\n");
    out.push_str(&format!(
        "# W={workers} S={sources} seed={} (paper: 47% Jaccard overlap)\n",
        seed()
    ));
    let mut table = TextTable::new();
    table.row(["dataset", "msg_agreement", "jaccard", "I(G)", "I(L)"]);

    for profile in &datasets {
        let spec = profile.build(seed());
        let shared = SharedLoads::new(workers);
        // G: all sources share the oracle; L: each source its own estimate.
        let mut g_sources: Vec<PartialKeyGrouping> = (0..sources)
            .map(|_| PartialKeyGrouping::new(workers, 2, Estimate::global(shared.clone()), seed()))
            .collect();
        let mut l_sources: Vec<PartialKeyGrouping> = (0..sources)
            .map(|_| PartialKeyGrouping::new(workers, 2, Estimate::local(workers), seed()))
            .collect();

        let mut loads_g = vec![0u64; workers];
        let mut loads_l = vec![0u64; workers];
        let mut agree = 0u64;
        let mut m = 0u64;
        // (key, worker) assignment sets for the Jaccard overlap.
        let mut set_g: FxHashMap<u64, FxHashSet<usize>> = FxHashMap::default();
        let mut set_l: FxHashMap<u64, FxHashSet<usize>> = FxHashMap::default();
        let mut src = 0usize;
        for msg in spec.iter(seed()) {
            let wg = g_sources[src].route(msg.key, msg.ts_ms);
            shared.record(wg); // the oracle tracks G's realized loads
            let wl = l_sources[src].route(msg.key, msg.ts_ms);
            loads_g[wg] += 1;
            loads_l[wl] += 1;
            if wg == wl {
                agree += 1;
            }
            set_g.entry(msg.key).or_default().insert(wg);
            set_l.entry(msg.key).or_default().insert(wl);
            m += 1;
            src = (src + 1) % sources;
        }

        // Jaccard over (key, worker) pairs.
        let mut inter = 0u64;
        let mut union = 0u64;
        for (key, gs) in &set_g {
            let ls = set_l.get(key);
            for w in gs {
                union += 1;
                if ls.is_some_and(|s| s.contains(w)) {
                    inter += 1;
                }
            }
        }
        for (key, ls) in &set_l {
            let gs = set_g.get(key);
            for w in ls {
                if !gs.is_some_and(|s| s.contains(w)) {
                    union += 1;
                }
            }
        }
        table.row([
            profile.name.clone(),
            format!("{:.1}%", 100.0 * agree as f64 / m as f64),
            format!("{:.1}%", 100.0 * inter as f64 / union as f64),
            format!("{:.1}", imbalance(&loads_g)),
            format!("{:.1}", imbalance(&loads_l)),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\n# expectation: agreement well below 100% while both imbalances stay tiny\n");
    out.push_str("# (local estimation finds a different but equally good minimum).\n");
    pkg_bench::emit("jaccard.tsv", &out);
}
