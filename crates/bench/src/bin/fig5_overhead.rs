//! **Fig. 5 overhead sweep** — the cost of PKG's second aggregation phase
//! as a function of the aggregation period `T`, for PKG vs. KG vs. shuffle.
//!
//! §V-D: "Shorter aggregation periods reduce the memory requirements, as
//! partial counters are flushed often, at the cost of a higher number of
//! aggregation messages." This driver measures that trade-off end-to-end at
//! simulation scale via `pkg-sim`'s aggregation modeling (`pkg-agg` windows
//! under every worker): merge messages, per-worker window memory,
//! aggregator state, and per-window staleness, over a nested grid of `T`.
//!
//! A second sweep measures the same trade-off for the adaptive D-Choices /
//! W-Choices schemes on a skewed Zipf stream at `W = 50` — the cost side of
//! "When Two Choices Are not Enough": more candidates per head key means
//! more partials per key-window, so merge overhead must order
//! `PKG ≤ D-Choices ≤ W-Choices ≤ SG` at every period (and strictly grow
//! from PKG to D to W in total).
//!
//! It then validates the live two-phase engine pipelines that `pkg-agg`
//! replaced the hand-rolled flush logic with:
//!
//! * word count (PKG and SG): the aggregator's final totals must be
//!   byte-identical to the ground-truth counts of the same seeded stream —
//!   i.e. identical to what the pre-refactor single-phase counters
//!   produced;
//! * heavy hitters: the merged SpaceSaving summary must be byte-identical
//!   to the single-phase computation with the same routing.
//!
//! Exits non-zero if merge-message overhead fails to decrease as `T` grows
//! or if either parity check fails.

use std::fmt::Write as _;
use std::time::Duration;

use pkg_agg::PartialAgg;
use pkg_apps::heavy_hitters::{heavy_hitters_topology, single_phase_summary, HeavyHittersConfig};
use pkg_apps::wordcount::{exact_counts, wordcount_topology, WordCountConfig, WordCountVariant};
use pkg_bench::{scaled, seed, TextTable};
use pkg_core::{EstimateKind, SchemeSpec};
use pkg_datagen::DatasetProfile;
use pkg_engine::{Grouping, Runtime, RuntimeOptions};
use pkg_sim::{run as run_sim, SimConfig};

fn sim_sweep(out: &mut String, tsv: &mut String) -> bool {
    let spec = scaled(DatasetProfile::lognormal2()).build(seed());
    let duration = spec.duration_ms();
    // Nested period grid — each literally divides the next (base, 4·base,
    // …, 256·base), so coarser panes are exact unions of finer ones and the
    // merge-message count is provably non-increasing in `T` for a fixed
    // stream. (Dividing `duration` by a ratio grid would NOT nest after
    // integer truncation.)
    let base = (duration / 512).max(1);
    let periods: Vec<u64> = [1u64, 4, 16, 64, 256].iter().map(|m| base * m).collect();
    let schemes = [
        ("PKG", SchemeSpec::pkg(EstimateKind::Local)),
        ("KG", SchemeSpec::KeyGrouping),
        ("SG", SchemeSpec::ShuffleGrouping),
    ];

    let mut table = TextTable::new();
    table.row([
        "scheme",
        "T_ms",
        "merge_msgs",
        "merge_frac",
        "worker_window",
        "agg_keys",
        "staleness_ms",
    ]);
    let mut ok = true;
    for (label, scheme) in schemes {
        let mut prev: Option<u64> = None;
        for &period in &periods {
            let cfg =
                SimConfig::new(10, 5, scheme.clone()).with_seed(seed()).with_aggregation(period);
            let r = run_sim(&spec, &cfg);
            let a = r.aggregation.as_ref().expect("aggregation modeled");
            table.row([
                label.to_string(),
                period.to_string(),
                a.merge_messages.to_string(),
                format!("{:.4}", a.merge_fraction),
                format!("{:.1}", a.avg_worker_state),
                format!("{:.1}", a.avg_aggregator_state),
                format!("{:.1}", a.avg_staleness_ms),
            ]);
            tsv.push_str(&r.tsv_row());
            tsv.push('\n');
            if let Some(p) = prev {
                if a.merge_messages > p {
                    let _ = writeln!(
                        out,
                        "VIOLATION: {label} merge messages rose {p} -> {} at T={period}",
                        a.merge_messages
                    );
                    ok = false;
                }
            }
            prev = Some(a.merge_messages);
        }
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "check: merge-message overhead decreases as T grows for every scheme .. {}",
        if ok { "OK" } else { "FAIL" }
    );
    ok
}

/// The adaptive-choice overhead sweep: merge messages per scheme over the
/// nested period grid, on a Zipf z=2.0 stream at `W = 50` where head keys
/// exist (the LN2 profile of the primary sweep has no key past
/// `θ = 2(1+ε)/10` at `W = 10`, so D/W-Choices degenerate to PKG there).
fn choice_sweep(out: &mut String, tsv: &mut String) -> bool {
    let workers = 50;
    let spec = scaled(DatasetProfile::zipf_exponent(10_000, 2.0, 2_000_000)).build(seed());
    let duration = spec.duration_ms();
    let base = (duration / 512).max(1);
    let periods: Vec<u64> = [1u64, 4, 16, 64, 256].iter().map(|m| base * m).collect();
    let schemes = [
        ("PKG", SchemeSpec::pkg(EstimateKind::Local)),
        ("DC", SchemeSpec::d_choices(EstimateKind::Local)),
        ("WC", SchemeSpec::w_choices(EstimateKind::Local)),
        ("SG", SchemeSpec::ShuffleGrouping),
    ];

    let mut table = TextTable::new();
    table.row(["scheme", "T_ms", "merge_msgs", "merge_frac", "worker_window", "agg_keys"]);
    let mut ok = true;
    // merges[scheme][period index]
    let mut merges: Vec<Vec<u64>> = Vec::new();
    for (label, scheme) in &schemes {
        let mut row = Vec::new();
        let mut prev: Option<u64> = None;
        for &period in &periods {
            let cfg = SimConfig::new(workers, 5, scheme.clone())
                .with_seed(seed())
                .with_aggregation(period);
            let r = run_sim(&spec, &cfg);
            let a = r.aggregation.as_ref().expect("aggregation modeled");
            table.row([
                label.to_string(),
                period.to_string(),
                a.merge_messages.to_string(),
                format!("{:.4}", a.merge_fraction),
                format!("{:.1}", a.avg_worker_state),
                format!("{:.1}", a.avg_aggregator_state),
            ]);
            tsv.push_str(&r.tsv_row());
            tsv.push('\n');
            if let Some(p) = prev {
                if a.merge_messages > p {
                    ok = false;
                    let _ = writeln!(
                        out,
                        "VIOLATION: {label} merge messages rose {p} -> {} at T={period}",
                        a.merge_messages
                    );
                }
            }
            prev = Some(a.merge_messages);
            row.push(a.merge_messages);
        }
        merges.push(row);
    }
    out.push_str(&table.render());

    // Candidate-count ordering at every period: PKG ≤ DC ≤ WC ≤ SG.
    let mut ordered = true;
    for (t, &period) in periods.iter().enumerate() {
        let (pkg, dc, wc, sg) = (merges[0][t], merges[1][t], merges[2][t], merges[3][t]);
        if !(pkg <= dc && dc <= wc && wc <= sg) {
            ordered = false;
            let _ = writeln!(
                out,
                "VIOLATION: merge ordering PKG {pkg} ≤ DC {dc} ≤ WC {wc} ≤ SG {sg} broken at \
                 T={period}"
            );
        }
    }
    // And strictly more candidates ⇒ strictly more merges overall.
    let sum = |i: usize| merges[i].iter().sum::<u64>();
    if !(sum(0) < sum(1) && sum(1) < sum(2)) {
        ordered = false;
        let _ = writeln!(
            out,
            "VIOLATION: total merges not strictly increasing PKG {} / DC {} / WC {}",
            sum(0),
            sum(1),
            sum(2)
        );
    }
    let _ = writeln!(
        out,
        "check: adaptive-choice merge overhead ordered PKG ≤ DC ≤ WC ≤ SG (strict totals) .. {}",
        if ordered { "OK" } else { "FAIL" }
    );
    let _ = writeln!(
        out,
        "check: merge-message overhead decreases as T grows for D/W-Choices .. {}",
        if ok { "OK" } else { "FAIL" }
    );
    ok && ordered
}

/// Word count on the live engine: the two-phase totals must equal the
/// ground truth of the seeded stream byte-for-byte (what the pre-refactor
/// single-phase counters produced).
fn wordcount_parity(out: &mut String, variant: WordCountVariant) -> bool {
    let cfg = WordCountConfig {
        variant,
        messages_per_source: 20_000,
        vocabulary: 500,
        counters: 6,
        aggregation_period: Some(Duration::from_millis(20)),
        seed: seed(),
        ..WordCountConfig::default()
    };
    let collector = pkg_agg::Collector::new();
    let (mut topo, _, _, aggregator) = wordcount_topology(&cfg);
    let c = collector.clone();
    let _sink =
        topo.add_bolt("collector", 1, move |_| c.bolt()).input(aggregator, Grouping::Global);
    Runtime::new().run(topo);

    let render = |pairs: &[(String, i64)]| {
        pairs.iter().fold(String::new(), |mut s, (w, n)| {
            let _ = writeln!(s, "{w}\t{n}");
            s
        })
    };
    let mut got: Vec<(String, i64)> = collector
        .totals()
        .into_iter()
        .map(|(k, v)| (String::from_utf8(k.to_vec()).expect("words are utf8"), v))
        .collect();
    got.sort_unstable();
    let mut want: Vec<(String, i64)> = exact_counts(&cfg).into_iter().collect();
    want.sort_unstable();
    let ok = render(&got) == render(&want);
    let _ = writeln!(
        out,
        "check: wordcount/{} two-phase totals byte-identical to single-phase .. {}",
        cfg.variant.label(),
        if ok { "OK" } else { "FAIL" }
    );
    ok
}

/// Heavy hitters on the live engine vs. the single-phase oracle.
fn heavy_hitters_parity(out: &mut String) -> bool {
    let cfg = HeavyHittersConfig {
        workers: 8,
        profile: DatasetProfile::cashtags().with_messages(50_000),
        engine_seed: seed(),
        ..HeavyHittersConfig::default()
    };
    let (topo, collector) = heavy_hitters_topology(&cfg);
    Runtime::with_options(RuntimeOptions {
        channel_capacity: 1024,
        seed: cfg.engine_seed,
        ..RuntimeOptions::default()
    })
    .run(topo);
    let engine = pkg_apps::heavy_hitters::final_summary(&collector).expect("summary collected");
    let oracle = single_phase_summary(&cfg);
    let ok = engine.encoded() == oracle.encoded();
    let _ = writeln!(
        out,
        "check: heavy-hitters merged summary byte-identical to single-phase .. {}",
        if ok { "OK" } else { "FAIL" }
    );
    ok
}

fn main() {
    let mut out = String::from(
        "# Fig. 5 overhead: aggregation period T vs merge messages / memory / staleness\n",
    );
    let _ = writeln!(out, "# workers=10 sources=5 seed={} (sim: lognormal2 profile)", seed());
    let mut tsv = String::from(pkg_sim::SimReport::tsv_header());
    tsv.push('\n');

    let mut ok = sim_sweep(&mut out, &mut tsv);
    out.push_str("\n# Adaptive-choice overhead (Zipf z=2.0, workers=50, sources=5)\n");
    ok &= choice_sweep(&mut out, &mut tsv);
    ok &= wordcount_parity(&mut out, WordCountVariant::PartialKeyGrouping);
    ok &= wordcount_parity(&mut out, WordCountVariant::ShuffleGrouping);
    ok &= heavy_hitters_parity(&mut out);

    out.push('\n');
    out.push_str(&tsv);
    pkg_bench::emit("fig5_overhead.tsv", &out);
    if !ok {
        eprintln!("fig5_overhead: checks FAILED");
        std::process::exit(1);
    }
}
