//! **Figure 2** — Fraction of average imbalance with respect to total number
//! of messages for each dataset, for different number of workers and number
//! of sources.
//!
//! Panels (left to right): TW, WP, CT, LN1, LN2. X-axis: workers
//! `W ∈ {5, 10, 50, 100}`. Series: `H` (hashing), `G` (PKG with a global
//! load oracle), `L5/L10/L15/L20` (PKG with local estimation and
//! `S ∈ {5,10,15,20}` sources).
//!
//! What must reproduce: `H` imposes a high imbalance fraction everywhere
//! (around 10⁻¹–10⁻²); PKG variants sit orders of magnitude lower
//! (10⁻⁵–10⁻⁹ depending on dataset/scale); `L` is within one order of
//! magnitude of `G` and insensitive to the number of sources; all
//! techniques collapse to the same high imbalance once `W` exceeds the
//! `O(1/p1)` limit of §IV (visible for WP at `W = 50,100`, CT at 50).

use pkg_bench::{scaled, seed, threads, TextTable, SOURCE_GRID, WORKER_GRID};
use pkg_core::{EstimateKind, SchemeSpec};
use pkg_datagen::DatasetProfile;
use pkg_sim::sweep::{run_parallel, Job};
use pkg_sim::SimConfig;

fn main() {
    // (label, sources, scheme)
    let mut techniques: Vec<(String, usize, SchemeSpec)> = vec![
        ("H".into(), 1, SchemeSpec::KeyGrouping),
        ("G".into(), 5, SchemeSpec::pkg(EstimateKind::Global)),
    ];
    for &s in &SOURCE_GRID {
        techniques.push((format!("L{s}"), s, SchemeSpec::pkg(EstimateKind::Local)));
    }

    let mut jobs = Vec::new();
    let mut meta = Vec::new();
    for profile in DatasetProfile::figure2_profiles() {
        let profile = scaled(profile);
        let spec = profile.build(seed());
        for (label, sources, scheme) in &techniques {
            for &w in &WORKER_GRID {
                meta.push((profile.name.clone(), label.clone(), w));
                jobs.push(Job {
                    spec: spec.clone(),
                    cfg: SimConfig::new(w, *sources, scheme.clone()).with_seed(seed()),
                });
            }
        }
    }
    let reports = run_parallel(jobs, threads());

    let mut out = String::from(
        "# Figure 2: fraction of average imbalance vs workers, per dataset and technique\n",
    );
    out.push_str(&format!("# scale={} seed={}\n", pkg_bench::scale(), seed()));
    let mut table = TextTable::new();
    table.row(["dataset", "technique", "W=5", "W=10", "W=50", "W=100"]);
    for chunk_start in (0..reports.len()).step_by(WORKER_GRID.len()) {
        let (ds, label, _) = &meta[chunk_start];
        let mut row = vec![ds.clone(), label.clone()];
        for wi in 0..WORKER_GRID.len() {
            row.push(format!("{:.3e}", reports[chunk_start + wi].final_fraction));
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(pkg_sim::SimReport::tsv_header());
    out.push('\n');
    for r in &reports {
        out.push_str(&r.tsv_row());
        out.push('\n');
    }
    pkg_bench::emit("fig2.tsv", &out);
}
