//! **Figure 5(a)** — Throughput for PKG, SG and KG for different CPU delays,
//! on the live engine (1 source, 9 counters — the paper's Storm topology).
//!
//! The paper adds a per-key CPU delay of 0.1–1 ms to reach its cluster's
//! saturation point and reports: "Regardless of the delay, SG and PKG
//! perform similarly, and their throughput is higher than KG. The
//! throughput of KG is reduced by ≈60% when the CPU delay increases
//! tenfold, while the impact on PKG and SG is smaller (≈37% decrease)" and
//! "the average latency with KG is up to 45% larger than with PKG".
//!
//! We run the same delays (enforced by sleeping — one dedicated core per
//! PEI, like the paper's 10 VMs). Message counts are sized so each
//! configuration runs a few seconds. Latency is measured in a second,
//! rate-limited pass at a fixed input rate (80% of the balanced capacity of
//! the *largest* delay), where KG's overloaded instance shows the paper's
//! latency blow-up.

use std::time::Duration;

use pkg_apps::wordcount::{wordcount_topology, WordCountConfig, WordCountVariant};
use pkg_bench::{seed, TextTable};
use pkg_engine::Runtime;

/// Throttled variant: wraps the word spout with a rate limiter.
fn run_config(cfg: &WordCountConfig) -> pkg_engine::RunStats {
    let (topo, _, _, _) = wordcount_topology(cfg);
    Runtime::new().run(topo)
}

fn main() {
    let variants = [
        WordCountVariant::PartialKeyGrouping,
        WordCountVariant::ShuffleGrouping,
        WordCountVariant::KeyGrouping,
    ];
    // The paper's 0.1–1 ms sweep.
    let delays_us: [u64; 5] = [100, 200, 400, 700, 1000];
    // Sized for ~1–6 s per configuration at 9 counters.
    let messages: u64 =
        std::env::var("PKG_FIG5_MESSAGES").ok().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    // External stream rate: unsaturated at low delays, saturated at high
    // ones (the paper's regime transition).
    let rate = 30_000.0;

    let mut out = String::from("# Figure 5(a): throughput vs CPU delay (1 source, 9 counters)\n");
    out.push_str(&format!("# messages={messages} seed={}\n", seed()));
    let mut table = TextTable::new();
    table.row([
        "variant",
        "delay_ms",
        "throughput_keys_s",
        "mean_latency_ms",
        "p99_latency_ms",
        "max_counter_load",
    ]);
    let mut tsv =
        String::from("variant\tdelay_ms\tthroughput\tmean_latency_ms\tp99_latency_ms\tmax_load\n");

    for &delay_us in &delays_us {
        for variant in variants {
            let cfg = WordCountConfig {
                variant,
                sources: 1,
                counters: 9,
                messages_per_source: messages,
                vocabulary: 10_000,
                p1: 0.0932,
                service_delay: Duration::from_micros(delay_us),
                aggregation_period: Some(Duration::from_millis(500)),
                top_k: 10,
                seed: seed(),
                source_rate: Some(rate),
            };
            let stats = run_config(&cfg);
            let tput = stats.throughput("counter");
            let lat = stats.latency("counter");
            let mean_ms = lat.mean() / 1e6;
            let p99_ms = lat.quantile(0.99) as f64 / 1e6;
            let max_load = stats.loads("counter").into_iter().max().unwrap_or(0);
            table.row([
                variant.label().to_string(),
                format!("{:.1}", delay_us as f64 / 1000.0),
                format!("{tput:.0}"),
                format!("{mean_ms:.2}"),
                format!("{p99_ms:.2}"),
                format!("{max_load}"),
            ]);
            tsv.push_str(&format!(
                "{}\t{:.1}\t{:.0}\t{:.2}\t{:.2}\t{}\n",
                variant.label(),
                delay_us as f64 / 1000.0,
                tput,
                mean_ms,
                p99_ms,
                max_load
            ));
        }
    }
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(&tsv);
    pkg_bench::emit("fig5a.tsv", &out);
}
