//! **Ablation: number of choices `d`** — "the theoretical gain in load
//! balance with two choices is exponential compared to a single choice.
//! However, using more than two choices only brings constant factor
//! improvements. Therefore, we restrict our study to two choices" (§III).
//!
//! This driver quantifies that design decision on the WP and TW profiles:
//! `d = 1` (key grouping) vs `d = 2` (PKG) is orders of magnitude; `d > 2`
//! buys little. `d → W` approaches shuffle grouping (imbalance ≤ S).
//! It also reports the key-replication cost of larger `d` — the *memory*
//! side of the trade-off, which is the reason the paper stops at 2.

use pkg_bench::{scaled, seed, threads, TextTable};
use pkg_core::{EstimateKind, SchemeSpec};
use pkg_datagen::DatasetProfile;
use pkg_sim::sweep::{run_parallel, Job};
use pkg_sim::SimConfig;

fn main() {
    let ds: [usize; 6] = [1, 2, 3, 4, 8, 16];
    let workers = [10usize, 50];
    let datasets = [
        scaled(DatasetProfile::wikipedia()).scale(0.2), // keep the sweep quick
        scaled(DatasetProfile::twitter()).scale(0.2),
    ];

    let mut jobs = Vec::new();
    let mut meta = Vec::new();
    for profile in &datasets {
        let spec = profile.build(seed());
        for &w in &workers {
            for &d in &ds {
                meta.push((profile.name.clone(), w, d));
                let mut cfg =
                    SimConfig::new(w, 5, SchemeSpec::Pkg { d, estimate: EstimateKind::Local })
                        .with_seed(seed());
                cfg.track_replication = true;
                jobs.push(Job { spec: spec.clone(), cfg });
            }
        }
    }
    let reports = run_parallel(jobs, threads());

    let mut out =
        String::from("# Ablation: PKG with d choices (imbalance fraction and replication)\n");
    out.push_str(&format!("# scale={} seed={} S=5\n", pkg_bench::scale(), seed()));
    let mut table = TextTable::new();
    table.row(["dataset", "W", "d", "final_fraction", "avg_replication", "key_worker_pairs"]);
    for ((ds_name, w, d), r) in meta.iter().zip(&reports) {
        let rep = r.replication.as_ref().expect("replication tracked");
        table.row([
            ds_name.clone(),
            format!("{w}"),
            format!("{d}"),
            format!("{:.3e}", r.final_fraction),
            format!("{:.3}", rep.avg),
            format!("{}", rep.total_pairs),
        ]);
    }
    out.push_str(&table.render());
    pkg_bench::emit("ablation_d.tsv", &out);
}
