//! **Overload survival** — admission control, load shedding, and hedged
//! dispatch under 2× offered load, gated on tail latency and accuracy.
//!
//! The paper measures PKG in steady state; production engines also face
//! *overload*, where the offered rate exceeds downstream service capacity
//! and an unprotected topology just grows its queues (and its tail
//! latency) without bound. `pkg-ingress` adds the missing control plane —
//! a deterministic token bucket, watermark-triggered load shedding with a
//! degrade-to-sketch policy ([`SketchDegrade`]), and hedged dispatch for
//! W-Choices head keys — and this driver exercises all three end to end,
//! exiting non-zero unless every gate holds:
//!
//! 1. **Transparency at ≤ 1× load** — with an active-but-generous ingress
//!    (token bucket refilling twice as fast as the logical offered rate),
//!    the merged second-phase output is byte-identical to a run with the
//!    ingress layer disabled, and nothing is shed or hedged.
//! 2. **Bounded tail under 2× overload** — with the bucket admitting half
//!    the logically-offered rate, a depth watermark, and hedging enabled,
//!    worker p99 latency stays under a hard bound, the degrade policy
//!    absorbs (not drops) the refused tuples, and top-10 recall of the
//!    final totals stays above the accuracy floor.
//! 3. **Hedge conservation** — every duplicated head-key copy is
//!    deduplicated at the aggregator: duplicates dropped == hedges issued.
//! 4. **The unprotected baseline degrades** — the same overload without
//!    ingress (and with effectively unbounded mailboxes) shows its peak
//!    queue depth growing strictly monotonically with stream volume: the
//!    failure mode the ingress layer exists to prevent.
//!
//! `--smoke` shrinks every arm and keeps every gate; CI runs it under both
//! `PKG_ENGINE_EXECUTOR` values.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use pkg_agg::{AggregatorBolt, Collector, SketchDegrade, Sum, WindowedWorkerBolt};
use pkg_bench::{seed, TextTable};
use pkg_engine::prelude::*;

/// Worker (phase-one) parallelism.
const W: usize = 6;
/// Mega-hot key occurrences per stream round: 40 of 102 ≈ 39% of traffic,
/// above the W-Choices head threshold θ = 2(1+ε)/W ≈ 0.367 for W = 6, so
/// the adaptive router classifies it as head and hedging can engage.
const HOT: usize = 40;
/// Warm-key weights, strictly heavier than any tail key, so the true
/// top-10 set is exactly {hot} ∪ {warm0..warm8} with no tie ambiguity.
const WARM_WEIGHTS: [usize; 9] = [8, 7, 6, 5, 4, 3, 3, 3, 3];
/// Tail keys emitted per round (rotating over a 500-key vocabulary).
const TAIL_PER_ROUND: u64 = 20;

/// Tuples per round: `HOT + Σ WARM_WEIGHTS + TAIL_PER_ROUND`.
const ROUND_LEN: u64 = HOT as u64 + 42 + TAIL_PER_ROUND;

/// Deterministic skewed stream: one head key, nine warm keys, uniform
/// rotating tail. Pure function of `rounds` — both executors and every arm
/// see the identical sequence.
fn stream(rounds: u64) -> Vec<Tuple> {
    let mut tuples = Vec::with_capacity((rounds * ROUND_LEN) as usize);
    for r in 0..rounds {
        for _ in 0..HOT {
            tuples.push(Tuple::new(b"hot".to_vec(), 1));
        }
        for (w, &weight) in WARM_WEIGHTS.iter().enumerate() {
            for _ in 0..weight {
                tuples.push(Tuple::new(format!("warm{w}").into_bytes(), 1));
            }
        }
        for j in 0..TAIL_PER_ROUND {
            tuples.push(Tuple::new(format!("t{}", (r * TAIL_PER_ROUND + j) % 500).into_bytes(), 1));
        }
    }
    tuples
}

/// The byte-identity comparison shape: (key, value, payload), with the
/// wall-clock `born_ns` excluded.
type Triple = (Box<[u8]>, i64, Box<[u8]>);

fn triples(c: &Collector) -> Vec<Triple> {
    c.tuples().into_iter().map(|t| (t.key.into_boxed(), t.value, t.payload)).collect()
}

/// Run the two-phase word count (W-Choices first hop) over `rounds` stream
/// rounds with the given ingress configuration.
fn engine_run(
    rounds: u64,
    ingress: Option<IngressOptions>,
    channel_capacity: usize,
    delay: Duration,
) -> (Collector, pkg_engine::RunStats) {
    let collector = Collector::new();
    let mut topo = Topology::new();
    let src = topo.add_spout("src", 1, move |_| pkg_engine::spout::spout_from_iter(stream(rounds)));
    let worker = topo
        .add_bolt("worker", W, move |_| {
            Box::new(WindowedWorkerBolt::<Sum>::per_key().panes_every_ticks(2).service_delay(delay))
        })
        .input(src, Grouping::w_choices())
        .tick_every(Duration::from_millis(2))
        .id();
    let agg = topo
        .add_bolt("agg", 1, |_| Box::new(AggregatorBolt::<Sum>::new()))
        .input(worker, Grouping::Key)
        .id();
    let c = collector.clone();
    let _sink = topo.add_bolt("sink", 1, move |_| c.bolt()).input(agg, Grouping::Global);

    let mut options =
        RuntimeOptions { seed: seed(), channel_capacity, ingress, ..RuntimeOptions::default() };
    if let ExecutorMode::Pool { workers, .. } = &mut options.executor {
        // Service-delay stalls re-arm on the timer wheel; keep enough
        // workers that the delayed stage never serializes behind the spout.
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        *workers = (*workers).max(cores.max(4));
    }
    let stats = Runtime::with_options(options).run(topo);
    (collector, stats)
}

/// Top-10 keys of the collected totals, by count descending then key.
fn top10(c: &Collector) -> Vec<Box<[u8]>> {
    let mut totals = c.totals();
    totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    totals.truncate(10);
    totals.into_iter().map(|(k, _)| k).collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let parity_rounds: u64 = if smoke { 100 } else { 400 };
    let overload_rounds: u64 = if smoke { 120 } else { 600 };
    let baseline_rounds: [u64; 3] = if smoke { [20, 40, 80] } else { [80, 160, 320] };
    let delay = Duration::from_micros(5);

    let mut out = String::from(
        "# fig_overload: admission control, load shedding, and hedged dispatch at 2x load\n",
    );
    let _ = writeln!(
        out,
        "# W={W} seed={} round_len={ROUND_LEN} parity_rounds={parity_rounds} \
         overload_rounds={overload_rounds}{}",
        seed(),
        if smoke { " (smoke)" } else { "" },
    );
    let mut ok = true;

    // ---- Gate 1: transparency at <= 1x load -----------------------------
    // Logical offered rate 1M tuples/s (1 µs per tuple), bucket refilling
    // at 2M/s: admission never refuses, and no watermark or hedging is
    // configured — the layer is active but must be invisible.
    let neutral = IngressOptions {
        rate_per_sec: Some(2_000_000),
        burst: 64,
        logical_step_ns: Some(1_000),
        ..IngressOptions::default()
    };
    let (with_ingress, wi_stats) = engine_run(parity_rounds, Some(neutral), 1_024, Duration::ZERO);
    let (without, wo_stats) = engine_run(parity_rounds, None, 1_024, Duration::ZERO);
    let (wt, ot) = (triples(&with_ingress), triples(&without));
    let untouched = wi_stats.shed_dropped("src") == 0
        && wi_stats.shed_degraded("src") == 0
        && wi_stats.hedges("src") == 0;
    let transparent = wt == ot && !wt.is_empty() && untouched;
    let _ = writeln!(
        out,
        "check: at <=1x load ingress output is byte-identical to the no-ingress run \
         ({} keys, 0 shed, 0 hedged) .. {}",
        wt.len(),
        if transparent { "OK" } else { "FAIL" }
    );
    ok &= transparent;
    let _ = writeln!(
        out,
        "  parity arm: processed src={} worker={} (no-ingress {} / {})",
        wi_stats.processed("src"),
        wi_stats.processed("worker"),
        wo_stats.processed("src"),
        wo_stats.processed("worker"),
    );

    // ---- Gate 2 + 3: the protected topology under 2x overload -----------
    // Logical offered rate 2M tuples/s against a 1M/s bucket: half the
    // stream must be refused. The degrade policy absorbs refusals into a
    // 64-counter Space-Saving summary that is re-injected at end of
    // stream; the watermark sheds on downstream backlog; head tuples hedge
    // past any instance more than 8 tuples deep.
    let dups_before = pkg_ingress::hedge::audit::duplicates();
    let protected = IngressOptions {
        rate_per_sec: Some(1_000_000),
        burst: 64,
        logical_step_ns: Some(500),
        watermark: Some(512),
        policy: Some(Arc::new(|_instance| {
            Box::new(SketchDegrade::new(64)) as Box<dyn pkg_ingress::ShedPolicy>
        })),
        hedge_depth_budget: Some(8),
        ..IngressOptions::default()
    };
    let (shed_run, shed_stats) = engine_run(overload_rounds, Some(protected), 1_024, delay);
    let dups = pkg_ingress::hedge::audit::duplicates() - dups_before;

    let [p50, p99, p999] = shed_stats.latency_percentiles("worker");
    let degraded = shed_stats.shed_degraded("src");
    let dropped = shed_stats.shed_dropped("src");
    let hedges = shed_stats.hedges("src");
    let offered = overload_rounds * ROUND_LEN;

    let mut table = TextTable::new();
    table.row(["arm", "offered", "admitted", "degraded", "hedges", "p50_ms", "p99_ms", "p999_ms"]);
    table.row([
        "protected".into(),
        offered.to_string(),
        (offered - degraded - dropped).to_string(),
        degraded.to_string(),
        hedges.to_string(),
        format!("{:.3}", p50 as f64 / 1e6),
        format!("{:.3}", p99 as f64 / 1e6),
        format!("{:.3}", p999 as f64 / 1e6),
    ]);

    // p99 bound: worker backlog is capped by watermark shedding and
    // mailbox capacity, so queue wait stays near capacity x service time
    // (~5 ms) — 250 ms is a hard ceiling with a wide scheduling allowance.
    let p99_bound_ns = 250_000_000u64;
    let bounded = p99 > 0 && p99 <= p99_bound_ns;
    let _ = writeln!(
        out,
        "check: protected worker p99 {:.3} ms <= {:.0} ms under 2x overload .. {}",
        p99 as f64 / 1e6,
        p99_bound_ns as f64 / 1e6,
        if bounded { "OK" } else { "FAIL" }
    );
    ok &= bounded;

    // The degrade policy absorbs; nothing may be hard-dropped.
    let absorbed = degraded > 0 && dropped == 0;
    let _ = writeln!(
        out,
        "check: overload sheds degrade into the sketch ({degraded} absorbed, \
         {dropped} dropped) .. {}",
        if absorbed { "OK" } else { "FAIL" }
    );
    ok &= absorbed;

    // Accuracy floor: the true top-10 set is known by construction.
    let mut truth: Vec<Vec<u8>> = vec![b"hot".to_vec()];
    truth.extend((0..9).map(|w| format!("warm{w}").into_bytes()));
    let top = top10(&shed_run);
    let recall = top.iter().filter(|k| truth.iter().any(|t| t.as_slice() == k.as_ref())).count()
        as f64
        / 10.0;
    let floor = 0.7;
    let recalled = recall >= floor;
    let _ = writeln!(
        out,
        "check: top-10 recall under shedding {recall:.2} >= {floor:.2} .. {}",
        if recalled { "OK" } else { "FAIL" }
    );
    ok &= recalled;

    // Hedge conservation: exactly one of each duplicated pair is dropped.
    let conserved = hedges > 0 && dups == hedges;
    let _ = writeln!(
        out,
        "check: hedges issued {hedges} == duplicates deduplicated {dups} (and > 0) .. {}",
        if conserved { "OK" } else { "FAIL" }
    );
    ok &= conserved;

    // ---- Gate 4: the unprotected baseline degrades ----------------------
    // No ingress, effectively unbounded mailboxes: peak worker queue depth
    // must grow strictly with volume — unbounded in the limit. A heavier
    // service delay than the protected arm keeps the workers saturated at
    // every volume step, so the high-water mark tracks total backlog rather
    // than per-activation delivery batching.
    let base_delay = Duration::from_micros(25);
    let mut depths = Vec::new();
    for rounds in baseline_rounds {
        let (_, stats) = engine_run(rounds, None, 1 << 17, base_delay);
        let depth = stats.max_depth("worker");
        let [_, base_p99, _] = stats.latency_percentiles("worker");
        table.row([
            format!("baseline x{rounds}"),
            (rounds * ROUND_LEN).to_string(),
            stats.processed("src").to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{:.3}", base_p99 as f64 / 1e6),
            format!("depth={depth}"),
        ]);
        depths.push(depth);
    }
    out.push_str(&table.render());
    let monotone = depths.windows(2).all(|w| w[1] > w[0]) && depths[0] > 0;
    let _ = writeln!(
        out,
        "check: unprotected peak queue depth grows strictly with volume {depths:?} .. {}",
        if monotone { "OK" } else { "FAIL" }
    );
    ok &= monotone;

    pkg_bench::emit("fig_overload.tsv", &out);
    if !ok {
        eprintln!("fig_overload: checks FAILED");
        std::process::exit(1);
    }
}
