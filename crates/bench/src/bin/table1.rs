//! **Table I** — Summary of the datasets used in the experiments: number of
//! messages, number of keys and percentage of messages having the most
//! frequent key (p1).
//!
//! Paper values:
//!
//! ```text
//! Dataset        Symbol  Messages  Keys   p1(%)
//! Wikipedia      WP      22M       2.9M   9.32
//! Twitter        TW      1.2G      31M    2.67
//! Cashtags       CT      690k      2.9k   3.29
//! Synthetic 1    LN1     10M       16k    14.71
//! Synthetic 2    LN2     10M       1.1k   7.01
//! LiveJournal    LJ      69M       4.9M   0.29
//! Slashdot0811   SL1     905k      77k    3.28
//! Slashdot0902   SL2     948k      82k    3.11
//! ```
//!
//! This driver builds every synthetic profile at the configured scale,
//! streams it once, and reports the *achieved* statistics next to the
//! paper's. Zipf profiles match p1 exactly by construction; log-normal and
//! graph profiles have emergent p1 (the paper's values are one draw from
//! the same generative family).

use pkg_bench::{scaled, seed, TextTable};
use pkg_datagen::DatasetProfile;
use pkg_hash::FxHashMap;

struct PaperRow {
    symbol: &'static str,
    messages: &'static str,
    keys: &'static str,
    p1: f64,
}

fn main() {
    let rows: Vec<(DatasetProfile, PaperRow)> = vec![
        (
            scaled(DatasetProfile::wikipedia()),
            PaperRow { symbol: "WP", messages: "22M", keys: "2.9M", p1: 9.32 },
        ),
        (
            scaled(DatasetProfile::twitter()),
            PaperRow { symbol: "TW", messages: "1.2G", keys: "31M", p1: 2.67 },
        ),
        (
            scaled(DatasetProfile::cashtags()),
            PaperRow { symbol: "CT", messages: "690k", keys: "2.9k", p1: 3.29 },
        ),
        (
            scaled(DatasetProfile::lognormal1()),
            PaperRow { symbol: "LN1", messages: "10M", keys: "16k", p1: 14.71 },
        ),
        (
            scaled(DatasetProfile::lognormal2()),
            PaperRow { symbol: "LN2", messages: "10M", keys: "1.1k", p1: 7.01 },
        ),
        (
            scaled(DatasetProfile::livejournal()),
            PaperRow { symbol: "LJ", messages: "69M", keys: "4.9M", p1: 0.29 },
        ),
        (
            scaled(DatasetProfile::slashdot1()),
            PaperRow { symbol: "SL1", messages: "905k", keys: "77k", p1: 3.28 },
        ),
        (
            scaled(DatasetProfile::slashdot2()),
            PaperRow { symbol: "SL2", messages: "948k", keys: "82k", p1: 3.11 },
        ),
    ];

    let mut table = TextTable::new();
    table.row([
        "Symbol",
        "paper msgs",
        "ours msgs",
        "paper keys",
        "ours keys",
        "paper p1%",
        "ours p1%",
    ]);
    for (profile, paper) in rows {
        let spec = profile.build(seed());
        let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
        let mut m = 0u64;
        for msg in spec.iter(seed()) {
            *counts.entry(msg.key).or_default() += 1;
            m += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        let p1 = 100.0 * max as f64 / m as f64;
        table.row([
            paper.symbol.to_string(),
            paper.messages.to_string(),
            format!("{m}"),
            paper.keys.to_string(),
            format!("{}", counts.len()),
            format!("{:.2}", paper.p1),
            format!("{p1:.2}"),
        ]);
    }
    let mut out = String::from("# Table I: dataset summary, paper vs synthesized\n");
    out.push_str(&format!("# scale={} seed={}\n", pkg_bench::scale(), seed()));
    out.push_str(&table.render());
    pkg_bench::emit("table1.tsv", &out);
}
