//! Calibration utility: the log-normal profiles' head probability is a
//! random function of the weight draw (the max of K heavy-tailed weights
//! has enormous variance). The paper's Table I reports one concrete draw
//! (LN1 p1 = 14.71%, LN2 p1 = 7.01%); this tool scans weight seeds for the
//! draw closest to those values. The winning seeds are pinned inside
//! `pkg_datagen::profiles` so that the default datasets match Table I.

use pkg_datagen::lognormal;

fn best_seed(k: u64, mu: f64, sigma: f64, target_p1: f64, tries: u64) -> (u64, f64) {
    let mut best = (0u64, f64::INFINITY, 0.0f64);
    for seed in 0..tries {
        let w = lognormal::weights(k, mu, sigma, seed);
        let total: f64 = w.iter().sum();
        let p1 = w[0] / total;
        let err = (p1 - target_p1).abs();
        if err < best.1 {
            best = (seed, err, p1);
        }
    }
    (best.0, best.2)
}

fn main() {
    let tries: u64 =
        std::env::var("PKG_CALIBRATE_TRIES").ok().and_then(|s| s.parse().ok()).unwrap_or(400);
    let (s1, p1) = best_seed(16_000, 1.789, 2.366, 0.1471, tries);
    println!("LN1: weight_seed={s1} achieves p1={:.4} (target 0.1471)", p1);
    let (s2, p2) = best_seed(1_100, 2.245, 1.133, 0.0701, tries);
    println!("LN2: weight_seed={s2} achieves p1={:.4} (target 0.0701)", p2);
}
