//! Run every experiment driver in sequence, writing all outputs under
//! `results/`. Honors `PKG_SCALE` / `PKG_SEED` / `PKG_THREADS`.
//!
//! ```text
//! cargo run --release -p pkg-bench --bin run_all
//! ```

use std::process::Command;

const DRIVERS: [&str; 17] = [
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5a",
    "fig5b",
    "fig5_overhead",
    "fig_dchoices",
    "fig_drift",
    "fig_hetero",
    "fig_overload",
    "theory_bounds",
    "ablation_d",
    "ablation_hot",
    "ablation_estimator",
    "jaccard",
];

fn main() {
    // Sibling binaries live next to this one.
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe has a parent dir").to_path_buf();
    let mut failed = Vec::new();
    for driver in DRIVERS {
        let path = dir.join(driver);
        eprintln!("== running {driver} ==");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{driver} exited with {s}");
                failed.push(driver);
            }
            Err(e) => {
                eprintln!("{driver} failed to start: {e} (build with --bins first)");
                failed.push(driver);
            }
        }
    }
    if failed.is_empty() {
        eprintln!("all drivers completed; outputs in results/");
    } else {
        eprintln!("failed drivers: {failed:?}");
        std::process::exit(1);
    }
}
