//! **Engine scale sweep** — throughput of the two executors as the total
//! instance count grows: the experiment the cooperative pool executor
//! exists for.
//!
//! The paper's Q4 runs word count at cluster scale, and the follow-up work
//! ("When Two Choices Are not Enough") shows PKG's interesting regimes
//! start at large worker counts `W` — exactly where one-OS-thread-per-PEI
//! collapses into scheduler thrash. This driver sweeps the word-count
//! topology (PKG variant) over total instance counts of roughly 50 / 200 /
//! 800, under both [`ExecutorMode`]s, holding the total message volume
//! fixed so every point does the same work. It prints a TSV (echoed into
//! `results/engine_scale.tsv`) with wall clock, counter throughput, and
//! pool activation counts, and **asserts message conservation at every
//! point** (exit non-zero on any loss).
//!
//! Full mode additionally gates the scheduler's reason to exist: the pool
//! must sustain ≥ 2× the thread-per-instance throughput at the largest
//! size and stay within noise (≥ 0.85×) at the smallest.
//!
//! `--smoke` runs one small size with reduced volume and checks
//! conservation plus exact cross-executor load parity — fast and
//! deterministic, suitable as a CI gate against scheduler regressions.

use std::fmt::Write as _;
use std::time::Instant;

use pkg_apps::wordcount::{wordcount_topology, WordCountConfig, WordCountVariant};
use pkg_bench::{seed, TextTable};
use pkg_engine::tuple::audit;
use pkg_engine::{ExecutorMode, LoadSignalOptions, Runtime, RuntimeOptions};

/// One sweep point: a word-count topology with `instances` total PEIs
/// (sources + counters + 1 aggregator) fed `messages` tuples in total.
struct Point {
    instances: usize,
    messages: u64,
}

struct Measurement {
    wall_s: f64,
    counter_tput: f64,
    activations: u64,
    loads: Vec<u64>,
    /// Counter-stage p99 tuple latency (birth → execute), nanoseconds.
    p99_ns: u64,
}

fn config_for(p: &Point, total_messages: u64) -> WordCountConfig {
    let sources = (p.instances / 10).max(1);
    let counters = p.instances - sources - 1;
    WordCountConfig {
        variant: WordCountVariant::PartialKeyGrouping,
        sources,
        counters,
        messages_per_source: total_messages / sources as u64,
        vocabulary: 10_000,
        aggregation_period: None,
        seed: seed(),
        ..WordCountConfig::default()
    }
}

/// Load-signal configuration this sweep routes under (`None` = the default
/// tuple-count local estimation). Its metric label rides in every
/// trajectory record so throughput history stays comparable if a future
/// sweep switches signals.
fn active_load() -> Option<LoadSignalOptions> {
    None
}

/// Label of the load metric in effect, for the trajectory log.
fn metric_label() -> &'static str {
    active_load().map_or("count", |l| l.metric.label())
}

fn run_point(cfg: &WordCountConfig, mode: ExecutorMode) -> Result<Measurement, String> {
    let (topo, _, _, _) = wordcount_topology(cfg);
    let (heap0, clones0) = (audit::heap_keys(), audit::tuple_clones());
    let started = Instant::now();
    let stats = Runtime::with_options(RuntimeOptions {
        channel_capacity: 1_024,
        seed: seed(),
        executor: mode,
        load: active_load(),
        ..RuntimeOptions::default()
    })
    .run(topo);
    let wall_s = started.elapsed().as_secs_f64();
    // Zero-alloc audit: word-count keys fit the inline capacity and every
    // edge in this topology has fan-out 1, so neither counter may grow at
    // all — any nonzero delta means the hot path regressed to allocating.
    let (heap_d, clones_d) = (audit::heap_keys() - heap0, audit::tuple_clones() - clones0);
    debug_assert!(
        heap_d == 0 && clones_d == 0,
        "tuple hot path allocated: {heap_d} heap keys, {clones_d} tuple clones"
    );
    let total = cfg.messages_per_source * cfg.sources as u64;
    // Message conservation: every generated tuple is counted exactly once,
    // and every counter flush reaches the aggregator exactly once.
    if stats.processed("counter") != total {
        return Err(format!(
            "conservation violated: counters processed {} of {total}",
            stats.processed("counter")
        ));
    }
    if stats.emitted("counter") != stats.processed("aggregator") {
        return Err(format!(
            "conservation violated: counters emitted {} but aggregator processed {}",
            stats.emitted("counter"),
            stats.processed("aggregator")
        ));
    }
    Ok(Measurement {
        wall_s,
        counter_tput: total as f64 / wall_s,
        activations: stats.activations("counter"),
        loads: stats.loads("counter"),
        p99_ns: stats.latency_percentiles("counter")[1],
    })
}

fn mode_label(mode: ExecutorMode) -> &'static str {
    match mode {
        ExecutorMode::ThreadPerInstance => "threads",
        ExecutorMode::Pool { .. } => "pool",
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let points: Vec<Point> = if smoke {
        vec![Point { instances: 50, messages: 40_000 }]
    } else {
        vec![
            Point { instances: 50, messages: 400_000 },
            Point { instances: 200, messages: 400_000 },
            Point { instances: 800, messages: 400_000 },
        ]
    };
    let modes = [ExecutorMode::ThreadPerInstance, ExecutorMode::pool()];

    let mut out = String::from("# engine_scale: executor throughput vs total instance count\n");
    let _ = writeln!(
        out,
        "# wordcount/PKG, sources=instances/10, counters=rest, aggregator=1, seed={}{}",
        seed(),
        if smoke { " (smoke)" } else { "" },
    );
    let mut table = TextTable::new();
    table.row([
        "instances",
        "mode",
        "messages",
        "wall_s",
        "counter_tput_msg_s",
        "activations",
        "p99_ms",
    ]);
    let mut tsv = String::from(
        "instances\tmode\tmessages\twall_s\tcounter_tput_msg_s\tactivations\tp99_ms\n",
    );

    let mut ok = true;
    let mut results: Vec<(usize, &'static str, Measurement)> = Vec::new();
    for p in &points {
        let cfg = config_for(p, p.messages);
        for mode in modes {
            let label = mode_label(mode);
            match run_point(&cfg, mode) {
                Ok(m) => {
                    table.row([
                        p.instances.to_string(),
                        label.to_string(),
                        p.messages.to_string(),
                        format!("{:.3}", m.wall_s),
                        format!("{:.0}", m.counter_tput),
                        m.activations.to_string(),
                        format!("{:.3}", m.p99_ns as f64 / 1e6),
                    ]);
                    let _ = writeln!(
                        tsv,
                        "{}\t{}\t{}\t{:.4}\t{:.0}\t{}\t{:.3}",
                        p.instances,
                        label,
                        p.messages,
                        m.wall_s,
                        m.counter_tput,
                        m.activations,
                        m.p99_ns as f64 / 1e6,
                    );
                    results.push((p.instances, label, m));
                }
                Err(e) => {
                    ok = false;
                    let _ = writeln!(out, "FAIL {label} @ {} instances: {e}", p.instances);
                }
            }
        }
    }
    out.push_str(&table.render());

    let tput = |instances: usize, label: &str| {
        results
            .iter()
            .find(|(i, l, _)| *i == instances && *l == label)
            .map(|(_, _, m)| m.counter_tput)
    };
    if smoke {
        // Deterministic cross-executor check: identical per-instance loads
        // (byte-identical routing), not timing.
        let find = |label: &str| {
            results.iter().find(|(_, l, _)| *l == label).map(|(_, _, m)| m.loads.clone())
        };
        match (find("threads"), find("pool")) {
            (Some(a), Some(b)) if a == b => {
                let _ = writeln!(out, "check: per-instance loads identical across executors .. OK");
            }
            (Some(_), Some(_)) => {
                ok = false;
                let _ =
                    writeln!(out, "check: per-instance loads diverged across executors .. FAIL");
            }
            _ => ok = false,
        }
    } else if let (Some(t_small), Some(p_small), Some(t_big), Some(p_big)) = (
        tput(points[0].instances, "threads"),
        tput(points[0].instances, "pool"),
        tput(points[points.len() - 1].instances, "threads"),
        tput(points[points.len() - 1].instances, "pool"),
    ) {
        let _ = writeln!(
            out,
            "pool/threads throughput ratio: {:.2}x @ {} instances, {:.2}x @ {} instances",
            p_small / t_small,
            points[0].instances,
            p_big / t_big,
            points[points.len() - 1].instances,
        );
        if p_big < 2.0 * t_big {
            ok = false;
            let _ = writeln!(
                out,
                "check: pool ≥ 2x threads at {} instances .. FAIL",
                points[points.len() - 1].instances
            );
        } else {
            let _ = writeln!(out, "check: pool ≥ 2x threads at the largest size .. OK");
        }
        // "No worse" at small scale, with a noise allowance.
        if p_small < 0.85 * t_small {
            ok = false;
            let _ = writeln!(out, "check: pool no worse at the smallest size .. FAIL");
        } else {
            let _ = writeln!(out, "check: pool no worse at the smallest size .. OK");
        }
    } else {
        ok = false;
    }

    // Regression gate: compare pool throughput against the most recent
    // trajectory record of the same kind (smoke vs full — their message
    // volumes differ, so rates are only comparable within a kind). A
    // point matching on instance count that lost more than 25% fails the
    // run; a missing baseline is reported but never fails (first run on a
    // fresh log, or first smoke record).
    let baseline = baseline_pool_tputs(smoke);
    if baseline.is_empty() {
        let _ = writeln!(out, "regression gate: no prior smoke={smoke} record; skipped");
    }
    for (instances, base) in &baseline {
        let Some(cur) = tput(*instances, "pool") else { continue };
        let verdict = if cur < 0.75 * base {
            ok = false;
            "FAIL (>25% regression)"
        } else {
            "OK"
        };
        let _ = writeln!(
            out,
            "regression gate: pool @ {instances} instances {:.2}x of last record \
             ({:.0} vs {:.0} tuples/s) .. {verdict}",
            cur / base,
            cur,
            base,
        );
    }

    out.push('\n');
    out.push_str(&tsv);
    pkg_bench::emit("engine_scale.tsv", &out);
    if ok {
        append_trajectory(smoke, &results);
    } else {
        eprintln!("engine_scale: checks FAILED");
        std::process::exit(1);
    }
}

/// Pool throughput per instance count from the most recent trajectory
/// record whose `smoke` flag matches, or empty when the log has none.
/// The log is machine-appended one-record-per-line JSON (see
/// [`append_trajectory`]), so a string scan is enough — no JSON parser in
/// the workspace, and none needed.
fn baseline_pool_tputs(smoke: bool) -> Vec<(usize, f64)> {
    let path = std::env::var("PKG_BENCH_LOG").unwrap_or_else(|_| "BENCH_engine.json".into());
    let Ok(text) = std::fs::read_to_string(&path) else { return Vec::new() };
    let want = format!("\"smoke\": {smoke}");
    let Some(line) = text.lines().rev().find(|l| l.contains(&want)) else { return Vec::new() };
    let mut points = Vec::new();
    for frag in line.split("{\"instances\":").skip(1) {
        let frag = frag.split('}').next().unwrap_or("");
        if !frag.contains("\"mode\": \"pool\"") {
            continue;
        }
        let instances = frag.split(',').next().and_then(|s| s.trim().parse::<usize>().ok());
        // Stop at the next comma so fields appended after `tuples_per_sec`
        // in future schema revisions cannot break the number parse.
        let tput = frag
            .split("\"tuples_per_sec\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse::<f64>().ok());
        if let (Some(instances), Some(tput)) = (instances, tput) {
            points.push((instances, tput));
        }
    }
    points
}

/// Append this run's tuples/sec to the in-repo perf-trajectory log
/// (`BENCH_engine.json` at the workspace root, overridable with
/// `PKG_BENCH_LOG`), so throughput history is tracked commit over commit.
fn append_trajectory(smoke: bool, results: &[(usize, &'static str, Measurement)]) {
    let path = std::env::var("PKG_BENCH_LOG").unwrap_or_else(|_| "BENCH_engine.json".into());
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    // `metric` records the load signal routing minimized (see
    // `active_load`); the tolerant string-scan readers ignore it, so
    // records with and without the field coexist in one log.
    let mut rec = format!(
        "{{\"unix_time\": {unix}, \"seed\": {}, \"smoke\": {smoke}, \"metric\": \"{}\", \
         \"points\": [",
        seed(),
        metric_label()
    );
    for (i, (instances, label, m)) in results.iter().enumerate() {
        if i > 0 {
            rec.push_str(", ");
        }
        // `p99_ns` rides in each point record; the tolerant string-scan
        // readers (above) ignore fields they do not ask for, so records
        // from before this field and after it coexist in one log.
        let _ = write!(
            rec,
            "{{\"instances\": {instances}, \"mode\": \"{label}\", \"tuples_per_sec\": {:.0}, \
             \"p99_ns\": {}}}",
            m.counter_tput, m.p99_ns
        );
    }
    rec.push_str("]}");
    let path = std::path::PathBuf::from(path);
    pkg_bench::append_json_record(&path, &rec);
    eprintln!("[appended to {}]", path.display());
}
